//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot
//! be fetched; this vendored shim implements exactly the API subset the
//! workspace uses (`Rng::random`, `Rng::random_range`, `Rng::random_bool`,
//! `SeedableRng`). Generators only need determinism and reasonable
//! statistical quality — they never promise stream compatibility with the
//! upstream crate — so a faithful ChaCha core (in the sibling
//! `rand_chacha` shim) behind these traits is sufficient.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform random word source (the upstream `RngCore`).
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly from an `RngCore` via [`Rng::random`]
/// (upstream's `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Integer types with an unbiased bounded-uniform sampler, enabling range
/// sampling through [`Rng::random_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `high > low`.
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The successor (for inclusive ranges); `None` on overflow.
    fn checked_succ(self) -> Option<Self>;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(high > low);
                let span = (high as u64).wrapping_sub(low as u64);
                // Rejection sampling on the top multiple of `span`.
                let zone = u64::MAX - (u64::MAX % span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return low + (v % span) as $t;
                    }
                }
            }
            fn checked_succ(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}

impl_uniform_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(high > low);
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                let zone = u64::MAX - (u64::MAX % span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return low.wrapping_add((v % span) as $t);
                    }
                }
            }
            fn checked_succ(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}

impl_uniform_int!(isize => usize, i64 => u64, i32 => u32);

/// Range arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        match hi.checked_succ() {
            Some(end) => T::sample_below(rng, lo, end),
            None => unimplemented!("inclusive range ending at the type maximum"),
        }
    }
}

/// User-facing sampling methods, mirroring `rand 0.9`'s `Rng`.
pub trait Rng: RngCore {
    /// A value of `T` from its standard distribution (`f64` in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range` (half-open or inclusive integer range).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators, mirroring upstream `SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type (e.g. `[u8; 32]`).
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (the same
    /// convention upstream uses, so small seeds diffuse well).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..2000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0usize..=5);
            assert!(w <= 5);
            let s = rng.random_range(-4i64..4);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = Lcg(9);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Lcg(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
