//! Offline stand-in for `rayon`: persistent worker pools with scoped tasks.
//!
//! The build environment cannot fetch the real `rayon`, and the kernels in
//! this workspace only need one primitive: "run these K closures, which
//! borrow the caller's stack, on T worker threads and wait". This shim
//! provides exactly that as [`ThreadPool::scope`] /
//! [`Scope::spawn`], mirroring rayon's scoped API.
//!
//! Design points that matter to callers:
//!
//! - Pools are **shared per thread count**: `ThreadPoolBuilder` with
//!   `num_threads(T)` returns a handle to one global T-worker pool, so P
//!   simulated ranks asking for T kernel threads share T OS threads in
//!   total rather than spawning P×T. Workers are started on first use and
//!   live for the process lifetime.
//! - A pool built with `num_threads(1)` (or 0) runs every spawned task
//!   **inline on the caller's thread** — no workers, no synchronization —
//!   which keeps the sequential path allocation- and contention-free.
//! - `scope` blocks until every task spawned inside it has finished, which
//!   is what makes lending stack references to tasks sound.
//! - Do **not** call `scope` from inside a worker task of the same pool:
//!   with few workers the inner scope's tasks can wait behind the very
//!   task that is waiting for them.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolInner {
    tx: Sender<Job>,
    threads: usize,
}

fn start_workers(threads: usize) -> PoolInner {
    let (tx, rx) = channel::<Job>();
    let rx = Arc::new(Mutex::new(rx));
    for w in 0..threads {
        let rx = Arc::clone(&rx);
        std::thread::Builder::new()
            .name(format!("kernel-pool-{threads}-{w}"))
            .spawn(move || loop {
                // Hold the lock only while dequeuing, never while running.
                let job = {
                    let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                    match guard.recv() {
                        Ok(job) => job,
                        Err(_) => return,
                    }
                };
                job();
            })
            .expect("spawn kernel pool worker");
    }
    PoolInner { tx, threads }
}

fn registry() -> &'static Mutex<HashMap<usize, &'static PoolInner>> {
    static REGISTRY: OnceLock<Mutex<HashMap<usize, &'static PoolInner>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Handle to a worker pool (or to inline execution when `threads <= 1`).
#[derive(Clone, Copy)]
pub struct ThreadPool {
    inner: Option<&'static PoolInner>,
    threads: usize,
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for API parity; pool construction here cannot fail.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder; without `num_threads` the pool sizes to the machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `n` worker threads (0 = all available cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Returns the shared pool for this thread count, starting its
    /// workers on first use.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        if threads <= 1 {
            return Ok(ThreadPool {
                inner: None,
                threads: 1,
            });
        }
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let inner = *reg
            .entry(threads)
            .or_insert_with(|| Box::leak(Box::new(start_workers(threads))));
        Ok(ThreadPool {
            inner: Some(inner),
            threads: inner.threads,
        })
    }
}

/// Number of hardware threads on this machine.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

/// Spawn handle passed to the closure given to [`ThreadPool::scope`];
/// tasks may borrow anything that outlives the scope call.
pub struct Scope<'scope> {
    pool: Option<&'static PoolInner>,
    state: Arc<ScopeState>,
    // Invariant over 'scope, as in rayon.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Runs `f` on a pool worker (inline if the pool is sequential).
    /// The enclosing `scope` call returns only after `f` completes.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let Some(pool) = self.pool else {
            f();
            return;
        };
        {
            let mut pending = self.state.pending.lock().unwrap_or_else(|e| e.into_inner());
            *pending += 1;
        }
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: `scope` (via `WaitGuard`) blocks until `pending` drops
        // back to zero before returning — even if the scope body panics —
        // so the task, and every 'scope borrow inside it, cannot outlive
        // the stack frame it borrows from.
        let job: Job = unsafe { std::mem::transmute(job) };
        let wrapped: Job = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                state.panicked.store(true, Ordering::Relaxed);
            }
            let mut pending = state.pending.lock().unwrap_or_else(|e| e.into_inner());
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        });
        pool.tx.send(wrapped).expect("kernel pool workers exited");
    }
}

/// Blocks until the scope's task count reaches zero; runs in `Drop` so the
/// wait happens even when the scope body unwinds.
struct WaitGuard<'a>(&'a ScopeState);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        let mut pending = self.0.pending.lock().unwrap_or_else(|e| e.into_inner());
        while *pending > 0 {
            pending = self.0.done.wait(pending).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl ThreadPool {
    /// Worker count this handle dispatches to (1 = inline execution).
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op`, letting it spawn borrowing tasks; returns `op`'s result
    /// after every spawned task has finished. Panics if a task panicked.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        let state = Arc::new(ScopeState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let scope = Scope {
            pool: self.inner,
            state: Arc::clone(&state),
            _marker: PhantomData,
        };
        let result = {
            let _wait = WaitGuard(&state);
            op(&scope)
        };
        if state.panicked.load(Ordering::Relaxed) {
            panic!("a task spawned in ThreadPool::scope panicked");
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn pool(threads: usize) -> ThreadPool {
        ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
    }

    #[test]
    fn scope_runs_all_tasks_with_borrows() {
        let p = pool(4);
        let mut out = vec![0usize; 64];
        p.scope(|s| {
            for (i, chunk) in out.chunks_mut(8).enumerate() {
                s.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = i * 8 + j;
                    }
                });
            }
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let p = pool(1);
        let caller = std::thread::current().id();
        let mut ran_on = None;
        p.scope(|s| {
            s.spawn(|| ran_on = Some(std::thread::current().id()));
        });
        assert_eq!(ran_on, Some(caller));
    }

    #[test]
    fn pools_are_shared_per_thread_count() {
        let a = pool(3);
        let b = pool(3);
        assert!(std::ptr::eq(a.inner.unwrap(), b.inner.unwrap()));
        assert_eq!(a.current_num_threads(), 3);
    }

    #[test]
    fn concurrent_scopes_from_many_threads() {
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|ts| {
            for _ in 0..8 {
                let total = Arc::clone(&total);
                ts.spawn(move || {
                    let p = pool(2);
                    p.scope(|s| {
                        for _ in 0..16 {
                            let total = Arc::clone(&total);
                            s.spawn(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 16);
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let p = pool(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&finished);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..8 {
                    let f = Arc::clone(&f2);
                    s.spawn(move || {
                        f.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::Relaxed), 8);
    }
}
