//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace uses: the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`, integer-range and tuple strategies,
//! `collection::vec`, `bool::ANY`, [`strategy::Just`], the `proptest!`,
//! `prop_oneof!` and `prop_assert*` macros, and `ProptestConfig`.
//!
//! Differences from upstream, deliberate for an offline shim:
//! - cases are generated from a fixed per-case ChaCha8 seed, so runs are
//!   fully deterministic (no `PROPTEST_` env handling);
//! - there is **no shrinking** — a failure reports the case index so it
//!   can be replayed, not a minimized input;
//! - integer ranges sample uniformly rather than biasing toward bounds.

pub mod strategy {
    //! Core [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value` from a seeded RNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases this strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Type-erased strategy produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.random_range(0..self.options.len());
            self.options[k].generate(rng)
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: rand::UniformInt,
        Range<T>: Clone + rand::SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: rand::UniformInt,
        RangeInclusive<T>: Clone + rand::SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Anything usable as the size argument of [`vec`]: an exact `usize`
    /// or a half-open `Range<usize>`.
    pub trait IntoSizeRange {
        /// Picks a length for this draw.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.random_range(self.clone())
            }
        }
    }

    /// Strategy for `Vec`s of values drawn from `elem`.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    /// `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The any-bool strategy (upstream `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random()
        }
    }
}

pub mod test_runner {
    //! Case-count configuration and the per-test driver.

    use rand::SeedableRng;

    /// RNG handed to strategies; deterministic per (test, case index).
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Subset of upstream's run configuration: just the case count.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failed property check, carrying the formatted assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps an assertion failure message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Drives one property: yields a fresh deterministic RNG per case.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Runner executing `config.cases` cases.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Deterministic RNG for case `case` (stable across runs, so a
        /// reported case index can be replayed).
        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng::seed_from_u64(
                0x7072_6F70_7465_u64 ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
            )
        }
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;` — the names tests expect in scope.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each listed function runs `ProptestConfig::cases` times with inputs
/// generated from the `pat in strategy` bindings. `prop_assert*` failures
/// abort the case with its index (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let runner = $crate::test_runner::TestRunner::new($config);
                for case in 0..runner.cases() {
                    let mut prop_rng = runner.rng_for(case);
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat), &mut prop_rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property {} failed at case #{}: {}",
                            stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($pat in $strat),+) $body )*
        }
    };
}

/// Uniform choice among the listed strategies (all must share one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let lhs = $a;
        let rhs = $b;
        $crate::prop_assert!(lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), lhs, rhs);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let lhs = $a;
        let rhs = $b;
        $crate::prop_assert!(lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($a), stringify!($b), lhs, rhs, format!($($fmt)+));
    }};
}

/// `assert_ne!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let lhs = $a;
        let rhs = $b;
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            lhs
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_generate_in_bounds() {
        let runner = TestRunner::new(ProptestConfig::with_cases(16));
        for case in 0..runner.cases() {
            let mut rng = runner.rng_for(case);
            let n = (2usize..60).generate(&mut rng);
            assert!((2..60).contains(&n));
            let v = crate::collection::vec((0..n, 0..n), 0..150).generate(&mut rng);
            assert!(v.len() < 150);
            assert!(v.iter().all(|&(a, b)| a < n && b < n));
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let runner = TestRunner::new(ProptestConfig::default());
        let mut rng = runner.rng_for(3);
        let s = (1usize..10).prop_flat_map(|n| (Just(n), crate::collection::vec(0..n, n)));
        for _ in 0..50 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let runner = TestRunner::new(ProptestConfig::default());
        let mut rng = runner.rng_for(0);
        let s = prop_oneof![Just(1usize), Just(4), Just(9), Just(16)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_binds_multiple_params(
            a in 0usize..10,
            (b, c) in (0u64..5, crate::bool::ANY),
        ) {
            prop_assert!(a < 10);
            prop_assert!(b < 5);
            let _ = c;
            prop_assert_eq!(a + 1, a + 1);
            prop_assert_ne!(a, a + 1);
        }
    }
}
