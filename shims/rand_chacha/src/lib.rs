//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 block cipher in
//! counter mode, exposed through the shim `rand` traits.
//!
//! The keystream is a faithful ChaCha implementation (the IETF variant's
//! quarter-round and state layout), but no attempt is made to match the
//! upstream crate's exact word-consumption order — the workspace only
//! relies on determinism per seed, which this provides.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8 random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words 4..12 and counter/nonce words 12..16 of the initial state.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word within `block`; 16 forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        self.index = 0;
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        // "expand 32-byte k" constants, then the 256-bit key, then
        // counter = 0 and zero nonce.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_look_uniform() {
        // Crude sanity: mean of 10k unit draws within [0.45, 0.55].
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mean: f64 = (0..10_000).map(|_| rng.random::<f64>()).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
