//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset this workspace's benches use: `Criterion`,
//! `benchmark_group`, `bench_function`/`bench_with_input`, `Bencher::iter`
//! and `iter_batched`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of upstream's statistical machinery it takes `sample_size`
//! wall-clock samples (after one warmup), then prints min/median/mean per
//! benchmark — enough to record a perf trajectory without plots or HTML.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; the shim times the routine
/// per-invocation regardless, so variants only exist for API parity.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new<P: fmt::Display>(name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id that is just the parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times the benchmarked routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, one sample per call, `sample_size` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup (also forces lazy init out of the measured region).
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

fn run_bench(group: &str, sample_size: usize, id: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    b.samples.sort();
    let n = b.samples.len().max(1);
    let median = b.samples.get(n / 2).copied().unwrap_or_default();
    let min = b.samples.first().copied().unwrap_or_default();
    let mean = b.samples.iter().sum::<Duration>() / n as u32;
    println!(
        "bench {}/{}: min {}  median {}  mean {}  ({} samples)",
        group,
        id,
        human(min),
        human(median),
        human(mean),
        b.samples.len(),
    );
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_bench(&self.name, self.sample_size, &id.to_string(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&self.name, self.sample_size, &id.to_string(), |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op beyond API parity).
    pub fn finish(&mut self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_bench("bench", 20, &id.to_string(), f);
        self
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut count = 0usize;
        g.bench_function("noop", |b| b.iter(|| count += 1));
        // warmup + 3 samples
        assert_eq!(count, 4);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("batched");
        g.sample_size(5);
        g.bench_function("consume_vec", |b| {
            b.iter_batched(|| vec![1u8; 16], drop, BatchSize::SmallInput)
        });
    }
}
