//! `lacc` — command-line connected components.
//!
//! ```text
//! lacc stats    <graph>                      census: V, E, components, degrees
//! lacc cc       <graph> [--algo A] [--out F] label components serially
//! lacc cc-dist  <graph> --ranks P [--machine edison|cori] [--flat]
//!               [--trace out.json] [--trace-level L]  span-trace the run
//! lacc serve    <graph> [--ranks P] [--batches B] [--batch-size K]
//!               [--delete-every D] [--staleness F]   incremental serving
//! lacc generate <family> --n N [--seed S] --out <graph>
//! lacc convert  <in> <out>                   between .mtx / .el / .bin
//! ```
//!
//! Graph formats are chosen by extension: `.mtx` (Matrix Market), `.bin`
//! (this workspace's binary format), anything else is a whitespace edge
//! list.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
