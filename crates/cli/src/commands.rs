//! Subcommand implementations.

use crate::args::{parse, Args};
use dmsim::{TraceLevel, TraceSink};
use lacc::{lacc_serial, EngineSelect, LaccOpts, RunConfig};
use lacc_baselines as baselines;
use lacc_graph::generators::{self, suite};
use lacc_graph::stats::graph_stats;
use lacc_graph::{io, CsrGraph, EdgeList};
use std::path::Path;

/// Usage text shown on errors.
pub const USAGE: &str = "usage:
  lacc stats    <graph>
  lacc cc       <graph> [--algo lacc|unionfind|bfs|sv|labelprop|fastsv|multistep] [--out labels.txt]
  lacc cc-dist  <graph> --ranks P [--machine edison|cori] [--flat]
                [--kernel-threads T] [--spmv-threshold F]
                [--dedup-requests true|false] [--combine-assigns true|false]
                [--compress-ids true|false] [--bitmap-density F]
                [--combine-in-flight true|false] [--fuse-starcheck true|false]
                [--compress-values true|false] [--overlap true|false]
                [--narrow-labels true|false] [--index-width u32|u64]
                [--engine lacc|fastsv|labelprop|auto] [--canonical]
                [--out labels.txt]
                [--trace out.json] [--trace-level off|steps|ops|collectives]
  lacc serve    <graph> [--ranks P] [--machine edison|cori] [--batches B]
                [--batch-size K] [--queries-per-batch Q] [--delete-every D]
                [--staleness F] [--engine lacc|fastsv|labelprop|auto]
                [--seed S] [--report out.json]
                [--trace out.json] [--trace-level off|steps|ops|collectives]
  lacc generate <community|metagenome|rmat|mesh3d|er|suite:NAME> --n N [--seed S] --out <graph>
  lacc convert  <in> <out>

graph formats by extension: .mtx (Matrix Market), .bin (lacc binary), otherwise edge list";

/// Dispatches to a subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let args = parse(argv);
    let cmd = args
        .positional
        .first()
        .ok_or_else(|| "no subcommand given".to_string())?;
    match cmd.as_str() {
        "stats" => cmd_stats(&args),
        "cc" => cmd_cc(&args),
        "cc-dist" => cmd_cc_dist(&args),
        "serve" => cmd_serve(&args),
        "generate" => cmd_generate(&args),
        "convert" => cmd_convert(&args),
        other => Err(format!("unknown subcommand: {other}")),
    }
}

/// Loads an edge list from a path, choosing the format by extension.
pub fn load_edges(path: &Path) -> Result<EdgeList, String> {
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let fail = |e: String| format!("{}: {e}", path.display());
    match ext {
        "mtx" => {
            let file = std::fs::File::open(path).map_err(|e| fail(e.to_string()))?;
            io::read_matrix_market(file).map_err(|e| fail(e.to_string()))
        }
        "bin" => io::load_binary(path).map_err(|e| fail(e.to_string())),
        _ => {
            let file = std::fs::File::open(path).map_err(|e| fail(e.to_string()))?;
            io::read_edge_list(file, None).map_err(|e| fail(e.to_string()))
        }
    }
}

/// Saves an edge list to a path, choosing the format by extension.
pub fn save_edges(path: &Path, el: &EdgeList) -> Result<(), String> {
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let fail = |e: std::io::Error| format!("{}: {e}", path.display());
    match ext {
        "mtx" => {
            let file = std::fs::File::create(path).map_err(fail)?;
            io::write_matrix_market(file, el).map_err(fail)
        }
        "bin" => io::save_binary(path, el).map_err(fail),
        _ => {
            let file = std::fs::File::create(path).map_err(fail)?;
            io::write_edge_list(file, el).map_err(fail)
        }
    }
}

fn load_graph(args: &Args) -> Result<CsrGraph, String> {
    let path = args
        .positional
        .get(1)
        .ok_or_else(|| "missing graph path".to_string())?;
    Ok(CsrGraph::from_edges(load_edges(Path::new(path))?))
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let s = graph_stats(&g);
    println!("vertices            {}", s.vertices);
    println!("directed edges      {}", s.directed_edges);
    println!("undirected edges    {}", s.directed_edges / 2);
    println!("components          {}", s.components);
    println!("largest component   {}", s.largest_component);
    println!("isolated vertices   {}", s.isolated_vertices);
    println!("average degree      {:.2}", s.avg_degree);
    println!("max degree          {}", s.max_degree);
    Ok(())
}

fn cmd_cc(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let algo = args
        .options
        .get("algo")
        .map(|s| s.as_str())
        .unwrap_or("lacc");
    let t = std::time::Instant::now();
    let labels = match algo {
        "lacc" => lacc_serial(&g, &LaccOpts::default()).labels,
        "unionfind" => baselines::union_find_cc(&g),
        "bfs" => baselines::bfs_cc(&g),
        "sv" => baselines::shiloach_vishkin_cc(&g),
        "labelprop" => baselines::label_propagation_cc(&g),
        "fastsv" => baselines::fastsv_cc(&g),
        "multistep" => baselines::multistep_cc(&g),
        other => return Err(format!("unknown algorithm: {other}")),
    };
    let elapsed = t.elapsed().as_secs_f64();
    lacc::verify_labels(&g, &labels).map_err(|e| format!("internal error: {e}"))?;
    let canon = lacc_graph::unionfind::canonicalize_labels(&labels);
    let ncomp = lacc_graph::unionfind::count_components(&canon);
    println!(
        "{ncomp} components via {algo} in {:.1} ms (verified)",
        elapsed * 1e3
    );
    if let Some(out) = args.options.get("out") {
        use std::io::Write;
        let mut f =
            std::io::BufWriter::new(std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?);
        for (v, l) in canon.iter().enumerate() {
            writeln!(f, "{v} {l}").map_err(|e| e.to_string())?;
        }
        println!("labels written to {out}");
    }
    Ok(())
}

fn cmd_cc_dist(args: &Args) -> Result<(), String> {
    let g = load_graph(args)?;
    let ranks: usize = args.get_or("ranks", 4)?;
    let machine = match args
        .options
        .get("machine")
        .map(|s| s.as_str())
        .unwrap_or("edison")
    {
        "edison" => dmsim::EDISON,
        "cori" => dmsim::CORI_KNL,
        other => return Err(format!("unknown machine: {other}")),
    };
    let model = if args.has_flag("flat") {
        machine.flat_model()
    } else {
        machine.lacc_model()
    };
    let defaults = LaccOpts::default();
    // Range validation lives in the core builder (`lacc::options`), not
    // here: the CLI just forwards the raw values and surfaces OptsError.
    // `lacc::run` still clamps kernel-threads so ranks × threads never
    // exceeds the host's cores.
    let opts = LaccOpts::builder()
        .kernel_threads(args.get_or("kernel-threads", defaults.dist.kernel_threads)?)
        .map_err(|e| e.to_string())?
        // Input fill fraction above which mxv runs its SpMV-style kernel.
        .spmv_threshold(args.get_or("spmv-threshold", defaults.dist.spmv_threshold)?)
        .map_err(|e| e.to_string())?
        // Sender-side compaction toggles (all on by default).
        .dedup_requests(args.get_or("dedup-requests", defaults.dist.dedup_requests)?)
        .combine_assigns(args.get_or("combine-assigns", defaults.dist.combine_assigns)?)
        .compress_ids(args.get_or("compress-ids", defaults.dist.compress_ids)?)
        .bitmap_density(args.get_or("bitmap-density", defaults.dist.compress_bitmap_density)?)
        .map_err(|e| e.to_string())?
        // In-flight combining stack (all on by default).
        .combine_in_flight(args.get_or("combine-in-flight", defaults.dist.combine_in_flight)?)
        .fuse_starcheck(args.get_or("fuse-starcheck", defaults.dist.fuse_starcheck)?)
        .compress_values(args.get_or("compress-values", defaults.dist.compress_values)?)
        // Non-blocking hot-path exchanges with compute/comm overlap credit
        // (bit-identical labels and traffic either way).
        .overlap(args.get_or("overlap", defaults.dist.overlap)?)
        // Dynamic label-range narrowing: probe-selected u16/dictionary
        // wire tiers (bit-identical labels and word counts either way;
        // only bytes_sent shrinks).
        .narrow_labels(args.get_or("narrow-labels", defaults.dist.narrow_labels)?)
        // Index/label storage width: u32 (default) halves index memory and
        // wire bytes, u64 lifts the 2^32-vertex limit.
        .index_width(
            args.options
                .get("index-width")
                .map(|s| s.parse())
                .transpose()
                .map_err(|e: lacc::OptsError| e.to_string())?
                .unwrap_or(defaults.index_width),
        )
        // Which connected-components engine runs (auto selects from a
        // sampled-BFS prepass; see `lacc::engine`).
        .engine(
            args.options
                .get("engine")
                .map(|s| s.parse())
                .transpose()
                .map_err(|e: lacc::OptsError| e.to_string())?
                .unwrap_or(defaults.engine),
        )
        .build();
    // Span tracing: --trace <path> emits Chrome-trace JSON (load it in
    // chrome://tracing or Perfetto) plus an aggregate per-rank report;
    // --trace-level picks the detail (default collectives, the most
    // verbose).
    let trace_path = args.options.get("trace").cloned();
    let level: TraceLevel = args
        .options
        .get("trace-level")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(TraceLevel::Collectives);
    let sink = match (&trace_path, level) {
        (Some(_), l) if l != TraceLevel::Off => Some(TraceSink::new(l)),
        _ => None,
    };
    let cfg = RunConfig::new(ranks, model)
        .with_opts(opts)
        .with_trace_opt(sink.as_ref());
    let out = lacc::run(&g, &cfg).map_err(|e| e.to_string())?;
    let run = &out.run;
    println!(
        "{} components via {} engine on {} ranks ({})",
        run.num_components(),
        out.engine,
        ranks,
        machine.name
    );
    if let Some(why) = &out.rationale {
        println!("engine rationale    {why}");
    }
    println!("iterations          {}", run.num_iterations());
    println!("modeled time        {:.3} ms", run.modeled_total_s * 1e3);
    println!("simulation wall     {:.1} ms", run.wall_s * 1e3);
    let b = run.breakdown();
    println!(
        "step breakdown      cond {:.2}ms | uncond {:.2}ms | shortcut {:.2}ms | starcheck {:.2}ms",
        b.cond_s * 1e3,
        b.uncond_s * 1e3,
        b.shortcut_s * 1e3,
        b.starcheck_s * 1e3
    );
    if let (Some(path), Some(sink)) = (&trace_path, &sink) {
        std::fs::write(path, sink.chrome_trace_json()).map_err(|e| format!("{path}: {e}"))?;
        println!("{}", sink.report().render());
        println!("trace written to {path}");
    }
    if let Some(path) = args.options.get("out") {
        // Raw parent labels by default, one `vertex label` line each — the
        // CI smoke step byte-diffs these across flag configurations.
        // `--canonical` renumbers components by first appearance instead:
        // LACC labels are tree-root ids while FastSV/labelprop converge to
        // component minima, so only canonical labels byte-diff *across*
        // engines.
        use std::io::Write;
        let labels = if args.has_flag("canonical") {
            lacc_graph::unionfind::canonicalize_labels(&run.labels)
        } else {
            run.labels.clone()
        };
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?,
        );
        for (v, l) in labels.iter().enumerate() {
            writeln!(f, "{v} {l}").map_err(|e| e.to_string())?;
        }
        println!("labels written to {path}");
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    use lacc_serving::{CcService, RerunPolicy, ServeOpts, WorkloadCfg};

    let g = load_graph(args)?;
    let ranks: usize = args.get_or("ranks", 4)?;
    let machine = match args
        .options
        .get("machine")
        .map(|s| s.as_str())
        .unwrap_or("edison")
    {
        "edison" => dmsim::EDISON,
        "cori" => dmsim::CORI_KNL,
        other => return Err(format!("unknown machine: {other}")),
    };
    let staleness: f64 = args.get_or("staleness", 0.25)?;
    if staleness < 0.0 || staleness.is_nan() {
        return Err(format!("staleness must be nonnegative, got {staleness}"));
    }
    let engine: EngineSelect = args
        .options
        .get("engine")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e: lacc::OptsError| e.to_string())?
        .unwrap_or_default();
    let cfg = WorkloadCfg {
        batches: args.get_or("batches", 20)?,
        batch_size: args.get_or("batch-size", 64)?,
        queries_per_batch: args.get_or("queries-per-batch", 128)?,
        delete_every: args.get_or("delete-every", 0)?,
        seed: args.get_or("seed", 1)?,
    };
    let opts = ServeOpts {
        ranks,
        model: machine.lacc_model(),
        policy: RerunPolicy::staleness(staleness).with_engine(engine),
        ..Default::default()
    };
    let trace_path = args.options.get("trace").cloned();
    let level: TraceLevel = args
        .options
        .get("trace-level")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(TraceLevel::Steps);
    let sink = match (&trace_path, level) {
        (Some(_), l) if l != TraceLevel::Off => Some(TraceSink::new(l)),
        _ => None,
    };

    let mut svc =
        CcService::from_graph_traced(&g, opts, sink.clone()).map_err(|e| e.to_string())?;
    let rep = lacc_serving::run_workload(&mut svc, &cfg).map_err(|e| e.to_string())?;
    let s = &rep.stats;

    println!(
        "served {} batches over {} vertices on {} label shards ({})",
        cfg.batches,
        svc.num_vertices(),
        ranks,
        machine.name
    );
    println!("final epoch         {}", rep.final_epoch);
    println!("components          {}", rep.final_components);
    println!(
        "updates             {} inserts ({} no-op) + {} deletes, {} hooks",
        s.inserts, s.noop_inserts, s.deletes, s.hooks
    );
    println!(
        "reruns              {} ({} deletion, {} staleness), {:.3} ms modeled",
        s.reruns,
        s.deletion_reruns,
        s.staleness_reruns,
        s.rerun_modeled_s * 1e3
    );
    if let Some(k) = svc.last_engine() {
        println!("rebuild engine      {k} (policy: {engine})");
    }
    if let Some(why) = svc.last_engine_rationale() {
        println!("engine rationale    {why}");
    }
    println!(
        "update throughput   {:.0} updates/s ({:.1} ms wall)",
        rep.updates_per_s(),
        rep.update_wall_s * 1e3
    );
    println!(
        "query throughput    {:.0} queries/s ({} queries)",
        rep.queries_per_s(),
        rep.queries
    );
    println!(
        "modeled query lat.  p50 {:.2} us | p99 {:.2} us",
        rep.latency_percentile_s(50.0) * 1e6,
        rep.latency_percentile_s(99.0) * 1e6
    );
    println!(
        "answers consistent  {}",
        if rep.answers_consistent { "yes" } else { "NO" }
    );
    if !rep.answers_consistent {
        return Err("serving answers diverged from the brute-force oracle".into());
    }
    if let (Some(path), Some(sink)) = (&trace_path, &sink) {
        std::fs::write(path, sink.chrome_trace_json()).map_err(|e| format!("{path}: {e}"))?;
        println!("{}", sink.report().render());
        println!("trace written to {path}");
    }
    if let Some(out) = args.options.get("report") {
        // `--staleness inf` (never rebuild) must stay valid JSON.
        let staleness_json = if staleness.is_finite() {
            format!("{staleness}")
        } else {
            "null".to_string()
        };
        // The engine the policy requested, the one the last rebuild used
        // (they differ under `auto`), and auto's rationale if any.
        let rebuild_engine = match svc.last_engine() {
            Some(k) => format!("\"{k}\""),
            None => "null".to_string(),
        };
        let rationale_json = match svc.last_engine_rationale() {
            Some(r) => format!("\"{}\"", r.replace('\\', "\\\\").replace('"', "\\\"")),
            None => "null".to_string(),
        };
        let json = format!(
            "{{\n  \"vertices\": {},\n  \"ranks\": {},\n  \"machine\": \"{}\",\n  \
             \"engine\": \"{engine}\",\n  \"rebuild_engine\": {rebuild_engine},\n  \
             \"engine_rationale\": {rationale_json},\n  \
             \"batches\": {},\n  \"batch_size\": {},\n  \"queries_per_batch\": {},\n  \
             \"delete_every\": {},\n  \"staleness_threshold\": {},\n  \"seed\": {},\n  \
             \"final_epoch\": {},\n  \"components\": {},\n  \"edges\": {},\n  \
             \"inserts\": {},\n  \"noop_inserts\": {},\n  \"deletes\": {},\n  \
             \"hooks\": {},\n  \"reruns\": {},\n  \"deletion_reruns\": {},\n  \
             \"staleness_reruns\": {},\n  \"rerun_modeled_s\": {:.6},\n  \
             \"updates_per_s\": {:.1},\n  \"queries\": {},\n  \"queries_per_s\": {:.1},\n  \
             \"modeled_query_p50_s\": {:.9},\n  \"modeled_query_p99_s\": {:.9},\n  \
             \"answers_consistent\": {}\n}}\n",
            svc.num_vertices(),
            ranks,
            machine.name,
            cfg.batches,
            cfg.batch_size,
            cfg.queries_per_batch,
            cfg.delete_every,
            staleness_json,
            cfg.seed,
            rep.final_epoch,
            rep.final_components,
            rep.final_edges,
            s.inserts,
            s.noop_inserts,
            s.deletes,
            s.hooks,
            s.reruns,
            s.deletion_reruns,
            s.staleness_reruns,
            s.rerun_modeled_s,
            rep.updates_per_s(),
            rep.queries,
            rep.queries_per_s(),
            rep.latency_percentile_s(50.0),
            rep.latency_percentile_s(99.0),
            rep.answers_consistent
        );
        std::fs::write(out, json).map_err(|e| format!("{out}: {e}"))?;
        println!("report written to {out}");
    }
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let family = args
        .positional
        .get(1)
        .ok_or_else(|| "missing generator family".to_string())?;
    let out = args.require("out")?.to_string();
    let n: usize = args.get_or("n", 10_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let g = if let Some(name) = family.strip_prefix("suite:") {
        suite::by_name(name)
            .ok_or_else(|| format!("unknown suite graph: {name}"))?
            .build()
    } else {
        match family.as_str() {
            "community" => {
                let comps: usize = args.get_or("components", (n / 50).max(1))?;
                let degree: f64 = args.get_or("degree", 8.0)?;
                generators::community_graph(n, comps, degree, 1.4, seed)
            }
            "metagenome" => generators::metagenome_graph(n, 7, 0.005, seed),
            "rmat" => {
                let scale: u32 = args.get_or("scale", 14)?;
                let ef: usize = args.get_or("edge-factor", 16)?;
                generators::rmat(scale, ef, generators::RmatParams::graph500(), seed)
            }
            "mesh3d" => {
                let side = (n as f64).cbrt().round().max(2.0) as usize;
                generators::mesh_3d(side, side, side)
            }
            "er" => {
                let m: usize = args.get_or("m", n * 4)?;
                generators::erdos_renyi_gnm(n, m, seed)
            }
            other => return Err(format!("unknown family: {other}")),
        }
    };
    save_edges(Path::new(&out), &g.to_edgelist())?;
    println!(
        "wrote {}: {} vertices, {} undirected edges",
        out,
        g.num_vertices(),
        g.num_undirected_edges()
    );
    Ok(())
}

fn cmd_convert(args: &Args) -> Result<(), String> {
    let input = args.positional.get(1).ok_or("missing input path")?;
    let output = args.positional.get(2).ok_or("missing output path")?;
    let el = load_edges(Path::new(input))?;
    save_edges(Path::new(output), &el)?;
    println!("converted {input} -> {output} ({} edge entries)", el.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
        assert!(dispatch(&argv(&[])).is_err());
    }

    #[test]
    fn generate_stats_cc_convert_pipeline() {
        let dir = std::env::temp_dir().join("lacc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx").display().to_string();
        let bin = dir.join("g.bin").display().to_string();

        dispatch(&argv(&[
            "generate",
            "community",
            "--n",
            "500",
            "--out",
            &mtx,
        ]))
        .unwrap();
        dispatch(&argv(&["stats", &mtx])).unwrap();
        dispatch(&argv(&["convert", &mtx, &bin])).unwrap();
        dispatch(&argv(&["cc", &bin, "--algo", "lacc"])).unwrap();
        dispatch(&argv(&["cc", &bin, "--algo", "unionfind"])).unwrap();
        dispatch(&argv(&["cc-dist", &bin, "--ranks", "4"])).unwrap();
        dispatch(&argv(&[
            "cc-dist",
            &bin,
            "--ranks",
            "4",
            "--kernel-threads",
            "2",
            "--spmv-threshold",
            "0.25",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "cc-dist",
            &bin,
            "--ranks",
            "4",
            "--dedup-requests",
            "false",
            "--combine-assigns",
            "false",
            "--compress-ids",
            "false",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "cc-dist",
            &bin,
            "--ranks",
            "4",
            "--bitmap-density",
            "0.5",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "cc-dist",
            &bin,
            "--ranks",
            "4",
            "--combine-in-flight",
            "false",
            "--fuse-starcheck",
            "false",
            "--compress-values",
            "false",
        ]))
        .unwrap();

        // Converted graphs must describe the same structure.
        let a: CsrGraph = CsrGraph::from_edges(load_edges(Path::new(&mtx)).unwrap());
        let b: CsrGraph = CsrGraph::from_edges(load_edges(Path::new(&bin)).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn cc_dist_rejects_bad_threshold() {
        let dir = std::env::temp_dir().join("lacc-cli-test4");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.el").display().to_string();
        std::fs::write(&p, "0 1\n1 2\n").unwrap();
        assert!(dispatch(&argv(&["cc-dist", &p, "--spmv-threshold", "7.0"])).is_err());
        assert!(dispatch(&argv(&["cc-dist", &p, "--kernel-threads", "zig"])).is_err());
        assert!(dispatch(&argv(&["cc-dist", &p, "--kernel-threads", "0"])).is_err());
        assert!(dispatch(&argv(&["cc-dist", &p, "--trace-level", "verbose"])).is_err());
        assert!(dispatch(&argv(&["cc-dist", &p, "--bitmap-density", "1.5"])).is_err());
        assert!(dispatch(&argv(&["cc-dist", &p, "--dedup-requests", "maybe"])).is_err());
        assert!(dispatch(&argv(&["cc-dist", &p, "--combine-in-flight", "maybe"])).is_err());
        assert!(dispatch(&argv(&["cc-dist", &p, "--index-width", "u16"])).is_err());
    }

    #[test]
    fn cc_dist_labels_identical_across_index_widths() {
        let dir = std::env::temp_dir().join("lacc-cli-test9");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.el").display().to_string();
        std::fs::write(&p, "0 1\n1 2\n3 4\n5 6\n6 7\n").unwrap();
        let narrow = dir.join("narrow.txt").display().to_string();
        let wide = dir.join("wide.txt").display().to_string();
        dispatch(&argv(&[
            "cc-dist",
            &p,
            "--ranks",
            "4",
            "--index-width",
            "u32",
            "--out",
            &narrow,
        ]))
        .unwrap();
        dispatch(&argv(&[
            "cc-dist",
            &p,
            "--ranks",
            "4",
            "--index-width",
            "u64",
            "--out",
            &wide,
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&narrow).unwrap(),
            std::fs::read(&wide).unwrap(),
            "index width changed the labels"
        );
    }

    #[test]
    fn cc_dist_labels_identical_with_combining_on_and_off() {
        // The CI smoke check in miniature: the combining stack must not
        // change a single output byte.
        let dir = std::env::temp_dir().join("lacc-cli-test6");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.el").display().to_string();
        std::fs::write(&p, "0 1\n1 2\n3 4\n5 6\n6 7\n").unwrap();
        let on = dir.join("on.txt").display().to_string();
        let off = dir.join("off.txt").display().to_string();
        dispatch(&argv(&["cc-dist", &p, "--ranks", "4", "--out", &on])).unwrap();
        dispatch(&argv(&[
            "cc-dist",
            &p,
            "--ranks",
            "4",
            "--combine-in-flight",
            "false",
            "--fuse-starcheck",
            "false",
            "--compress-values",
            "false",
            "--out",
            &off,
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&on).unwrap(),
            std::fs::read(&off).unwrap(),
            "combining changed the labels"
        );
    }

    #[test]
    fn cc_dist_labels_identical_with_overlap_on_and_off() {
        // The overlap CI smoke in miniature: non-blocking execution must
        // not change a single output byte.
        let dir = std::env::temp_dir().join("lacc-cli-test11");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.el").display().to_string();
        std::fs::write(&p, "0 1\n1 2\n3 4\n5 6\n6 7\n").unwrap();
        let on = dir.join("on.txt").display().to_string();
        let off = dir.join("off.txt").display().to_string();
        dispatch(&argv(&[
            "cc-dist",
            &p,
            "--ranks",
            "4",
            "--overlap",
            "true",
            "--out",
            &on,
        ]))
        .unwrap();
        dispatch(&argv(&[
            "cc-dist",
            &p,
            "--ranks",
            "4",
            "--overlap",
            "false",
            "--out",
            &off,
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&on).unwrap(),
            std::fs::read(&off).unwrap(),
            "overlap changed the labels"
        );
        assert!(dispatch(&argv(&["cc-dist", &p, "--overlap", "maybe"])).is_err());
    }

    #[test]
    fn cc_dist_labels_identical_with_narrowing_on_and_off() {
        // The narrowing CI smoke in miniature: probe-selected wire tiers
        // must not change a single output byte.
        let dir = std::env::temp_dir().join("lacc-cli-test12");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.el").display().to_string();
        std::fs::write(&p, "0 1\n1 2\n3 4\n5 6\n6 7\n").unwrap();
        let on = dir.join("on.txt").display().to_string();
        let off = dir.join("off.txt").display().to_string();
        dispatch(&argv(&[
            "cc-dist",
            &p,
            "--ranks",
            "4",
            "--narrow-labels",
            "true",
            "--out",
            &on,
        ]))
        .unwrap();
        dispatch(&argv(&[
            "cc-dist",
            &p,
            "--ranks",
            "4",
            "--narrow-labels",
            "false",
            "--out",
            &off,
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&on).unwrap(),
            std::fs::read(&off).unwrap(),
            "narrowing changed the labels"
        );
        assert!(dispatch(&argv(&["cc-dist", &p, "--narrow-labels", "maybe"])).is_err());
    }

    #[test]
    fn cc_dist_canonical_labels_identical_across_engines() {
        // The engine-matrix CI smoke in miniature: every engine (and auto)
        // must produce byte-identical --canonical label files.
        let dir = std::env::temp_dir().join("lacc-cli-test10");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.el").display().to_string();
        std::fs::write(&p, "0 1\n1 2\n3 4\n5 6\n6 7\n8 9\n").unwrap();
        let mut files = Vec::new();
        for eng in ["lacc", "fastsv", "labelprop", "auto"] {
            let out = dir.join(format!("{eng}.txt")).display().to_string();
            dispatch(&argv(&[
                "cc-dist",
                &p,
                "--ranks",
                "4",
                "--engine",
                eng,
                "--canonical",
                "--out",
                &out,
            ]))
            .unwrap();
            files.push(std::fs::read(&out).unwrap());
        }
        for f in &files[1..] {
            assert_eq!(&files[0], f, "an engine changed the canonical labels");
        }
        assert!(dispatch(&argv(&["cc-dist", &p, "--engine", "warp"])).is_err());
    }

    #[test]
    fn cc_dist_writes_trace_json() {
        let dir = std::env::temp_dir().join("lacc-cli-test5");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.el").display().to_string();
        std::fs::write(&p, "0 1\n1 2\n3 4\n").unwrap();
        let out = dir.join("trace.json").display().to_string();
        dispatch(&argv(&["cc-dist", &p, "--ranks", "4", "--trace", &out])).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        for name in ["cond_hook", "uncond_hook", "shortcut", "starcheck"] {
            assert!(json.contains(name), "trace missing {name} spans");
        }
        // `--trace-level off` suppresses the file entirely.
        let out2 = dir.join("trace2.json").display().to_string();
        dispatch(&argv(&[
            "cc-dist",
            &p,
            "--ranks",
            "4",
            "--trace",
            &out2,
            "--trace-level",
            "off",
        ]))
        .unwrap();
        assert!(!std::path::Path::new(&out2).exists());
    }

    #[test]
    fn serve_runs_and_writes_report() {
        let dir = std::env::temp_dir().join("lacc-cli-test7");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.el").display().to_string();
        std::fs::write(&p, "0 1\n1 2\n3 4\n5 6\n6 7\n").unwrap();
        let report = dir.join("serve.json").display().to_string();
        let trace = dir.join("serve-trace.json").display().to_string();
        dispatch(&argv(&[
            "serve",
            &p,
            "--ranks",
            "4",
            "--batches",
            "6",
            "--batch-size",
            "4",
            "--queries-per-batch",
            "9",
            "--delete-every",
            "3",
            "--engine",
            "auto",
            "--report",
            &report,
            "--trace",
            &trace,
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&report).unwrap();
        assert!(json.contains("\"answers_consistent\": true"));
        assert!(json.contains("\"modeled_query_p99_s\""));
        assert!(json.contains("\"engine\": \"auto\""));
        assert!(json.contains("\"rebuild_engine\": \""));
        assert!(!json.contains("\"engine_rationale\": null"));
        // The bootstrap and the deletion rebuilds appear as tagged spans.
        let tr = std::fs::read_to_string(&trace).unwrap();
        assert!(tr.contains("rerun(bootstrap)"));
        assert!(tr.contains("rerun(deletion)"));
    }

    #[test]
    fn serve_rejects_bad_options() {
        let dir = std::env::temp_dir().join("lacc-cli-test8");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.el").display().to_string();
        std::fs::write(&p, "0 1\n").unwrap();
        assert!(dispatch(&argv(&["serve", &p, "--staleness", "-1"])).is_err());
        assert!(dispatch(&argv(&["serve", &p, "--batches", "many"])).is_err());
        assert!(dispatch(&argv(&["serve", &p, "--machine", "summit"])).is_err());
        assert!(dispatch(&argv(&["serve", &p, "--engine", "quantum"])).is_err());
    }

    #[test]
    fn cc_rejects_unknown_algo() {
        let dir = std::env::temp_dir().join("lacc-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.el").display().to_string();
        std::fs::write(&p, "0 1\n1 2\n").unwrap();
        assert!(dispatch(&argv(&["cc", &p, "--algo", "quantum"])).is_err());
    }

    #[test]
    fn labels_file_is_written() {
        let dir = std::env::temp_dir().join("lacc-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.el").display().to_string();
        let out = dir.join("labels.txt").display().to_string();
        std::fs::write(&p, "0 1\n2 3\n").unwrap();
        dispatch(&argv(&["cc", &p, "--out", &out])).unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("2 2"));
    }
}
