//! Minimal flag parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed positional arguments and `--key value` / `--flag` options.
#[derive(Debug, Default)]
pub struct Args {
    pub positional: Vec<String>,
    pub options: HashMap<String, String>,
    pub flags: Vec<String>,
}

/// Splits `argv` into positionals, `--key value` options (when the next
/// token is not itself a flag) and bare `--flag`s.
pub fn parse(argv: &[String]) -> Args {
    let mut out = Args::default();
    let mut i = 0;
    while i < argv.len() {
        let tok = &argv[i];
        if let Some(key) = tok.strip_prefix("--") {
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                out.options.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                out.flags.push(key.to_string());
                i += 1;
            }
        } else {
            out.positional.push(tok.clone());
            i += 1;
        }
    }
    out
}

impl Args {
    /// Option value, or an error naming the missing key.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Option value parsed as `T`, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("bad value for --{key}: {s}")),
        }
    }

    /// Whether a bare flag is present.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positional_and_options() {
        let a = parse(&argv(&["cc", "g.mtx", "--algo", "lacc", "--flat"]));
        assert_eq!(a.positional, vec!["cc", "g.mtx"]);
        assert_eq!(a.require("algo").unwrap(), "lacc");
        assert!(a.has_flag("flat"));
    }

    #[test]
    fn get_or_parses_with_default() {
        let a = parse(&argv(&["--ranks", "16"]));
        assert_eq!(a.get_or("ranks", 4usize).unwrap(), 16);
        assert_eq!(a.get_or("seed", 7u64).unwrap(), 7);
        assert!(a.get_or::<usize>("ranks", 0).is_ok());
        let bad = parse(&argv(&["--ranks", "xyz"]));
        assert!(bad.get_or::<usize>("ranks", 0).is_err());
    }

    #[test]
    fn trailing_flag() {
        let a = parse(&argv(&["stats", "--quiet"]));
        assert!(a.has_flag("quiet"));
        assert!(a.require("quiet").is_err());
    }
}
