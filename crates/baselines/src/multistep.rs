//! The Multistep method (Slota, Rajamanickam & Madduri), §II-C.
//!
//! The shared-memory hybrid the paper cites alongside ParConnect: a BFS
//! from a high-degree seed labels the (presumed) giant component, then
//! min-label propagation finishes the remainder. Implemented with the
//! workspace's threaded label propagation so it slots into the same
//! comparison benches.

use crate::bfs::bfs_visit;
use crate::Vid;
use lacc_graph::CsrGraph;

/// Multistep connected components: BFS peel + label propagation.
pub fn multistep_cc(g: &CsrGraph) -> Vec<Vid> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    // Step 1: BFS from the max-degree vertex.
    let seed = (0..n).max_by_key(|&v| g.degree(v)).expect("nonempty");
    let (visited, _count) = bfs_visit(g, seed);
    // The BFS component's canonical label is its minimum member.
    let bfs_label = (0..n).find(|&v| visited[v]).expect("seed visited");

    // Step 2: min-label propagation on the remainder (two-phase rounds;
    // visited vertices are frozen).
    let mut labels: Vec<Vid> = (0..n)
        .map(|v| if visited[v] { bfs_label } else { v })
        .collect();
    loop {
        let mut changed = 0usize;
        let prev = labels.clone();
        for v in 0..n {
            if visited[v] {
                continue;
            }
            let mut best = prev[v];
            for &u in g.neighbors(v) {
                best = best.min(prev[u]);
            }
            if best != labels[v] {
                labels[v] = best;
                changed += 1;
            }
        }
        if changed == 0 {
            return labels;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find_cc;
    use lacc_graph::generators::*;
    use lacc_graph::unionfind::canonicalize_labels;

    fn check(g: &CsrGraph) {
        assert_eq!(canonicalize_labels(&multistep_cc(g)), union_find_cc(g));
    }

    #[test]
    fn matches_union_find() {
        check(&path_graph(200));
        check(&star_graph(64));
        for seed in 0..3 {
            check(&erdos_renyi_gnm(400, 500, seed));
        }
        check(&community_graph(1500, 60, 3.5, 1.4, 2));
        check(&metagenome_graph(1200, 6, 0.01, 4));
        check(&barabasi_albert(800, 3, 5));
    }

    #[test]
    fn empty_and_isolated() {
        check(&CsrGraph::from_edges(lacc_graph::EdgeList::new(0)));
        check(&CsrGraph::from_edges(lacc_graph::EdgeList::new(7)));
    }

    #[test]
    fn giant_component_gets_min_label() {
        // BA graphs are connected: the whole graph is the BFS component
        // and every label must be 0.
        let g = barabasi_albert(500, 2, 1);
        assert!(multistep_cc(&g).iter().all(|&l| l == 0));
    }
}
