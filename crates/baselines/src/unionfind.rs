//! Serial union-find connected components.

use crate::Vid;
use lacc_graph::{CsrGraph, DisjointSets};

/// Labels each vertex with the smallest vertex id in its component using
/// union-find — the optimal `O(m α(n))` serial algorithm and the ground
/// truth all parallel algorithms are validated against.
pub fn union_find_cc(g: &CsrGraph) -> Vec<Vid> {
    let mut ds = DisjointSets::new(g.num_vertices());
    for (u, v) in g.edges() {
        if u < v {
            ds.union(u, v);
        }
    }
    ds.canonical_labels()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacc_graph::generators::{erdos_renyi_gnm, random_forest};
    use lacc_graph::stats::ground_truth_labels;

    #[test]
    fn matches_graph_stats_oracle() {
        for seed in 0..3 {
            let g = erdos_renyi_gnm(150, 200, seed);
            assert_eq!(union_find_cc(&g), ground_truth_labels(&g));
        }
    }

    #[test]
    fn forest_labels_are_minima() {
        let g = random_forest(100, 5, 1);
        let labels = union_find_cc(&g);
        for (u, v) in g.edges() {
            assert_eq!(labels[u], labels[v]);
        }
        for (v, &l) in labels.iter().enumerate() {
            assert!(l <= v);
        }
    }
}
