//! Shared-memory Shiloach–Vishkin-family connected components.
//!
//! This is the hook-and-jump CRCW algorithm family the paper builds on,
//! in its Awerbuch–Shiloach star-based formulation (§II-C: AS is the
//! simplification of SV with simpler data structures — star flags instead
//! of iteration stamps). Edge scans run across real threads; every phase
//! is two-phase (collect reads, then apply min-combined writes), so the
//! result is deterministic regardless of thread count.
//!
//! This plays the role of "an efficient shared-memory algorithm" from
//! §VI-D: the thing you would run instead of LACC when the graph fits in
//! one node's memory.

use crate::Vid;
use lacc_graph::CsrGraph;

/// Minimum edges before the parallel path engages (below this, spawning
/// threads costs more than the scan).
const PAR_GRAIN: usize = 16_384;

/// Star recomputation (same conjunction-fixed Algorithm 2 as `lacc`).
fn starcheck(f: &[Vid], star: &mut [bool]) {
    let n = f.len();
    for s in star.iter_mut() {
        *s = true;
    }
    for v in 0..n {
        let gf = f[f[v]];
        if f[v] != gf {
            star[v] = false;
            star[gf] = false;
        }
    }
    let snapshot = star.to_vec();
    for v in 0..n {
        star[v] = star[v] && snapshot[f[v]];
    }
}

/// Scans all edges across `threads` workers, collecting hook candidates,
/// then min-combines them per target.
fn collect_hooks<F>(g: &CsrGraph, threads: usize, cand: F) -> Vec<(Vid, Vid)>
where
    F: Fn(Vid, Vid) -> Option<(Vid, Vid)> + Sync,
{
    let n = g.num_vertices();
    let m = g.num_directed_edges();
    let run_chunk = |range: std::ops::Range<usize>| -> Vec<(Vid, Vid)> {
        let mut out = Vec::new();
        for u in range {
            for &v in g.neighbors(u) {
                if let Some(h) = cand(u, v) {
                    out.push(h);
                }
            }
        }
        out
    };
    let mut all: Vec<(Vid, Vid)> = if threads <= 1 || m < PAR_GRAIN {
        run_chunk(0..n)
    } else {
        let chunk = n.div_ceil(threads);
        let mut results: Vec<Vec<(Vid, Vid)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = (t * chunk).min(n);
                    let hi = ((t + 1) * chunk).min(n);
                    scope.spawn(move || run_chunk(lo..hi))
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("sv worker panicked"));
            }
        });
        results.concat()
    };
    // Min-combine per target: after an ascending sort, the first entry per
    // target carries the smallest value.
    all.sort_unstable();
    all.dedup_by(|next, first| next.0 == first.0);
    all
}

fn apply_hooks(f: &mut [Vid], hooks: &[(Vid, Vid)]) -> usize {
    let mut changed = 0;
    for &(t, v) in hooks {
        if f[t] != v {
            f[t] = v;
            changed += 1;
        }
    }
    changed
}

/// Hook-and-jump connected components with `threads` worker threads.
pub fn shiloach_vishkin_cc_with_threads(g: &CsrGraph, threads: usize) -> Vec<Vid> {
    let n = g.num_vertices();
    let mut f: Vec<Vid> = (0..n).collect();
    let mut star = vec![true; n];
    let max_iters = 4 * (usize::BITS - n.leading_zeros()) as usize + 16;
    for _ in 0..max_iters {
        let mut changed = 0usize;

        // Conditional hooking: stars hook onto strictly smaller parents.
        let fr: &Vec<Vid> = &f;
        let sr: &Vec<bool> = &star;
        let hooks = collect_hooks(g, threads, |u, v| {
            (sr[u] && fr[v] < fr[u]).then(|| (fr[u], fr[v]))
        });
        changed += apply_hooks(&mut f, &hooks);
        starcheck(&f, &mut star);

        // Unconditional hooking: remaining stars hook onto nonstar trees
        // (safe: nonstars never hook, so no cycles).
        let fr: &Vec<Vid> = &f;
        let sr: &Vec<bool> = &star;
        let hooks = collect_hooks(g, threads, |u, v| {
            (sr[u] && !sr[v] && fr[u] != fr[v]).then(|| (fr[u], fr[v]))
        });
        changed += apply_hooks(&mut f, &hooks);
        starcheck(&f, &mut star);

        // Pointer jumping (one step, two-phase).
        let gf: Vec<Vid> = (0..n).map(|v| f[f[v]]).collect();
        for v in 0..n {
            if f[v] != gf[v] {
                f[v] = gf[v];
                changed += 1;
            }
        }
        starcheck(&f, &mut star);

        if changed == 0 {
            return f;
        }
    }
    panic!("Shiloach-Vishkin did not converge within {max_iters} iterations");
}

/// Hook-and-jump connected components with an automatically chosen thread
/// count.
pub fn shiloach_vishkin_cc(g: &CsrGraph) -> Vec<Vid> {
    let threads = std::thread::available_parallelism()
        .map(|t| t.get().min(8))
        .unwrap_or(1);
    shiloach_vishkin_cc_with_threads(g, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find_cc;
    use lacc_graph::generators::*;
    use lacc_graph::unionfind::canonicalize_labels;

    fn check(g: &CsrGraph) {
        for threads in [1, 4] {
            let f = shiloach_vishkin_cc_with_threads(g, threads);
            assert_eq!(
                canonicalize_labels(&f),
                union_find_cc(g),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn basic_families() {
        check(&path_graph(300));
        check(&cycle_graph(64));
        check(&star_graph(40));
        check(&random_forest(500, 9, 3));
    }

    #[test]
    fn random_and_skewed() {
        for seed in 0..3 {
            check(&erdos_renyi_gnm(250, 300, seed));
        }
        check(&rmat(8, 4, RmatParams::graph500(), 5));
        check(&community_graph(1500, 60, 3.0, 1.4, 2));
    }

    #[test]
    fn lemma1_adversarial_ids() {
        // The same id pattern that broke the paper's Lemma 1 (no converged
        // tracking here, but keep the case covered).
        let el = lacc_graph::EdgeList::from_pairs(82, [(77, 80), (80, 79), (79, 81), (81, 78)]);
        check(&CsrGraph::from_edges(el));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = erdos_renyi_gnm(400, 600, 9);
        let a = shiloach_vishkin_cc_with_threads(&g, 1);
        let b = shiloach_vishkin_cc_with_threads(&g, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_tiny() {
        check(&CsrGraph::from_edges(lacc_graph::EdgeList::new(0)));
        check(&CsrGraph::from_edges(lacc_graph::EdgeList::new(3)));
        check(&path_graph(2));
    }

    #[test]
    fn large_parallel_path_engages_threads() {
        // Enough edges to cross PAR_GRAIN so the threaded scan runs.
        let g = erdos_renyi_gnm(20_000, 40_000, 11);
        check(&g);
    }
}
