//! Parallel min-label propagation.
//!
//! The technique inside Slota et al.'s Multistep method (§II-C): every
//! round, each vertex takes the minimum label in its closed neighborhood;
//! converges in `O(diameter)` rounds. Simple and embarrassingly parallel,
//! but much slower than hook-and-jump algorithms on high-diameter graphs —
//! the contrast the benches demonstrate.

use crate::Vid;
use lacc_graph::CsrGraph;

/// Minimum edges before the parallel path engages.
const PAR_GRAIN: usize = 16_384;

/// Min-label propagation with `threads` worker threads. Two-phase rounds
/// keep the result deterministic.
pub fn label_propagation_cc_with_threads(g: &CsrGraph, threads: usize) -> Vec<Vid> {
    let n = g.num_vertices();
    let mut labels: Vec<Vid> = (0..n).collect();
    let mut next = labels.clone();
    loop {
        let changed = step(g, threads, &labels, &mut next);
        std::mem::swap(&mut labels, &mut next);
        if changed == 0 {
            return labels;
        }
    }
}

fn step(g: &CsrGraph, threads: usize, labels: &[Vid], next: &mut [Vid]) -> usize {
    let n = g.num_vertices();
    let run_chunk = |range: std::ops::Range<usize>, out: &mut [Vid]| -> usize {
        let mut changed = 0;
        for (v, slot) in range.clone().zip(out.iter_mut()) {
            let mut best = labels[v];
            for &u in g.neighbors(v) {
                best = best.min(labels[u]);
            }
            if best != labels[v] {
                changed += 1;
            }
            *slot = best;
        }
        changed
    };
    if threads <= 1 || g.num_directed_edges() < PAR_GRAIN {
        run_chunk(0..n, next)
    } else {
        let chunk = n.div_ceil(threads);
        let mut total = 0;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut rest: &mut [Vid] = next;
            for t in 0..threads {
                let lo = (t * chunk).min(n);
                let hi = ((t + 1) * chunk).min(n);
                let (mine, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                handles.push(scope.spawn(move || run_chunk(lo..hi, mine)));
            }
            for h in handles {
                total += h.join().expect("labelprop worker panicked");
            }
        });
        total
    }
}

/// Min-label propagation with an automatically chosen thread count.
pub fn label_propagation_cc(g: &CsrGraph) -> Vec<Vid> {
    let threads = std::thread::available_parallelism()
        .map(|t| t.get().min(8))
        .unwrap_or(1);
    label_propagation_cc_with_threads(g, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find_cc;
    use lacc_graph::generators::*;

    fn check(g: &CsrGraph) {
        for threads in [1, 4] {
            // Label propagation's labels are already canonical (component
            // minima).
            assert_eq!(
                label_propagation_cc_with_threads(g, threads),
                union_find_cc(g)
            );
        }
    }

    #[test]
    fn matches_union_find() {
        check(&path_graph(200));
        check(&star_graph(50));
        for seed in 0..3 {
            check(&erdos_renyi_gnm(300, 400, seed));
        }
        check(&community_graph(1000, 40, 3.0, 1.4, 1));
    }

    #[test]
    fn empty() {
        check(&CsrGraph::from_edges(lacc_graph::EdgeList::new(0)));
        check(&CsrGraph::from_edges(lacc_graph::EdgeList::new(4)));
    }

    #[test]
    fn parallel_large() {
        check(&erdos_renyi_gnm(20_000, 50_000, 2));
    }
}
