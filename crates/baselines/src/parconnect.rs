//! ParConnect simulation — the distributed baseline of Figures 4–6.
//!
//! ParConnect (Jain et al.) is a BFS + Shiloach–Vishkin hybrid: a parallel
//! BFS peels the (presumed) largest component, then distributed SV
//! iterations label the rest. Crucially, ParConnect's SV works on
//! **distributed edge tuples**: every iteration shuffles the tuple set to
//! look up current endpoint labels (the published system does this with
//! global sorts), so each SV round moves `Θ(m)` words — versus LACC's
//! `Θ(active vertices)`. We reproduce that structure on the same
//! `gblas::dist` substrate LACC uses:
//!
//! * a distributed frontier BFS phase from the max-degree vertex, after
//!   which tuples inside the peeled component are dropped (ParConnect's
//!   optimization for metagenome inputs),
//! * tuple-based SV rounds: for every tuple `(u, v)` held at `u`'s owner,
//!   fetch `f[v]` across the machine (the `Θ(m)`-word exchange), hook
//!   roots onto smaller labels, then pointer-jump the vertex array,
//! * the unoptimized communication stack ([`DistOpts::naive`]: pairwise
//!   all-to-all, no hot-rank broadcast), and no converged-component
//!   sparsity.
//!
//! This captures the performance differences the paper attributes its wins
//! to (§VI-C/E): per-round data volume `m` vs `n`, no vector sparsity,
//! more ranks per node (callers pair this with
//! [`dmsim::Machine::flat_model`]), and `α(p−1)`-latency collectives.

use crate::Vid;
use dmsim::{run_spmd_with_model, Comm, DmsimError, Grid2d, MachineModel};
use gblas::dist::{
    dist_assign, dist_extract, dist_mxv_sparse, DistMask, DistMat, DistOpts, DistSpVec, DistVec,
    VecLayout,
};
use gblas::MinUsize;
use lacc_graph::CsrGraph;
use std::time::Instant;

/// Result of a ParConnect-sim run.
#[derive(Clone, Debug)]
pub struct ParconnectRun {
    /// Component label per vertex.
    pub labels: Vec<Vid>,
    /// Ranks used.
    pub p: usize,
    /// BFS levels executed in the peel phase.
    pub bfs_levels: usize,
    /// SV rounds executed after the peel.
    pub sv_rounds: usize,
    /// Modeled makespan in seconds.
    pub modeled_total_s: f64,
    /// Wall-clock seconds.
    pub wall_s: f64,
}

struct RankOut {
    labels: Option<Vec<Vid>>,
    bfs_levels: usize,
    sv_rounds: usize,
    clock_s: f64,
}

fn spmd(comm: &mut Comm, g: &CsrGraph, seed: Vid) -> RankOut {
    let n = g.num_vertices();
    let p = comm.size();
    let grid = Grid2d::square(p);
    let layout = VecLayout::new(n, grid);
    let rank = comm.rank();
    let a = DistMat::from_graph(g, grid, rank);
    let world = comm.world();
    let opts = DistOpts::naive();

    let mut f: DistVec<Vid> = DistVec::from_fn(layout, rank, |v| v);
    let mut visited: DistVec<bool> = DistVec::from_fn(layout, rank, |_| false);
    let mut bfs_levels = 0usize;

    // ParConnect keeps the graph as a distributed *tuple array* (no CSR
    // index); this rank's share is every directed edge whose source falls
    // in the local vector chunk. Its sort-based BFS realizes frontier
    // expansion as a sort-merge join between the frontier and the whole
    // tuple array, so every level scans all local tuples.
    let local_tuple_count: u64 = (0..f.local().len())
        .map(|o| g.degree(f.global_of(o)) as u64)
        .sum();

    // --- Phase 1: BFS peel of the seed's component ---
    if n > 0 {
        let mut frontier = if visited.owns(seed) {
            visited.set_local(seed, true);
            f.set_local(seed, seed);
            DistSpVec::from_local_entries(layout, rank, vec![(seed, seed)])
        } else {
            DistSpVec::empty(layout, rank)
        };
        loop {
            let alive = frontier.global_nvals(comm);
            if alive == 0 {
                break;
            }
            bfs_levels += 1;
            // Sort-merge join of frontier vs tuple array: one full local
            // tuple scan per level, plus the shuffle of the matched
            // adjacency (one word per matched tuple).
            comm.charge_compute(local_tuple_count + 1);
            let frontier_adjacency: u64 = frontier
                .entries()
                .iter()
                .map(|&(v, _)| g.degree(v) as u64)
                .sum();
            comm.charge_comm_words(frontier_adjacency);
            let next = dist_mxv_sparse(
                comm,
                &a,
                &frontier,
                DistMask::Complement(&visited),
                MinUsize,
                &opts,
            );
            // Mark and label the newly discovered vertices (all owned
            // locally by construction of mxv output).
            let entries: Vec<(Vid, Vid)> = next.entries().iter().map(|&(v, _)| (v, seed)).collect();
            for &(v, label) in &entries {
                visited.set_local(v, true);
                f.set_local(v, label);
            }
            comm.charge_compute(entries.len() as u64 + 1);
            frontier = DistSpVec::from_local_entries(layout, rank, entries);
        }
    }

    // --- Phase 2: tuple-based SV rounds on the remainder ---
    //
    // Build this rank's tuple list: directed edges whose source falls in
    // the local vector chunk, excluding tuples fully inside the peeled
    // component (ParConnect removes the found component's edges before
    // running SV).
    let mut tuples: Vec<(Vid, Vid)> = Vec::new();
    for o in 0..f.local().len() {
        let u = f.global_of(o);
        if visited.get_local(u) {
            continue;
        }
        for &v in g.neighbors(u) {
            tuples.push((u, v));
        }
    }
    comm.charge_compute(tuples.len() as u64 + 1);

    let mut sv_rounds = 0usize;
    let max_rounds = 8 * (usize::BITS - n.leading_zeros()) as usize + 32;
    loop {
        sv_rounds += 1;
        assert!(
            sv_rounds <= max_rounds,
            "ParConnect SV phase did not converge"
        );
        let mut changed = 0u64;

        // The Θ(m) exchange: every tuple fetches its remote endpoint's
        // current label (the published system realizes this as global
        // sorts of the tuple set; the data volume is the same).
        let reqs: Vec<Vid> = tuples.iter().map(|&(_, v)| v).collect();
        let (fv_vals, _) = dist_extract(comm, &f, &reqs, &opts);

        // SV hooking: roots adopt smaller neighbor labels (min-combined).
        let hooks: Vec<(Vid, Vid)> = tuples
            .iter()
            .zip(&fv_vals)
            .filter(|(&(u, _), &fv)| fv < f.get_local(u))
            .map(|(&(u, _), &fv)| (f.get_local(u), fv))
            .collect();
        comm.charge_compute(tuples.len() as u64 + 1);
        changed += dist_assign(comm, &mut f, &hooks, MinUsize, &opts).0 as u64;

        // Aggressive side: vertices adopt the smaller label directly.
        for (&(u, _), &fv) in tuples.iter().zip(&fv_vals) {
            if fv < f.get_local(u) {
                f.set_local(u, fv);
                changed += 1;
            }
        }

        // Pointer jumping over the full vertex array (no sparsity).
        let jump_reqs: Vec<Vid> = f.local().to_vec();
        let (gfs, _) = dist_extract(comm, &f, &jump_reqs, &opts);
        for (o, &gf) in gfs.iter().enumerate() {
            if gf < f.local()[o] {
                f.local_mut()[o] = gf;
                changed += 1;
            }
        }
        comm.charge_compute(gfs.len() as u64 + 1);

        let total = comm.allreduce(&world, changed, |a, b| a + b);
        if total == 0 {
            break;
        }
    }

    let labels = f.to_global(comm);
    RankOut {
        labels: (rank == 0).then_some(labels),
        bfs_levels,
        sv_rounds,
        clock_s: comm.clock_s(),
    }
}

/// Runs the ParConnect simulation on `p` simulated ranks (square grid).
///
/// Errs with the failing rank and panic payload if any rank panics.
pub fn parconnect_sim(
    g: &CsrGraph,
    p: usize,
    model: MachineModel,
) -> Result<ParconnectRun, DmsimError> {
    let _ = Grid2d::square(p);
    // Seed the BFS peel at the max-degree vertex — ParConnect's heuristic
    // for finding the giant component cheaply.
    let seed = (0..g.num_vertices())
        .max_by_key(|&v| g.degree(v))
        .unwrap_or(0);
    let wall = Instant::now();
    let outs = run_spmd_with_model(p, model, |comm| spmd(comm, g, seed))?;
    let wall_s = wall.elapsed().as_secs_f64();
    Ok(ParconnectRun {
        labels: outs[0].labels.clone().expect("rank 0 labels"),
        p,
        bfs_levels: outs[0].bfs_levels,
        sv_rounds: outs[0].sv_rounds,
        modeled_total_s: outs.iter().map(|o| o.clock_s).fold(0.0f64, f64::max),
        wall_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find_cc;
    use dmsim::EDISON;
    use lacc_graph::generators::*;
    use lacc_graph::unionfind::canonicalize_labels;

    fn check(g: &CsrGraph, p: usize) -> ParconnectRun {
        let run = parconnect_sim(g, p, EDISON.flat_model()).unwrap();
        assert_eq!(canonicalize_labels(&run.labels), union_find_cc(g), "p={p}");
        run
    }

    #[test]
    fn correct_across_grids() {
        let g = erdos_renyi_gnm(200, 260, 3);
        for p in [1, 4, 9, 16] {
            check(&g, p);
        }
    }

    #[test]
    fn bfs_peels_giant_component() {
        // One big community + small ones: the BFS phase should cover
        // multiple levels.
        let g = community_graph(1000, 20, 4.0, 1.2, 5);
        let run = check(&g, 4);
        assert!(run.bfs_levels >= 2, "levels={}", run.bfs_levels);
    }

    #[test]
    fn handles_single_vertex_and_empty() {
        check(&CsrGraph::from_edges(lacc_graph::EdgeList::new(1)), 4);
        check(&CsrGraph::from_edges(lacc_graph::EdgeList::new(0)), 1);
    }

    #[test]
    fn path_and_metagenome() {
        check(&path_graph(400), 4);
        check(&metagenome_graph(1000, 6, 0.01, 2), 9);
    }

    #[test]
    fn adversarial_lemma1_ids() {
        let el = lacc_graph::EdgeList::from_pairs(82, [(77, 80), (80, 79), (79, 81), (81, 78)]);
        check(&CsrGraph::from_edges(el), 4);
    }
}
