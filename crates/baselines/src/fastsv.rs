//! Serial FastSV.
//!
//! FastSV (Zhang, Azad & Hu, 2020) is the successor to LACC in LAGraph:
//! it drops the star machinery and instead applies three monotone
//! min-updates per round — stochastic hooking, aggressive hooking, and
//! shortcutting — all expressed on the grandparent vector. It usually
//! converges in fewer, cheaper iterations than LACC; the extension
//! ablation bench compares the two.

use crate::Vid;
use lacc_graph::CsrGraph;

/// FastSV connected components. Labels converge to the component minima.
pub fn fastsv_cc(g: &CsrGraph) -> Vec<Vid> {
    let n = g.num_vertices();
    let mut f: Vec<Vid> = (0..n).collect();
    let mut gf: Vec<Vid> = f.clone();
    loop {
        let mut changed = 0usize;
        // Hooking: for every edge (u, v), offer gf[v] to both u's parent
        // (stochastic hooking) and u itself (aggressive hooking). All
        // updates are monotone minima, so order never matters.
        let f_prev = f.clone();
        for (u, v) in g.edges() {
            let cand = gf[v];
            let t = f_prev[u];
            if cand < f[t] {
                f[t] = cand;
                changed += 1;
            }
            if cand < f[u] {
                f[u] = cand;
                changed += 1;
            }
        }
        // Shortcutting: f[v] ← min(f[v], gf[v]).
        for v in 0..n {
            if gf[v] < f[v] {
                f[v] = gf[v];
                changed += 1;
            }
        }
        // Recompute grandparents; converged when gf is stable.
        let mut gf_changed = false;
        for v in 0..n {
            let new = f[f[v]];
            if gf[v] != new {
                gf[v] = new;
                gf_changed = true;
            }
        }
        if changed == 0 && !gf_changed {
            return f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find_cc;
    use lacc_graph::generators::*;
    use lacc_graph::unionfind::canonicalize_labels;

    fn check(g: &CsrGraph) {
        let f = fastsv_cc(g);
        assert_eq!(canonicalize_labels(&f), union_find_cc(g));
        // FastSV flattens completely: every vertex points at the minimum.
        assert_eq!(f, union_find_cc(g));
    }

    #[test]
    fn matches_union_find() {
        check(&path_graph(500));
        check(&cycle_graph(99));
        for seed in 0..3 {
            check(&erdos_renyi_gnm(300, 350, seed));
        }
        check(&rmat(8, 4, RmatParams::web(), 1));
        check(&metagenome_graph(2000, 6, 0.01, 4));
    }

    #[test]
    fn adversarial_ids() {
        let el = lacc_graph::EdgeList::from_pairs(82, [(77, 80), (80, 79), (79, 81), (81, 78)]);
        check(&CsrGraph::from_edges(el));
    }

    #[test]
    fn empty() {
        check(&CsrGraph::from_edges(lacc_graph::EdgeList::new(0)));
    }
}
