//! Connected-components baselines.
//!
//! The paper compares LACC against ParConnect (the prior distributed
//! state of the art) and motivates it against serial and shared-memory
//! algorithms. This crate provides all of them:
//!
//! * [`unionfind`] — optimal serial union-find (the work-efficiency
//!   yardstick; also the ground truth for every test in the workspace).
//! * [`bfs`] — serial BFS labeling.
//! * [`sv`] — shared-memory Shiloach–Vishkin with two-phase parallel
//!   rounds on real threads.
//! * [`labelprop`] — parallel min-label propagation (the technique inside
//!   Slota et al.'s Multistep method).
//! * [`fastsv`] — serial FastSV (Zhang, Azad & Hu), the LAGraph successor
//!   algorithm; the correctness oracle for the first-class distributed
//!   FastSV engine in `lacc::engine` (which replaced the old
//!   `fastsv_dist` baseline here).
//! * [`parconnect`] — the distributed baseline of Figures 4–6: a
//!   BFS + Shiloach–Vishkin hybrid over [`dmsim`] in ParConnect's flat-MPI
//!   configuration, with dense vectors (no Lemma-1 sparsity) and the
//!   unoptimized pairwise all-to-all. See the module docs for the exact
//!   relationship to the published ParConnect.

#![warn(missing_docs)]

pub mod bfs;
pub mod fastsv;
pub mod labelprop;
pub mod multistep;
pub mod parconnect;
pub mod sv;
pub mod unionfind;

pub use bfs::bfs_cc;
pub use fastsv::fastsv_cc;
pub use labelprop::label_propagation_cc;
pub use multistep::multistep_cc;
pub use parconnect::parconnect_sim;
pub use sv::shiloach_vishkin_cc;
pub use unionfind::union_find_cc;

/// Vertex id type, shared with the rest of the workspace.
pub type Vid = lacc_graph::Vid;
