//! Distributed FastSV — the post-paper successor algorithm, as an
//! extension ablation.
//!
//! FastSV (Zhang, Azad & Hu, 2020) replaced LACC in LAGraph: it drops the
//! star machinery entirely and repeats three monotone min-updates on the
//! grandparent vector. Here it runs on the same `gblas::dist` substrate
//! and cost model as LACC, so `exp_ablation`-style comparisons are
//! apples-to-apples: FastSV does fewer, simpler supersteps per iteration
//! (no starchecks) but operates on dense vectors every round (no Lemma-1
//! retirement), which is exactly the trade the follow-up paper discusses.

use crate::Vid;
use dmsim::{run_spmd_with_model, Comm, DmsimError, Grid2d, MachineModel};
use gblas::dist::{
    dist_assign, dist_extract, dist_mxv_dense, DistMask, DistMat, DistOpts, DistVec, VecLayout,
};
use gblas::MinUsize;
use lacc_graph::CsrGraph;
use std::time::Instant;

/// Result of a distributed FastSV run.
#[derive(Clone, Debug)]
pub struct FastsvRun {
    /// Component label per vertex (component minima).
    pub labels: Vec<Vid>,
    /// Ranks used.
    pub p: usize,
    /// Rounds until the grandparent vector stabilized.
    pub rounds: usize,
    /// Modeled makespan in seconds.
    pub modeled_total_s: f64,
    /// Wall-clock seconds.
    pub wall_s: f64,
}

fn spmd(comm: &mut Comm, g: &CsrGraph, opts: &DistOpts) -> (Option<Vec<Vid>>, usize, f64) {
    let n = g.num_vertices();
    let p = comm.size();
    let grid = Grid2d::square(p);
    let layout = VecLayout::new(n, grid);
    let rank = comm.rank();
    let a = DistMat::from_graph(g, grid, rank);
    let world = comm.world();
    let mut f: DistVec<Vid> = DistVec::from_fn(layout, rank, |v| v);
    let mut gf: DistVec<Vid> = DistVec::from_fn(layout, rank, |v| v);
    let nlocal = f.local().len();
    let max_rounds = 8 * (usize::BITS - n.leading_zeros()) as usize + 32;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        assert!(rounds <= max_rounds, "FastSV did not converge");
        let mut changed = 0u64;

        // fn[u] = min over neighbors v of gf[v].
        let fn_vec = dist_mxv_dense(comm, &a, &gf, DistMask::None, MinUsize, opts);

        // Stochastic hooking: f[f[u]] ← min(f[f[u]], fn[u]).
        let hooks: Vec<(Vid, Vid)> = fn_vec
            .entries()
            .iter()
            .map(|&(u, m)| (f.get_local(u), m.min(f.get_local(u))))
            .collect();
        changed += dist_assign(comm, &mut f, &hooks, MinUsize, opts).0 as u64;

        // Aggressive hooking: f[u] ← min(f[u], fn[u]).
        for &(u, m) in fn_vec.entries() {
            if m < f.get_local(u) {
                f.set_local(u, m);
                changed += 1;
            }
        }
        comm.charge_compute(fn_vec.local_nvals() as u64 + 1);

        // Shortcutting: f[u] ← min(f[u], gf[u]).
        for o in 0..nlocal {
            if gf.local()[o] < f.local()[o] {
                f.local_mut()[o] = gf.local()[o];
                changed += 1;
            }
        }
        comm.charge_compute(nlocal as u64 + 1);

        // Recompute grandparents; converged when gf is globally stable.
        let reqs: Vec<Vid> = f.local().to_vec();
        let (new_gf, _) = dist_extract(comm, &f, &reqs, opts);
        let mut gf_changed = 0u64;
        for (o, &val) in new_gf.iter().enumerate() {
            if gf.local()[o] != val {
                gf.local_mut()[o] = val;
                gf_changed += 1;
            }
        }
        comm.charge_compute(nlocal as u64 + 1);

        let total = comm.allreduce(&world, changed + gf_changed, |a, b| a + b);
        if total == 0 {
            break;
        }
    }
    let labels = f.to_global(comm);
    ((rank == 0).then_some(labels), rounds, comm.clock_s())
}

/// Runs distributed FastSV on `p` simulated ranks (square grid).
///
/// Errs with the failing rank and panic payload if any rank panics.
pub fn fastsv_dist(
    g: &CsrGraph,
    p: usize,
    model: MachineModel,
    opts: &DistOpts,
) -> Result<FastsvRun, DmsimError> {
    let _ = Grid2d::square(p);
    let wall = Instant::now();
    let outs = run_spmd_with_model(p, model, |comm| spmd(comm, g, opts))?;
    Ok(FastsvRun {
        labels: outs[0].0.clone().expect("rank 0 labels"),
        p,
        rounds: outs[0].1,
        modeled_total_s: outs.iter().map(|o| o.2).fold(0.0f64, f64::max),
        wall_s: wall.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fastsv_cc, union_find_cc};
    use dmsim::EDISON;
    use lacc_graph::generators::*;
    use lacc_graph::unionfind::canonicalize_labels;

    fn check(g: &CsrGraph, p: usize) -> FastsvRun {
        let run = fastsv_dist(g, p, EDISON.lacc_model(), &DistOpts::default()).unwrap();
        assert_eq!(canonicalize_labels(&run.labels), union_find_cc(g), "p={p}");
        run
    }

    #[test]
    fn correct_across_grids() {
        let g = erdos_renyi_gnm(250, 300, 8);
        for p in [1, 4, 9, 16] {
            check(&g, p);
        }
    }

    #[test]
    fn matches_serial_fastsv_labels() {
        // Both converge to component minima, so the labels are equal —
        // not just the partitions.
        let g = community_graph(800, 40, 3.0, 1.4, 12);
        let serial = fastsv_cc(&g);
        let dist = check(&g, 4);
        assert_eq!(dist.labels, serial);
    }

    #[test]
    fn path_and_adversarial() {
        check(&path_graph(500), 9);
        let el = lacc_graph::EdgeList::from_pairs(82, [(77, 80), (80, 79), (79, 81), (81, 78)]);
        check(&CsrGraph::from_edges(el), 4);
    }

    #[test]
    fn logarithmic_rounds() {
        let run = check(&path_graph(2048), 4);
        assert!(run.rounds <= 30, "rounds = {}", run.rounds);
    }
}
