//! Serial BFS connected components.

use crate::Vid;
use lacc_graph::CsrGraph;
use std::collections::VecDeque;

/// Labels components by repeated breadth-first search; each vertex gets
/// the smallest id in its component (BFS is seeded in ascending order).
pub fn bfs_cc(g: &CsrGraph) -> Vec<Vid> {
    let n = g.num_vertices();
    let mut labels = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for root in 0..n {
        if labels[root] != usize::MAX {
            continue;
        }
        labels[root] = root;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if labels[v] == usize::MAX {
                    labels[v] = root;
                    queue.push_back(v);
                }
            }
        }
    }
    labels
}

/// Single-source BFS; returns the set of visited vertices as a boolean
/// mask and the number visited. Used by the ParConnect simulation's
/// largest-component peel.
pub fn bfs_visit(g: &CsrGraph, source: Vid) -> (Vec<bool>, usize) {
    let mut visited = vec![false; g.num_vertices()];
    let mut count = 1;
    visited[source] = true;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if !visited[v] {
                visited[v] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    (visited, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find_cc;
    use lacc_graph::generators::{cycle_graph, erdos_renyi_gnm, metagenome_graph};

    #[test]
    fn matches_union_find() {
        for seed in 0..3 {
            let g = erdos_renyi_gnm(200, 250, seed);
            assert_eq!(bfs_cc(&g), union_find_cc(&g));
        }
        let g = metagenome_graph(1000, 5, 0.01, 2);
        assert_eq!(bfs_cc(&g), union_find_cc(&g));
    }

    #[test]
    fn bfs_visit_counts() {
        let g = cycle_graph(10);
        let (vis, count) = bfs_visit(&g, 3);
        assert_eq!(count, 10);
        assert!(vis.iter().all(|&v| v));
    }
}
