//! Property tests for the collectives: arbitrary payload shapes, all
//! algorithms, checked against straightforward serial oracles.

use dmsim::{run_spmd, run_spmd_with_model, AllToAll, EDISON};
use proptest::prelude::*;

/// Arbitrary per-rank all-to-all payloads: `shape[src][dst]` lengths.
fn arb_shapes(p: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(proptest::collection::vec(0usize..40, p), p)
}

fn bufs_for(shape: &[Vec<usize>], src: usize) -> Vec<Vec<u64>> {
    shape[src]
        .iter()
        .enumerate()
        .map(|(dst, &len)| {
            (0..len)
                .map(|k| (src * 1000 + dst * 100 + k) as u64)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alltoallv_matches_oracle(
        shape in arb_shapes(5),
        algo_idx in 0usize..4,
    ) {
        let p = 5;
        let algo = [AllToAll::Direct, AllToAll::Pairwise, AllToAll::Hypercube, AllToAll::Sparse][algo_idx];
        let shape_ref = &shape;
        let out = run_spmd(p, move |c| {
            let w = c.world();
            c.alltoallv(&w, bufs_for(shape_ref, c.rank()), algo)
        }).unwrap();
        for (me, got) in out.into_iter().enumerate() {
            let expect: Vec<Vec<u64>> = (0..p)
                .map(|src| bufs_for(shape_ref, src)[me].clone())
                .collect();
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn allgatherv_matches_oracle(lens in proptest::collection::vec(0usize..50, 1..7)) {
        let p = lens.len();
        let lens_ref = &lens;
        let out = run_spmd(p, move |c| {
            let mine: Vec<u64> = (0..lens_ref[c.rank()]).map(|k| (c.rank() * 100 + k) as u64).collect();
            let w = c.world();
            c.allgatherv(&w, mine)
        }).unwrap();
        for got in out {
            for (src, block) in got.iter().enumerate() {
                let expect: Vec<u64> = (0..lens_ref[src]).map(|k| (src * 100 + k) as u64).collect();
                prop_assert_eq!(block, &expect);
            }
        }
    }

    #[test]
    fn allreduce_matches_fold(vals in proptest::collection::vec(0u64..1000, 1..9)) {
        let p = vals.len();
        let vals_ref = &vals;
        let out = run_spmd(p, move |c| {
            let w = c.world();
            let sum = c.allreduce(&w, vals_ref[c.rank()], |a, b| a + b);
            let min = c.allreduce(&w, vals_ref[c.rank()], |a, b| a.min(b));
            (sum, min)
        }).unwrap();
        let sum: u64 = vals.iter().sum();
        let min: u64 = *vals.iter().min().unwrap();
        for got in out {
            prop_assert_eq!(got, (sum, min));
        }
    }

    #[test]
    fn reduce_scatter_matches_oracle(
        part_lens in proptest::collection::vec(0usize..20, 2..6),
        p in 2usize..6,
    ) {
        let lens_ref = &part_lens;
        let np = part_lens.len().min(p);
        let _ = np;
        let out = run_spmd(p, move |c| {
            let w = c.world();
            // parts[k] has length part_lens[k % lens], value = rank + k.
            let parts: Vec<Vec<u64>> = (0..p)
                .map(|k| vec![(c.rank() + k) as u64; lens_ref[k % lens_ref.len()]])
                .collect();
            c.reduce_scatter(&w, parts, |a, b| *a += b)
        }).unwrap();
        for (k, got) in out.into_iter().enumerate() {
            let expect_val: u64 = (0..p).map(|r| (r + k) as u64).sum();
            prop_assert_eq!(got, vec![expect_val; lens_ref[k % lens_ref.len()]]);
        }
    }

    #[test]
    fn bcast_from_any_root(p in 1usize..8, root_seed in 0usize..100, len in 0usize..60) {
        let root = root_seed % p;
        let out = run_spmd(p, move |c| {
            let w = c.world();
            let data = (c.rank() == root).then(|| (0..len as u64).collect::<Vec<u64>>());
            c.bcast_vec(&w, root, data)
        }).unwrap();
        for got in out {
            prop_assert_eq!(got, (0..len as u64).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn modeled_clock_is_monotone_in_payload(words in 1usize..2000) {
        // Sending more data must never lower the modeled makespan.
        let clock_for = |w: usize| {
            let out = run_spmd_with_model(4, EDISON.lacc_model(), move |c| {
                let world = c.world();
                let bufs: Vec<Vec<u64>> = (0..4).map(|_| vec![1u64; w]).collect();
                c.alltoallv(&world, bufs, AllToAll::Pairwise);
                c.clock_s()
            }).unwrap();
            out.into_iter().fold(0.0f64, f64::max)
        };
        prop_assert!(clock_for(words) <= clock_for(words * 2) + 1e-12);
    }
}
