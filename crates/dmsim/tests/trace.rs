//! Trace subsystem tests: span nesting/ordering invariants, Chrome-trace
//! JSON schema validation, and the zero-cost guarantee (results and cost
//! snapshots bit-identical with tracing off vs. on).

use dmsim::{run_spmd_traced, AllToAll, RankTrace, SpanKind, TraceLevel, TraceSink, EDISON};
use proptest::prelude::*;
use std::sync::Arc;

/// SPMD body exercising steps, ops-level spans, and several collectives.
fn traced_body(c: &mut dmsim::Comm) -> (Vec<u64>, u64) {
    let w = c.world();
    let p = c.size();
    let step = c.span_open(SpanKind::CondHook);
    let gathered = c.allgatherv(&w, vec![c.rank() as u64; c.rank() + 1]);
    let bufs: Vec<Vec<u64>> = (0..p).map(|d| vec![(c.rank() + d) as u64; 3]).collect();
    let exchanged = c.alltoallv(&w, bufs, AllToAll::Sparse);
    let d = c.span_close(step);
    assert!(d >= 0.0);
    let step2 = c.span_open(SpanKind::Shortcut);
    c.barrier(&w);
    let total = c.allreduce(&w, c.rank() as u64, |a, b| a + b);
    c.span_close(step2);
    let flat: Vec<u64> = gathered.into_iter().chain(exchanged).flatten().collect();
    (flat, total)
}

fn nesting_invariants(rt: &RankTrace) {
    // Records are appended at open time, so start times never decrease.
    for w in rt.spans.windows(2) {
        assert!(
            w[1].start_s >= w[0].start_s,
            "rank {}: spans out of open order",
            rt.rank
        );
    }
    for sp in &rt.spans {
        assert!(sp.end_s >= sp.start_s, "rank {}: negative span", rt.rank);
        assert!(sp.end_s.is_finite(), "rank {}: unclosed span", rt.rank);
    }
    // Proper nesting: any later span either starts after an earlier one
    // ended, or closes before it does. The simulated clock is monotone and
    // shared endpoints come from the same clock read, so the comparisons
    // are exact.
    for i in 0..rt.spans.len() {
        for j in i + 1..rt.spans.len() {
            let (a, b) = (&rt.spans[i], &rt.spans[j]);
            assert!(
                b.start_s >= a.end_s || b.end_s <= a.end_s,
                "rank {}: spans {i} and {j} interleave: {a:?} vs {b:?}",
                rt.rank
            );
        }
    }
    // Recorded depths match a stack replay over the intervals.
    let mut stack: Vec<f64> = Vec::new(); // end times of open ancestors
    for sp in &rt.spans {
        while let Some(&end) = stack.last() {
            if end <= sp.start_s && !(end == sp.start_s && sp.end_s == end) {
                stack.pop();
            } else {
                break;
            }
        }
        assert!(
            sp.depth as usize <= stack.len(),
            "rank {}: depth {} exceeds replay depth {}",
            rt.rank,
            sp.depth,
            stack.len()
        );
        stack.push(sp.end_s);
    }
}

#[test]
fn span_nesting_and_ordering_p1_and_p4() {
    for p in [1usize, 4] {
        let sink = TraceSink::new(TraceLevel::Collectives);
        run_spmd_traced(p, EDISON.lacc_model(), Some(&sink), |c| {
            traced_body(c);
        })
        .unwrap();
        let traces = sink.rank_traces();
        assert_eq!(traces.len(), p);
        for (i, rt) in traces.iter().enumerate() {
            assert_eq!(rt.rank, i);
            assert!(!rt.spans.is_empty());
            // The first span opened on every rank is the CondHook step.
            assert_eq!(rt.spans[0].kind, SpanKind::CondHook);
            assert_eq!(rt.spans[0].depth, 0);
            nesting_invariants(rt);
        }
        if p > 1 {
            // A sparse exchange nests its count exchange as a child span.
            let rt = &traces[0];
            let sparse_idx = rt
                .spans
                .iter()
                .position(|s| s.kind == SpanKind::Alltoallv(AllToAll::Sparse))
                .expect("sparse alltoallv span");
            assert_eq!(
                rt.spans[sparse_idx + 1].kind,
                SpanKind::Alltoallv(AllToAll::Hypercube),
                "count exchange nested inside sparse alltoallv"
            );
            assert!(rt.spans[sparse_idx + 1].depth > rt.spans[sparse_idx].depth);
        }
    }
}

#[test]
fn trace_level_gates_span_kinds() {
    let sink = TraceSink::new(TraceLevel::Steps);
    run_spmd_traced(4, EDISON.lacc_model(), Some(&sink), |c| {
        traced_body(c);
    })
    .unwrap();
    for rt in sink.rank_traces() {
        assert_eq!(rt.spans.len(), 2, "steps level records only step spans");
        assert!(rt
            .spans
            .iter()
            .all(|s| matches!(s.kind, SpanKind::CondHook | SpanKind::Shortcut)));
    }
}

#[test]
fn sink_collects_snapshots_even_when_off() {
    let sink = TraceSink::new(TraceLevel::Off);
    run_spmd_traced(2, EDISON.lacc_model(), Some(&sink), |c| {
        traced_body(c);
    })
    .unwrap();
    let traces = sink.rank_traces();
    assert_eq!(traces.len(), 2);
    for rt in &traces {
        assert!(rt.spans.is_empty());
        assert!(rt.snapshot.clock_s > 0.0);
    }
    let report = sink.report();
    assert_eq!(report.p, 2);
    assert!(report.load_imbalance >= 1.0);
    assert!(report.rank_words.iter().all(|&w| w > 0));
}

#[test]
fn collective_variant_spans_all_appear() {
    let sink = TraceSink::new(TraceLevel::Collectives);
    run_spmd_traced(4, EDISON.lacc_model(), Some(&sink), |c| {
        let w = c.world();
        for algo in [AllToAll::Pairwise, AllToAll::Hypercube, AllToAll::Sparse] {
            let bufs: Vec<Vec<u64>> = (0..4).map(|d| vec![d as u64; 2]).collect();
            c.alltoallv(&w, bufs, algo);
        }
        c.bcast_vec(&w, 0, (c.rank() == 0).then(|| vec![1u64]));
        let parts: Vec<Vec<u64>> = (0..4).map(|_| vec![1u64; 2]).collect();
        c.reduce_scatter(&w, parts, |a, b| *a += b);
    })
    .unwrap();
    let json = sink.chrome_trace_json();
    for needle in [
        "alltoallv(pairwise)",
        "alltoallv(hypercube)",
        "alltoallv(sparse)",
        "bcast",
        "reduce_scatter",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
    let report = sink.report();
    assert!(report.kind_time_s("alltoallv(pairwise)") > 0.0);
    assert_eq!(
        report
            .per_kind
            .iter()
            .find(|k| k.name == "bcast")
            .unwrap()
            .count,
        4,
        "one bcast span per rank"
    );
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (test-only) for schema validation of the export.
// ---------------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_num(&self) -> f64 {
        match self {
            Json::Num(x) => *x,
            other => panic!("expected number, got {other:?}"),
        }
    }
    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && (self.b[self.i] as char).is_whitespace() {
            self.i += 1;
        }
    }
    fn eat(&mut self, c: u8) {
        self.ws();
        assert_eq!(
            self.b.get(self.i),
            Some(&c),
            "expected {:?} at {}",
            c as char,
            self.i
        );
        self.i += 1;
    }
    fn peek(&mut self) -> u8 {
        self.ws();
        *self.b.get(self.i).expect("unexpected end of JSON")
    }
    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => {
                self.i += 4;
                Json::Bool(true)
            }
            b'f' => {
                self.i += 5;
                Json::Bool(false)
            }
            b'n' => {
                self.i += 4;
                Json::Null
            }
            _ => self.number(),
        }
    }
    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut fields = Vec::new();
        if self.peek() == b'}' {
            self.i += 1;
            return Json::Obj(fields);
        }
        loop {
            let key = self.string();
            self.eat(b':');
            fields.push((key, self.value()));
            match self.peek() {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Json::Obj(fields);
                }
                c => panic!("bad object separator {:?}", c as char),
            }
        }
    }
    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.i += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Json::Arr(items);
                }
                c => panic!("bad array separator {:?}", c as char),
            }
        }
    }
    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut s = String::new();
        loop {
            let c = self.b[self.i];
            self.i += 1;
            match c {
                b'"' => return s,
                b'\\' => {
                    s.push(self.b[self.i] as char);
                    self.i += 1;
                }
                _ => s.push(c as char),
            }
        }
    }
    fn number(&mut self) -> Json {
        self.ws();
        let start = self.i;
        while self.i < self.b.len()
            && matches!(
                self.b[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("utf8 number");
        Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number {text}")))
    }
}

fn parse_json(s: &str) -> Json {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    let v = p.value();
    p.ws();
    assert_eq!(p.i, p.b.len(), "trailing bytes after JSON document");
    v
}

#[test]
fn chrome_trace_json_schema() {
    let p = 4;
    let sink = TraceSink::new(TraceLevel::Collectives);
    run_spmd_traced(p, EDISON.lacc_model(), Some(&sink), |c| {
        traced_body(c);
    })
    .unwrap();
    let doc = parse_json(&sink.chrome_trace_json());
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(evs)) => evs,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    assert!(!events.is_empty());
    assert_eq!(doc.get("displayTimeUnit").unwrap().as_str(), "ms");
    let known = [
        "cond_hook",
        "uncond_hook",
        "shortcut",
        "starcheck",
        "mxv",
        "assign",
        "extract",
        "barrier",
        "bcast",
        "allgatherv",
        "allreduce",
        "reduce_scatter",
        "gatherv",
        "alltoallv(direct)",
        "alltoallv(pairwise)",
        "alltoallv(hypercube)",
        "alltoallv(sparse)",
    ];
    for ev in events {
        assert!(known.contains(&ev.get("name").expect("name").as_str()));
        assert!(["step", "op", "collective"].contains(&ev.get("cat").expect("cat").as_str()));
        assert_eq!(ev.get("ph").expect("ph").as_str(), "X");
        assert!(ev.get("ts").expect("ts").as_num() >= 0.0);
        assert!(ev.get("dur").expect("dur").as_num() >= 0.0);
        assert_eq!(ev.get("pid").expect("pid").as_num(), 0.0);
        let tid = ev.get("tid").expect("tid").as_num();
        assert!(tid >= 0.0 && tid < p as f64);
        let args = ev.get("args").expect("args");
        assert!(args.get("words").expect("words").as_num() >= 0.0);
        assert!(args.get("ops").expect("ops").as_num() >= 0.0);
        assert!(args.get("depth").expect("depth").as_num() >= 0.0);
    }
}

// ---------------------------------------------------------------------------
// Zero-cost guarantee: tracing must not perturb results or cost accounting.
// ---------------------------------------------------------------------------

fn arb_shapes(p: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(proptest::collection::vec(0usize..30, p), p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tracing_off_vs_collectives_is_bit_identical(
        shape in arb_shapes(4),
        algo_idx in 0usize..4,
    ) {
        let p = 4;
        let algo = [AllToAll::Direct, AllToAll::Pairwise, AllToAll::Hypercube, AllToAll::Sparse][algo_idx];
        let shape_ref = &shape;
        let run = |sink: Option<&Arc<TraceSink>>| {
            run_spmd_traced(p, EDISON.lacc_model(), sink, move |c| {
                let w = c.world();
                let step = c.span_open(SpanKind::UncondHook);
                let bufs: Vec<Vec<u64>> = shape_ref[c.rank()]
                    .iter()
                    .enumerate()
                    .map(|(d, &len)| (0..len).map(|k| (c.rank() * 997 + d * 31 + k) as u64).collect())
                    .collect();
                let exchanged = c.alltoallv(&w, bufs, algo);
                let total = c.allreduce(&w, exchanged.iter().map(Vec::len).sum::<usize>() as u64, |a, b| a + b);
                c.span_close(step);
                (exchanged, total, c.snapshot())
            })
            .unwrap()
        };
        let off = run(None);
        let sink = TraceSink::new(TraceLevel::Collectives);
        let on = run(Some(&sink));
        for rank in 0..p {
            // Results and CostSnapshot (clock, compute/comm seconds, all
            // counters) must be identical — `CostSnapshot: PartialEq`
            // compares the f64 fields exactly.
            prop_assert_eq!(&off[rank].0, &on[rank].0, "results differ on rank {}", rank);
            prop_assert_eq!(off[rank].1, on[rank].1);
            prop_assert_eq!(off[rank].2, on[rank].2, "cost snapshot differs on rank {}", rank);
        }
        // And the traced run actually recorded something.
        let traces = sink.rank_traces();
        prop_assert_eq!(traces.len(), p);
        prop_assert!(traces.iter().all(|rt| !rt.spans.is_empty()));
    }
}
