//! The α-β communication cost model and machine presets.
//!
//! The paper analyzes its primitives in the standard model where sending a
//! message of `m` words costs `α + β·m` and a rank performing `F` local
//! operations spends `F / rate` seconds (§V-A). We parameterise two
//! machines after Table II:
//!
//! * **Edison** — Cray XC30, Intel Ivy Bridge, 24 cores/node, fast cores.
//! * **Cori KNL** — Cray XC40, Intel KNL, 68 cores/node (we model 64
//!   usable, as the paper's 64-rank ParConnect runs do), slow cores.
//!
//! Node-level resources (injection bandwidth, cores) are fixed per machine;
//! a [`MachineModel`] is derived for a given *ranks-per-node* choice, which
//! is how the paper contrasts LACC (4 ranks/node, multithreaded) with
//! ParConnect (one rank per core, flat MPI): flat MPI divides node
//! bandwidth across more ranks and multiplies latency-bound terms by the
//! larger rank count.
//!
//! The per-core throughput constants are *effective sparse-graph-op rates*
//! (edges or vector elements processed per second), not peak flops: sparse
//! kernels are memory-bound, and the ~3-4x Ivy-Bridge-vs-KNL single-thread
//! gap on such workloads is what makes both codes faster on Edison per node
//! (§VI-C).

/// Fixed physical description of a machine (per node).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Machine {
    /// Human-readable name.
    pub name: &'static str,
    /// Message latency in seconds (per message, MPI pt2pt).
    pub alpha: f64,
    /// Node injection bandwidth in 8-byte words per second.
    pub node_bw_words: f64,
    /// Effective sparse-graph operations per second per core.
    pub core_rate: f64,
    /// Cores per node.
    pub cores_per_node: usize,
}

/// NERSC Edison: Cray XC30, dual-socket Ivy Bridge (Table II).
pub const EDISON: Machine = Machine {
    name: "Edison (Ivy Bridge)",
    alpha: 3.0e-6,
    node_bw_words: 1.25e9, // ~10 GB/s injection
    core_rate: 1.2e7,
    cores_per_node: 24,
};

/// NERSC Cori: Cray XC40, Intel KNL (Table II).
pub const CORI_KNL: Machine = Machine {
    name: "Cori (KNL)",
    alpha: 5.0e-6,
    node_bw_words: 1.0e9, // ~8 GB/s injection
    core_rate: 3.5e6,
    cores_per_node: 64,
};

impl Machine {
    /// Derives the per-rank cost model when each node hosts
    /// `ranks_per_node` MPI ranks (remaining cores are used as threads
    /// inside each rank, as the paper's hybrid runs do).
    pub fn model(&self, ranks_per_node: usize) -> MachineModel {
        assert!(ranks_per_node >= 1 && ranks_per_node <= self.cores_per_node);
        let threads = (self.cores_per_node / ranks_per_node).max(1);
        MachineModel {
            machine: *self,
            ranks_per_node,
            alpha: self.alpha,
            beta: ranks_per_node as f64 / self.node_bw_words,
            rate: threads as f64 * self.core_rate,
        }
    }

    /// The paper's LACC configuration: 4 ranks per node.
    pub fn lacc_model(&self) -> MachineModel {
        self.model(4)
    }

    /// The paper's ParConnect configuration: flat MPI, one rank per core.
    pub fn flat_model(&self) -> MachineModel {
        self.model(self.cores_per_node)
    }
}

/// Per-rank cost parameters derived from a [`Machine`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineModel {
    /// The underlying machine.
    pub machine: Machine,
    /// Ranks per node this model was derived for.
    pub ranks_per_node: usize,
    /// Seconds per message.
    pub alpha: f64,
    /// Seconds per 8-byte word (per rank share of node bandwidth).
    pub beta: f64,
    /// Local operations per second for this rank.
    pub rate: f64,
}

impl MachineModel {
    /// Number of nodes occupied by `p` ranks under this model.
    pub fn nodes_for_ranks(&self, p: usize) -> usize {
        p.div_ceil(self.ranks_per_node)
    }

    /// An idealized model with zero communication cost and unit compute
    /// rate; useful in unit tests where only message *counts* matter.
    pub fn free() -> MachineModel {
        MachineModel {
            machine: Machine {
                name: "free",
                alpha: 0.0,
                node_bw_words: f64::INFINITY,
                core_rate: 1.0,
                cores_per_node: 1,
            },
            ranks_per_node: 1,
            alpha: 0.0,
            beta: 0.0,
            rate: 1.0,
        }
    }
}

/// Per-rank accounting: the simulated clock plus local breakdowns.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostSnapshot {
    /// Simulated seconds elapsed on this rank (synchronized at receives).
    pub clock_s: f64,
    /// Seconds attributed to local computation.
    pub compute_s: f64,
    /// Seconds attributed to communication (α + β terms).
    pub comm_s: f64,
    /// Messages this rank sent.
    pub messages_sent: u64,
    /// 8-byte words this rank sent.
    pub words_sent: u64,
    /// 8-byte words this rank received.
    pub words_received: u64,
    /// Exact payload bytes this rank sent. Words round each payload up to
    /// 8-byte units for the β charge; bytes record the true element sizes,
    /// so narrowing an index word from `u64` to `u32` shows up here even
    /// when a tiny payload's word count is unchanged by rounding.
    pub bytes_sent: u64,
    /// Exact payload bytes this rank received.
    pub bytes_received: u64,
    /// 8-byte words this rank *avoided* sending through sender-side
    /// compaction (request dedup, monoid pre-combining, id compression).
    /// Observational only — never contributes to the clock.
    pub words_saved: u64,
    /// 8-byte words eliminated *in flight* by combining collectives:
    /// entries from different origins that merged at a hypercube hop on
    /// this rank before being forwarded. Observational only — the clock
    /// already reflects the smaller forwarded payloads.
    pub combined_words: u64,
    /// Exact payload bytes this rank avoided sending because a dynamic
    /// narrowing tier (raw-`u16` or dictionary codes; see
    /// [`crate::wire::NarrowTier`]) encoded a label stream below its
    /// legacy width. `bytes_sent` already reflects the narrowed streams;
    /// this counter records the delta against what the same exchange
    /// would have cost with `narrow_labels` off. Zero when narrowing is
    /// disabled, monotone-nonnegative when on (narrow encoders never
    /// pick a candidate larger than the legacy stream).
    pub narrow_saved_bytes: u64,
    /// Full LACC recomputes noted on this rank (the serving layer's epoch
    /// rebuilds; see [`crate::trace::RerunReason`]). The rerun entry point
    /// notes each rebuild on rank 0 only, so summing snapshots over ranks
    /// — and over multiple runs collected in one sink — counts each
    /// p-rank rebuild exactly once. Observational only.
    pub reruns: u64,
    /// Seconds of exchange time hidden behind overlapped local compute by
    /// non-blocking collective handles (see [`crate::CommHandle`]). Unlike
    /// the other auxiliary counters this one is *not* purely
    /// observational: every second accumulated here was also subtracted
    /// from [`CostSnapshot::clock_s`] when the overlap credit was applied
    /// at completion.
    pub overlap_hidden_s: f64,
}

impl CostSnapshot {
    /// Componentwise difference `self - earlier` (for phase timing).
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            clock_s: self.clock_s - earlier.clock_s,
            compute_s: self.compute_s - earlier.compute_s,
            comm_s: self.comm_s - earlier.comm_s,
            messages_sent: self.messages_sent - earlier.messages_sent,
            words_sent: self.words_sent - earlier.words_sent,
            words_received: self.words_received - earlier.words_received,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
            words_saved: self.words_saved - earlier.words_saved,
            combined_words: self.combined_words - earlier.combined_words,
            narrow_saved_bytes: self.narrow_saved_bytes - earlier.narrow_saved_bytes,
            reruns: self.reruns - earlier.reruns,
            overlap_hidden_s: self.overlap_hidden_s - earlier.overlap_hidden_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lacc_vs_flat_tradeoff() {
        let lacc = EDISON.lacc_model();
        let flat = EDISON.flat_model();
        // Flat MPI: more ranks per node → less bandwidth per rank and a
        // slower (single-core) rank.
        assert!(flat.beta > lacc.beta);
        assert!(flat.rate < lacc.rate);
        // Node-level compute is conserved.
        let node_rate_lacc = lacc.rate * lacc.ranks_per_node as f64;
        let node_rate_flat = flat.rate * flat.ranks_per_node as f64;
        assert!((node_rate_lacc - node_rate_flat).abs() / node_rate_flat < 1e-9);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // pins the machine tables
    fn edison_faster_core_than_knl() {
        assert!(EDISON.core_rate > 3.0 * CORI_KNL.core_rate);
    }

    #[test]
    fn nodes_for_ranks_rounds_up() {
        let m = EDISON.lacc_model();
        assert_eq!(m.nodes_for_ranks(4), 1);
        assert_eq!(m.nodes_for_ranks(5), 2);
        assert_eq!(m.nodes_for_ranks(1024), 256);
    }

    #[test]
    fn snapshot_difference() {
        let a = CostSnapshot {
            clock_s: 1.0,
            compute_s: 0.5,
            comm_s: 0.5,
            messages_sent: 10,
            words_sent: 100,
            words_received: 50,
            bytes_sent: 800,
            bytes_received: 400,
            words_saved: 0,
            combined_words: 1,
            narrow_saved_bytes: 10,
            reruns: 1,
            overlap_hidden_s: 0.25,
        };
        let b = CostSnapshot {
            clock_s: 3.0,
            compute_s: 1.0,
            comm_s: 2.0,
            messages_sent: 30,
            words_sent: 400,
            words_received: 250,
            bytes_sent: 3000,
            bytes_received: 1800,
            words_saved: 7,
            combined_words: 4,
            narrow_saved_bytes: 25,
            reruns: 3,
            overlap_hidden_s: 1.0,
        };
        let d = b.since(&a);
        assert_eq!(d.messages_sent, 20);
        assert_eq!(d.bytes_sent, 2200);
        assert_eq!(d.bytes_received, 1400);
        assert_eq!(d.words_saved, 7);
        assert_eq!(d.combined_words, 3);
        assert_eq!(d.narrow_saved_bytes, 15);
        assert_eq!(d.reruns, 2);
        assert!((d.clock_s - 2.0).abs() < 1e-12);
        assert!((d.overlap_hidden_s - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn too_many_ranks_per_node() {
        EDISON.model(25);
    }
}
