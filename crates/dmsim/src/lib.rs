//! `dmsim` — a simulated distributed-memory message-passing runtime.
//!
//! The LACC paper runs on MPI over a Cray XC40. This crate substitutes a
//! faithful *simulation*: `p` ranks execute a real SPMD program on `p` OS
//! threads, exchanging typed messages through shared-memory channels, with
//! MPI-style collectives (barrier, broadcast, allgatherv, reduce-scatter,
//! allreduce, and three all-to-allv algorithms) built on point-to-point
//! sends exactly as MPI implementations build them.
//!
//! Two clocks run at once:
//!
//! * **Wall time** — the program really executes in parallel, so races,
//!   deadlocks and algorithmic bugs are real.
//! * **Modeled time** — every local operation and every collective is
//!   charged to an α-β cost model ([`cost::MachineModel`]) parameterised by
//!   the paper's Table II machines (Edison, Cori KNL). Ranks carry a
//!   simulated clock that is synchronized through message exchanges (a
//!   receive advances the receiver's clock to at least the sender's), so
//!   the maximum clock at the end is a BSP-style makespan. Scaling figures
//!   report modeled time, because a single host cannot exhibit
//!   network-bound scaling in wall time.
//!
//! A third layer, [`trace`], records what the simulation did: typed spans
//! (steps, distributed ops, collectives) on the modeled clock, exported as
//! Chrome-trace JSON or an aggregated per-rank report. See
//! [`run_spmd_traced`].
//!
//! Execution is bulk-synchronous by default, but operations can be posted
//! as *non-blocking* through [`Comm::post`] (returning a [`CommHandle`])
//! or credited against a preceding compute window ([`OverlapWindow`]):
//! the operation still runs eagerly with identical charges, and the
//! modeled clock is refunded at completion for the exchange time that
//! genuinely overlapped local compute
//! ([`CostSnapshot::overlap_hidden_s`]).
//!
//! # Example
//! ```
//! use dmsim::run_spmd;
//!
//! let results = run_spmd(4, |comm| {
//!     let world = comm.world();
//!     // Everyone contributes its rank; everyone learns all ranks.
//!     let all = comm.allgatherv(&world, vec![comm.rank()]);
//!     all.iter().map(|v| v[0]).sum::<usize>()
//! })
//! .expect("no rank panicked");
//! assert_eq!(results, vec![6, 6, 6, 6]);
//! ```

#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod cost;
pub mod topology;
pub mod trace;
pub mod wire;

pub use collectives::{AllToAll, CombineRoute, FramedBlock};
pub use comm::{
    bytes_of, run_spmd, run_spmd_traced, run_spmd_with_model, words_of, BufferPool, Comm,
    CommHandle, DmsimError, Group, OverlapWindow, PooledBuf,
};
pub use cost::{CostSnapshot, Machine, MachineModel, CORI_KNL, EDISON};
pub use topology::Grid2d;
pub use trace::{
    EngineKind, RankTrace, RerunReason, Span, SpanKind, SpanRecord, TraceLevel, TraceReport,
    TraceSink,
};
pub use wire::{NarrowDict, NarrowSpec, NarrowTier, WireWord};
