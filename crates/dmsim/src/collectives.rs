//! MPI-style collectives over rank [`Group`]s.
//!
//! Every collective is built from point-to-point sends, so the α-β charges
//! accumulate automatically from the message pattern actually executed:
//!
//! * `barrier` — dissemination, `⌈log₂ q⌉` rounds.
//! * `bcast` — binomial tree.
//! * `allgatherv` — ring (bandwidth-optimal; the paper found a simple
//!   allgather fastest for its SpMV/SpMSpV gather phase).
//! * `reduce_scatter` — direct exchange + local fold.
//! * `allreduce` — allgather + deterministic fold (group order).
//! * `alltoallv` — three algorithms, selectable per call (§V-B):
//!   [`AllToAll::Pairwise`] is MPI's pairwise-exchange with `α(q−1)`
//!   latency; [`AllToAll::Hypercube`] is Sundar et al.'s `α·log q`
//!   store-and-forward algorithm; [`AllToAll::Sparse`] exchanges counts
//!   first and then contacts only nonempty partners.
//!
//! Each collective opens a [`SpanKind`] trace span (recorded only at
//! [`crate::trace::TraceLevel::Collectives`]); `alltoallv` spans are
//! tagged with the algorithm actually executed, so a hypercube call that
//! falls back to pairwise on a non-power-of-two group traces as pairwise,
//! and a sparse exchange shows its internal count exchange as a nested
//! span.

#![allow(clippy::needless_range_loop)] // index loops double as rank ids here

use crate::comm::{bytes_of, words_of, Comm, CommHandle, Group, PooledBuf};
use crate::trace::SpanKind;
use crate::wire::{self, NarrowSpec, WireWord};

/// Algorithm choice for [`Comm::alltoallv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllToAll {
    /// Every pair exchanges directly in one shot.
    Direct,
    /// MPI's pairwise-exchange: `q − 1` rounds, `α(q−1)` latency — the
    /// algorithm whose poor scaling beyond 1024 ranks motivated the
    /// paper's replacement (§V-B).
    Pairwise,
    /// Hypercube store-and-forward (Sundar et al.): `α·log₂ q` latency at
    /// the price of forwarding bandwidth. Requires `q` to be a power of
    /// two; falls back to [`AllToAll::Pairwise`] otherwise.
    Hypercube,
    /// Sparse all-to-all: a cheap count exchange, then only nonempty pairs
    /// communicate. Ideal when most buckets are empty (late LACC
    /// iterations, Figure 3's "processes 7–15 have no data").
    Sparse,
}

/// A pre-encoded byte bucket for the framed collectives
/// ([`Comm::allgatherv_framed`], [`Comm::alltoallv_framed`]).
///
/// Framed collectives execute the *same message pattern* as their typed
/// counterparts but ship caller-encoded byte streams, with β charged at
/// `legacy_words` — the word count the matching typed exchange pays with
/// narrowing off. That split keeps `words_sent` and the modeled clock
/// bit-identical whether a narrowing tier is active or not, while
/// [`crate::cost::CostSnapshot::bytes_sent`] honestly reflects the
/// narrow stream (the delta is what
/// [`crate::cost::CostSnapshot::narrow_saved_bytes`] accounts).
#[derive(Clone, Debug, Default)]
pub struct FramedBlock {
    /// Words charged to the β clock when this block is sent: the legacy
    /// charge of the typed exchange this block replaces.
    pub legacy_words: u64,
    /// Logical element count of the block. Drives the sparse all-to-all
    /// count phase and empty-bucket gating exactly like the element
    /// count of the legacy typed exchange, so the α pattern matches.
    pub items: u64,
    /// The encoded stream actually shipped (counted in `bytes_sent`).
    pub bytes: Vec<u8>,
}

impl Comm {
    /// Dissemination barrier over the group.
    pub fn barrier(&mut self, g: &Group) {
        let q = g.size();
        if q <= 1 {
            return;
        }
        let span = self.span_open(SpanKind::Barrier);
        let me = g.my_index();
        let mut k = 1usize;
        while k < q {
            let to = g.member((me + k) % q);
            let from = g.member((me + q - k % q) % q);
            self.send(to, ());
            self.recv::<()>(from);
            k <<= 1;
        }
        self.span_close(span);
    }

    /// Binomial-tree broadcast of a vector from group index `root_idx`.
    ///
    /// Non-roots pass `None`; everyone returns the payload.
    pub fn bcast_vec<T: Clone + Send + 'static>(
        &mut self,
        g: &Group,
        root_idx: usize,
        data: Option<Vec<T>>,
    ) -> Vec<T> {
        let span = self.span_open(SpanKind::Bcast);
        let q = g.size();
        let me = g.my_index();
        // Virtual index with the root shifted to 0.
        let vidx = (me + q - root_idx) % q;
        let mut payload = if vidx == 0 {
            Some(data.expect("root must supply the broadcast payload"))
        } else {
            debug_assert!(data.is_none(), "non-root supplied broadcast data");
            None
        };
        // Binomial tree: a node's parent is itself with the lowest set bit
        // cleared; its children are itself plus 2^j for j below the lowest
        // set bit (all powers of two for the root).
        if vidx != 0 {
            let parent = vidx - (1 << vidx.trailing_zeros());
            let src = g.member((parent + root_idx) % q);
            payload = Some(self.recv::<Vec<T>>(src));
        }
        let data = payload.expect("broadcast payload must exist by now");
        let mut children = Vec::new();
        if vidx == 0 {
            let mut k = 1usize;
            while k < q {
                children.push(k);
                k <<= 1;
            }
        } else {
            let tz = vidx.trailing_zeros() as usize;
            for j in 0..tz {
                let c = vidx + (1 << j);
                if c < q {
                    children.push(c);
                }
            }
        }
        // Send to larger children first (deeper subtrees) as binomial
        // broadcast does. Copies go out through pooled buffers so repeated
        // broadcasts reuse capacity instead of allocating per child.
        for &c in children.iter().rev() {
            let dest = g.member((c + root_idx) % q);
            let mut copy: PooledBuf<T> = self.pooled_buf();
            copy.extend_from_slice(&data);
            self.send_counted_bytes(
                dest,
                copy.detach(),
                words_of::<T>(data.len()),
                bytes_of::<T>(data.len()),
            );
        }
        self.span_close(span);
        data
    }

    /// Broadcast of a single cloneable value.
    pub fn bcast<T: Clone + Send + 'static>(
        &mut self,
        g: &Group,
        root_idx: usize,
        data: Option<T>,
    ) -> T {
        let v = self.bcast_vec(g, root_idx, data.map(|d| vec![d]));
        v.into_iter().next().expect("bcast payload")
    }

    /// Ring allgather: every member contributes a vector; everyone returns
    /// all contributions indexed by group index.
    pub fn allgatherv<T: Clone + Send + 'static>(
        &mut self,
        g: &Group,
        mine: Vec<T>,
    ) -> Vec<Vec<T>> {
        let span = self.span_open(SpanKind::Allgatherv);
        let q = g.size();
        let me = g.my_index();
        let mut result: Vec<Option<Vec<T>>> = (0..q).map(|_| None).collect();
        let right = g.member((me + 1) % q);
        let left = g.member((me + q - 1) % q);
        // The ring forwards a copy of each incoming block; draw the copies
        // from the buffer pool so steady-state supersteps allocate nothing.
        // Each pooled carry is detached when sent; the last (unsent) one
        // returns to the pool when it drops at the end of the loop.
        let mut carry: PooledBuf<T> = self.pooled_buf();
        carry.extend_from_slice(&mine);
        result[me] = Some(mine);
        for step in 1..q {
            let w = words_of::<T>(carry.len());
            let b = bytes_of::<T>(carry.len());
            self.send_counted_bytes(right, carry.detach(), w, b);
            let incoming: Vec<T> = self.recv(left);
            let origin = (me + q - step) % q;
            carry = self.pooled_buf();
            if step + 1 < q {
                carry.extend_from_slice(&incoming);
            }
            result[origin] = Some(incoming);
        }
        drop(carry);
        self.span_close(span);
        result
            .into_iter()
            .map(|r| r.expect("ring delivered all blocks"))
            .collect()
    }

    /// Allreduce: recursive doubling (`(α + βw)·log₂ q`) on power-of-two
    /// groups, gather-to-root + broadcast otherwise. Deterministic: every
    /// pairwise combine applies `op(lower-index value, higher-index
    /// value)`. The payload size is taken from `size_of::<T>()`; use
    /// [`Comm::allreduce_counted`] for heap payloads like `Vec`.
    pub fn allreduce<T, F>(&mut self, g: &Group, val: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let words = (std::mem::size_of::<T>() as u64).div_ceil(8);
        self.allreduce_counted(g, val, words, op)
    }

    /// [`Comm::allreduce`] with an explicit per-message word count.
    pub fn allreduce_counted<T, F>(&mut self, g: &Group, val: T, words: u64, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        if g.size() == 1 {
            return val;
        }
        let span = self.span_open(SpanKind::Allreduce);
        let out = self.allreduce_counted_inner(g, val, words, op);
        self.span_close(span);
        out
    }

    fn allreduce_counted_inner<T, F>(&mut self, g: &Group, val: T, words: u64, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let q = g.size();
        let me = g.my_index();
        if q.is_power_of_two() {
            let mut acc = val;
            let mut k = 1usize;
            while k < q {
                let partner = me ^ k;
                self.send_counted(g.member(partner), acc.clone(), words);
                let theirs: T = self.recv(g.member(partner));
                acc = if partner < me {
                    op(theirs, acc)
                } else {
                    op(acc, theirs)
                };
                k <<= 1;
            }
            return acc;
        }
        // General groups (tests, odd grids): fold at the root in group
        // order, then broadcast.
        let gathered = self.gatherv(g, 0, vec![val]);
        let result = match gathered {
            Some(all) => {
                let mut it = all
                    .into_iter()
                    .map(|mut v| v.pop().expect("one value per rank"));
                let first = it.next().expect("nonempty group");
                Some(it.fold(first, op))
            }
            None => None,
        };
        self.bcast(g, 0, result)
    }

    /// Reduce-scatter: member `i` passes `parts[k]` destined for member
    /// `k`; member `k` returns the elementwise fold (in group order) of
    /// everyone's `parts[k]`, which must all have equal length.
    pub fn reduce_scatter<T, F>(&mut self, g: &Group, mut parts: Vec<Vec<T>>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&mut T, T),
    {
        let span = self.span_open(SpanKind::ReduceScatter);
        let q = g.size();
        let me = g.my_index();
        assert_eq!(parts.len(), q, "one part per group member");
        // Send all foreign parts first (channels are unbounded, so
        // send-then-receive cannot deadlock).
        for k in 0..q {
            if k != me {
                let buf = std::mem::take(&mut parts[k]);
                let w = words_of::<T>(buf.len());
                let b = bytes_of::<T>(buf.len());
                self.send_counted_bytes(g.member(k), buf, w, b);
            }
        }
        let mut acc: Option<Vec<T>> = None;
        for src_idx in 0..q {
            let raw = if src_idx == me {
                std::mem::take(&mut parts[me])
            } else {
                self.recv::<Vec<T>>(g.member(src_idx))
            };
            match &mut acc {
                None => acc = Some(raw),
                Some(acc) => {
                    // Adopt the contribution so its allocation recycles
                    // into the pool when it drops after the fold.
                    let contribution = self.adopt_buf(raw);
                    assert_eq!(
                        acc.len(),
                        contribution.len(),
                        "reduce_scatter length mismatch"
                    );
                    self.charge_compute(contribution.len() as u64);
                    for (a, c) in acc.iter_mut().zip(contribution.iter()) {
                        op(a, c.clone());
                    }
                }
            }
        }
        let out = acc.expect("nonempty group");
        self.span_close(span);
        out
    }

    /// All-to-all of variable-size buckets: `bufs[k]` goes to member `k`;
    /// returns `recv[k]` = the bucket member `k` sent here.
    pub fn alltoallv<T: Send + 'static>(
        &mut self,
        g: &Group,
        bufs: Vec<Vec<T>>,
        algo: AllToAll,
    ) -> Vec<Vec<T>> {
        let q = g.size();
        assert_eq!(bufs.len(), q, "one bucket per group member");
        if q == 1 {
            return bufs;
        }
        // Trace the algorithm actually executed, not the one requested.
        let effective = match algo {
            AllToAll::Hypercube if !q.is_power_of_two() => AllToAll::Pairwise,
            other => other,
        };
        let span = self.span_open(SpanKind::Alltoallv(effective));
        let out = match effective {
            AllToAll::Direct => self.alltoallv_direct(g, bufs),
            AllToAll::Pairwise => self.alltoallv_pairwise(g, bufs),
            AllToAll::Hypercube => self.alltoallv_hypercube(g, bufs),
            AllToAll::Sparse => {
                // The count-phase algorithm is chosen here, not inside the
                // sparse body, so the nested count-exchange span tags what
                // actually runs (hypercube, or pairwise on non-power-of-two
                // groups) instead of hiding the fallback.
                let count_algo = if q.is_power_of_two() {
                    AllToAll::Hypercube
                } else {
                    AllToAll::Pairwise
                };
                self.alltoallv_sparse(g, bufs, count_algo)
            }
        };
        self.span_close(span);
        out
    }

    fn alltoallv_direct<T: Send + 'static>(
        &mut self,
        g: &Group,
        mut bufs: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let q = g.size();
        let me = g.my_index();
        for k in 0..q {
            if k != me {
                let buf = std::mem::take(&mut bufs[k]);
                let w = words_of::<T>(buf.len());
                let b = bytes_of::<T>(buf.len());
                self.send_counted_bytes(g.member(k), buf, w, b);
            }
        }
        (0..q)
            .map(|k| {
                if k == me {
                    std::mem::take(&mut bufs[me])
                } else {
                    self.recv::<Vec<T>>(g.member(k))
                }
            })
            .collect()
    }

    fn alltoallv_pairwise<T: Send + 'static>(
        &mut self,
        g: &Group,
        mut bufs: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let q = g.size();
        let me = g.my_index();
        let mut result: Vec<Option<Vec<T>>> = (0..q).map(|_| None).collect();
        result[me] = Some(std::mem::take(&mut bufs[me]));
        for round in 1..q {
            let to = (me + round) % q;
            let from = (me + q - round) % q;
            let buf = std::mem::take(&mut bufs[to]);
            let w = words_of::<T>(buf.len());
            let b = bytes_of::<T>(buf.len());
            self.send_counted_bytes(g.member(to), buf, w, b);
            result[from] = Some(self.recv::<Vec<T>>(g.member(from)));
        }
        result
            .into_iter()
            .map(|r| r.expect("pairwise covered all"))
            .collect()
    }

    fn alltoallv_hypercube<T: Send + 'static>(
        &mut self,
        g: &Group,
        mut bufs: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let q = g.size();
        let me = g.my_index();
        debug_assert!(q.is_power_of_two());
        let mut result: Vec<Option<Vec<T>>> = (0..q).map(|_| None).collect();
        result[me] = Some(std::mem::take(&mut bufs[me]));
        // Pool of in-flight buckets: (origin, destination, items).
        let mut pool: Vec<(u32, u32, Vec<T>)> = bufs
            .into_iter()
            .enumerate()
            .filter(|(k, _)| *k != me)
            .map(|(k, items)| (me as u32, k as u32, items))
            .collect();
        let rounds = q.trailing_zeros();
        for bit_idx in 0..rounds {
            let bit = 1usize << bit_idx;
            let partner = me ^ bit;
            // Buckets whose destination differs from me in this bit travel
            // to the partner side of the hypercube now.
            let (send_pool, keep): (Vec<_>, Vec<_>) = pool
                .into_iter()
                .partition(|&(_, dest, _)| (dest as usize) & bit != me & bit);
            let w: u64 = send_pool
                .iter()
                .map(|(_, _, items)| 2 + words_of::<T>(items.len()))
                .sum();
            let b: u64 = send_pool
                .iter()
                .map(|(_, _, items)| 16 + bytes_of::<T>(items.len()))
                .sum();
            self.send_counted_bytes(g.member(partner), send_pool, w, b);
            pool = keep;
            let incoming: Vec<(u32, u32, Vec<T>)> = self.recv(g.member(partner));
            for (origin, dest, items) in incoming {
                if dest as usize == me {
                    debug_assert!(result[origin as usize].is_none());
                    result[origin as usize] = Some(items);
                } else {
                    pool.push((origin, dest, items));
                }
            }
        }
        debug_assert!(pool.is_empty(), "all buckets routed after log q rounds");
        result.into_iter().map(|r| r.unwrap_or_default()).collect()
    }

    fn alltoallv_sparse<T: Send + 'static>(
        &mut self,
        g: &Group,
        mut bufs: Vec<Vec<T>>,
        count_algo: AllToAll,
    ) -> Vec<Vec<T>> {
        let q = g.size();
        let me = g.my_index();
        // Phase 1: exchange per-destination counts so each member learns
        // who will contact it. The count matrix transpose is itself a tiny
        // all-to-all, run with the caller-chosen `count_algo`. Count
        // vectors come from the buffer pool — this phase runs every
        // superstep, so avoiding its `q` tiny allocations matters.
        let counts: Vec<Vec<u64>> = (0..q)
            .map(|k| {
                let mut c: PooledBuf<u64> = self.pooled_buf();
                c.push(bufs[k].len() as u64);
                c.detach()
            })
            .collect();
        let incoming_counts = self.alltoallv(g, counts, count_algo);
        // Phase 2: only nonempty pairs exchange.
        for k in 0..q {
            if k != me && !bufs[k].is_empty() {
                let buf = std::mem::take(&mut bufs[k]);
                let w = words_of::<T>(buf.len());
                let b = bytes_of::<T>(buf.len());
                self.send_counted_bytes(g.member(k), buf, w, b);
            }
        }
        let out = (0..q)
            .map(|k| {
                if k == me {
                    std::mem::take(&mut bufs[me])
                } else if incoming_counts[k].first().copied().unwrap_or(0) > 0 {
                    self.recv::<Vec<T>>(g.member(k))
                } else {
                    Vec::new()
                }
            })
            .collect();
        // Recycle the count vectors' allocations into the pool.
        for c in incoming_counts {
            drop(self.adopt_buf(c));
        }
        out
    }

    /// [`Comm::allgatherv`] over a pre-encoded byte block: the same ring,
    /// message for message, but each hop charges β at the block's
    /// [`FramedBlock::legacy_words`] while shipping (and byte-counting)
    /// its encoded stream. Returns every member's bytes by group index.
    pub fn allgatherv_framed(&mut self, g: &Group, mine: FramedBlock) -> Vec<Vec<u8>> {
        let span = self.span_open(SpanKind::Allgatherv);
        let q = g.size();
        let me = g.my_index();
        let mut result: Vec<Option<Vec<u8>>> = (0..q).map(|_| None).collect();
        let right = g.member((me + 1) % q);
        let left = g.member((me + q - 1) % q);
        // The carry rides the ring as (legacy_words, bytes) so every
        // forwarder knows the legacy charge without re-deriving it.
        let mut carry: (u64, Vec<u8>) = (mine.legacy_words, mine.bytes.clone());
        result[me] = Some(mine.bytes);
        for step in 1..q {
            let w = carry.0;
            let b = carry.1.len() as u64;
            self.send_counted_bytes(right, carry, w, b);
            let (in_words, in_bytes): (u64, Vec<u8>) = self.recv(left);
            let origin = (me + q - step) % q;
            carry = if step + 1 < q {
                (in_words, in_bytes.clone())
            } else {
                (0, Vec::new())
            };
            result[origin] = Some(in_bytes);
        }
        self.span_close(span);
        result
            .into_iter()
            .map(|r| r.expect("ring delivered all blocks"))
            .collect()
    }

    /// [`Comm::alltoallv`] over pre-encoded byte buckets: the same
    /// algorithm selection (including the hypercube → pairwise fallback
    /// on non-power-of-two groups), the same per-algorithm message
    /// pattern and header charges, but each bucket ships its encoded
    /// stream while charging β at [`FramedBlock::legacy_words`]. The
    /// sparse variant's count phase and empty-bucket gates run on
    /// [`FramedBlock::items`], matching the legacy element-count gates.
    pub fn alltoallv_framed(
        &mut self,
        g: &Group,
        bufs: Vec<FramedBlock>,
        algo: AllToAll,
    ) -> Vec<Vec<u8>> {
        let q = g.size();
        assert_eq!(bufs.len(), q, "one framed bucket per group member");
        if q == 1 {
            return bufs.into_iter().map(|b| b.bytes).collect();
        }
        let effective = match algo {
            AllToAll::Hypercube if !q.is_power_of_two() => AllToAll::Pairwise,
            other => other,
        };
        let span = self.span_open(SpanKind::Alltoallv(effective));
        let out = match effective {
            AllToAll::Direct => self.alltoallv_framed_direct(g, bufs),
            AllToAll::Pairwise => self.alltoallv_framed_pairwise(g, bufs),
            AllToAll::Hypercube => self.alltoallv_framed_hypercube(g, bufs),
            AllToAll::Sparse => {
                let count_algo = if q.is_power_of_two() {
                    AllToAll::Hypercube
                } else {
                    AllToAll::Pairwise
                };
                self.alltoallv_framed_sparse(g, bufs, count_algo)
            }
        };
        self.span_close(span);
        out
    }

    fn alltoallv_framed_direct(&mut self, g: &Group, mut bufs: Vec<FramedBlock>) -> Vec<Vec<u8>> {
        let q = g.size();
        let me = g.my_index();
        for k in 0..q {
            if k != me {
                let blk = std::mem::take(&mut bufs[k]);
                let (w, b) = (blk.legacy_words, blk.bytes.len() as u64);
                self.send_counted_bytes(g.member(k), blk.bytes, w, b);
            }
        }
        (0..q)
            .map(|k| {
                if k == me {
                    std::mem::take(&mut bufs[me]).bytes
                } else {
                    self.recv::<Vec<u8>>(g.member(k))
                }
            })
            .collect()
    }

    fn alltoallv_framed_pairwise(&mut self, g: &Group, mut bufs: Vec<FramedBlock>) -> Vec<Vec<u8>> {
        let q = g.size();
        let me = g.my_index();
        let mut result: Vec<Option<Vec<u8>>> = (0..q).map(|_| None).collect();
        result[me] = Some(std::mem::take(&mut bufs[me]).bytes);
        for round in 1..q {
            let to = (me + round) % q;
            let from = (me + q - round) % q;
            let blk = std::mem::take(&mut bufs[to]);
            let (w, b) = (blk.legacy_words, blk.bytes.len() as u64);
            self.send_counted_bytes(g.member(to), blk.bytes, w, b);
            result[from] = Some(self.recv::<Vec<u8>>(g.member(from)));
        }
        result
            .into_iter()
            .map(|r| r.expect("pairwise covered all"))
            .collect()
    }

    fn alltoallv_framed_hypercube(
        &mut self,
        g: &Group,
        mut bufs: Vec<FramedBlock>,
    ) -> Vec<Vec<u8>> {
        let q = g.size();
        let me = g.my_index();
        debug_assert!(q.is_power_of_two());
        let mut result: Vec<Option<Vec<u8>>> = (0..q).map(|_| None).collect();
        result[me] = Some(std::mem::take(&mut bufs[me]).bytes);
        // In-flight buckets: (origin, destination, legacy_words, bytes).
        let mut pool: Vec<(u32, u32, u64, Vec<u8>)> = bufs
            .into_iter()
            .enumerate()
            .filter(|(k, _)| *k != me)
            .map(|(k, blk)| (me as u32, k as u32, blk.legacy_words, blk.bytes))
            .collect();
        let rounds = q.trailing_zeros();
        for bit_idx in 0..rounds {
            let bit = 1usize << bit_idx;
            let partner = me ^ bit;
            let (send_pool, keep): (Vec<_>, Vec<_>) = pool
                .into_iter()
                .partition(|&(_, dest, _, _)| (dest as usize) & bit != me & bit);
            // Same per-bucket routing-header charges as the typed
            // hypercube: 2 words / 16 bytes per forwarded bucket.
            let w: u64 = send_pool.iter().map(|&(_, _, lw, _)| 2 + lw).sum();
            let b: u64 = send_pool
                .iter()
                .map(|(_, _, _, bytes)| 16 + bytes.len() as u64)
                .sum();
            self.send_counted_bytes(g.member(partner), send_pool, w, b);
            pool = keep;
            let incoming: Vec<(u32, u32, u64, Vec<u8>)> = self.recv(g.member(partner));
            for (origin, dest, lw, bytes) in incoming {
                if dest as usize == me {
                    debug_assert!(result[origin as usize].is_none());
                    result[origin as usize] = Some(bytes);
                } else {
                    pool.push((origin, dest, lw, bytes));
                }
            }
        }
        debug_assert!(pool.is_empty(), "all buckets routed after log q rounds");
        result.into_iter().map(|r| r.unwrap_or_default()).collect()
    }

    fn alltoallv_framed_sparse(
        &mut self,
        g: &Group,
        mut bufs: Vec<FramedBlock>,
        count_algo: AllToAll,
    ) -> Vec<Vec<u8>> {
        let q = g.size();
        let me = g.my_index();
        // Count phase on logical items, so the gating (and hence the α
        // pattern) matches the legacy sparse exchange element-for-element.
        let counts: Vec<Vec<u64>> = (0..q)
            .map(|k| {
                let mut c: PooledBuf<u64> = self.pooled_buf();
                c.push(bufs[k].items);
                c.detach()
            })
            .collect();
        let incoming_counts = self.alltoallv(g, counts, count_algo);
        for k in 0..q {
            if k != me && bufs[k].items > 0 {
                let blk = std::mem::take(&mut bufs[k]);
                let (w, b) = (blk.legacy_words, blk.bytes.len() as u64);
                self.send_counted_bytes(g.member(k), blk.bytes, w, b);
            }
        }
        let out = (0..q)
            .map(|k| {
                if k == me {
                    std::mem::take(&mut bufs[me]).bytes
                } else if incoming_counts[k].first().copied().unwrap_or(0) > 0 {
                    self.recv::<Vec<u8>>(g.member(k))
                } else {
                    Vec::new()
                }
            })
            .collect();
        for c in incoming_counts {
            drop(self.adopt_buf(c));
        }
        out
    }

    /// Gather to group index `root_idx`: root returns all contributions
    /// (indexed by group index), others return `None`.
    pub fn gatherv<T: Send + 'static>(
        &mut self,
        g: &Group,
        root_idx: usize,
        mine: Vec<T>,
    ) -> Option<Vec<Vec<T>>> {
        let span = self.span_open(SpanKind::Gatherv);
        let out = self.gatherv_inner(g, root_idx, mine);
        self.span_close(span);
        out
    }

    fn gatherv_inner<T: Send + 'static>(
        &mut self,
        g: &Group,
        root_idx: usize,
        mine: Vec<T>,
    ) -> Option<Vec<Vec<T>>> {
        let q = g.size();
        let me = g.my_index();
        if me != root_idx {
            let w = words_of::<T>(mine.len());
            let b = bytes_of::<T>(mine.len());
            self.send_counted_bytes(g.member(root_idx), mine, w, b);
            return None;
        }
        let mut mine = Some(mine);
        let mut out: Vec<Vec<T>> = Vec::with_capacity(q);
        for k in 0..q {
            if k == me {
                out.push(mine.take().expect("own contribution consumed once"));
            } else {
                out.push(self.recv::<Vec<T>>(g.member(k)));
            }
        }
        Some(out)
    }
}

// ---------------------------------------------------------------------
// Combining collectives: reduce-by-key in flight.
//
// The hypercube all-to-all store-and-forwards buckets through log₂ q
// hops, which makes every hop a natural merge point: entries from
// different origins heading to the same (destination, key) meet on some
// intermediate rank — origins differing first in bit j meet after round
// j — and an associative merge there collapses them to one wire entry
// for the rest of the route. Sender-side compaction cannot see these
// duplicates; this is where cross-sender redundancy dies.

/// Origin flag: the entry was already held here before the round.
const FROM_SELF: u8 = 1;
/// Origin flag: the entry arrived from the round's hypercube partner.
const FROM_PARTNER: u8 = 2;

/// One forward round of a recorded [`Comm::combining_requests`] route.
struct CombineHop<K> {
    /// In-flight entries held here after the round, sorted by
    /// (destination, key) and flagged with where each copy came from.
    /// Both flags set marks a merge fork: the reply duplicates there.
    table: Vec<(u32, K, u8)>,
    /// Sorted (destination, key) entries forwarded to the partner this
    /// round; the partner's reply stream aligns with this list.
    sent: Vec<(u32, K)>,
    /// Keys that reached their destination (this rank) this round. The
    /// same key can arrive in several rounds via unmerged branches; each
    /// arrival gets its own reply.
    delivered: Vec<K>,
}

/// Recorded forward route of a [`Comm::combining_requests`] exchange.
///
/// The forward pass merges requests from different origins, so the
/// destination no longer knows who asked; replies instead retrace the
/// route in reverse ([`Comm::combining_replies`]), duplicating at every
/// merge fork, until each origin holds the answers to exactly its own
/// requests. The route can be replayed for any number of reply phases —
/// that is what fuses starcheck's two extracts into one exchange.
///
/// Generic over the key type `K` ([`WireWord`] + `Ord`): the key streams
/// ride the wire as value-based delta varints either way, but the raw
/// pairwise fallback and charge accounting use `K`'s true width, so a
/// `u32`-indexed run no longer pays `u64` key freight.
pub struct CombineRoute<K = u64> {
    q: usize,
    /// Power-of-two groups route through the hypercube; otherwise the
    /// exchange fell back to pairwise and `incoming` drives replies.
    hypercube: bool,
    hops: Vec<CombineHop<K>>,
    /// Keys this rank requested of itself (never wired).
    self_keys: Vec<K>,
    /// Per-destination sorted unique keys this rank requested.
    my_keys: Vec<Vec<K>>,
    /// Sorted unique keys delivered to this rank (it owns the answers).
    delivered_keys: Vec<K>,
    /// Pairwise fallback only: per-source sorted unique keys received.
    incoming: Vec<Vec<K>>,
}

impl<K> CombineRoute<K> {
    /// Sorted unique keys delivered to this rank; `values[i]` passed to
    /// [`Comm::combining_replies`] must answer `delivered_keys()[i]`.
    pub fn delivered_keys(&self) -> &[K] {
        &self.delivered_keys
    }

    /// Per-destination sorted unique keys this rank requested; replies
    /// come back aligned with these lists.
    pub fn my_keys(&self) -> &[Vec<K>] {
        &self.my_keys
    }
}

/// Sorts a `(key, payload)` bucket by key (stable, so earlier entries
/// fold first) and merges adjacent equal keys. Returns entries removed.
fn merge_bucket<K, P, M>(b: &mut Vec<(K, P)>, merge: &mut M) -> usize
where
    K: Ord + Copy,
    M: FnMut(&mut P, P),
{
    if b.len() <= 1 {
        return 0;
    }
    b.sort_by_key(|&(k, _)| k);
    let before = b.len();
    let mut out: Vec<(K, P)> = Vec::with_capacity(b.len());
    for (k, p) in b.drain(..) {
        match out.last_mut() {
            Some(last) if last.0 == k => merge(&mut last.1, p),
            _ => out.push((k, p)),
        }
    }
    *b = out;
    before - b.len()
}

/// [`merge_bucket`] over an in-flight pool keyed by (destination, key).
fn merge_pool<K, P, M>(pool: &mut Vec<(u32, K, P)>, merge: &mut M) -> usize
where
    K: Ord + Copy,
    M: FnMut(&mut P, P),
{
    if pool.len() <= 1 {
        return 0;
    }
    pool.sort_by_key(|&(d, k, _)| (d, k));
    let before = pool.len();
    let mut out: Vec<(u32, K, P)> = Vec::with_capacity(pool.len());
    for (d, k, p) in pool.drain(..) {
        match out.last_mut() {
            Some(last) if last.0 == d && last.1 == k => merge(&mut last.2, p),
            _ => out.push((d, k, p)),
        }
    }
    *pool = out;
    before - pool.len()
}

impl Comm {
    /// All-to-all with in-flight reduce-by-key: `bufs[k]` goes to member
    /// `k`, and at every hypercube hop entries sharing (destination,
    /// `key_of`) merge through `merge` before being forwarded — q senders
    /// shipping the same key to the same destination pay one wire entry
    /// past their meeting hop instead of q.
    ///
    /// Returns the entries destined to this rank, fully merged, sorted by
    /// key. With a commutative, associative `merge` the result is
    /// bit-identical to exchanging everything and folding at the
    /// destination; when no two entries share a key, no merge fires and
    /// the result is exactly the plain all-to-all payload multiset
    /// (sorted by key). Non-power-of-two groups fall back to a pairwise
    /// exchange with a destination-side fold — same result, no in-flight
    /// savings.
    ///
    /// Words merged away after the first receive are credited to
    /// [`crate::cost::CostSnapshot::combined_words`] (observational: the
    /// clock already reflects the smaller forwarded payloads).
    pub fn alltoallv_combining<T, K, KF, M>(
        &mut self,
        g: &Group,
        bufs: Vec<Vec<T>>,
        key_of: KF,
        merge: M,
    ) -> Vec<T>
    where
        T: Send + 'static,
        K: WireWord + Ord + Copy + Send + 'static,
        KF: Fn(&T) -> K,
        M: FnMut(&mut T, T),
    {
        self.alltoallv_combining_narrow(g, bufs, key_of, merge, NarrowSpec::NATIVE)
    }

    /// [`Comm::alltoallv_combining`] with a dynamic narrowing tier for the
    /// hop key streams (see [`crate::wire::NarrowSpec`]). With
    /// [`NarrowSpec::NATIVE`] the wire bytes are identical to the plain
    /// call; an active tier may re-encode each key stream below its legacy
    /// width (never above — the legacy stream stays a candidate), crediting
    /// the delta to [`crate::cost::CostSnapshot::narrow_saved_bytes`].
    pub fn alltoallv_combining_narrow<T, K, KF, M>(
        &mut self,
        g: &Group,
        bufs: Vec<Vec<T>>,
        key_of: KF,
        mut merge: M,
        spec: NarrowSpec,
    ) -> Vec<T>
    where
        T: Send + 'static,
        K: WireWord + Ord + Copy + Send + 'static,
        KF: Fn(&T) -> K,
        M: FnMut(&mut T, T),
    {
        let keyed: Vec<Vec<(K, T)>> = bufs
            .into_iter()
            .map(|b| b.into_iter().map(|t| (key_of(&t), t)).collect())
            .collect();
        let span = self.span_open(SpanKind::AlltoallvCombining);
        let out = self.combining_exchange(g, keyed, &mut merge, spec);
        self.span_close(span);
        out.into_iter().map(|(_, t)| t).collect()
    }

    /// Reduce-scatter over explicit (key, value) pairs: member `k`
    /// receives every pair whose bucket index is `k`, with values sharing
    /// a key merged through `merge` — in flight on power-of-two groups
    /// (see [`Comm::alltoallv_combining`]). Returns the merged pairs
    /// sorted by key.
    pub fn reduce_scatter_by_key<K, T, M>(
        &mut self,
        g: &Group,
        bufs: Vec<Vec<(K, T)>>,
        merge: M,
    ) -> Vec<(K, T)>
    where
        K: WireWord + Ord + Copy + Send + 'static,
        T: Send + 'static,
        M: FnMut(&mut T, T),
    {
        self.reduce_scatter_by_key_narrow(g, bufs, merge, NarrowSpec::NATIVE)
    }

    /// [`Comm::reduce_scatter_by_key`] with a dynamic narrowing tier for
    /// the hop key streams; see [`Comm::alltoallv_combining_narrow`].
    pub fn reduce_scatter_by_key_narrow<K, T, M>(
        &mut self,
        g: &Group,
        bufs: Vec<Vec<(K, T)>>,
        mut merge: M,
        spec: NarrowSpec,
    ) -> Vec<(K, T)>
    where
        K: WireWord + Ord + Copy + Send + 'static,
        T: Send + 'static,
        M: FnMut(&mut T, T),
    {
        let span = self.span_open(SpanKind::AlltoallvCombining);
        let out = self.combining_exchange(g, bufs, &mut merge, spec);
        self.span_close(span);
        out
    }

    fn combining_exchange<K, P, M>(
        &mut self,
        g: &Group,
        mut bufs: Vec<Vec<(K, P)>>,
        merge: &mut M,
        spec: NarrowSpec,
    ) -> Vec<(K, P)>
    where
        K: WireWord + Ord + Copy + Send + 'static,
        P: Send + 'static,
        M: FnMut(&mut P, P),
    {
        let dict = self.narrow_dict();
        let mut narrow_saved = 0u64;
        let q = g.size();
        assert_eq!(bufs.len(), q, "one bucket per group member");
        let me = g.my_index();
        let mut mine: Vec<(K, P)> = std::mem::take(&mut bufs[me]);
        if q > 1 && q.is_power_of_two() {
            let mut pool: Vec<(u32, K, P)> = bufs
                .into_iter()
                .enumerate()
                .filter(|(k, _)| *k != me)
                .flat_map(|(k, b)| b.into_iter().map(move |(key, p)| (k as u32, key, p)))
                .collect();
            // Sender-side pre-merge (same-origin duplicates; not credited
            // to combined_words, which counts cross-origin merges only).
            merge_pool(&mut pool, merge);
            self.charge_compute(pool.len() as u64 + 1);
            let mut saved = 0u64;
            let rounds = q.trailing_zeros();
            for bit_idx in 0..rounds {
                let bit = 1usize << bit_idx;
                let partner = g.member(me ^ bit);
                let (send_pool, keep): (Vec<_>, Vec<_>) = pool
                    .into_iter()
                    .partition(|&(dest, _, _)| (dest as usize) & bit != me & bit);
                // Per-destination wire buckets: delta-varint key stream +
                // the payloads aligned with it.
                let mut buckets: Vec<(u32, Vec<K>, Vec<P>)> = Vec::new();
                for (dest, key, p) in send_pool {
                    match buckets.last_mut() {
                        Some(b) if b.0 == dest => {
                            b.1.push(key);
                            b.2.push(p);
                        }
                        _ => buckets.push((dest, vec![key], vec![p])),
                    }
                }
                let mut w = 0u64;
                let mut b = 0u64;
                let wire_msg: Vec<(u32, Vec<u8>, Vec<P>)> = buckets
                    .into_iter()
                    .map(|(dest, keys, ps)| {
                        let (bytes, saved) =
                            wire::encode_keys_narrow::<K>(&keys, spec, dict.as_deref());
                        narrow_saved += saved;
                        // β is charged by the legacy stream length
                        // (bytes + saved), so words_sent and the modeled
                        // clock are identical with narrowing on or off;
                        // only bytes_sent reflects the narrow stream.
                        w += 2
                            + words_of::<u8>(bytes.len() + saved as usize)
                            + words_of::<P>(ps.len());
                        b += 16 + bytes_of::<u8>(bytes.len()) + bytes_of::<P>(ps.len());
                        (dest, bytes, ps)
                    })
                    .collect();
                self.send_counted_bytes(partner, wire_msg, w, b);
                pool = keep;
                let incoming: Vec<(u32, Vec<u8>, Vec<P>)> = self.recv(partner);
                for (dest, bytes, ps) in incoming {
                    let keys = wire::decode_keys_narrow::<K>(&bytes, dict.as_deref());
                    debug_assert_eq!(keys.len(), ps.len());
                    if dest as usize == me {
                        mine.extend(keys.into_iter().zip(ps));
                    } else {
                        pool.extend(keys.into_iter().zip(ps).map(|(k, p)| (dest, k, p)));
                    }
                }
                let removed = merge_pool(&mut pool, merge);
                saved += removed as u64 + words_of::<P>(removed);
                self.charge_compute(pool.len() as u64 + 1);
            }
            debug_assert!(pool.is_empty(), "all entries routed after log q rounds");
            self.note_combined_words(saved);
            self.note_narrow_saved(narrow_saved);
        } else if q > 1 {
            // Non-power-of-two fallback: merge each bucket sender-side,
            // exchange pairwise, fold at the destination. Cross-sender
            // merging only happens on arrival — nothing saved in flight.
            for b in bufs.iter_mut() {
                merge_bucket(b, merge);
                self.charge_compute(b.len() as u64 + 1);
            }
            let incoming = self.alltoallv(g, bufs, AllToAll::Pairwise);
            for b in incoming {
                mine.extend(b);
            }
        }
        // Destination-side fold (stable: earlier arrivals fold first).
        merge_bucket(&mut mine, merge);
        self.charge_compute(mine.len() as u64 + 1);
        mine
    }

    /// Forward half of a combining *request* exchange: `bufs[k]` holds
    /// the keys this rank wants answered by member `k`. Requests merge in
    /// flight like [`Comm::alltoallv_combining`] entries (with unit
    /// payloads — merging is pure dedup), and every hop records which
    /// branches each surviving entry came from. Returns the route; this
    /// rank must answer `route.delivered_keys()` and can then scatter any
    /// number of reply phases back over the same route with
    /// [`Comm::combining_replies`].
    pub fn combining_requests<K>(&mut self, g: &Group, bufs: Vec<Vec<K>>) -> CombineRoute<K>
    where
        K: WireWord + Ord + Copy + Send + 'static,
    {
        self.combining_requests_narrow(g, bufs, NarrowSpec::NATIVE)
    }

    /// [`Comm::combining_requests`] with a dynamic narrowing tier for the
    /// hop key streams; see [`Comm::alltoallv_combining_narrow`] for the
    /// tier semantics and accounting.
    pub fn combining_requests_narrow<K>(
        &mut self,
        g: &Group,
        mut bufs: Vec<Vec<K>>,
        spec: NarrowSpec,
    ) -> CombineRoute<K>
    where
        K: WireWord + Ord + Copy + Send + 'static,
    {
        let dict = self.narrow_dict();
        let mut narrow_saved = 0u64;
        let q = g.size();
        assert_eq!(bufs.len(), q, "one key bucket per group member");
        let me = g.my_index();
        let span = self.span_open(SpanKind::AlltoallvCombining);
        for b in bufs.iter_mut() {
            self.charge_compute(b.len() as u64 + 1);
            b.sort_unstable();
            b.dedup();
        }
        let my_keys = bufs;
        let self_keys = my_keys[me].clone();
        let mut delivered_keys = self_keys.clone();
        let mut hops: Vec<CombineHop<K>> = Vec::new();
        let mut incoming_lists: Vec<Vec<K>> = Vec::new();
        let hypercube = q > 1 && q.is_power_of_two();
        if hypercube {
            // Built in destination order from sorted buckets, so the pool
            // starts (and stays) sorted by (destination, key).
            let mut pool: Vec<(u32, K)> = my_keys
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != me)
                .flat_map(|(k, keys)| keys.iter().map(move |&key| (k as u32, key)))
                .collect();
            let mut saved = 0u64;
            let rounds = q.trailing_zeros();
            for bit_idx in 0..rounds {
                let bit = 1usize << bit_idx;
                let partner = g.member(me ^ bit);
                let (sent, keep): (Vec<(u32, K)>, Vec<_>) = pool
                    .into_iter()
                    .partition(|&(dest, _)| (dest as usize) & bit != me & bit);
                let mut buckets: Vec<(u32, Vec<K>)> = Vec::new();
                for &(dest, key) in &sent {
                    match buckets.last_mut() {
                        Some(b) if b.0 == dest => b.1.push(key),
                        _ => buckets.push((dest, vec![key])),
                    }
                }
                let mut w = 0u64;
                let mut b = 0u64;
                let wire_msg: Vec<(u32, Vec<u8>)> = buckets
                    .into_iter()
                    .map(|(dest, keys)| {
                        let (bytes, saved) =
                            wire::encode_keys_narrow::<K>(&keys, spec, dict.as_deref());
                        narrow_saved += saved;
                        // Legacy-width β charge; see combining_exchange.
                        w += 2 + words_of::<u8>(bytes.len() + saved as usize);
                        b += 16 + bytes_of::<u8>(bytes.len());
                        (dest, bytes)
                    })
                    .collect();
                self.send_counted_bytes(partner, wire_msg, w, b);
                let incoming: Vec<(u32, Vec<u8>)> = self.recv(partner);
                let mut delivered_round: Vec<K> = Vec::new();
                let mut merged: Vec<(u32, K, u8)> =
                    keep.iter().map(|&(d, k)| (d, k, FROM_SELF)).collect();
                for (dest, bytes) in incoming {
                    let keys = wire::decode_keys_narrow::<K>(&bytes, dict.as_deref());
                    if dest as usize == me {
                        delivered_round = keys;
                    } else {
                        merged.extend(keys.into_iter().map(|k| (dest, k, FROM_PARTNER)));
                    }
                }
                merged.sort_unstable_by_key(|&(d, k, _)| (d, k));
                let before = merged.len();
                let mut table: Vec<(u32, K, u8)> = Vec::with_capacity(merged.len());
                for (d, k, f) in merged {
                    match table.last_mut() {
                        Some(last) if last.0 == d && last.1 == k => last.2 |= f,
                        _ => table.push((d, k, f)),
                    }
                }
                saved += (before - table.len()) as u64;
                self.charge_compute(before as u64 + 1);
                pool = table.iter().map(|&(d, k, _)| (d, k)).collect();
                delivered_keys.extend_from_slice(&delivered_round);
                hops.push(CombineHop {
                    table,
                    sent,
                    delivered: delivered_round,
                });
            }
            debug_assert!(pool.is_empty(), "all requests routed after log q rounds");
            self.note_combined_words(saved);
            self.note_narrow_saved(narrow_saved);
        } else if q > 1 {
            let incoming = self.alltoallv(g, my_keys.clone(), AllToAll::Pairwise);
            for keys in &incoming {
                delivered_keys.extend_from_slice(keys);
            }
            incoming_lists = incoming;
        }
        delivered_keys.sort_unstable();
        delivered_keys.dedup();
        self.charge_compute(delivered_keys.len() as u64 + 1);
        self.span_close(span);
        CombineRoute {
            q,
            hypercube,
            hops,
            self_keys,
            my_keys,
            delivered_keys,
            incoming: incoming_lists,
        }
    }

    /// Reply half of a combining request exchange: `values[i]` answers
    /// `route.delivered_keys()[i]`. Replies retrace the forward route in
    /// reverse — at every recorded merge fork the value is duplicated to
    /// both branches, and reply streams travel as bare value vectors
    /// because both endpoints can reconstruct the (destination, key)
    /// order from the route. With `compress` the streams are additionally
    /// run-length encoded ([`crate::wire::encode_words`]).
    ///
    /// Returns, per destination `k`, the pairs `(key, value)` answering
    /// exactly this rank's original `bufs[k]` keys (sorted, deduped). Can
    /// be called repeatedly on one route — later phases reuse the paid-for
    /// forward exchange, which is how the fused starcheck serves two
    /// vectors for one request scatter.
    pub fn combining_replies<K, T>(
        &mut self,
        g: &Group,
        route: &CombineRoute<K>,
        values: &[T],
        compress: bool,
    ) -> Vec<Vec<(K, T)>>
    where
        K: WireWord + Ord + Copy + Send + 'static,
        T: WireWord + Send + 'static,
    {
        self.combining_replies_narrow(g, route, values, compress, NarrowSpec::NATIVE)
    }

    /// [`Comm::combining_replies`] with a dynamic narrowing tier for the
    /// compressed reply value streams (see [`crate::wire::NarrowSpec`]).
    /// Only `compress`ed streams are re-encoded — a raw `Vec<T>` reply has
    /// no codec stage to narrow — and with [`NarrowSpec::NATIVE`] the
    /// wire bytes are identical to the plain call.
    pub fn combining_replies_narrow<K, T>(
        &mut self,
        g: &Group,
        route: &CombineRoute<K>,
        values: &[T],
        compress: bool,
        spec: NarrowSpec,
    ) -> Vec<Vec<(K, T)>>
    where
        K: WireWord + Ord + Copy + Send + 'static,
        T: WireWord + Send + 'static,
    {
        let q = g.size();
        assert_eq!(q, route.q, "route belongs to a different group");
        assert_eq!(
            values.len(),
            route.delivered_keys.len(),
            "one value per delivered key"
        );
        let me = g.my_index();
        let span = self.span_open(SpanKind::AlltoallvCombining);
        let value_of = |k: K| -> T {
            let i = route
                .delivered_keys
                .binary_search(&k)
                .expect("replied key was delivered here");
            values[i]
        };
        let mut out: Vec<Vec<(K, T)>> = (0..q).map(|_| Vec::new()).collect();
        if route.hypercube {
            // Invariant: entering reverse round i, `cur` holds the replies
            // for exactly the entries this rank held in flight after
            // forward round i (hops[i].table) — empty at the last round,
            // since every request had reached its destination by then.
            let mut output: Vec<(u32, K, T)> = Vec::new();
            let mut cur: Vec<(u32, K, T)> = Vec::new();
            for (i, hop) in route.hops.iter().enumerate().rev() {
                let bit = 1usize << i;
                let partner = g.member(me ^ bit);
                let mut send: Vec<(u32, K, T)> = Vec::new();
                let mut next: Vec<(u32, K, T)> = Vec::new();
                for &(d, k, v) in &cur {
                    let idx = hop
                        .table
                        .binary_search_by_key(&(d, k), |&(td, tk, _)| (td, tk))
                        .expect("in-flight reply matches the forward route");
                    let flags = hop.table[idx].2;
                    if flags & FROM_PARTNER != 0 {
                        send.push((d, k, v));
                    }
                    if flags & FROM_SELF != 0 {
                        if i == 0 {
                            output.push((d, k, v));
                        } else {
                            next.push((d, k, v));
                        }
                    }
                }
                // Requests delivered here in forward round i start their
                // reply journey now.
                for &k in &hop.delivered {
                    send.push((me as u32, k, value_of(k)));
                }
                // The partner expects values for exactly its forward-round
                // `sent` list, which is sorted by (destination, key) — the
                // shared order that lets keys stay off the reply wire.
                send.sort_unstable_by_key(|&(d, k, _)| (d, k));
                let vals: Vec<T> = send.into_iter().map(|(_, _, v)| v).collect();
                self.send_values(partner, vals, compress, spec);
                let incoming: Vec<T> = self.recv_values(partner, compress, spec);
                assert_eq!(
                    incoming.len(),
                    hop.sent.len(),
                    "reply stream aligns with the forward route"
                );
                for (&(d, k), v) in hop.sent.iter().zip(incoming) {
                    if i == 0 {
                        output.push((d, k, v));
                    } else {
                        next.push((d, k, v));
                    }
                }
                next.sort_unstable_by_key(|&(d, k, _)| (d, k));
                self.charge_compute(next.len() as u64 + 1);
                cur = next;
            }
            for &k in &route.self_keys {
                output.push((me as u32, k, value_of(k)));
            }
            output.sort_unstable_by_key(|&(d, k, _)| (d, k));
            for (d, k, v) in output {
                out[d as usize].push((k, v));
            }
        } else if q > 1 {
            let bufs: Vec<Vec<T>> = route
                .incoming
                .iter()
                .map(|keys| keys.iter().map(|&k| value_of(k)).collect())
                .collect();
            let replies: Vec<Vec<T>> = if compress && spec.active() {
                let dict = self.narrow_dict();
                let mut narrow_saved = 0u64;
                let enc: Vec<FramedBlock> = bufs
                    .iter()
                    .map(|vals| {
                        let words: Vec<u64> = vals.iter().map(|v| v.to_word()).collect();
                        // Savings (and the β word charge) are measured
                        // against what this branch ships with narrowing off
                        // (the width-free legacy codec), so words_sent is
                        // identical on/off and only bytes_sent shrinks.
                        let legacy_len = wire::encode_words(&words).len();
                        let (bytes, _) =
                            wire::encode_words_narrow::<T>(&words, spec, dict.as_deref());
                        narrow_saved += (legacy_len.saturating_sub(bytes.len())) as u64;
                        FramedBlock {
                            legacy_words: words_of::<u8>(legacy_len),
                            items: vals.len() as u64,
                            bytes,
                        }
                    })
                    .collect();
                self.note_narrow_saved(narrow_saved);
                self.alltoallv_framed(g, enc, AllToAll::Pairwise)
                    .into_iter()
                    .map(|bytes| {
                        wire::decode_words_narrow::<T>(&bytes, dict.as_deref())
                            .into_iter()
                            .map(T::from_word)
                            .collect()
                    })
                    .collect()
            } else if compress {
                let enc: Vec<Vec<u8>> = bufs
                    .iter()
                    .map(|vals| {
                        let words: Vec<u64> = vals.iter().map(|v| v.to_word()).collect();
                        wire::encode_words(&words)
                    })
                    .collect();
                self.alltoallv(g, enc, AllToAll::Pairwise)
                    .into_iter()
                    .map(|bytes| {
                        wire::decode_words(&bytes)
                            .into_iter()
                            .map(T::from_word)
                            .collect()
                    })
                    .collect()
            } else {
                self.alltoallv(g, bufs, AllToAll::Pairwise)
            };
            for (d, vals) in replies.into_iter().enumerate() {
                debug_assert_eq!(vals.len(), route.my_keys[d].len());
                out[d] = route.my_keys[d].iter().copied().zip(vals).collect();
            }
        } else {
            out[0] = route.self_keys.iter().map(|&k| (k, value_of(k))).collect();
        }
        self.span_close(span);
        for (d, pairs) in out.iter().enumerate() {
            debug_assert!(
                pairs
                    .iter()
                    .map(|&(k, _)| k)
                    .eq(route.my_keys[d].iter().copied()),
                "replies cover exactly the original requests"
            );
        }
        out
    }

    fn send_values<T: WireWord + Send + 'static>(
        &mut self,
        dest: usize,
        vals: Vec<T>,
        compress: bool,
        spec: NarrowSpec,
    ) {
        if compress {
            let words: Vec<u64> = vals.iter().map(|v| v.to_word()).collect();
            let (bytes, saved) = if spec.active() {
                let dict = self.narrow_dict();
                wire::encode_words_narrow::<T>(&words, spec, dict.as_deref())
            } else {
                (wire::encode_words_for::<T>(&words), 0)
            };
            self.note_narrow_saved(saved);
            // Charge β at the legacy stream length (bytes + saved) so the
            // word clock is identical with narrowing on or off.
            let w = words_of::<u8>(bytes.len() + saved as usize);
            let b = bytes_of::<u8>(bytes.len());
            self.send_counted_bytes(dest, bytes, w, b);
        } else {
            let w = words_of::<T>(vals.len());
            let b = bytes_of::<T>(vals.len());
            self.send_counted_bytes(dest, vals, w, b);
        }
    }

    fn recv_values<T: WireWord + Send + 'static>(
        &mut self,
        src: usize,
        compress: bool,
        spec: NarrowSpec,
    ) -> Vec<T> {
        if compress {
            let bytes: Vec<u8> = self.recv(src);
            let words = if spec.active() {
                let dict = self.narrow_dict();
                wire::decode_words_narrow::<T>(&bytes, dict.as_deref())
            } else {
                wire::decode_words_for::<T>(&bytes)
            };
            words.into_iter().map(T::from_word).collect()
        } else {
            self.recv(src)
        }
    }

    /// Non-blocking [`Comm::alltoallv`]: posts the exchange and returns a
    /// [`CommHandle`] whose [`CommHandle::wait`] yields the received
    /// buckets. Charges are identical to the blocking call; with `on` the
    /// handle's hideable exchange time can be credited against local
    /// compute charged between post and wait (see [`Comm::post`]).
    pub fn ialltoallv<T: Send + 'static>(
        &mut self,
        g: &Group,
        bufs: Vec<Vec<T>>,
        algo: AllToAll,
        on: bool,
    ) -> CommHandle<Vec<Vec<T>>> {
        self.post(on, |c| c.alltoallv(g, bufs, algo))
    }

    /// Non-blocking [`Comm::allreduce_counted`]; see [`Comm::ialltoallv`]
    /// for the handle semantics.
    pub fn iallreduce<T, F>(
        &mut self,
        g: &Group,
        val: T,
        words: u64,
        op: F,
        on: bool,
    ) -> CommHandle<T>
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.post(on, |c| c.allreduce_counted(g, val, words, op))
    }

    /// Non-blocking [`Comm::combining_requests`]: posts the forward
    /// request exchange; [`CommHandle::wait`] yields the recorded
    /// [`CombineRoute`] for the reply phases. See [`Comm::ialltoallv`]
    /// for the handle semantics.
    pub fn combining_requests_start<K>(
        &mut self,
        g: &Group,
        bufs: Vec<Vec<K>>,
        on: bool,
    ) -> CommHandle<CombineRoute<K>>
    where
        K: WireWord + Ord + Copy + Send + 'static,
    {
        self.post(on, |c| c.combining_requests(g, bufs))
    }

    /// Non-blocking [`Comm::combining_requests_narrow`]; see
    /// [`Comm::combining_requests_start`] for the handle semantics.
    pub fn combining_requests_start_narrow<K>(
        &mut self,
        g: &Group,
        bufs: Vec<Vec<K>>,
        on: bool,
        spec: NarrowSpec,
    ) -> CommHandle<CombineRoute<K>>
    where
        K: WireWord + Ord + Copy + Send + 'static,
    {
        self.post(on, move |c| c.combining_requests_narrow(g, bufs, spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_spmd;
    use crate::cost::EDISON;
    use crate::run_spmd_with_model;

    fn expected_alltoall(p: usize, me: usize) -> Vec<Vec<u64>> {
        // Rank s sends [s*100 + d; s + 1] to rank d.
        (0..p).map(|s| vec![(s * 100 + me) as u64; s + 1]).collect()
    }

    fn alltoall_inputs(p: usize, me: usize) -> Vec<Vec<u64>> {
        (0..p)
            .map(|d| vec![(me * 100 + d) as u64; me + 1])
            .collect()
    }

    #[test]
    fn barrier_completes_all_sizes() {
        for p in [1, 2, 3, 5, 8] {
            run_spmd(p, |c| {
                let w = c.world();
                for _ in 0..3 {
                    c.barrier(&w);
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn bcast_all_roots_all_sizes() {
        for p in [1, 2, 3, 4, 7, 8] {
            for root in 0..p {
                let out = run_spmd(p, move |c| {
                    let w = c.world();
                    let data = (c.rank() == root).then(|| vec![42u64, root as u64]);
                    c.bcast_vec(&w, root, data)
                })
                .unwrap();
                for v in out {
                    assert_eq!(v, vec![42, root as u64]);
                }
            }
        }
    }

    #[test]
    fn bcast_scalar() {
        let out = run_spmd(5, |c| {
            let w = c.world();
            c.bcast(&w, 2, (c.rank() == 2).then_some(99u32))
        })
        .unwrap();
        assert!(out.iter().all(|&v| v == 99));
    }

    #[test]
    fn allgatherv_various_sizes() {
        for p in [1, 2, 3, 4, 6, 9] {
            let out = run_spmd(p, |c| {
                let w = c.world();
                let mine: Vec<u64> = (0..c.rank() + 1)
                    .map(|i| (c.rank() * 10 + i) as u64)
                    .collect();
                c.allgatherv(&w, mine)
            })
            .unwrap();
            for gathered in out {
                for (src, block) in gathered.iter().enumerate() {
                    let expect: Vec<u64> = (0..src + 1).map(|i| (src * 10 + i) as u64).collect();
                    assert_eq!(block, &expect);
                }
            }
        }
    }

    #[test]
    fn allgatherv_empty_contributions() {
        let out = run_spmd(4, |c| {
            let w = c.world();
            let mine: Vec<u64> = if c.rank() % 2 == 0 {
                vec![]
            } else {
                vec![c.rank() as u64]
            };
            c.allgatherv(&w, mine)
        })
        .unwrap();
        assert_eq!(out[0], vec![vec![], vec![1], vec![], vec![3]]);
    }

    #[test]
    fn allreduce_sum_and_min() {
        let out = run_spmd(7, |c| {
            let w = c.world();
            let sum = c.allreduce(&w, c.rank() as u64, |a, b| a + b);
            let min = c.allreduce(&w, 100 - c.rank() as i64, |a, b| a.min(b));
            (sum, min)
        })
        .unwrap();
        assert!(out.iter().all(|&(s, m)| s == 21 && m == 94));
    }

    #[test]
    fn allreduce_counted_charges_payload_size() {
        // A vector allreduce must cost more when declared larger.
        let clock = |words: u64| {
            let out = run_spmd_with_model(4, EDISON.lacc_model(), move |c| {
                let w = c.world();
                let v: Vec<u64> = vec![1; words as usize];
                c.allreduce_counted(&w, v, words, |a, b| {
                    a.iter().zip(&b).map(|(x, y)| x + y).collect()
                });
                c.clock_s()
            })
            .unwrap();
            out.into_iter().fold(0.0f64, f64::max)
        };
        assert!(clock(10_000) > clock(10));
    }

    #[test]
    fn reduce_scatter_sums_columns() {
        let p = 4;
        let out = run_spmd(p, |c| {
            let w = c.world();
            // parts[k][j] = rank * 1 (length k + 1)
            let parts: Vec<Vec<u64>> = (0..p).map(|k| vec![c.rank() as u64; k + 1]).collect();
            c.reduce_scatter(&w, parts, |a, b| *a += b)
        })
        .unwrap();
        for (k, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![6u64; k + 1]); // ranks 0+1+2+3
        }
    }

    #[test]
    fn alltoallv_all_algorithms_agree() {
        for p in [1, 2, 3, 4, 5, 8] {
            for algo in [
                AllToAll::Direct,
                AllToAll::Pairwise,
                AllToAll::Hypercube,
                AllToAll::Sparse,
            ] {
                let out = run_spmd(p, move |c| {
                    let w = c.world();
                    c.alltoallv(&w, alltoall_inputs(p, c.rank()), algo)
                })
                .unwrap();
                for (me, got) in out.into_iter().enumerate() {
                    assert_eq!(got, expected_alltoall(p, me), "p={p} algo={algo:?} me={me}");
                }
            }
        }
    }

    #[test]
    fn alltoallv_with_empty_buckets() {
        for algo in [
            AllToAll::Direct,
            AllToAll::Pairwise,
            AllToAll::Hypercube,
            AllToAll::Sparse,
        ] {
            let out = run_spmd(4, move |c| {
                let w = c.world();
                // Only rank 0 sends anything, and only to rank 3.
                let mut bufs: Vec<Vec<u64>> = vec![vec![]; 4];
                if c.rank() == 0 {
                    bufs[3] = vec![7, 8, 9];
                }
                c.alltoallv(&w, bufs, algo)
            })
            .unwrap();
            assert_eq!(out[3][0], vec![7, 8, 9], "{algo:?}");
            assert!(out[1].iter().all(|v| v.is_empty()));
        }
    }

    #[test]
    fn sparse_alltoall_sends_fewer_messages() {
        // One nonempty bucket: sparse should send far fewer point-to-point
        // messages than pairwise.
        let count_msgs = |algo: AllToAll| {
            let out = run_spmd_with_model(8, EDISON.lacc_model(), move |c| {
                let w = c.world();
                let mut bufs: Vec<Vec<u64>> = vec![vec![]; 8];
                if c.rank() == 0 {
                    bufs[1] = vec![1; 1000];
                }
                c.alltoallv(&w, bufs, algo);
                c.snapshot().messages_sent
            })
            .unwrap();
            out.iter().sum::<u64>()
        };
        let pairwise = count_msgs(AllToAll::Pairwise);
        let sparse = count_msgs(AllToAll::Sparse);
        // Sparse pays the metadata exchange (hypercube: 8·3 msgs) plus one
        // data message; pairwise sends 8·7.
        assert!(sparse < pairwise, "sparse={sparse} pairwise={pairwise}");
    }

    #[test]
    fn hypercube_has_lower_latency_charge() {
        let p = 16;
        let clock_for = |algo: AllToAll| {
            let out = run_spmd_with_model(p, EDISON.lacc_model(), move |c| {
                let w = c.world();
                let bufs: Vec<Vec<u64>> = (0..p).map(|_| vec![1u64; 4]).collect();
                c.alltoallv(&w, bufs, algo);
                c.clock_s()
            })
            .unwrap();
            out.into_iter().fold(0.0f64, f64::max)
        };
        // With tiny buckets the α term dominates: hypercube (log p rounds)
        // must beat pairwise (p − 1 rounds).
        assert!(clock_for(AllToAll::Hypercube) < clock_for(AllToAll::Pairwise));
    }

    #[test]
    fn gatherv_collects_at_root() {
        let out = run_spmd(5, |c| {
            let w = c.world();
            c.gatherv(&w, 2, vec![c.rank() as u64])
        })
        .unwrap();
        for (r, res) in out.iter().enumerate() {
            if r == 2 {
                let v = res.as_ref().unwrap();
                assert_eq!(v.len(), 5);
                assert_eq!(v[4], vec![4]);
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn combining_with_unique_keys_matches_plain_multiset() {
        // No two entries share (dest, key): no merge fires and the result
        // must be the plain all-to-all payload multiset.
        for p in [1, 2, 3, 4, 8] {
            let inputs = move |me: usize| -> Vec<Vec<(u64, u64)>> {
                (0..p)
                    .map(|d| {
                        (0..3)
                            .map(|j| {
                                let key = (me * 1000 + d * 10 + j) as u64;
                                (key, key * 2 + 1)
                            })
                            .collect()
                    })
                    .collect()
            };
            let combined = run_spmd(p, move |c| {
                let w = c.world();
                let merged = c.alltoallv_combining(
                    &w,
                    inputs(c.rank()),
                    |e: &(u64, u64)| e.0,
                    |_, _| panic!("no merge may fire on unique keys"),
                );
                (merged, c.snapshot().combined_words)
            })
            .unwrap();
            let plain = run_spmd(p, move |c| {
                let w = c.world();
                let mut all: Vec<(u64, u64)> = c
                    .alltoallv(&w, inputs(c.rank()), AllToAll::Pairwise)
                    .into_iter()
                    .flatten()
                    .collect();
                all.sort_unstable();
                all
            })
            .unwrap();
            for (me, ((got, combined_words), want)) in combined.into_iter().zip(plain).enumerate() {
                assert_eq!(got, want, "p={p} me={me}");
                assert_eq!(combined_words, 0, "unique keys must not combine");
            }
        }
    }

    #[test]
    fn reduce_scatter_by_key_matches_destination_fold() {
        // Heavy cross-sender overlap: every rank updates the same keys at
        // every destination. Min-merge in flight must equal exchanging
        // everything and folding at the destination.
        for p in [1, 2, 3, 4, 8, 16] {
            let inputs = move |me: usize| -> Vec<Vec<(u64, u64)>> {
                (0..p)
                    .map(|d| {
                        (0..8)
                            .map(|j| ((d * 100 + j) as u64, (me * 37 + j * 5) as u64 % 101))
                            .collect()
                    })
                    .collect()
            };
            let combined = run_spmd(p, move |c| {
                let w = c.world();
                c.reduce_scatter_by_key(&w, inputs(c.rank()), |a: &mut u64, b| *a = (*a).min(b))
            })
            .unwrap();
            let folded = run_spmd(p, move |c| {
                let w = c.world();
                let mut all: Vec<(u64, u64)> = c
                    .alltoallv(&w, inputs(c.rank()), AllToAll::Pairwise)
                    .into_iter()
                    .flatten()
                    .collect();
                all.sort_by_key(|&(k, _)| k);
                let mut out: Vec<(u64, u64)> = Vec::new();
                for (k, v) in all {
                    match out.last_mut() {
                        Some(last) if last.0 == k => last.1 = last.1.min(v),
                        _ => out.push((k, v)),
                    }
                }
                out
            })
            .unwrap();
            for (me, (got, want)) in combined.into_iter().zip(folded).enumerate() {
                assert_eq!(got, want, "p={p} me={me}");
            }
        }
    }

    #[test]
    fn combining_requests_replies_roundtrip() {
        // Every rank requests an overlapping window of keys from every
        // destination; the destination answers key*7 + dest. Replies must
        // come back aligned with each origin's own (deduped) requests,
        // compressed or not, for hypercube and fallback group sizes.
        for p in [1, 2, 3, 4, 8, 16] {
            for compress in [false, true] {
                let out = run_spmd(p, move |c| {
                    let w = c.world();
                    let me = c.rank();
                    // Duplicates within a bucket exercise the dedup; the
                    // shared low keys exercise cross-sender merging.
                    let bufs: Vec<Vec<u64>> = (0..p)
                        .map(|d| {
                            (0..=me + 2)
                                .map(|j| (d * 100 + j % (me + 2)) as u64)
                                .collect()
                        })
                        .collect();
                    let route = c.combining_requests(&w, bufs);
                    let values: Vec<u64> = route
                        .delivered_keys()
                        .iter()
                        .map(|&k| k * 7 + me as u64)
                        .collect();
                    c.combining_replies(&w, &route, &values, compress)
                })
                .unwrap();
                for (me, replies) in out.into_iter().enumerate() {
                    for (d, pairs) in replies.into_iter().enumerate() {
                        let mut want: Vec<u64> = (0..=me + 2)
                            .map(|j| (d * 100 + j % (me + 2)) as u64)
                            .collect();
                        want.sort_unstable();
                        want.dedup();
                        let want: Vec<(u64, u64)> =
                            want.into_iter().map(|k| (k, k * 7 + d as u64)).collect();
                        assert_eq!(pairs, want, "p={p} me={me} d={d} compress={compress}");
                    }
                }
            }
        }
    }

    #[test]
    fn replayed_route_serves_a_second_reply_phase() {
        // The fused-starcheck mechanism: one forward exchange, two reply
        // scatters over the same route (different value types, and the
        // second phase sees owner-side state mutated in between).
        let out = run_spmd(8, |c| {
            let w = c.world();
            let me = c.rank();
            let bufs: Vec<Vec<u64>> = (0..8)
                .map(|d| vec![(d * 10) as u64, (d * 10 + 1) as u64])
                .collect();
            let route = c.combining_requests(&w, bufs);
            let first: Vec<u64> = route.delivered_keys().iter().map(|&k| k + 1).collect();
            let r1 = c.combining_replies(&w, &route, &first, false);
            // "Mutate" owner state between the phases.
            let second: Vec<bool> = route
                .delivered_keys()
                .iter()
                .map(|&k| k % 20 == 0)
                .collect();
            let r2 = c.combining_replies(&w, &route, &second, true);
            (me, r1, r2)
        })
        .unwrap();
        for (me, r1, r2) in out {
            for d in 0..8 {
                let base = (d * 10) as u64;
                assert_eq!(
                    r1[d],
                    vec![(base, base + 1), (base + 1, base + 2)],
                    "me={me}"
                );
                assert_eq!(
                    r2[d],
                    vec![(base, base.is_multiple_of(20)), (base + 1, false)],
                    "me={me}"
                );
            }
        }
    }

    #[test]
    fn combined_words_monotone_in_cross_sender_duplication() {
        // All ranks request the same `overlap` keys of rank 0 plus
        // per-rank-unique filler: more overlap must combine more words.
        let combined_for = |overlap: usize| {
            let out = run_spmd(8, move |c| {
                let w = c.world();
                let me = c.rank();
                let mut bufs: Vec<Vec<u64>> = vec![vec![]; 8];
                bufs[0] = (0..overlap as u64)
                    .chain((0..32).map(|j| 1000 + (me * 100 + j) as u64))
                    .collect();
                let route = c.combining_requests(&w, bufs);
                let values: Vec<u64> = route.delivered_keys().to_vec();
                c.combining_replies(&w, &route, &values, false);
                c.snapshot().combined_words
            })
            .unwrap();
            out.iter().sum::<u64>()
        };
        let none = combined_for(0);
        let some = combined_for(16);
        let more = combined_for(64);
        assert_eq!(none, 0, "disjoint requests must not combine");
        assert!(some > 0, "shared requests must combine in flight");
        assert!(
            more > some,
            "more overlap must combine more: {more} vs {some}"
        );
    }

    #[test]
    fn combining_beats_plain_hypercube_words_under_duplication() {
        // With every rank requesting the same keys, in-flight merging must
        // move strictly fewer words than plain hypercube request routing.
        let words_sent = |combining: bool| {
            let out = run_spmd_with_model(16, EDISON.lacc_model(), move |c| {
                let w = c.world();
                let bufs: Vec<Vec<u64>> = (0..16)
                    .map(|d| (0..64).map(|j| (d * 1000 + j) as u64).collect())
                    .collect();
                if combining {
                    let route = c.combining_requests(&w, bufs);
                    let values: Vec<u64> = route.delivered_keys().to_vec();
                    c.combining_replies(&w, &route, &values, false);
                } else {
                    let sent = c.alltoallv(&w, bufs, AllToAll::Hypercube);
                    // Direct replies, one word per request.
                    let replies: Vec<Vec<u64>> = sent;
                    c.alltoallv(&w, replies, AllToAll::Hypercube);
                }
                c.snapshot().words_sent
            })
            .unwrap();
            out.iter().sum::<u64>()
        };
        let plain = words_sent(false);
        let combining = words_sent(true);
        assert!(combining < plain, "combining={combining} plain={plain}");
    }

    #[test]
    fn narrow_keyed_requests_match_wide() {
        // The combining route is key-width generic: a u32-keyed exchange
        // must produce the same (value-equal) replies as the u64 one, on
        // both the hypercube path and the pairwise fallback.
        for p in [3usize, 8] {
            let bufs_wide = move |p: usize| -> Vec<Vec<u64>> {
                (0..p)
                    .map(|d| (0..8).map(|j| (d * 100 + j) as u64).collect())
                    .collect()
            };
            let wide = run_spmd(p, move |c| {
                let w = c.world();
                let route = c.combining_requests(&w, bufs_wide(p));
                let values: Vec<u64> = route.delivered_keys().iter().map(|&k| k * 3).collect();
                c.combining_replies(&w, &route, &values, false)
            })
            .unwrap();
            let narrow = run_spmd(p, move |c| {
                let w = c.world();
                let bufs: Vec<Vec<u32>> = bufs_wide(p)
                    .into_iter()
                    .map(|b| b.into_iter().map(|k| k as u32).collect())
                    .collect();
                let route = c.combining_requests(&w, bufs);
                let values: Vec<u32> = route.delivered_keys().iter().map(|&k| k * 3).collect();
                c.combining_replies(&w, &route, &values, false)
            })
            .unwrap();
            for (me, (w64, w32)) in wide.into_iter().zip(narrow).enumerate() {
                let widened: Vec<Vec<(u64, u64)>> = w32
                    .into_iter()
                    .map(|pairs| {
                        pairs
                            .into_iter()
                            .map(|(k, v)| (u64::from(k), u64::from(v)))
                            .collect()
                    })
                    .collect();
                assert_eq!(widened, w64, "p={p} me={me}");
            }
        }
    }

    #[test]
    fn narrow_keys_cost_less_on_the_pairwise_fallback() {
        // On non-power-of-two groups the keys travel as raw vectors, so
        // the declared key width is the wire width: u32 must move fewer
        // words than u64. (On the hypercube path both widths encode to
        // identical delta-varint streams.)
        let words = |wide: bool| {
            let out = run_spmd_with_model(3, EDISON.lacc_model(), move |c| {
                let w = c.world();
                if wide {
                    let bufs: Vec<Vec<u64>> = (0..3)
                        .map(|d| (0..64).map(|j| (d * 1000 + j) as u64).collect())
                        .collect();
                    let route = c.combining_requests(&w, bufs);
                    let values: Vec<u64> = route.delivered_keys().to_vec();
                    c.combining_replies(&w, &route, &values, false);
                } else {
                    let bufs: Vec<Vec<u32>> = (0..3)
                        .map(|d| (0..64).map(|j| (d * 1000 + j) as u32).collect())
                        .collect();
                    let route = c.combining_requests(&w, bufs);
                    let values: Vec<u32> = route.delivered_keys().to_vec();
                    c.combining_replies(&w, &route, &values, false);
                }
                c.snapshot().words_sent
            })
            .unwrap();
            out.iter().sum::<u64>()
        };
        let wide = words(true);
        let narrow = words(false);
        assert!(narrow < wide, "narrow={narrow} wide={wide}");
    }

    #[test]
    fn icollectives_match_blocking_results() {
        let out = run_spmd(4, |c| {
            let w = c.world();
            let me = c.rank();
            let h = c.ialltoallv(&w, alltoall_inputs(4, me), AllToAll::Sparse, true);
            c.charge_compute(50);
            let a2a = h.wait(c);
            let h = c.iallreduce(&w, me as u64, 1, |a, b| a + b, true);
            c.charge_compute(50);
            let sum = h.wait(c);
            let bufs: Vec<Vec<u64>> = (0..4).map(|d| vec![(d * 10) as u64]).collect();
            let h = c.combining_requests_start(&w, bufs, true);
            c.charge_compute(50);
            let route = h.wait(c);
            let values: Vec<u64> = route.delivered_keys().iter().map(|&k| k + 1).collect();
            let replies = c.combining_replies(&w, &route, &values, false);
            (a2a, sum, replies)
        })
        .unwrap();
        for (me, (a2a, sum, replies)) in out.into_iter().enumerate() {
            assert_eq!(a2a, expected_alltoall(4, me));
            assert_eq!(sum, 6);
            for (d, pairs) in replies.into_iter().enumerate() {
                let k = (d * 10) as u64;
                assert_eq!(pairs, vec![(k, k + 1)]);
            }
        }
    }

    #[test]
    fn sparse_count_phase_tags_effective_algorithm() {
        use crate::comm::run_spmd_traced;
        use crate::cost::MachineModel;
        use crate::trace::{TraceLevel, TraceSink};
        // The count exchange nested under a sparse all-to-all must trace
        // the algorithm that actually ran: hypercube on power-of-two
        // groups, pairwise otherwise.
        for (p, nested) in [(4usize, AllToAll::Hypercube), (3, AllToAll::Pairwise)] {
            let sink = TraceSink::new(TraceLevel::Collectives);
            run_spmd_traced(p, MachineModel::free(), Some(&sink), move |c| {
                let w = c.world();
                let bufs: Vec<Vec<u64>> = (0..p).map(|d| vec![d as u64]).collect();
                c.alltoallv(&w, bufs, AllToAll::Sparse);
            })
            .unwrap();
            let traces = sink.rank_traces();
            let spans = &traces[0].spans;
            assert!(
                spans
                    .iter()
                    .any(|s| s.kind == SpanKind::Alltoallv(AllToAll::Sparse)),
                "p={p}: sparse span missing"
            );
            assert!(
                spans
                    .iter()
                    .any(|s| s.kind == SpanKind::Alltoallv(nested) && s.depth > 0),
                "p={p}: nested count-phase span should tag {nested:?}"
            );
        }
    }

    #[test]
    fn collectives_on_subgroups() {
        let out = run_spmd(6, |c| {
            // Two groups: evens and odds.
            let members: Vec<usize> = (0..6).filter(|r| r % 2 == c.rank() % 2).collect();
            let g = c.group(members);
            let sum = c.allreduce(&g, c.rank() as u64, |a, b| a + b);
            c.barrier(&g);
            sum
        })
        .unwrap();
        assert_eq!(out, vec![6, 9, 6, 9, 6, 9]);
    }
}
