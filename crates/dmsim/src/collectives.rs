//! MPI-style collectives over rank [`Group`]s.
//!
//! Every collective is built from point-to-point sends, so the α-β charges
//! accumulate automatically from the message pattern actually executed:
//!
//! * `barrier` — dissemination, `⌈log₂ q⌉` rounds.
//! * `bcast` — binomial tree.
//! * `allgatherv` — ring (bandwidth-optimal; the paper found a simple
//!   allgather fastest for its SpMV/SpMSpV gather phase).
//! * `reduce_scatter` — direct exchange + local fold.
//! * `allreduce` — allgather + deterministic fold (group order).
//! * `alltoallv` — three algorithms, selectable per call (§V-B):
//!   [`AllToAll::Pairwise`] is MPI's pairwise-exchange with `α(q−1)`
//!   latency; [`AllToAll::Hypercube`] is Sundar et al.'s `α·log q`
//!   store-and-forward algorithm; [`AllToAll::Sparse`] exchanges counts
//!   first and then contacts only nonempty partners.
//!
//! Each collective opens a [`SpanKind`] trace span (recorded only at
//! [`crate::trace::TraceLevel::Collectives`]); `alltoallv` spans are
//! tagged with the algorithm actually executed, so a hypercube call that
//! falls back to pairwise on a non-power-of-two group traces as pairwise,
//! and a sparse exchange shows its internal count exchange as a nested
//! span.

#![allow(clippy::needless_range_loop)] // index loops double as rank ids here

use crate::comm::{words_of, Comm, Group, PooledBuf};
use crate::trace::SpanKind;

/// Algorithm choice for [`Comm::alltoallv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllToAll {
    /// Every pair exchanges directly in one shot.
    Direct,
    /// MPI's pairwise-exchange: `q − 1` rounds, `α(q−1)` latency — the
    /// algorithm whose poor scaling beyond 1024 ranks motivated the
    /// paper's replacement (§V-B).
    Pairwise,
    /// Hypercube store-and-forward (Sundar et al.): `α·log₂ q` latency at
    /// the price of forwarding bandwidth. Requires `q` to be a power of
    /// two; falls back to [`AllToAll::Pairwise`] otherwise.
    Hypercube,
    /// Sparse all-to-all: a cheap count exchange, then only nonempty pairs
    /// communicate. Ideal when most buckets are empty (late LACC
    /// iterations, Figure 3's "processes 7–15 have no data").
    Sparse,
}

impl Comm {
    /// Dissemination barrier over the group.
    pub fn barrier(&mut self, g: &Group) {
        let q = g.size();
        if q <= 1 {
            return;
        }
        let span = self.span_open(SpanKind::Barrier);
        let me = g.my_index();
        let mut k = 1usize;
        while k < q {
            let to = g.member((me + k) % q);
            let from = g.member((me + q - k % q) % q);
            self.send(to, ());
            self.recv::<()>(from);
            k <<= 1;
        }
        self.span_close(span);
    }

    /// Binomial-tree broadcast of a vector from group index `root_idx`.
    ///
    /// Non-roots pass `None`; everyone returns the payload.
    pub fn bcast_vec<T: Clone + Send + 'static>(
        &mut self,
        g: &Group,
        root_idx: usize,
        data: Option<Vec<T>>,
    ) -> Vec<T> {
        let span = self.span_open(SpanKind::Bcast);
        let q = g.size();
        let me = g.my_index();
        // Virtual index with the root shifted to 0.
        let vidx = (me + q - root_idx) % q;
        let mut payload = if vidx == 0 {
            Some(data.expect("root must supply the broadcast payload"))
        } else {
            debug_assert!(data.is_none(), "non-root supplied broadcast data");
            None
        };
        // Binomial tree: a node's parent is itself with the lowest set bit
        // cleared; its children are itself plus 2^j for j below the lowest
        // set bit (all powers of two for the root).
        if vidx != 0 {
            let parent = vidx - (1 << vidx.trailing_zeros());
            let src = g.member((parent + root_idx) % q);
            payload = Some(self.recv::<Vec<T>>(src));
        }
        let data = payload.expect("broadcast payload must exist by now");
        let mut children = Vec::new();
        if vidx == 0 {
            let mut k = 1usize;
            while k < q {
                children.push(k);
                k <<= 1;
            }
        } else {
            let tz = vidx.trailing_zeros() as usize;
            for j in 0..tz {
                let c = vidx + (1 << j);
                if c < q {
                    children.push(c);
                }
            }
        }
        // Send to larger children first (deeper subtrees) as binomial
        // broadcast does. Copies go out through pooled buffers so repeated
        // broadcasts reuse capacity instead of allocating per child.
        for &c in children.iter().rev() {
            let dest = g.member((c + root_idx) % q);
            let mut copy: PooledBuf<T> = self.pooled_buf();
            copy.extend_from_slice(&data);
            self.send_counted(dest, copy.detach(), words_of::<T>(data.len()));
        }
        self.span_close(span);
        data
    }

    /// Broadcast of a single cloneable value.
    pub fn bcast<T: Clone + Send + 'static>(
        &mut self,
        g: &Group,
        root_idx: usize,
        data: Option<T>,
    ) -> T {
        let v = self.bcast_vec(g, root_idx, data.map(|d| vec![d]));
        v.into_iter().next().expect("bcast payload")
    }

    /// Ring allgather: every member contributes a vector; everyone returns
    /// all contributions indexed by group index.
    pub fn allgatherv<T: Clone + Send + 'static>(
        &mut self,
        g: &Group,
        mine: Vec<T>,
    ) -> Vec<Vec<T>> {
        let span = self.span_open(SpanKind::Allgatherv);
        let q = g.size();
        let me = g.my_index();
        let mut result: Vec<Option<Vec<T>>> = (0..q).map(|_| None).collect();
        let right = g.member((me + 1) % q);
        let left = g.member((me + q - 1) % q);
        // The ring forwards a copy of each incoming block; draw the copies
        // from the buffer pool so steady-state supersteps allocate nothing.
        // Each pooled carry is detached when sent; the last (unsent) one
        // returns to the pool when it drops at the end of the loop.
        let mut carry: PooledBuf<T> = self.pooled_buf();
        carry.extend_from_slice(&mine);
        result[me] = Some(mine);
        for step in 1..q {
            let w = words_of::<T>(carry.len());
            self.send_counted(right, carry.detach(), w);
            let incoming: Vec<T> = self.recv(left);
            let origin = (me + q - step) % q;
            carry = self.pooled_buf();
            if step + 1 < q {
                carry.extend_from_slice(&incoming);
            }
            result[origin] = Some(incoming);
        }
        drop(carry);
        self.span_close(span);
        result
            .into_iter()
            .map(|r| r.expect("ring delivered all blocks"))
            .collect()
    }

    /// Allreduce: recursive doubling (`(α + βw)·log₂ q`) on power-of-two
    /// groups, gather-to-root + broadcast otherwise. Deterministic: every
    /// pairwise combine applies `op(lower-index value, higher-index
    /// value)`. The payload size is taken from `size_of::<T>()`; use
    /// [`Comm::allreduce_counted`] for heap payloads like `Vec`.
    pub fn allreduce<T, F>(&mut self, g: &Group, val: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let words = (std::mem::size_of::<T>() as u64).div_ceil(8);
        self.allreduce_counted(g, val, words, op)
    }

    /// [`Comm::allreduce`] with an explicit per-message word count.
    pub fn allreduce_counted<T, F>(&mut self, g: &Group, val: T, words: u64, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        if g.size() == 1 {
            return val;
        }
        let span = self.span_open(SpanKind::Allreduce);
        let out = self.allreduce_counted_inner(g, val, words, op);
        self.span_close(span);
        out
    }

    fn allreduce_counted_inner<T, F>(&mut self, g: &Group, val: T, words: u64, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let q = g.size();
        let me = g.my_index();
        if q.is_power_of_two() {
            let mut acc = val;
            let mut k = 1usize;
            while k < q {
                let partner = me ^ k;
                self.send_counted(g.member(partner), acc.clone(), words);
                let theirs: T = self.recv(g.member(partner));
                acc = if partner < me {
                    op(theirs, acc)
                } else {
                    op(acc, theirs)
                };
                k <<= 1;
            }
            return acc;
        }
        // General groups (tests, odd grids): fold at the root in group
        // order, then broadcast.
        let gathered = self.gatherv(g, 0, vec![val]);
        let result = match gathered {
            Some(all) => {
                let mut it = all
                    .into_iter()
                    .map(|mut v| v.pop().expect("one value per rank"));
                let first = it.next().expect("nonempty group");
                Some(it.fold(first, op))
            }
            None => None,
        };
        self.bcast(g, 0, result)
    }

    /// Reduce-scatter: member `i` passes `parts[k]` destined for member
    /// `k`; member `k` returns the elementwise fold (in group order) of
    /// everyone's `parts[k]`, which must all have equal length.
    pub fn reduce_scatter<T, F>(&mut self, g: &Group, mut parts: Vec<Vec<T>>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&mut T, T),
    {
        let span = self.span_open(SpanKind::ReduceScatter);
        let q = g.size();
        let me = g.my_index();
        assert_eq!(parts.len(), q, "one part per group member");
        // Send all foreign parts first (channels are unbounded, so
        // send-then-receive cannot deadlock).
        for k in 0..q {
            if k != me {
                let buf = std::mem::take(&mut parts[k]);
                let w = words_of::<T>(buf.len());
                self.send_counted(g.member(k), buf, w);
            }
        }
        let mut acc: Option<Vec<T>> = None;
        for src_idx in 0..q {
            let raw = if src_idx == me {
                std::mem::take(&mut parts[me])
            } else {
                self.recv::<Vec<T>>(g.member(src_idx))
            };
            match &mut acc {
                None => acc = Some(raw),
                Some(acc) => {
                    // Adopt the contribution so its allocation recycles
                    // into the pool when it drops after the fold.
                    let contribution = self.adopt_buf(raw);
                    assert_eq!(
                        acc.len(),
                        contribution.len(),
                        "reduce_scatter length mismatch"
                    );
                    self.charge_compute(contribution.len() as u64);
                    for (a, c) in acc.iter_mut().zip(contribution.iter()) {
                        op(a, c.clone());
                    }
                }
            }
        }
        let out = acc.expect("nonempty group");
        self.span_close(span);
        out
    }

    /// All-to-all of variable-size buckets: `bufs[k]` goes to member `k`;
    /// returns `recv[k]` = the bucket member `k` sent here.
    pub fn alltoallv<T: Send + 'static>(
        &mut self,
        g: &Group,
        bufs: Vec<Vec<T>>,
        algo: AllToAll,
    ) -> Vec<Vec<T>> {
        let q = g.size();
        assert_eq!(bufs.len(), q, "one bucket per group member");
        if q == 1 {
            return bufs;
        }
        // Trace the algorithm actually executed, not the one requested.
        let effective = match algo {
            AllToAll::Hypercube if !q.is_power_of_two() => AllToAll::Pairwise,
            other => other,
        };
        let span = self.span_open(SpanKind::Alltoallv(effective));
        let out = match effective {
            AllToAll::Direct => self.alltoallv_direct(g, bufs),
            AllToAll::Pairwise => self.alltoallv_pairwise(g, bufs),
            AllToAll::Hypercube => self.alltoallv_hypercube(g, bufs),
            AllToAll::Sparse => self.alltoallv_sparse(g, bufs),
        };
        self.span_close(span);
        out
    }

    fn alltoallv_direct<T: Send + 'static>(
        &mut self,
        g: &Group,
        mut bufs: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let q = g.size();
        let me = g.my_index();
        for k in 0..q {
            if k != me {
                let buf = std::mem::take(&mut bufs[k]);
                let w = words_of::<T>(buf.len());
                self.send_counted(g.member(k), buf, w);
            }
        }
        (0..q)
            .map(|k| {
                if k == me {
                    std::mem::take(&mut bufs[me])
                } else {
                    self.recv::<Vec<T>>(g.member(k))
                }
            })
            .collect()
    }

    fn alltoallv_pairwise<T: Send + 'static>(
        &mut self,
        g: &Group,
        mut bufs: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let q = g.size();
        let me = g.my_index();
        let mut result: Vec<Option<Vec<T>>> = (0..q).map(|_| None).collect();
        result[me] = Some(std::mem::take(&mut bufs[me]));
        for round in 1..q {
            let to = (me + round) % q;
            let from = (me + q - round) % q;
            let buf = std::mem::take(&mut bufs[to]);
            let w = words_of::<T>(buf.len());
            self.send_counted(g.member(to), buf, w);
            result[from] = Some(self.recv::<Vec<T>>(g.member(from)));
        }
        result
            .into_iter()
            .map(|r| r.expect("pairwise covered all"))
            .collect()
    }

    fn alltoallv_hypercube<T: Send + 'static>(
        &mut self,
        g: &Group,
        mut bufs: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let q = g.size();
        let me = g.my_index();
        debug_assert!(q.is_power_of_two());
        let mut result: Vec<Option<Vec<T>>> = (0..q).map(|_| None).collect();
        result[me] = Some(std::mem::take(&mut bufs[me]));
        // Pool of in-flight buckets: (origin, destination, items).
        let mut pool: Vec<(u32, u32, Vec<T>)> = bufs
            .into_iter()
            .enumerate()
            .filter(|(k, _)| *k != me)
            .map(|(k, items)| (me as u32, k as u32, items))
            .collect();
        let rounds = q.trailing_zeros();
        for bit_idx in 0..rounds {
            let bit = 1usize << bit_idx;
            let partner = me ^ bit;
            // Buckets whose destination differs from me in this bit travel
            // to the partner side of the hypercube now.
            let (send_pool, keep): (Vec<_>, Vec<_>) = pool
                .into_iter()
                .partition(|&(_, dest, _)| (dest as usize) & bit != me & bit);
            let w: u64 = send_pool
                .iter()
                .map(|(_, _, items)| 2 + words_of::<T>(items.len()))
                .sum();
            self.send_counted(g.member(partner), send_pool, w);
            pool = keep;
            let incoming: Vec<(u32, u32, Vec<T>)> = self.recv(g.member(partner));
            for (origin, dest, items) in incoming {
                if dest as usize == me {
                    debug_assert!(result[origin as usize].is_none());
                    result[origin as usize] = Some(items);
                } else {
                    pool.push((origin, dest, items));
                }
            }
        }
        debug_assert!(pool.is_empty(), "all buckets routed after log q rounds");
        result.into_iter().map(|r| r.unwrap_or_default()).collect()
    }

    fn alltoallv_sparse<T: Send + 'static>(
        &mut self,
        g: &Group,
        mut bufs: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let q = g.size();
        let me = g.my_index();
        // Phase 1: exchange per-destination counts so each member learns
        // who will contact it. The count matrix transpose is itself a tiny
        // all-to-all; use the hypercube (or pairwise) algorithm for it.
        // Count vectors come from the buffer pool — this phase runs every
        // superstep, so avoiding its `q` tiny allocations matters.
        let counts: Vec<Vec<u64>> = (0..q)
            .map(|k| {
                let mut c: PooledBuf<u64> = self.pooled_buf();
                c.push(bufs[k].len() as u64);
                c.detach()
            })
            .collect();
        let algo = if q.is_power_of_two() {
            AllToAll::Hypercube
        } else {
            AllToAll::Pairwise
        };
        let incoming_counts = self.alltoallv(g, counts, algo);
        // Phase 2: only nonempty pairs exchange.
        for k in 0..q {
            if k != me && !bufs[k].is_empty() {
                let buf = std::mem::take(&mut bufs[k]);
                let w = words_of::<T>(buf.len());
                self.send_counted(g.member(k), buf, w);
            }
        }
        let out = (0..q)
            .map(|k| {
                if k == me {
                    std::mem::take(&mut bufs[me])
                } else if incoming_counts[k].first().copied().unwrap_or(0) > 0 {
                    self.recv::<Vec<T>>(g.member(k))
                } else {
                    Vec::new()
                }
            })
            .collect();
        // Recycle the count vectors' allocations into the pool.
        for c in incoming_counts {
            drop(self.adopt_buf(c));
        }
        out
    }

    /// Gather to group index `root_idx`: root returns all contributions
    /// (indexed by group index), others return `None`.
    pub fn gatherv<T: Send + 'static>(
        &mut self,
        g: &Group,
        root_idx: usize,
        mine: Vec<T>,
    ) -> Option<Vec<Vec<T>>> {
        let span = self.span_open(SpanKind::Gatherv);
        let out = self.gatherv_inner(g, root_idx, mine);
        self.span_close(span);
        out
    }

    fn gatherv_inner<T: Send + 'static>(
        &mut self,
        g: &Group,
        root_idx: usize,
        mine: Vec<T>,
    ) -> Option<Vec<Vec<T>>> {
        let q = g.size();
        let me = g.my_index();
        if me != root_idx {
            let w = words_of::<T>(mine.len());
            self.send_counted(g.member(root_idx), mine, w);
            return None;
        }
        let mut mine = Some(mine);
        let mut out: Vec<Vec<T>> = Vec::with_capacity(q);
        for k in 0..q {
            if k == me {
                out.push(mine.take().expect("own contribution consumed once"));
            } else {
                out.push(self.recv::<Vec<T>>(g.member(k)));
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_spmd;
    use crate::cost::EDISON;
    use crate::run_spmd_with_model;

    fn expected_alltoall(p: usize, me: usize) -> Vec<Vec<u64>> {
        // Rank s sends [s*100 + d; s + 1] to rank d.
        (0..p).map(|s| vec![(s * 100 + me) as u64; s + 1]).collect()
    }

    fn alltoall_inputs(p: usize, me: usize) -> Vec<Vec<u64>> {
        (0..p)
            .map(|d| vec![(me * 100 + d) as u64; me + 1])
            .collect()
    }

    #[test]
    fn barrier_completes_all_sizes() {
        for p in [1, 2, 3, 5, 8] {
            run_spmd(p, |c| {
                let w = c.world();
                for _ in 0..3 {
                    c.barrier(&w);
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn bcast_all_roots_all_sizes() {
        for p in [1, 2, 3, 4, 7, 8] {
            for root in 0..p {
                let out = run_spmd(p, move |c| {
                    let w = c.world();
                    let data = (c.rank() == root).then(|| vec![42u64, root as u64]);
                    c.bcast_vec(&w, root, data)
                })
                .unwrap();
                for v in out {
                    assert_eq!(v, vec![42, root as u64]);
                }
            }
        }
    }

    #[test]
    fn bcast_scalar() {
        let out = run_spmd(5, |c| {
            let w = c.world();
            c.bcast(&w, 2, (c.rank() == 2).then_some(99u32))
        })
        .unwrap();
        assert!(out.iter().all(|&v| v == 99));
    }

    #[test]
    fn allgatherv_various_sizes() {
        for p in [1, 2, 3, 4, 6, 9] {
            let out = run_spmd(p, |c| {
                let w = c.world();
                let mine: Vec<u64> = (0..c.rank() + 1)
                    .map(|i| (c.rank() * 10 + i) as u64)
                    .collect();
                c.allgatherv(&w, mine)
            })
            .unwrap();
            for gathered in out {
                for (src, block) in gathered.iter().enumerate() {
                    let expect: Vec<u64> = (0..src + 1).map(|i| (src * 10 + i) as u64).collect();
                    assert_eq!(block, &expect);
                }
            }
        }
    }

    #[test]
    fn allgatherv_empty_contributions() {
        let out = run_spmd(4, |c| {
            let w = c.world();
            let mine: Vec<u64> = if c.rank() % 2 == 0 {
                vec![]
            } else {
                vec![c.rank() as u64]
            };
            c.allgatherv(&w, mine)
        })
        .unwrap();
        assert_eq!(out[0], vec![vec![], vec![1], vec![], vec![3]]);
    }

    #[test]
    fn allreduce_sum_and_min() {
        let out = run_spmd(7, |c| {
            let w = c.world();
            let sum = c.allreduce(&w, c.rank() as u64, |a, b| a + b);
            let min = c.allreduce(&w, 100 - c.rank() as i64, |a, b| a.min(b));
            (sum, min)
        })
        .unwrap();
        assert!(out.iter().all(|&(s, m)| s == 21 && m == 94));
    }

    #[test]
    fn allreduce_counted_charges_payload_size() {
        // A vector allreduce must cost more when declared larger.
        let clock = |words: u64| {
            let out = run_spmd_with_model(4, EDISON.lacc_model(), move |c| {
                let w = c.world();
                let v: Vec<u64> = vec![1; words as usize];
                c.allreduce_counted(&w, v, words, |a, b| {
                    a.iter().zip(&b).map(|(x, y)| x + y).collect()
                });
                c.clock_s()
            })
            .unwrap();
            out.into_iter().fold(0.0f64, f64::max)
        };
        assert!(clock(10_000) > clock(10));
    }

    #[test]
    fn reduce_scatter_sums_columns() {
        let p = 4;
        let out = run_spmd(p, |c| {
            let w = c.world();
            // parts[k][j] = rank * 1 (length k + 1)
            let parts: Vec<Vec<u64>> = (0..p).map(|k| vec![c.rank() as u64; k + 1]).collect();
            c.reduce_scatter(&w, parts, |a, b| *a += b)
        })
        .unwrap();
        for (k, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![6u64; k + 1]); // ranks 0+1+2+3
        }
    }

    #[test]
    fn alltoallv_all_algorithms_agree() {
        for p in [1, 2, 3, 4, 5, 8] {
            for algo in [
                AllToAll::Direct,
                AllToAll::Pairwise,
                AllToAll::Hypercube,
                AllToAll::Sparse,
            ] {
                let out = run_spmd(p, move |c| {
                    let w = c.world();
                    c.alltoallv(&w, alltoall_inputs(p, c.rank()), algo)
                })
                .unwrap();
                for (me, got) in out.into_iter().enumerate() {
                    assert_eq!(got, expected_alltoall(p, me), "p={p} algo={algo:?} me={me}");
                }
            }
        }
    }

    #[test]
    fn alltoallv_with_empty_buckets() {
        for algo in [
            AllToAll::Direct,
            AllToAll::Pairwise,
            AllToAll::Hypercube,
            AllToAll::Sparse,
        ] {
            let out = run_spmd(4, move |c| {
                let w = c.world();
                // Only rank 0 sends anything, and only to rank 3.
                let mut bufs: Vec<Vec<u64>> = vec![vec![]; 4];
                if c.rank() == 0 {
                    bufs[3] = vec![7, 8, 9];
                }
                c.alltoallv(&w, bufs, algo)
            })
            .unwrap();
            assert_eq!(out[3][0], vec![7, 8, 9], "{algo:?}");
            assert!(out[1].iter().all(|v| v.is_empty()));
        }
    }

    #[test]
    fn sparse_alltoall_sends_fewer_messages() {
        // One nonempty bucket: sparse should send far fewer point-to-point
        // messages than pairwise.
        let count_msgs = |algo: AllToAll| {
            let out = run_spmd_with_model(8, EDISON.lacc_model(), move |c| {
                let w = c.world();
                let mut bufs: Vec<Vec<u64>> = vec![vec![]; 8];
                if c.rank() == 0 {
                    bufs[1] = vec![1; 1000];
                }
                c.alltoallv(&w, bufs, algo);
                c.snapshot().messages_sent
            })
            .unwrap();
            out.iter().sum::<u64>()
        };
        let pairwise = count_msgs(AllToAll::Pairwise);
        let sparse = count_msgs(AllToAll::Sparse);
        // Sparse pays the metadata exchange (hypercube: 8·3 msgs) plus one
        // data message; pairwise sends 8·7.
        assert!(sparse < pairwise, "sparse={sparse} pairwise={pairwise}");
    }

    #[test]
    fn hypercube_has_lower_latency_charge() {
        let p = 16;
        let clock_for = |algo: AllToAll| {
            let out = run_spmd_with_model(p, EDISON.lacc_model(), move |c| {
                let w = c.world();
                let bufs: Vec<Vec<u64>> = (0..p).map(|_| vec![1u64; 4]).collect();
                c.alltoallv(&w, bufs, algo);
                c.clock_s()
            })
            .unwrap();
            out.into_iter().fold(0.0f64, f64::max)
        };
        // With tiny buckets the α term dominates: hypercube (log p rounds)
        // must beat pairwise (p − 1 rounds).
        assert!(clock_for(AllToAll::Hypercube) < clock_for(AllToAll::Pairwise));
    }

    #[test]
    fn gatherv_collects_at_root() {
        let out = run_spmd(5, |c| {
            let w = c.world();
            c.gatherv(&w, 2, vec![c.rank() as u64])
        })
        .unwrap();
        for (r, res) in out.iter().enumerate() {
            if r == 2 {
                let v = res.as_ref().unwrap();
                assert_eq!(v.len(), 5);
                assert_eq!(v[4], vec![4]);
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn collectives_on_subgroups() {
        let out = run_spmd(6, |c| {
            // Two groups: evens and odds.
            let members: Vec<usize> = (0..6).filter(|r| r % 2 == c.rank() % 2).collect();
            let g = c.group(members);
            let sum = c.allreduce(&g, c.rank() as u64, |a, b| a + b);
            c.barrier(&g);
            sum
        })
        .unwrap();
        assert_eq!(out, vec![6, 9, 6, 9, 6, 9]);
    }
}
