//! The SPMD launcher, point-to-point messaging, and rank groups.
//!
//! Ranks are OS threads; each rank owns a single MPMC inbox. Messages are
//! typed (`Box<dyn Any + Send>`) and matched by *source rank* with
//! per-source FIFO ordering, which is exactly the guarantee MPI gives for
//! a single communicator and tag.
//!
//! Every envelope carries the sender's simulated clock at completion of the
//! send, so a receive advances the receiver's simulated clock to at least
//! the message's arrival time. This makes the final per-rank clocks a
//! BSP-style makespan under the α-β model without any global coordination.

use crate::cost::{CostSnapshot, MachineModel};
use std::any::{Any, TypeId};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

type Payload = Box<dyn Any + Send>;

/// Per-rank recycling pool for scratch `Vec`s.
///
/// Collectives and distributed kernels run the same exchange shapes every
/// superstep; without pooling each round allocates (and drops) a fresh
/// `Vec` per peer. The pool keeps returned buffers keyed by element type
/// so the next round's [`BufferPool::take`] is an O(1) pop + `clear()`
/// instead of a heap allocation. Buffers keep their capacity, so steady
/// state reaches zero allocations per superstep.
#[derive(Default)]
pub struct BufferPool {
    by_type: HashMap<TypeId, Vec<Box<dyn Any + Send>>>,
}

impl BufferPool {
    /// Takes an empty `Vec<T>` from the pool (allocating only if the pool
    /// has none of this type). The vector is empty but retains whatever
    /// capacity it had when returned.
    pub fn take<T: Send + 'static>(&mut self) -> Vec<T> {
        match self
            .by_type
            .get_mut(&TypeId::of::<Vec<T>>())
            .and_then(Vec::pop)
        {
            Some(boxed) => {
                let mut v = *boxed.downcast::<Vec<T>>().expect("pool keyed by TypeId");
                v.clear();
                v
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer to the pool for reuse by a later [`BufferPool::take`].
    pub fn put<T: Send + 'static>(&mut self, buf: Vec<T>) {
        // Keeping zero-capacity vectors would just grow the free list.
        if buf.capacity() == 0 {
            return;
        }
        self.by_type
            .entry(TypeId::of::<Vec<T>>())
            .or_default()
            .push(Box::new(buf));
    }

    /// Number of pooled buffers of element type `T`.
    pub fn pooled<T: Send + 'static>(&self) -> usize {
        self.by_type
            .get(&TypeId::of::<Vec<T>>())
            .map_or(0, Vec::len)
    }
}

struct Envelope {
    src: u32,
    /// Simulated arrival time at the receiver.
    arrival: f64,
    /// 8-byte words in the payload (for receiver-side accounting).
    words: u64,
    payload: Payload,
}

/// A subset of ranks participating in a collective (MPI communicator /
/// group). Constructed via [`Comm::world`] or [`Comm::group`].
#[derive(Clone, Debug)]
pub struct Group {
    ranks: Vec<usize>,
    my_index: usize,
}

impl Group {
    /// Number of members.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// This rank's index within the group.
    pub fn my_index(&self) -> usize {
        self.my_index
    }

    /// World rank of group member `i`.
    pub fn member(&self, i: usize) -> usize {
        self.ranks[i]
    }

    /// All member ranks.
    pub fn members(&self) -> &[usize] {
        &self.ranks
    }
}

/// Per-rank handle to the simulated machine: messaging, collectives
/// (see [`crate::collectives`]), and cost accounting.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Envelope>>>,
    rx: Receiver<Envelope>,
    /// Out-of-order buffer: messages that arrived before being asked for.
    pending: Vec<VecDeque<(f64, u64, Payload)>>,
    model: MachineModel,
    snap: CostSnapshot,
    pool: BufferPool,
}

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cost model in effect.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// The group of all ranks.
    pub fn world(&self) -> Group {
        Group {
            ranks: (0..self.size).collect(),
            my_index: self.rank,
        }
    }

    /// A group over an explicit rank list (must contain this rank; ranks
    /// must be distinct).
    pub fn group(&self, ranks: Vec<usize>) -> Group {
        let my_index = ranks
            .iter()
            .position(|&r| r == self.rank)
            .expect("group must contain the calling rank");
        debug_assert!(
            {
                let mut s = ranks.clone();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1]) && s.iter().all(|&r| r < self.size)
            },
            "group ranks must be distinct and in range"
        );
        Group { ranks, my_index }
    }

    /// Charges `ops` local operations (edges scanned, vector elements
    /// touched) against the simulated clock.
    pub fn charge_compute(&mut self, ops: u64) {
        let t = ops as f64 / self.model.rate;
        self.snap.compute_s += t;
        self.snap.clock_s += t;
    }

    /// Charges `words` of modeled communication volume (β only) without a
    /// corresponding simulated message. Used when an algorithm being
    /// modeled moves data the simulation represents implicitly — e.g. the
    /// ParConnect simulation's sort-based tuple shuffles.
    pub fn charge_comm_words(&mut self, words: u64) {
        let t = self.model.beta * words as f64;
        self.snap.comm_s += t;
        self.snap.clock_s += t;
        self.snap.words_sent += words;
    }

    /// Takes a recycled scratch `Vec<T>` (empty, capacity preserved) from
    /// this rank's [`BufferPool`].
    pub fn take_buf<T: Send + 'static>(&mut self) -> Vec<T> {
        self.pool.take()
    }

    /// Returns a scratch buffer for reuse by a later [`Comm::take_buf`].
    pub fn put_buf<T: Send + 'static>(&mut self, buf: Vec<T>) {
        self.pool.put(buf);
    }

    /// This rank's buffer pool (for inspection in tests).
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Current accounting snapshot (clock, breakdowns, traffic counters).
    pub fn snapshot(&self) -> CostSnapshot {
        self.snap
    }

    /// Current simulated clock in seconds.
    pub fn clock_s(&self) -> f64 {
        self.snap.clock_s
    }

    /// Sends `msg` to `dest`, charging `α + β·words` to this rank.
    ///
    /// `words` is the payload size in 8-byte words; use
    /// [`words_of`] for slices. Self-sends are free (local move).
    pub fn send_counted<T: Send + 'static>(&mut self, dest: usize, msg: T, words: u64) {
        if dest == self.rank {
            self.pending[dest].push_back((self.snap.clock_s, 0, Box::new(msg)));
            return;
        }
        let cost = self.model.alpha + self.model.beta * words as f64;
        self.snap.comm_s += cost;
        self.snap.clock_s += cost;
        self.snap.messages_sent += 1;
        self.snap.words_sent += words;
        let env = Envelope {
            src: self.rank as u32,
            arrival: self.snap.clock_s,
            words,
            payload: Box::new(msg),
        };
        // Receiver threads outlive all sends within `run_spmd`, so the
        // channel cannot be disconnected here.
        self.senders[dest]
            .send(env)
            .expect("rank inbox disconnected");
    }

    /// Sends a sized value (scalars, small structs): the word count is
    /// derived from `size_of::<T>()`.
    pub fn send<T: Send + 'static>(&mut self, dest: usize, msg: T) {
        let words = (std::mem::size_of::<T>() as u64).div_ceil(8);
        self.send_counted(dest, msg, words);
    }

    /// Sends a vector, counting its element storage.
    pub fn send_vec<T: Send + 'static>(&mut self, dest: usize, msg: Vec<T>) {
        let words = words_of::<T>(msg.len());
        self.send_counted(dest, msg, words);
    }

    /// Receives the next message from `src`, blocking until it arrives.
    ///
    /// Advances the simulated clock to at least the message arrival time,
    /// then charges `β·words` for the receive copy.
    ///
    /// # Panics
    /// If the next message from `src` has a different payload type — that
    /// is a protocol bug in the SPMD program.
    pub fn recv<T: Send + 'static>(&mut self, src: usize) -> T {
        loop {
            if let Some((arrival, words, payload)) = self.pending[src].pop_front() {
                self.snap.clock_s = self.snap.clock_s.max(arrival);
                let copy = self.model.beta * words as f64;
                self.snap.clock_s += copy;
                self.snap.comm_s += copy;
                self.snap.words_received += words;
                return *payload.downcast::<T>().unwrap_or_else(|_| {
                    panic!(
                        "rank {} expected {} from rank {src}, got a different type",
                        self.rank,
                        std::any::type_name::<T>()
                    )
                });
            }
            let env = self.rx.recv().expect("all senders dropped while receiving");
            self.pending[env.src as usize].push_back((env.arrival, env.words, env.payload));
        }
    }
}

/// Payload size in 8-byte words for a slice of `len` elements of `T`.
pub fn words_of<T>(len: usize) -> u64 {
    ((len * std::mem::size_of::<T>()) as u64).div_ceil(8)
}

/// Runs an SPMD program on `p` simulated ranks with the zero-cost model
/// (useful when only results matter, e.g. unit tests).
///
/// Returns per-rank results indexed by rank.
pub fn run_spmd<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    run_spmd_with_model(p, MachineModel::free(), f)
}

/// Runs an SPMD program on `p` simulated ranks under a cost model.
///
/// Each rank executes `f` on its own OS thread with a 4 MiB stack (ranks
/// are numerous; large default stacks would exhaust memory at high `p`).
pub fn run_spmd_with_model<R, F>(p: usize, model: MachineModel, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    assert!(p >= 1, "need at least one rank");
    let mut txs = Vec::with_capacity(p);
    let mut rxs = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = channel::<Envelope>();
        txs.push(tx);
        rxs.push(rx);
    }
    let senders = Arc::new(txs);
    let f = &f;
    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, rx) in rxs.into_iter().enumerate() {
            let senders = Arc::clone(&senders);
            let handle = std::thread::Builder::new()
                .name(format!("dmsim-rank-{rank}"))
                .stack_size(4 << 20)
                .spawn_scoped(scope, move || {
                    let mut comm = Comm {
                        rank,
                        size: p,
                        senders,
                        rx,
                        pending: (0..p).map(|_| VecDeque::new()).collect(),
                        model,
                        snap: CostSnapshot::default(),
                        pool: BufferPool::default(),
                    };
                    let r = f(&mut comm);
                    (r, comm.snap)
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }
        for (rank, h) in handles.into_iter().enumerate() {
            let (r, _snap) = h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
            results[rank] = Some(r);
        }
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EDISON;

    #[test]
    fn ranks_see_their_ids() {
        let ids = run_spmd(5, |c| (c.rank(), c.size()));
        assert_eq!(ids, (0..5).map(|r| (r, 5)).collect::<Vec<_>>());
    }

    #[test]
    fn point_to_point_ring() {
        let out = run_spmd(4, |c| {
            let next = (c.rank() + 1) % 4;
            let prev = (c.rank() + 3) % 4;
            c.send(next, c.rank() as u64);
            c.recv::<u64>(prev)
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn out_of_order_sources_are_buffered() {
        let out = run_spmd(3, |c| match c.rank() {
            0 => {
                // Receive from 2 first even though 1's message likely
                // arrives earlier.
                let a = c.recv::<u32>(2);
                let b = c.recv::<u32>(1);
                a * 10 + b
            }
            r => {
                c.send(0, r as u32);
                0
            }
        });
        assert_eq!(out[0], 21);
    }

    #[test]
    fn fifo_per_source() {
        let out = run_spmd(2, |c| {
            if c.rank() == 0 {
                for i in 0..10u32 {
                    c.send(1, i);
                }
                0
            } else {
                (0..10)
                    .map(|_| c.recv::<u32>(0))
                    .collect::<Vec<_>>()
                    .windows(2)
                    .all(|w| w[0] < w[1]) as u32
            }
        });
        assert_eq!(out[1], 1);
    }

    #[test]
    fn self_send_is_free_and_works() {
        let out = run_spmd_with_model(1, EDISON.lacc_model(), |c| {
            c.send_vec(0, vec![1u64, 2, 3]);
            let v = c.recv::<Vec<u64>>(0);
            (v, c.snapshot().messages_sent, c.clock_s())
        });
        assert_eq!(out[0].0, vec![1, 2, 3]);
        assert_eq!(out[0].1, 0);
        assert_eq!(out[0].2, 0.0);
    }

    #[test]
    fn send_charges_alpha_beta() {
        let model = EDISON.lacc_model();
        let out = run_spmd_with_model(2, model, |c| {
            if c.rank() == 0 {
                c.send_vec(1, vec![0u64; 1000]);
            } else {
                let _ = c.recv::<Vec<u64>>(0);
            }
            c.snapshot()
        });
        let sender = out[0];
        assert_eq!(sender.words_sent, 1000);
        assert!((sender.clock_s - (model.alpha + model.beta * 1000.0)).abs() < 1e-12);
        // Receiver clock: arrival + receive copy.
        let recv = out[1];
        assert_eq!(recv.words_received, 1000);
        assert!(recv.clock_s >= sender.clock_s);
    }

    #[test]
    fn clock_propagates_through_receives() {
        let model = EDISON.lacc_model();
        let out = run_spmd_with_model(3, model, |c| {
            // 0 does heavy compute, then sends to 1, who forwards to 2.
            match c.rank() {
                0 => {
                    c.charge_compute(1_000_000_000);
                    c.send(1, ());
                }
                1 => {
                    c.recv::<()>(0);
                    c.send(2, ());
                }
                2 => {
                    c.recv::<()>(1);
                }
                _ => unreachable!(),
            }
            c.clock_s()
        });
        // Rank 2's clock must reflect rank 0's compute time transitively.
        assert!(out[2] >= out[0]);
        assert!(out[0] >= 1_000_000_000.0 / model.rate);
    }

    #[test]
    fn charge_compute_accumulates() {
        let out = run_spmd_with_model(1, EDISON.lacc_model(), |c| {
            c.charge_compute(100);
            c.charge_compute(200);
            c.snapshot()
        });
        assert!(out[0].compute_s > 0.0);
        assert_eq!(out[0].clock_s, out[0].compute_s);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn type_mismatch_panics() {
        run_spmd(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7u32);
            } else {
                let _ = c.recv::<u64>(0);
            }
        });
    }

    #[test]
    fn group_membership() {
        run_spmd(6, |c| {
            if c.rank() % 2 == 0 {
                let g = c.group(vec![0, 2, 4]);
                assert_eq!(g.size(), 3);
                assert_eq!(g.member(g.my_index()), c.rank());
            }
        });
    }

    #[test]
    fn charge_comm_words_adds_beta_time() {
        let model = EDISON.lacc_model();
        let out = run_spmd_with_model(1, model, |c| {
            c.charge_comm_words(1_000_000);
            c.snapshot()
        });
        assert!((out[0].comm_s - model.beta * 1e6).abs() < 1e-12);
        assert_eq!(out[0].words_sent, 1_000_000);
        assert_eq!(out[0].messages_sent, 0, "no simulated message involved");
    }

    #[test]
    fn buffer_pool_recycles_capacity() {
        run_spmd(1, |c| {
            let mut v: Vec<u64> = c.take_buf();
            assert_eq!(v.capacity(), 0, "fresh pool allocates nothing");
            v.extend(0..100);
            let cap = v.capacity();
            let ptr = v.as_ptr();
            c.put_buf(v);
            assert_eq!(c.buffer_pool().pooled::<u64>(), 1);
            let w: Vec<u64> = c.take_buf();
            assert!(w.is_empty());
            assert_eq!(w.capacity(), cap, "capacity survives recycling");
            assert_eq!(w.as_ptr(), ptr, "same allocation handed back");
            // Distinct element types are pooled independently.
            c.put_buf(vec![1u32; 4]);
            assert_eq!(c.buffer_pool().pooled::<u64>(), 0);
            assert_eq!(c.buffer_pool().pooled::<u32>(), 1);
        });
    }

    #[test]
    fn words_of_rounds_up() {
        assert_eq!(words_of::<u8>(9), 2);
        assert_eq!(words_of::<u64>(3), 3);
        assert_eq!(words_of::<(u64, u64)>(2), 4);
        assert_eq!(words_of::<u64>(0), 0);
    }
}
