//! The SPMD launcher, point-to-point messaging, and rank groups.
//!
//! Ranks are OS threads; each rank owns a single MPMC inbox. Messages are
//! typed (`Box<dyn Any + Send>`) and matched by *source rank* with
//! per-source FIFO ordering, which is exactly the guarantee MPI gives for
//! a single communicator and tag.
//!
//! Every envelope carries the sender's simulated clock at completion of the
//! send, so a receive advances the receiver's simulated clock to at least
//! the message's arrival time. This makes the final per-rank clocks a
//! BSP-style makespan under the α-β model without any global coordination.
//!
//! Rank panics are captured: [`run_spmd`] and friends return
//! `Result<Vec<R>, DmsimError>` where the error carries the failing rank
//! and its panic payload. Tracing (see [`crate::trace`]) hangs off the
//! same launchers via [`run_spmd_traced`].

use crate::cost::{CostSnapshot, MachineModel};
use crate::trace::{RankTrace, Span, SpanKind, TraceLevel, TraceLocal, TraceSink};
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::ops::{Deref, DerefMut};
use std::rc::Rc;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

type Payload = Box<dyn Any + Send>;

/// Per-rank recycling pool for scratch `Vec`s.
///
/// Collectives and distributed kernels run the same exchange shapes every
/// superstep; without pooling each round allocates (and drops) a fresh
/// `Vec` per peer. The pool keeps returned buffers keyed by element type
/// so the next round's [`BufferPool::take`] is an O(1) pop + `clear()`
/// instead of a heap allocation. Buffers keep their capacity, so steady
/// state reaches zero allocations per superstep.
///
/// User code does not touch the pool directly: [`Comm::pooled_buf`] hands
/// out RAII [`PooledBuf`] guards that return themselves here on drop.
#[derive(Default)]
pub struct BufferPool {
    by_type: HashMap<TypeId, Vec<Box<dyn Any + Send>>>,
}

impl BufferPool {
    /// Takes an empty `Vec<T>` from the pool (allocating only if the pool
    /// has none of this type). The vector is empty but retains whatever
    /// capacity it had when returned.
    pub fn take<T: Send + 'static>(&mut self) -> Vec<T> {
        match self
            .by_type
            .get_mut(&TypeId::of::<Vec<T>>())
            .and_then(Vec::pop)
        {
            Some(boxed) => {
                let mut v = *boxed.downcast::<Vec<T>>().expect("pool keyed by TypeId");
                v.clear();
                v
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer to the pool for reuse by a later [`BufferPool::take`].
    pub fn put<T: Send + 'static>(&mut self, buf: Vec<T>) {
        // Keeping zero-capacity vectors would just grow the free list.
        if buf.capacity() == 0 {
            return;
        }
        self.by_type
            .entry(TypeId::of::<Vec<T>>())
            .or_default()
            .push(Box::new(buf));
    }

    /// Number of pooled buffers of element type `T`.
    pub fn pooled<T: Send + 'static>(&self) -> usize {
        self.by_type
            .get(&TypeId::of::<Vec<T>>())
            .map_or(0, Vec::len)
    }
}

/// RAII guard over a pooled scratch `Vec<T>`: derefs to the vector and
/// returns it to the rank's [`BufferPool`] on drop, so take/put pairing
/// can no longer leak on early returns.
///
/// Obtain one via [`Comm::pooled_buf`] (empty, capacity recycled) or
/// [`Comm::adopt_buf`] (wraps an existing vector, e.g. one received from a
/// peer, so its allocation is recycled after use). To move the underlying
/// vector out — typically to send it — call [`PooledBuf::detach`].
pub struct PooledBuf<T: Send + 'static> {
    buf: Option<Vec<T>>,
    pool: Rc<RefCell<BufferPool>>,
}

impl<T: Send + 'static> PooledBuf<T> {
    /// Detaches the underlying vector, consuming the guard without
    /// returning the buffer to the pool (the receiver of the vector now
    /// owns the allocation).
    pub fn detach(mut self) -> Vec<T> {
        self.buf.take().expect("buffer present until drop")
    }
}

impl<T: Send + 'static> Deref for PooledBuf<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        self.buf.as_ref().expect("buffer present until drop")
    }
}

impl<T: Send + 'static> DerefMut for PooledBuf<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        self.buf.as_mut().expect("buffer present until drop")
    }
}

impl<T: Send + 'static> Drop for PooledBuf<T> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.borrow_mut().put(buf);
        }
    }
}

impl<T: Send + 'static + std::fmt::Debug> std::fmt::Debug for PooledBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("PooledBuf").field(&**self).finish()
    }
}

/// Error returned when one or more ranks of an SPMD program panicked.
///
/// Carries the lowest failing rank and that rank's panic payload (the
/// value passed to `panic!`, usually a `String` or `&str`).
pub struct DmsimError {
    /// The (lowest-numbered) rank that panicked.
    pub rank: usize,
    /// That rank's panic payload.
    pub payload: Box<dyn Any + Send + 'static>,
}

impl DmsimError {
    /// The panic message, if the payload was a string (the common case);
    /// `"<non-string panic payload>"` otherwise.
    pub fn message(&self) -> &str {
        if let Some(s) = self.payload.downcast_ref::<&'static str>() {
            s
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s
        } else {
            "<non-string panic payload>"
        }
    }
}

impl std::fmt::Debug for DmsimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DmsimError")
            .field("rank", &self.rank)
            .field("message", &self.message())
            .finish()
    }
}

impl std::fmt::Display for DmsimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} panicked: {}", self.rank, self.message())
    }
}

impl std::error::Error for DmsimError {}

struct Envelope {
    src: u32,
    /// Simulated arrival time at the receiver.
    arrival: f64,
    /// 8-byte words in the payload (for receiver-side accounting).
    words: u64,
    /// Exact payload bytes (for receiver-side byte accounting).
    bytes: u64,
    payload: Payload,
}

/// A subset of ranks participating in a collective (MPI communicator /
/// group). Constructed via [`Comm::world`] or [`Comm::group`].
#[derive(Clone, Debug)]
pub struct Group {
    ranks: Vec<usize>,
    my_index: usize,
}

impl Group {
    /// Number of members.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// This rank's index within the group.
    pub fn my_index(&self) -> usize {
        self.my_index
    }

    /// World rank of group member `i`.
    pub fn member(&self, i: usize) -> usize {
        self.ranks[i]
    }

    /// All member ranks.
    pub fn members(&self) -> &[usize] {
        &self.ranks
    }
}

/// Handle to a posted non-blocking operation (see [`Comm::post`]).
///
/// The simulator executes the operation *eagerly* at post time — the
/// message pattern, payloads, and α-β charges are exactly those of the
/// blocking call, so results and traffic counters cannot depend on the
/// overlap flag. What the handle defers is the *clock*: it remembers how
/// much of the operation's charged time was hideable exchange time
/// (β transfers and synchronization waits; α posts and the operation's
/// own local compute are not hideable), and [`CommHandle::wait`] credits
/// back `min(hideable, time elapsed since the post)` — the portion of
/// the exchange that genuinely ran behind the caller's local work. The
/// credit is subtracted from the clock and accumulated in
/// [`CostSnapshot::overlap_hidden_s`]; the clock never rewinds past the
/// post-time completion point, so causality (message arrival stamps,
/// downstream receives) is preserved.
#[must_use = "a posted operation must be completed with wait()"]
pub struct CommHandle<T> {
    value: Option<T>,
    hideable_s: f64,
    /// The rank clock at (eager) completion of the posted operation.
    post_clock_s: f64,
}

impl<T> CommHandle<T> {
    /// Whether enough local work has elapsed since the post for the whole
    /// hideable portion to be hidden — i.e. `wait` would apply the full
    /// credit and return immediately in a real implementation.
    pub fn test(&self, comm: &Comm) -> bool {
        comm.clock_s() - self.post_clock_s >= self.hideable_s
    }

    /// The hideable exchange seconds recorded at post time (0 when the
    /// operation was posted with overlap disabled).
    pub fn hideable_s(&self) -> f64 {
        self.hideable_s
    }

    /// Borrows the operation's (eagerly computed) result without
    /// completing it. This models *streaming consumption*: a real
    /// non-blocking implementation hands received fragments to the
    /// consumer as they arrive, so compute that processes the payload can
    /// run while the tail of the transfer is still in flight. Charge that
    /// compute between [`Comm::post`] and [`CommHandle::wait`] and the
    /// wait credits the hidden portion back to the clock.
    pub fn peek(&self) -> &T {
        self.value
            .as_ref()
            .expect("handle holds the result until wait")
    }

    /// Completes the operation: credits `min(hideable, elapsed since
    /// post)` back to the clock (recorded in
    /// [`CostSnapshot::overlap_hidden_s`] and as a
    /// [`SpanKind::Overlap`] span) and returns the operation's result.
    pub fn wait(mut self, comm: &mut Comm) -> T {
        let elapsed = (comm.snap.clock_s - self.post_clock_s).max(0.0);
        let credit = elapsed.min(self.hideable_s);
        comm.apply_overlap_credit(credit);
        self.value
            .take()
            .expect("handle holds the result until wait")
    }
}

/// Token marking the start of a local-compute window whose time may hide
/// a *later* exchange (see [`Comm::overlap_window`] /
/// [`Comm::overlap_from`]). The mirror image of [`CommHandle`]: instead
/// of posting the exchange first and overlapping compute after it, the
/// compute runs first and the exchange that follows is credited against
/// it. This fits pipelined loops where iteration `i`'s exchange can only
/// be *initiated* after data from iteration `i−1` is final, but its
/// transfer time would, in a real non-blocking implementation, progress
/// while the preceding independent compute was still running.
#[must_use = "an overlap window is only useful if passed to overlap_from"]
pub struct OverlapWindow {
    start_clock_s: f64,
}

/// Per-rank handle to the simulated machine: messaging, collectives
/// (see [`crate::collectives`]), cost accounting, and span tracing
/// (see [`crate::trace`]).
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Envelope>>>,
    rx: Receiver<Envelope>,
    /// Out-of-order buffer: messages that arrived before being asked for.
    pending: Vec<VecDeque<(f64, u64, u64, Payload)>>,
    model: MachineModel,
    snap: CostSnapshot,
    /// Raw count of local operations charged (denominator-free companion
    /// to `snap.compute_s`; reported in trace spans).
    ops_charged: u64,
    pool: Rc<RefCell<BufferPool>>,
    /// Installed label dictionary for the dictionary narrowing tier (see
    /// [`crate::wire::NarrowDict`]); `None` until the probe layer installs
    /// one and after invalidation.
    narrow_dict: Option<Arc<crate::wire::NarrowDict>>,
    /// Monotone count of dictionary installs on this rank; used as the
    /// epoch of the next installed dictionary so stale decodes are caught.
    narrow_epoch: u64,
    trace: TraceLocal,
    sink: Option<Arc<TraceSink>>,
}

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cost model in effect.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// The group of all ranks.
    pub fn world(&self) -> Group {
        Group {
            ranks: (0..self.size).collect(),
            my_index: self.rank,
        }
    }

    /// A group over an explicit rank list (must contain this rank; ranks
    /// must be distinct).
    pub fn group(&self, ranks: Vec<usize>) -> Group {
        let my_index = ranks
            .iter()
            .position(|&r| r == self.rank)
            .expect("group must contain the calling rank");
        debug_assert!(
            {
                let mut s = ranks.clone();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1]) && s.iter().all(|&r| r < self.size)
            },
            "group ranks must be distinct and in range"
        );
        Group { ranks, my_index }
    }

    /// Charges `ops` local operations (edges scanned, vector elements
    /// touched) against the simulated clock.
    pub fn charge_compute(&mut self, ops: u64) {
        let t = ops as f64 / self.model.rate;
        self.snap.compute_s += t;
        self.snap.clock_s += t;
        self.ops_charged += ops;
    }

    /// Charges `words` of modeled communication volume (β only) without a
    /// corresponding simulated message. Used when an algorithm being
    /// modeled moves data the simulation represents implicitly — e.g. the
    /// ParConnect simulation's sort-based tuple shuffles.
    pub fn charge_comm_words(&mut self, words: u64) {
        let t = self.model.beta * words as f64;
        self.snap.comm_s += t;
        self.snap.clock_s += t;
        self.snap.words_sent += words;
        self.snap.bytes_sent += words * 8;
    }

    /// Records `words` of communication volume that sender-side compaction
    /// (request dedup, monoid pre-combining, id compression) kept off the
    /// wire. Purely observational: it feeds [`CostSnapshot::words_saved`]
    /// and the trace report, never the clock — the savings themselves are
    /// already realized by the smaller payloads actually sent.
    pub fn note_words_saved(&mut self, words: u64) {
        self.snap.words_saved += words;
    }

    /// Records `words` of communication volume eliminated *in flight* by a
    /// combining collective: entries from different origins that merged at
    /// a store-and-forward hop on this rank before being forwarded. Like
    /// [`Comm::note_words_saved`], purely observational — it feeds
    /// [`CostSnapshot::combined_words`] and the trace report, never the
    /// clock, which already reflects the smaller forwarded payloads.
    pub fn note_combined_words(&mut self, words: u64) {
        self.snap.combined_words += words;
    }

    /// Records a full LACC recompute (a serving-layer epoch rebuild).
    /// Purely observational — it feeds [`CostSnapshot::reruns`] and the
    /// trace report, never the clock. Callers note each rebuild on one
    /// rank only (rank 0), so summing snapshots counts each p-rank rerun
    /// exactly once.
    pub fn note_rerun(&mut self) {
        self.snap.reruns += 1;
    }

    /// Records `bytes` of payload kept off the wire by a dynamic narrowing
    /// tier (raw-`u16` or dictionary codes; see [`crate::wire::NarrowTier`]).
    /// Purely observational — it feeds [`CostSnapshot::narrow_saved_bytes`]
    /// and the trace report, never the clock, which already reflects the
    /// narrower payloads actually sent.
    pub fn note_narrow_saved(&mut self, bytes: u64) {
        self.snap.narrow_saved_bytes += bytes;
    }

    /// Installs a narrowing dictionary for the dictionary wire tier,
    /// stamping it with the next epoch on this rank. Callers install the
    /// *same* value set on every rank in the same superstep, so epochs
    /// (install counts) agree across ranks and a stale dictionary is
    /// caught by the decode-side epoch assert. Returns the installed
    /// dictionary.
    pub fn install_narrow_dict(&mut self, values: Vec<u64>) -> Arc<crate::wire::NarrowDict> {
        self.narrow_epoch += 1;
        let d = Arc::new(crate::wire::NarrowDict::new(self.narrow_epoch, values));
        self.narrow_dict = Some(Arc::clone(&d));
        d
    }

    /// The currently installed narrowing dictionary, if any.
    pub fn narrow_dict(&self) -> Option<Arc<crate::wire::NarrowDict>> {
        self.narrow_dict.clone()
    }

    /// Drops the installed narrowing dictionary (e.g. after a shortcut
    /// step rewrites labels, making the dense-rank remap stale for
    /// tightness even though the value set only shrinks).
    pub fn invalidate_narrow_dict(&mut self) {
        self.narrow_dict = None;
    }

    /// Takes a recycled scratch buffer (empty `Vec<T>`, capacity
    /// preserved) from this rank's [`BufferPool`]. The guard returns the
    /// buffer to the pool when dropped; [`PooledBuf::detach`] moves the
    /// vector out instead (e.g. to send it).
    pub fn pooled_buf<T: Send + 'static>(&self) -> PooledBuf<T> {
        PooledBuf {
            buf: Some(self.pool.borrow_mut().take()),
            pool: Rc::clone(&self.pool),
        }
    }

    /// Wraps an existing vector (typically one received from a peer) in a
    /// [`PooledBuf`] guard so its allocation is recycled when dropped.
    pub fn adopt_buf<T: Send + 'static>(&self, buf: Vec<T>) -> PooledBuf<T> {
        PooledBuf {
            buf: Some(buf),
            pool: Rc::clone(&self.pool),
        }
    }

    /// Number of idle pooled buffers of element type `T` (for tests).
    pub fn pooled_count<T: Send + 'static>(&self) -> usize {
        self.pool.borrow().pooled::<T>()
    }

    /// Current accounting snapshot (clock, breakdowns, traffic counters).
    pub fn snapshot(&self) -> CostSnapshot {
        self.snap
    }

    /// Current simulated clock in seconds.
    pub fn clock_s(&self) -> f64 {
        self.snap.clock_s
    }

    /// The trace level this rank records at ([`TraceLevel::Off`] unless
    /// launched via [`run_spmd_traced`] with a sink).
    pub fn trace_level(&self) -> TraceLevel {
        self.trace.level
    }

    /// Opens a typed trace span at the current simulated clock. Cheap
    /// (one enum compare, no allocation) when `kind` is below the active
    /// trace level; never touches the cost accounting either way, so
    /// traced and untraced runs stay bit-identical.
    pub fn span_open(&mut self, kind: SpanKind) -> Span {
        let start_clock = self.snap.clock_s;
        if !self.trace.enabled(kind) {
            return Span {
                start_clock,
                slot: None,
            };
        }
        let words = self.snap.words_sent + self.snap.words_received;
        let slot = self.trace.open(kind, start_clock, words, self.ops_charged);
        Span {
            start_clock,
            slot: Some(slot),
        }
    }

    /// Closes a span (LIFO with respect to [`Comm::span_open`]) and
    /// returns its modeled duration in seconds — also meaningful when the
    /// span was not recorded, which lets callers reuse the span token for
    /// their own phase timing.
    pub fn span_close(&mut self, span: Span) -> f64 {
        let end = self.snap.clock_s;
        if let Some(slot) = span.slot {
            let words = self.snap.words_sent + self.snap.words_received;
            self.trace.close(slot, end, words, self.ops_charged);
        }
        end - span.start_clock
    }

    /// Drains this rank's spans into the sink (no-op when untraced).
    /// Called by the launcher after the SPMD body returns.
    fn finish_trace(&mut self) {
        if let Some(sink) = self.sink.take() {
            let spans = self.trace.drain(self.snap.clock_s);
            sink.submit(RankTrace {
                rank: self.rank,
                spans,
                snapshot: self.snap,
            });
        }
    }

    /// Sends `msg` to `dest`, charging `α + β·words` to this rank.
    ///
    /// `words` is the payload size in 8-byte words; use
    /// [`words_of`] for slices. Bytes are recorded as `words × 8`; callers
    /// that know the exact payload size use [`Comm::send_counted_bytes`].
    /// Self-sends are free (local move).
    pub fn send_counted<T: Send + 'static>(&mut self, dest: usize, msg: T, words: u64) {
        self.send_counted_bytes(dest, msg, words, words * 8);
    }

    /// [`Comm::send_counted`] with an exact byte count alongside the word
    /// count. The β charge stays word-based (the model's bandwidth unit);
    /// `bytes` feeds only the [`CostSnapshot::bytes_sent`] /
    /// [`CostSnapshot::bytes_received`] counters, which is where narrow
    /// index layouts show their true wire size.
    pub fn send_counted_bytes<T: Send + 'static>(
        &mut self,
        dest: usize,
        msg: T,
        words: u64,
        bytes: u64,
    ) {
        if dest == self.rank {
            self.pending[dest].push_back((self.snap.clock_s, 0, 0, Box::new(msg)));
            return;
        }
        let cost = self.model.alpha + self.model.beta * words as f64;
        self.snap.comm_s += cost;
        self.snap.clock_s += cost;
        self.snap.messages_sent += 1;
        self.snap.words_sent += words;
        self.snap.bytes_sent += bytes;
        let env = Envelope {
            src: self.rank as u32,
            arrival: self.snap.clock_s,
            words,
            bytes,
            payload: Box::new(msg),
        };
        // Receiver threads outlive all sends within `run_spmd`, so the
        // channel cannot be disconnected here.
        self.senders[dest]
            .send(env)
            .expect("rank inbox disconnected");
    }

    /// Sends a sized value (scalars, small structs): the word count is
    /// derived from `size_of::<T>()`.
    pub fn send<T: Send + 'static>(&mut self, dest: usize, msg: T) {
        let bytes = std::mem::size_of::<T>() as u64;
        self.send_counted_bytes(dest, msg, bytes.div_ceil(8), bytes);
    }

    /// Sends a vector, counting its element storage.
    pub fn send_vec<T: Send + 'static>(&mut self, dest: usize, msg: Vec<T>) {
        let words = words_of::<T>(msg.len());
        let bytes = bytes_of::<T>(msg.len());
        self.send_counted_bytes(dest, msg, words, bytes);
    }

    /// Receives the next message from `src`, blocking until it arrives.
    ///
    /// Advances the simulated clock to at least the message arrival time,
    /// then charges `β·words` for the receive copy.
    ///
    /// # Panics
    /// If the next message from `src` has a different payload type — that
    /// is a protocol bug in the SPMD program (surfaced to the caller as a
    /// [`DmsimError`] by the launcher).
    pub fn recv<T: Send + 'static>(&mut self, src: usize) -> T {
        loop {
            if let Some((arrival, words, bytes, payload)) = self.pending[src].pop_front() {
                self.snap.clock_s = self.snap.clock_s.max(arrival);
                let copy = self.model.beta * words as f64;
                self.snap.clock_s += copy;
                self.snap.comm_s += copy;
                self.snap.words_received += words;
                self.snap.bytes_received += bytes;
                return *payload.downcast::<T>().unwrap_or_else(|_| {
                    panic!(
                        "rank {} expected {} from rank {src}, got a different type",
                        self.rank,
                        std::any::type_name::<T>()
                    )
                });
            }
            let env = self.rx.recv().expect("all senders dropped while receiving");
            self.pending[env.src as usize].push_back((
                env.arrival,
                env.words,
                env.bytes,
                env.payload,
            ));
        }
    }

    /// Posts `op` as a non-blocking operation and returns a
    /// [`CommHandle`] for it.
    ///
    /// The operation runs *eagerly* (identical messages, payloads, and
    /// α-β charges whether `on` is set or not — results can never depend
    /// on the overlap flag); the handle records how much of its charged
    /// time is hideable exchange time:
    ///
    /// ```text
    /// hideable = max(0, Δclock − Δcompute − α·Δmessages)
    /// ```
    ///
    /// i.e. β transfer time plus synchronization waits, excluding the α
    /// message posts (initiation stays on the critical path) and the
    /// operation's own local compute (compute cannot hide behind
    /// compute). With `on == false` the hideable time is pinned to zero,
    /// so [`CommHandle::wait`] is a no-op on the clock — the single code
    /// path both modes share is what makes bit-identity trivial.
    pub fn post<T>(&mut self, on: bool, op: impl FnOnce(&mut Comm) -> T) -> CommHandle<T> {
        let clock0 = self.snap.clock_s;
        let compute0 = self.snap.compute_s;
        let msgs0 = self.snap.messages_sent;
        let value = op(self);
        let hideable_s = if on {
            let d_clock = self.snap.clock_s - clock0;
            let d_compute = self.snap.compute_s - compute0;
            let d_alpha = self.model.alpha * (self.snap.messages_sent - msgs0) as f64;
            (d_clock - d_compute - d_alpha).max(0.0)
        } else {
            0.0
        };
        CommHandle {
            value: Some(value),
            hideable_s,
            post_clock_s: self.snap.clock_s,
        }
    }

    /// Opens an overlap window at the current clock: independent local
    /// compute charged from here on can hide a later exchange run through
    /// [`Comm::overlap_from`]. See [`OverlapWindow`].
    pub fn overlap_window(&self) -> OverlapWindow {
        OverlapWindow {
            start_clock_s: self.snap.clock_s,
        }
    }

    /// Runs `op` (typically an exchange) and credits its hideable time —
    /// same `max(0, Δclock − Δcompute − α·Δmessages)` rule as
    /// [`Comm::post`] — against the time elapsed since `win` was opened:
    /// `credit = min(hideable, window length)`. The credit is applied
    /// exactly as in [`CommHandle::wait`] and the clock never rewinds
    /// past the point where `op` started. With `on == false` the charges
    /// are identical and the credit is zero.
    pub fn overlap_from<T>(
        &mut self,
        win: OverlapWindow,
        on: bool,
        op: impl FnOnce(&mut Comm) -> T,
    ) -> T {
        let clock0 = self.snap.clock_s;
        let compute0 = self.snap.compute_s;
        let msgs0 = self.snap.messages_sent;
        let value = op(self);
        if on {
            let available = (clock0 - win.start_clock_s).max(0.0);
            let d_clock = self.snap.clock_s - clock0;
            let d_compute = self.snap.compute_s - compute0;
            let d_alpha = self.model.alpha * (self.snap.messages_sent - msgs0) as f64;
            let hideable = (d_clock - d_compute - d_alpha).max(0.0);
            self.apply_overlap_credit(available.min(hideable));
        }
        value
    }

    /// Applies an overlap credit: subtracts it from the clock, records it
    /// in [`CostSnapshot::overlap_hidden_s`], and (at step-level tracing)
    /// emits a [`SpanKind::Overlap`] span covering the credited interval.
    /// Callers guarantee `credit` never moves the clock before the
    /// operation the credit belongs to started.
    fn apply_overlap_credit(&mut self, credit: f64) {
        if credit <= 0.0 {
            return;
        }
        self.snap.clock_s -= credit;
        self.snap.overlap_hidden_s += credit;
        if self.trace.enabled(SpanKind::Overlap) {
            // The hidden exchange ran concurrently with work ending at the
            // credited clock; draw it over the interval it disappeared
            // into. Observation only — never feeds back into the clock.
            let end = self.snap.clock_s;
            self.trace
                .record_closed(SpanKind::Overlap, (end - credit).max(0.0), end);
        }
    }
}

/// Payload size in 8-byte words for a slice of `len` elements of `T`.
pub fn words_of<T>(len: usize) -> u64 {
    ((len * std::mem::size_of::<T>()) as u64).div_ceil(8)
}

/// Exact payload size in bytes for a slice of `len` elements of `T`.
pub fn bytes_of<T>(len: usize) -> u64 {
    (len * std::mem::size_of::<T>()) as u64
}

/// Runs an SPMD program on `p` simulated ranks with the zero-cost model
/// (useful when only results matter, e.g. unit tests).
///
/// Returns per-rank results indexed by rank, or a [`DmsimError`] naming
/// the first rank that panicked.
pub fn run_spmd<R, F>(p: usize, f: F) -> Result<Vec<R>, DmsimError>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    run_spmd_with_model(p, MachineModel::free(), f)
}

/// Runs an SPMD program on `p` simulated ranks under a cost model.
pub fn run_spmd_with_model<R, F>(p: usize, model: MachineModel, f: F) -> Result<Vec<R>, DmsimError>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    run_spmd_traced(p, model, None, f)
}

/// Runs an SPMD program on `p` simulated ranks under a cost model, with
/// optional span tracing: when `sink` is `Some`, each rank records spans
/// at the sink's [`TraceLevel`] and drains them (plus its final
/// [`CostSnapshot`]) into the sink when its body returns.
///
/// Each rank executes `f` on its own OS thread with a 4 MiB stack (ranks
/// are numerous; large default stacks would exhaust memory at high `p`).
/// If any rank panics, the lowest panicked rank and its payload are
/// returned as a [`DmsimError`] after all ranks have been joined.
pub fn run_spmd_traced<R, F>(
    p: usize,
    model: MachineModel,
    sink: Option<&Arc<TraceSink>>,
    f: F,
) -> Result<Vec<R>, DmsimError>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    assert!(p >= 1, "need at least one rank");
    let mut txs = Vec::with_capacity(p);
    let mut rxs = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = channel::<Envelope>();
        txs.push(tx);
        rxs.push(rx);
    }
    let senders = Arc::new(txs);
    let f = &f;
    let level = sink.map_or(TraceLevel::Off, |s| s.level());
    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    let mut first_err: Option<DmsimError> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, rx) in rxs.into_iter().enumerate() {
            let senders = Arc::clone(&senders);
            let sink = sink.cloned();
            let handle = std::thread::Builder::new()
                .name(format!("dmsim-rank-{rank}"))
                .stack_size(4 << 20)
                .spawn_scoped(scope, move || {
                    let mut comm = Comm {
                        rank,
                        size: p,
                        senders,
                        rx,
                        pending: (0..p).map(|_| VecDeque::new()).collect(),
                        model,
                        snap: CostSnapshot::default(),
                        ops_charged: 0,
                        pool: Rc::new(RefCell::new(BufferPool::default())),
                        narrow_dict: None,
                        narrow_epoch: 0,
                        trace: TraceLocal::new(level),
                        sink,
                    };
                    let r = f(&mut comm);
                    comm.finish_trace();
                    r
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results[rank] = Some(r),
                Err(payload) => {
                    if first_err.is_none() {
                        first_err = Some(DmsimError { rank, payload });
                    }
                }
            }
        }
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(results
            .into_iter()
            .map(|r| r.expect("every rank joined without error"))
            .collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EDISON;

    #[test]
    fn ranks_see_their_ids() {
        let ids = run_spmd(5, |c| (c.rank(), c.size())).unwrap();
        assert_eq!(ids, (0..5).map(|r| (r, 5)).collect::<Vec<_>>());
    }

    #[test]
    fn point_to_point_ring() {
        let out = run_spmd(4, |c| {
            let next = (c.rank() + 1) % 4;
            let prev = (c.rank() + 3) % 4;
            c.send(next, c.rank() as u64);
            c.recv::<u64>(prev)
        })
        .unwrap();
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn out_of_order_sources_are_buffered() {
        let out = run_spmd(3, |c| match c.rank() {
            0 => {
                // Receive from 2 first even though 1's message likely
                // arrives earlier.
                let a = c.recv::<u32>(2);
                let b = c.recv::<u32>(1);
                a * 10 + b
            }
            r => {
                c.send(0, r as u32);
                0
            }
        })
        .unwrap();
        assert_eq!(out[0], 21);
    }

    #[test]
    fn fifo_per_source() {
        let out = run_spmd(2, |c| {
            if c.rank() == 0 {
                for i in 0..10u32 {
                    c.send(1, i);
                }
                0
            } else {
                (0..10)
                    .map(|_| c.recv::<u32>(0))
                    .collect::<Vec<_>>()
                    .windows(2)
                    .all(|w| w[0] < w[1]) as u32
            }
        })
        .unwrap();
        assert_eq!(out[1], 1);
    }

    #[test]
    fn self_send_is_free_and_works() {
        let out = run_spmd_with_model(1, EDISON.lacc_model(), |c| {
            c.send_vec(0, vec![1u64, 2, 3]);
            let v = c.recv::<Vec<u64>>(0);
            (v, c.snapshot().messages_sent, c.clock_s())
        })
        .unwrap();
        assert_eq!(out[0].0, vec![1, 2, 3]);
        assert_eq!(out[0].1, 0);
        assert_eq!(out[0].2, 0.0);
    }

    #[test]
    fn send_charges_alpha_beta() {
        let model = EDISON.lacc_model();
        let out = run_spmd_with_model(2, model, |c| {
            if c.rank() == 0 {
                c.send_vec(1, vec![0u64; 1000]);
            } else {
                let _ = c.recv::<Vec<u64>>(0);
            }
            c.snapshot()
        })
        .unwrap();
        let sender = out[0];
        assert_eq!(sender.words_sent, 1000);
        assert!((sender.clock_s - (model.alpha + model.beta * 1000.0)).abs() < 1e-12);
        // Receiver clock: arrival + receive copy.
        let recv = out[1];
        assert_eq!(recv.words_received, 1000);
        assert!(recv.clock_s >= sender.clock_s);
    }

    #[test]
    fn clock_propagates_through_receives() {
        let model = EDISON.lacc_model();
        let out = run_spmd_with_model(3, model, |c| {
            // 0 does heavy compute, then sends to 1, who forwards to 2.
            match c.rank() {
                0 => {
                    c.charge_compute(1_000_000_000);
                    c.send(1, ());
                }
                1 => {
                    c.recv::<()>(0);
                    c.send(2, ());
                }
                2 => {
                    c.recv::<()>(1);
                }
                _ => unreachable!(),
            }
            c.clock_s()
        })
        .unwrap();
        // Rank 2's clock must reflect rank 0's compute time transitively.
        assert!(out[2] >= out[0]);
        assert!(out[0] >= 1_000_000_000.0 / model.rate);
    }

    #[test]
    fn charge_compute_accumulates() {
        let out = run_spmd_with_model(1, EDISON.lacc_model(), |c| {
            c.charge_compute(100);
            c.charge_compute(200);
            c.snapshot()
        })
        .unwrap();
        assert!(out[0].compute_s > 0.0);
        assert_eq!(out[0].clock_s, out[0].compute_s);
    }

    #[test]
    fn type_mismatch_is_a_dmsim_error() {
        let err = run_spmd(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7u32);
            } else {
                let _ = c.recv::<u64>(0);
            }
        })
        .unwrap_err();
        assert_eq!(err.rank, 1);
        assert!(err.message().contains("expected"), "got: {}", err.message());
        assert!(err.to_string().contains("rank 1 panicked"));
    }

    #[test]
    fn error_reports_lowest_failing_rank() {
        let err = run_spmd(4, |c| {
            if c.rank() >= 2 {
                panic!("boom on rank {}", c.rank());
            }
        })
        .unwrap_err();
        assert_eq!(err.rank, 2);
        assert_eq!(err.message(), "boom on rank 2");
    }

    #[test]
    fn group_membership() {
        run_spmd(6, |c| {
            if c.rank() % 2 == 0 {
                let g = c.group(vec![0, 2, 4]);
                assert_eq!(g.size(), 3);
                assert_eq!(g.member(g.my_index()), c.rank());
            }
        })
        .unwrap();
    }

    #[test]
    fn charge_comm_words_adds_beta_time() {
        let model = EDISON.lacc_model();
        let out = run_spmd_with_model(1, model, |c| {
            c.charge_comm_words(1_000_000);
            c.snapshot()
        })
        .unwrap();
        assert!((out[0].comm_s - model.beta * 1e6).abs() < 1e-12);
        assert_eq!(out[0].words_sent, 1_000_000);
        assert_eq!(out[0].messages_sent, 0, "no simulated message involved");
    }

    #[test]
    fn pooled_buf_recycles_capacity_on_drop() {
        run_spmd(1, |c| {
            let mut v: PooledBuf<u64> = c.pooled_buf();
            assert_eq!(v.capacity(), 0, "fresh pool allocates nothing");
            v.extend(0..100);
            let cap = v.capacity();
            let ptr = v.as_ptr();
            drop(v);
            assert_eq!(c.pooled_count::<u64>(), 1);
            let w: PooledBuf<u64> = c.pooled_buf();
            assert!(w.is_empty());
            assert_eq!(w.capacity(), cap, "capacity survives recycling");
            assert_eq!(w.as_ptr(), ptr, "same allocation handed back");
            drop(w);
            // Distinct element types are pooled independently.
            drop(c.adopt_buf(vec![1u32; 4]));
            assert_eq!(c.pooled_count::<u64>(), 1);
            assert_eq!(c.pooled_count::<u32>(), 1);
        })
        .unwrap();
    }

    #[test]
    fn detach_keeps_buffer_out_of_pool() {
        run_spmd(1, |c| {
            let mut v: PooledBuf<u64> = c.pooled_buf();
            v.push(42);
            let owned = v.detach();
            assert_eq!(owned, vec![42]);
            assert_eq!(c.pooled_count::<u64>(), 0, "detached buffers not pooled");
        })
        .unwrap();
    }

    #[test]
    fn overlap_hidden_zero_when_off_and_monotone_when_on() {
        let model = EDISON.lacc_model();
        let run = |on: bool, ops: u64| {
            run_spmd_with_model(2, model, move |c| {
                let peer = 1 - c.rank();
                let h = c.post(on, |c| {
                    c.send_vec(peer, vec![0u64; 4096]);
                    c.recv::<Vec<u64>>(peer)
                });
                c.charge_compute(ops);
                let _ = h.wait(c);
                c.snapshot()
            })
            .unwrap()[0]
        };
        // Flag off: never any hidden time, regardless of adjacent compute.
        assert_eq!(run(false, 1_000_000).overlap_hidden_s, 0.0);
        // Flag on: the credit is capped by the compute actually elapsed
        // between post and wait, and monotone in it.
        let h0 = run(true, 0).overlap_hidden_s;
        let h1 = run(true, 100).overlap_hidden_s;
        let h2 = run(true, 1_000_000).overlap_hidden_s;
        assert_eq!(h0, 0.0, "nothing elapsed, nothing hidden");
        assert!(h1 > 0.0);
        assert!(
            h2 >= h1,
            "more overlapped compute must hide at least as much"
        );
        // Charges are identical either way; only the clock credit differs.
        let off = run(false, 1_000_000);
        let on = run(true, 1_000_000);
        assert_eq!(on.words_sent, off.words_sent);
        assert_eq!(on.messages_sent, off.messages_sent);
        assert_eq!(on.bytes_sent, off.bytes_sent);
        assert!(
            on.clock_s < off.clock_s,
            "the credit must shorten the clock"
        );
        assert!((off.clock_s - on.clock_s - on.overlap_hidden_s).abs() < 1e-12);
    }

    #[test]
    fn handle_test_tracks_elapsed_progress() {
        run_spmd_with_model(2, EDISON.lacc_model(), |c| {
            let peer = 1 - c.rank();
            let h = c.post(true, |c| {
                c.send_vec(peer, vec![0u64; 4096]);
                c.recv::<Vec<u64>>(peer)
            });
            assert!(!h.test(c), "no local work elapsed yet");
            c.charge_compute(100_000_000);
            assert!(h.test(c), "ample compute elapsed: fully hidden");
            let _ = h.wait(c);
        })
        .unwrap();
    }

    #[test]
    fn overlap_window_credits_preceding_compute() {
        let model = EDISON.lacc_model();
        let run = |on: bool| {
            run_spmd_with_model(2, model, move |c| {
                let peer = 1 - c.rank();
                let win = c.overlap_window();
                c.charge_compute(1_000_000);
                c.overlap_from(win, on, |c| {
                    c.send_vec(peer, vec![0u64; 4096]);
                    let _ = c.recv::<Vec<u64>>(peer);
                });
                c.snapshot()
            })
            .unwrap()[0]
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(off.overlap_hidden_s, 0.0);
        assert!(on.overlap_hidden_s > 0.0);
        assert_eq!(on.words_sent, off.words_sent);
        assert_eq!(on.messages_sent, off.messages_sent);
        assert!((off.clock_s - on.clock_s - on.overlap_hidden_s).abs() < 1e-12);
    }

    #[test]
    fn overlap_credit_excludes_alpha_and_internal_compute() {
        // A posted op that only computes has nothing hideable; a posted
        // empty-payload send hides nothing past its α charge.
        run_spmd_with_model(1, EDISON.lacc_model(), |c| {
            let h = c.post(true, |c| c.charge_compute(1_000_000));
            assert_eq!(h.hideable_s(), 0.0, "compute cannot hide behind compute");
            c.charge_compute(1_000_000);
            h.wait(c);
            assert_eq!(c.snapshot().overlap_hidden_s, 0.0);
        })
        .unwrap();
    }

    #[test]
    fn words_of_rounds_up() {
        assert_eq!(words_of::<u8>(9), 2);
        assert_eq!(words_of::<u64>(3), 3);
        assert_eq!(words_of::<(u64, u64)>(2), 4);
        assert_eq!(words_of::<u64>(0), 0);
    }
}
