//! Span-based tracing of the simulated machine.
//!
//! Every collective, every distributed GraphBLAS op, and every LACC step
//! opens a typed *span* on the simulated clock. A span records the rank it
//! ran on, its modeled start/end seconds, the 8-byte words moved while it
//! was open (sent + received, inclusive of nested spans), and the local
//! operations charged. Spans accumulate into a per-rank buffer inside
//! [`crate::Comm`] and drain into a shared [`TraceSink`] when the rank's
//! SPMD body returns; the sink can then export
//!
//! * **Chrome trace format** JSON ([`TraceSink::chrome_trace_json`]),
//!   loadable in `chrome://tracing` or Perfetto — one timeline row per
//!   rank, spans nested by modeled time, and
//! * an **aggregated report** ([`TraceSink::report`]): per-kind totals,
//!   per-rank communication volume, and the load-imbalance ratio
//!   (max / mean rank time).
//!
//! Tracing is zero-cost when disabled: with [`TraceLevel::Off`] (or no
//! sink at all) a span open/close is a clock read and an enum compare —
//! no allocation, and nothing that touches the cost accounting, so
//! results and [`CostSnapshot`]s are bit-identical with tracing on or
//! off (property-tested in `tests/trace.rs`).

use crate::collectives::AllToAll;
use crate::cost::CostSnapshot;
use crate::wire::NarrowTier;
use std::sync::{Arc, Mutex};

/// How much detail to record. Each level includes everything the previous
/// levels record: `Steps` ⊂ `Ops` ⊂ `Collectives`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing (the zero-cost fast path).
    #[default]
    Off,
    /// Algorithm steps only (LACC's cond-hook, uncond-hook, shortcut,
    /// starcheck).
    Steps,
    /// Steps plus distributed GraphBLAS ops (`mxv`, `assign`, `extract`).
    Ops,
    /// Everything, down to individual collectives.
    Collectives,
}

impl std::str::FromStr for TraceLevel {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(TraceLevel::Off),
            "steps" => Ok(TraceLevel::Steps),
            "ops" => Ok(TraceLevel::Ops),
            "collectives" => Ok(TraceLevel::Collectives),
            other => Err(format!(
                "unknown trace level: {other} (expected off|steps|ops|collectives)"
            )),
        }
    }
}

/// Why a serving-layer epoch rebuild ran a full LACC recompute. Tags the
/// [`SpanKind::Rerun`] span so the aggregate report separates rebuild
/// causes (the rerun-policy invariant: deletions *always* rebuild,
/// staleness rebuilds are tunable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RerunReason {
    /// Initial full build when a service is constructed over a graph.
    Bootstrap,
    /// An edge deletion invalidated the incremental forest.
    Deletion,
    /// The incremental-hook staleness threshold was crossed.
    Staleness,
}

/// Which connected-components engine a run executed. Tags the
/// [`SpanKind::Engine`] span wrapping every distributed run, so trace
/// consumers can attribute spans (and the aggregate report rows) to the
/// algorithm that produced them — essential now that the engine portfolio
/// makes the algorithm a runtime choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// LACC: Awerbuch–Shiloach in GraphBLAS, with Lemma-1 retirement.
    Lacc,
    /// FastSV: stochastic + aggressive hooking, no star machinery.
    Fastsv,
    /// Min-label propagation: one closed-neighborhood min per round.
    LabelProp,
}

impl EngineKind {
    /// Stable lowercase name (`lacc`, `fastsv`, `labelprop`) used in span
    /// names, CLI flags, and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Lacc => "lacc",
            EngineKind::Fastsv => "fastsv",
            EngineKind::LabelProp => "labelprop",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The typed span vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Full LACC recompute triggered by the serving layer, tagged with
    /// its cause (step-level, wraps a whole epoch rebuild).
    Rerun(RerunReason),
    /// Whole-run span tagged with the engine that executed it
    /// (step-level, wraps every iteration of one distributed run).
    Engine(EngineKind),
    /// The `Auto` dispatcher's sampled-BFS pre-pass (step-level; its one
    /// allreduce nests underneath).
    EngineSelect,
    /// LACC conditional hooking (step).
    CondHook,
    /// LACC unconditional hooking (step).
    UncondHook,
    /// LACC shortcutting (step).
    Shortcut,
    /// LACC star recomputation (step).
    Starcheck,
    /// Exchange time hidden behind overlapped local compute: recorded
    /// retroactively when a non-blocking handle or overlap window applies
    /// its clock credit (step-level; see [`crate::CommHandle`]).
    Overlap,
    /// One iteration's exchanges ran under a dynamic narrowing tier
    /// (step-level point span, tagged with the tier the range probe
    /// selected; see [`crate::wire::NarrowTier`]).
    Narrow(NarrowTier),
    /// Distributed matrix-vector multiply (op).
    Mxv,
    /// Distributed `assign` scatter (op).
    Assign,
    /// Distributed `extract` gather (op).
    Extract,
    /// Dissemination barrier (collective).
    Barrier,
    /// Binomial-tree broadcast (collective).
    Bcast,
    /// Ring allgather (collective).
    Allgatherv,
    /// Allreduce (collective).
    Allreduce,
    /// Reduce-scatter (collective).
    ReduceScatter,
    /// Gather to a root (collective).
    Gatherv,
    /// All-to-allv, tagged with the algorithm actually executed
    /// (collective).
    Alltoallv(AllToAll),
    /// Combining all-to-allv: hypercube store-and-forward with in-flight
    /// reduce-by-key merging at every hop (collective).
    AlltoallvCombining,
}

impl SpanKind {
    /// The coarsest [`TraceLevel`] that records this kind.
    pub fn level(self) -> TraceLevel {
        use SpanKind::*;
        match self {
            Rerun(_) | Engine(_) | EngineSelect | CondHook | UncondHook | Shortcut | Starcheck
            | Overlap | Narrow(_) => TraceLevel::Steps,
            Mxv | Assign | Extract => TraceLevel::Ops,
            _ => TraceLevel::Collectives,
        }
    }

    /// Stable name used in exports (`chrome://tracing` event names).
    pub fn name(self) -> &'static str {
        use SpanKind::*;
        match self {
            Rerun(RerunReason::Bootstrap) => "rerun(bootstrap)",
            Rerun(RerunReason::Deletion) => "rerun(deletion)",
            Rerun(RerunReason::Staleness) => "rerun(staleness)",
            Engine(EngineKind::Lacc) => "engine(lacc)",
            Engine(EngineKind::Fastsv) => "engine(fastsv)",
            Engine(EngineKind::LabelProp) => "engine(labelprop)",
            EngineSelect => "engine_select",
            CondHook => "cond_hook",
            UncondHook => "uncond_hook",
            Shortcut => "shortcut",
            Starcheck => "starcheck",
            Overlap => "overlap",
            Narrow(NarrowTier::Native) => "narrow(native)",
            Narrow(NarrowTier::U16) => "narrow(u16)",
            Narrow(NarrowTier::Dict) => "narrow(dict)",
            Mxv => "mxv",
            Assign => "assign",
            Extract => "extract",
            Barrier => "barrier",
            Bcast => "bcast",
            Allgatherv => "allgatherv",
            Allreduce => "allreduce",
            ReduceScatter => "reduce_scatter",
            Gatherv => "gatherv",
            Alltoallv(AllToAll::Direct) => "alltoallv(direct)",
            Alltoallv(AllToAll::Pairwise) => "alltoallv(pairwise)",
            Alltoallv(AllToAll::Hypercube) => "alltoallv(hypercube)",
            Alltoallv(AllToAll::Sparse) => "alltoallv(sparse)",
            AlltoallvCombining => "alltoallv(combining)",
        }
    }

    /// Chrome-trace category string.
    pub fn category(self) -> &'static str {
        match self.level() {
            TraceLevel::Steps => "step",
            TraceLevel::Ops => "op",
            _ => "collective",
        }
    }
}

/// One completed (or, transiently, still-open) span.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// What the span measured.
    pub kind: SpanKind,
    /// Nesting depth at open time (0 = top level).
    pub depth: u32,
    /// Modeled start time in seconds.
    pub start_s: f64,
    /// Modeled end time in seconds.
    pub end_s: f64,
    /// 8-byte words moved (sent + received) while the span was open,
    /// including nested spans.
    pub words: u64,
    /// Local operations charged while the span was open.
    pub ops: u64,
}

impl SpanRecord {
    /// Modeled duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Token returned by [`crate::Comm::span_open`]; hand it back to
/// [`crate::Comm::span_close`]. Deliberately neither `Copy` nor `Clone`,
/// so a span cannot be closed twice.
#[derive(Debug)]
pub struct Span {
    pub(crate) start_clock: f64,
    pub(crate) slot: Option<usize>,
}

/// Per-rank span buffer living inside [`crate::Comm`] (not shared; drains
/// into the [`TraceSink`] when the rank finishes).
#[derive(Debug, Default)]
pub(crate) struct TraceLocal {
    pub(crate) level: TraceLevel,
    spans: Vec<SpanRecord>,
    open_stack: Vec<usize>,
}

impl TraceLocal {
    pub(crate) fn new(level: TraceLevel) -> Self {
        TraceLocal {
            level,
            spans: Vec::new(),
            open_stack: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn enabled(&self, kind: SpanKind) -> bool {
        kind.level() <= self.level
    }

    /// Opens a recorded span; `words`/`ops` are the rank's counters at
    /// open time (the close computes deltas into them).
    pub(crate) fn open(&mut self, kind: SpanKind, start_s: f64, words: u64, ops: u64) -> usize {
        let slot = self.spans.len();
        self.spans.push(SpanRecord {
            kind,
            depth: self.open_stack.len() as u32,
            start_s,
            end_s: f64::NAN,
            words,
            ops,
        });
        self.open_stack.push(slot);
        slot
    }

    pub(crate) fn close(&mut self, slot: usize, end_s: f64, words: u64, ops: u64) {
        debug_assert_eq!(
            self.open_stack.last(),
            Some(&slot),
            "spans must close in LIFO order"
        );
        self.open_stack.pop();
        let rec = &mut self.spans[slot];
        rec.end_s = end_s;
        rec.words = words - rec.words;
        rec.ops = ops - rec.ops;
    }

    /// Records an already-closed span with an explicit interval, at the
    /// current nesting depth. Used for retroactive spans — the overlap
    /// credit covers an interval that is only known after the fact, so it
    /// cannot go through the open/close protocol.
    pub(crate) fn record_closed(&mut self, kind: SpanKind, start_s: f64, end_s: f64) {
        self.spans.push(SpanRecord {
            kind,
            depth: self.open_stack.len() as u32,
            start_s,
            end_s,
            words: 0,
            ops: 0,
        });
    }

    /// Drains the buffer, force-closing any span left open (its interval
    /// extends to the rank's final clock; counter deltas stay as-is).
    pub(crate) fn drain(&mut self, final_clock_s: f64) -> Vec<SpanRecord> {
        for &slot in &self.open_stack {
            self.spans[slot].end_s = final_clock_s;
            self.spans[slot].words = 0;
            self.spans[slot].ops = 0;
        }
        self.open_stack.clear();
        std::mem::take(&mut self.spans)
    }
}

/// Everything one rank contributed to a trace.
#[derive(Clone, Debug)]
pub struct RankTrace {
    /// The rank's id.
    pub rank: usize,
    /// Its spans, in open order.
    pub spans: Vec<SpanRecord>,
    /// Its final cost snapshot.
    pub snapshot: CostSnapshot,
}

/// Shared collector ranks drain their span buffers into.
///
/// Create one with [`TraceSink::new`], pass it to
/// [`crate::run_spmd_traced`], then export with
/// [`TraceSink::chrome_trace_json`] / [`TraceSink::report`]. A sink can
/// collect multiple runs; [`TraceSink::clear`] resets it.
#[derive(Debug)]
pub struct TraceSink {
    level: TraceLevel,
    ranks: Mutex<Vec<RankTrace>>,
    metadata: Mutex<Vec<(String, String)>>,
}

impl TraceSink {
    /// A new sink recording at `level`.
    pub fn new(level: TraceLevel) -> Arc<TraceSink> {
        Arc::new(TraceSink {
            level,
            ranks: Mutex::new(Vec::new()),
            metadata: Mutex::new(Vec::new()),
        })
    }

    /// The level ranks will record at.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    pub(crate) fn submit(&self, rt: RankTrace) {
        self.ranks.lock().expect("trace sink poisoned").push(rt);
    }

    /// Attaches a run-level key/value annotation, exported as a Chrome
    /// trace metadata (`ph:"M"`) event — how the engine portfolio makes
    /// the chosen engine and the `Auto` dispatcher's rationale visible in
    /// trace viewers.
    pub fn add_metadata(&self, key: &str, value: &str) {
        self.metadata
            .lock()
            .expect("trace sink poisoned")
            .push((key.to_string(), value.to_string()));
    }

    /// All run-level annotations recorded so far, in insertion order.
    pub fn metadata(&self) -> Vec<(String, String)> {
        self.metadata.lock().expect("trace sink poisoned").clone()
    }

    /// Discards everything collected so far.
    pub fn clear(&self) {
        self.ranks.lock().expect("trace sink poisoned").clear();
        self.metadata.lock().expect("trace sink poisoned").clear();
    }

    /// All collected per-rank traces, sorted by rank.
    pub fn rank_traces(&self) -> Vec<RankTrace> {
        let mut v = self.ranks.lock().expect("trace sink poisoned").clone();
        v.sort_by_key(|rt| rt.rank);
        v
    }

    /// Exports the trace in Chrome trace format (the `traceEvents` JSON
    /// object). Timestamps are modeled **microseconds**; each rank is a
    /// `tid` under `pid` 0.
    pub fn chrome_trace_json(&self) -> String {
        let ranks = self.rank_traces();
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (key, value) in self.metadata() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"metadata\",\"ph\":\"M\",\
                 \"pid\":0,\"tid\":0,\"args\":{{\"value\":\"{}\"}}}}",
                escape_json(&key),
                escape_json(&value)
            ));
        }
        for rt in &ranks {
            for sp in &rt.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\
                     \"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{},\
                     \"args\":{{\"words\":{},\"ops\":{},\"depth\":{}}}}}",
                    sp.kind.name(),
                    sp.kind.category(),
                    sp.start_s * 1e6,
                    sp.duration_s() * 1e6,
                    rt.rank,
                    sp.words,
                    sp.ops,
                    sp.depth
                ));
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Aggregates the collected spans into a [`TraceReport`].
    pub fn report(&self) -> TraceReport {
        let ranks = self.rank_traces();
        let p = ranks.len();
        let mut per_kind: Vec<KindTotals> = Vec::new();
        let mut rank_time_s = vec![0.0f64; p];
        let mut rank_words = vec![0u64; p];
        let mut words_saved = 0u64;
        let mut combined_words = 0u64;
        let mut narrow_saved_bytes = 0u64;
        let mut reruns = 0u64;
        let mut overlap_hidden_s = 0.0f64;
        for (i, rt) in ranks.iter().enumerate() {
            rank_time_s[i] = rt.snapshot.clock_s;
            rank_words[i] = rt.snapshot.words_sent + rt.snapshot.words_received;
            words_saved += rt.snapshot.words_saved;
            combined_words += rt.snapshot.combined_words;
            narrow_saved_bytes += rt.snapshot.narrow_saved_bytes;
            reruns += rt.snapshot.reruns;
            overlap_hidden_s += rt.snapshot.overlap_hidden_s;
            for sp in &rt.spans {
                let name = sp.kind.name();
                let entry = match per_kind.iter_mut().find(|k| k.name == name) {
                    Some(e) => e,
                    None => {
                        per_kind.push(KindTotals {
                            name,
                            category: sp.kind.category(),
                            count: 0,
                            time_s: 0.0,
                            words: 0,
                            ops: 0,
                        });
                        per_kind.last_mut().expect("just pushed")
                    }
                };
                entry.count += 1;
                entry.time_s += sp.duration_s();
                entry.words += sp.words;
                entry.ops += sp.ops;
            }
        }
        let max_t = rank_time_s.iter().copied().fold(0.0f64, f64::max);
        let mean_t = if p == 0 {
            0.0
        } else {
            rank_time_s.iter().sum::<f64>() / p as f64
        };
        TraceReport {
            p,
            per_kind,
            rank_time_s,
            rank_words,
            words_saved,
            combined_words,
            narrow_saved_bytes,
            reruns,
            overlap_hidden_s,
            load_imbalance: if mean_t > 0.0 { max_t / mean_t } else { 1.0 },
        }
    }
}

/// Minimal JSON string escaping for metadata keys/values (quotes,
/// backslashes, control characters).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Aggregate totals for one span kind, summed over all ranks.
#[derive(Clone, Debug)]
pub struct KindTotals {
    /// Span name (see [`SpanKind::name`]).
    pub name: &'static str,
    /// `step`, `op`, or `collective`.
    pub category: &'static str,
    /// Number of spans.
    pub count: u64,
    /// Summed modeled duration (rank-seconds; nested spans overlap their
    /// parents, so categories are not additive across levels).
    pub time_s: f64,
    /// Summed words moved.
    pub words: u64,
    /// Summed local operations charged.
    pub ops: u64,
}

/// The aggregated metrics view of a trace: per-kind totals, per-rank
/// communication volume, and the load-imbalance ratio. The per-iteration
/// `IterStats`/`StepBreakdown` records upstream are thin views over the
/// same span durations.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Ranks that contributed.
    pub p: usize,
    /// Per-kind totals (first-seen order).
    pub per_kind: Vec<KindTotals>,
    /// Final modeled clock per rank.
    pub rank_time_s: Vec<f64>,
    /// Words sent + received per rank (the comm-volume histogram).
    pub rank_words: Vec<u64>,
    /// Total words kept off the wire by sender-side compaction, summed
    /// over all ranks (see [`CostSnapshot::words_saved`]).
    pub words_saved: u64,
    /// Total words eliminated in flight by combining collectives, summed
    /// over all ranks (see [`CostSnapshot::combined_words`]).
    pub combined_words: u64,
    /// Total payload bytes kept off the wire by dynamic narrowing tiers,
    /// summed over all ranks (see [`CostSnapshot::narrow_saved_bytes`]).
    pub narrow_saved_bytes: u64,
    /// Full LACC recomputes observed (summed over snapshots; each rebuild
    /// is noted on rank 0 only, so a p-rank rebuild counts once — see
    /// [`CostSnapshot::reruns`]). The per-cause split is visible in the
    /// `rerun(...)` span kinds.
    pub reruns: u64,
    /// Exchange seconds hidden behind overlapped local compute, summed
    /// over all ranks (see [`CostSnapshot::overlap_hidden_s`]; already
    /// subtracted from the per-rank clocks).
    pub overlap_hidden_s: f64,
    /// `max(rank time) / mean(rank time)` — 1.0 is perfectly balanced.
    pub load_imbalance: f64,
}

impl TraceReport {
    /// Summed span time for one kind name, 0 if absent.
    pub fn kind_time_s(&self, name: &str) -> f64 {
        self.per_kind
            .iter()
            .find(|k| k.name == name)
            .map_or(0.0, |k| k.time_s)
    }

    /// Renders the report as a human-readable text block.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let max_t = self.rank_time_s.iter().copied().fold(0.0f64, f64::max);
        let _ = writeln!(
            s,
            "trace report: p={}, modeled makespan {:.3} ms, load imbalance {:.2}x (max/mean rank time)",
            self.p,
            max_t * 1e3,
            self.load_imbalance
        );
        if self.words_saved > 0 {
            let _ = writeln!(
                s,
                "  sender-side compaction kept {} words off the wire",
                self.words_saved
            );
        }
        if self.combined_words > 0 {
            let _ = writeln!(
                s,
                "  in-flight combining merged {} words at hypercube hops",
                self.combined_words
            );
        }
        if self.narrow_saved_bytes > 0 {
            let _ = writeln!(
                s,
                "  narrow_saved_bytes: {} kept off the wire by dynamic narrowing tiers",
                self.narrow_saved_bytes
            );
        }
        if self.reruns > 0 {
            let _ = writeln!(
                s,
                "  full LACC reruns: {} (causes in the rerun(...) span rows)",
                self.reruns
            );
        }
        if self.overlap_hidden_s > 0.0 {
            let _ = writeln!(
                s,
                "  overlap hid {:.6} rank-sec of exchange time behind local compute",
                self.overlap_hidden_s
            );
        }
        let mut kinds = self.per_kind.clone();
        kinds.sort_by(|a, b| b.time_s.total_cmp(&a.time_s));
        if !kinds.is_empty() {
            let _ = writeln!(
                s,
                "  {:<22} {:>7} {:>12} {:>12} {:>12}",
                "span", "count", "rank-sec", "words", "ops"
            );
            for k in &kinds {
                let _ = writeln!(
                    s,
                    "  {:<22} {:>7} {:>12.6} {:>12} {:>12}",
                    k.name, k.count, k.time_s, k.words, k.ops
                );
            }
        }
        let max_w = self.rank_words.iter().copied().max().unwrap_or(0).max(1);
        let _ = writeln!(s, "  per-rank comm volume (words sent+received):");
        for (r, &w) in self.rank_words.iter().enumerate() {
            let bar = "#".repeat(((w as f64 / max_w as f64) * 40.0).round() as usize);
            let _ = writeln!(s, "    rank {r:>4}: {w:>12} |{bar}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_parse() {
        assert!(TraceLevel::Off < TraceLevel::Steps);
        assert!(TraceLevel::Steps < TraceLevel::Ops);
        assert!(TraceLevel::Ops < TraceLevel::Collectives);
        assert_eq!("steps".parse::<TraceLevel>().unwrap(), TraceLevel::Steps);
        assert_eq!(
            "collectives".parse::<TraceLevel>().unwrap(),
            TraceLevel::Collectives
        );
        assert!("verbose".parse::<TraceLevel>().is_err());
    }

    #[test]
    fn kind_levels_gate_recording() {
        let off = TraceLocal::new(TraceLevel::Off);
        assert!(!off.enabled(SpanKind::CondHook));
        assert!(!off.enabled(SpanKind::Bcast));
        let steps = TraceLocal::new(TraceLevel::Steps);
        assert!(steps.enabled(SpanKind::Starcheck));
        assert!(steps.enabled(SpanKind::Rerun(RerunReason::Deletion)));
        assert!(!steps.enabled(SpanKind::Extract));
        let all = TraceLocal::new(TraceLevel::Collectives);
        assert!(all.enabled(SpanKind::Alltoallv(AllToAll::Sparse)));
    }

    #[test]
    fn local_open_close_records_deltas() {
        let mut t = TraceLocal::new(TraceLevel::Collectives);
        let a = t.open(SpanKind::Extract, 1.0, 100, 10);
        let b = t.open(SpanKind::Bcast, 1.5, 120, 12);
        t.close(b, 2.0, 150, 15);
        t.close(a, 3.0, 200, 30);
        let spans = t.drain(3.0);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].words, 30);
        assert_eq!(spans[0].words, 100);
        assert_eq!(spans[0].ops, 20);
        assert!((spans[0].duration_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn report_aggregates_and_imbalance() {
        let sink = TraceSink::new(TraceLevel::Collectives);
        for rank in 0..2 {
            sink.submit(RankTrace {
                rank,
                spans: vec![SpanRecord {
                    kind: SpanKind::Bcast,
                    depth: 0,
                    start_s: 0.0,
                    end_s: 1.0 + rank as f64,
                    words: 10,
                    ops: 1,
                }],
                snapshot: CostSnapshot {
                    clock_s: 1.0 + rank as f64,
                    words_sent: 10,
                    combined_words: 5,
                    // Rebuilds are noted on rank 0 only; the sum still
                    // reports both of them.
                    reruns: if rank == 0 { 2 } else { 0 },
                    ..Default::default()
                },
            });
        }
        let rep = sink.report();
        assert_eq!(rep.p, 2);
        assert_eq!(rep.per_kind.len(), 1);
        assert_eq!(rep.per_kind[0].count, 2);
        assert!((rep.per_kind[0].time_s - 3.0).abs() < 1e-12);
        // max 2.0 / mean 1.5
        assert!((rep.load_imbalance - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(rep.combined_words, 10);
        assert_eq!(rep.reruns, 2);
        assert!(rep.render().contains("bcast"));
        assert!(rep.render().contains("in-flight combining merged 10 words"));
        assert!(rep.render().contains("full LACC reruns: 2"));
        sink.clear();
        assert!(sink.rank_traces().is_empty());
    }
}
