//! Wire-format helpers shared by the combining collectives and (via
//! re-export) the gblas sender-side compaction layer.
//!
//! Everything the simulator puts "on the wire" in compressed form goes
//! through these encoders, so the α-β cost model charges the *encoded*
//! byte counts with no special-casing:
//!
//! * **LEB128 varints** ([`push_varint`] / [`read_varint`]) — the base
//!   machinery, also reused by `gblas`'s id-list compaction.
//! * **delta key streams** ([`encode_keys`] / [`decode_keys`]) — a sorted
//!   `u64` key list as LEB128 of the first key then consecutive deltas;
//!   the per-hop request format of the combining hypercube.
//! * **word-stream RLE** ([`encode_words`] / [`decode_words`]) — value
//!   payloads as `(value, run-length)` varint pairs with a raw fallback,
//!   effective when labels near convergence are heavily repeated.
//! * **dynamic narrowing tiers** ([`encode_words_narrow`] /
//!   [`encode_keys_narrow`]) — when a per-iteration range probe shows the
//!   active label set fits, value streams drop to raw `u16` words or to
//!   dense-rank codes in a shared [`NarrowDict`], and sorted key streams
//!   re-delta over dictionary ranks. Encoders always pick the smallest
//!   valid candidate (never larger than the legacy stream), so the
//!   savings counter is monotone-nonnegative by construction.
//! * [`WireWord`] — the fixed word representation a value type must have
//!   to ride an encoded value stream.

/// Appends `x` to `out` as a LEB128 varint (7 bits per byte, high bit =
/// continuation).
pub fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let b = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads the varint at `bytes[*pos]`, advancing `pos` past it.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        x |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

/// Encoded length of `x` as a varint, in bytes.
pub fn varint_len(x: u64) -> usize {
    let bits = (64 - x.leading_zeros()).max(1);
    bits.div_ceil(7) as usize
}

/// Encodes a sorted (non-decreasing) `u64` key list as count + first key
/// + consecutive deltas, all varints.
pub fn encode_keys(keys: &[u64]) -> Vec<u8> {
    encode_keys_for::<u64>(keys)
}

/// [`encode_keys`] over any [`WireWord`] key type. The stream is
/// value-based (varints of the key values and their deltas), so a `u32`
/// key list encodes to exactly the same bytes as the equal-valued `u64`
/// list — the declared width matters on the *raw* paths (pairwise
/// fallbacks, tuple payloads), not here.
pub fn encode_keys_for<K: WireWord>(keys: &[K]) -> Vec<u8> {
    debug_assert!(
        keys.windows(2).all(|w| w[0].to_word() <= w[1].to_word()),
        "keys must be sorted"
    );
    let mut out = Vec::with_capacity(keys.len() + 4);
    push_varint(&mut out, keys.len() as u64);
    let mut prev = 0u64;
    for (i, k) in keys.iter().enumerate() {
        let k = k.to_word();
        push_varint(&mut out, if i == 0 { k } else { k - prev });
        prev = k;
    }
    out
}

/// Decodes a stream produced by [`encode_keys`].
pub fn decode_keys(bytes: &[u8]) -> Vec<u64> {
    decode_keys_for::<u64>(bytes)
}

/// Decodes a stream produced by [`encode_keys_for`] at the same `K`.
pub fn decode_keys_for<K: WireWord>(bytes: &[u8]) -> Vec<K> {
    let mut pos = 0usize;
    let n = read_varint(bytes, &mut pos) as usize;
    let mut out = Vec::with_capacity(n);
    let mut cur = 0u64;
    for i in 0..n {
        let d = read_varint(bytes, &mut pos);
        cur = if i == 0 { d } else { cur + d };
        out.push(K::from_word(cur));
    }
    debug_assert_eq!(pos, bytes.len(), "trailing bytes in key stream");
    out
}

const MODE_RAW: u8 = 0;
const MODE_RLE: u8 = 1;
const MODE_RAW16: u8 = 2;
const MODE_DICT: u8 = 3;

/// Wire tier the dynamic range probe selected for an exchange's
/// label-valued streams (see `DESIGN.md` §11).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NarrowTier {
    /// No narrowing: streams use the static `Idx`-width codecs.
    #[default]
    Native,
    /// Every active label word fits 16 bits: raw-`u16` fallback allowed.
    U16,
    /// The surviving label *set* is small: dense-rank dictionary codes.
    Dict,
}

/// Per-iteration narrowing decision, threaded from the engine loop's
/// range probe down to every exchange site via `DistOpts`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NarrowSpec {
    /// Selected tier for this iteration's exchanges.
    pub tier: NarrowTier,
}

impl NarrowSpec {
    /// The no-narrowing spec (what `narrow_labels: false` pins).
    pub const NATIVE: NarrowSpec = NarrowSpec {
        tier: NarrowTier::Native,
    };

    /// Whether any narrowing tier is active.
    pub fn active(&self) -> bool {
        self.tier != NarrowTier::Native
    }
}

/// Dense-rank dictionary over the surviving label words, shared by all
/// ranks (each builds it from the same allgathered value set, so the
/// code assignment is identical everywhere). `epoch` stamps every
/// dictionary-coded stream so a decode against a stale dictionary is
/// caught rather than silently wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NarrowDict {
    epoch: u64,
    values: Vec<u64>,
}

impl NarrowDict {
    /// Builds a dictionary from a sorted, deduplicated word list.
    pub fn new(epoch: u64, values: Vec<u64>) -> Self {
        debug_assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "dictionary values must be sorted and unique"
        );
        NarrowDict { epoch, values }
    }

    /// The install epoch stamped into every dictionary-coded stream.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of entries (the code space is `0..len`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Dense rank of `w`, or `None` when `w` is not in the dictionary
    /// (encoders fall back to the legacy stream — correctness never
    /// depends on the probe being tight).
    pub fn code_of(&self, w: u64) -> Option<u64> {
        self.values.binary_search(&w).ok().map(|i| i as u64)
    }

    /// The word a code stands for.
    pub fn value_of(&self, code: u64) -> u64 {
        self.values[code as usize]
    }
}

/// Encodes a word stream as run-length `(value, run)` varint pairs, or
/// raw little-endian words when that would be smaller (adversarial
/// values cost at most one mode byte over raw).
pub fn encode_words(words: &[u64]) -> Vec<u8> {
    encode_words_for::<u64>(words)
}

/// [`encode_words`] whose raw fallback stores each word at `T`'s native
/// width ([`WireWord::BYTES`] little-endian bytes), so a narrow value
/// type pays `T::BYTES` per element instead of 8 even when RLE loses.
/// Decode with [`decode_words_for`] at the *same* `T`.
pub fn encode_words_for<T: WireWord>(words: &[u64]) -> Vec<u8> {
    let mut rle = Vec::with_capacity(words.len() + 4);
    rle.push(MODE_RLE);
    push_varint(&mut rle, words.len() as u64);
    let mut i = 0usize;
    while i < words.len() {
        let v = words[i];
        let mut run = 1usize;
        while i + run < words.len() && words[i + run] == v {
            run += 1;
        }
        push_varint(&mut rle, v);
        push_varint(&mut rle, run as u64);
        i += run;
    }
    let raw_len = 1 + T::BYTES * words.len();
    if rle.len() <= raw_len {
        return rle;
    }
    let mut raw = Vec::with_capacity(raw_len);
    raw.push(MODE_RAW);
    for &w in words {
        debug_assert!(
            T::BYTES == 8 || w < 1u64 << (8 * T::BYTES as u32),
            "word {w} exceeds the {}-byte raw width",
            T::BYTES
        );
        raw.extend_from_slice(&w.to_le_bytes()[..T::BYTES]);
    }
    raw
}

/// Decodes a stream produced by [`encode_words`].
pub fn decode_words(bytes: &[u8]) -> Vec<u64> {
    decode_words_for::<u64>(bytes)
}

/// Decodes a stream produced by [`encode_words_for`] at the same `T`.
pub fn decode_words_for<T: WireWord>(bytes: &[u8]) -> Vec<u64> {
    match bytes[0] {
        MODE_RAW => bytes[1..]
            .chunks_exact(T::BYTES)
            .map(|c| {
                let mut buf = [0u8; 8];
                buf[..T::BYTES].copy_from_slice(c);
                u64::from_le_bytes(buf)
            })
            .collect(),
        MODE_RLE => {
            let mut pos = 1usize;
            let n = read_varint(bytes, &mut pos) as usize;
            let mut out = Vec::with_capacity(n);
            while out.len() < n {
                let v = read_varint(bytes, &mut pos);
                let run = read_varint(bytes, &mut pos) as usize;
                out.extend(std::iter::repeat_n(v, run));
            }
            debug_assert_eq!(pos, bytes.len(), "trailing bytes in word stream");
            out
        }
        other => panic!("bad word-stream mode {other}"),
    }
}

/// [`encode_words_for`] with the dynamic narrowing tiers layered on top.
/// Returns the encoded stream and the bytes saved relative to the legacy
/// `encode_words_for::<T>` stream. The legacy stream is always a
/// candidate, so the saving is `>= 0` and decode via
/// [`decode_words_narrow`] is correct even when the probe was stale:
/// a word outside the `u16` range or the dictionary simply disables that
/// candidate for the whole stream.
pub fn encode_words_narrow<T: WireWord>(
    words: &[u64],
    spec: NarrowSpec,
    dict: Option<&NarrowDict>,
) -> (Vec<u8>, u64) {
    let legacy = encode_words_for::<T>(words);
    if !spec.active() {
        return (legacy, 0);
    }
    let mut best = legacy;
    let legacy_len = best.len();
    // Raw-u16 candidate (valid under both narrow tiers).
    if T::BYTES > 2 && words.iter().all(|&w| w < 1 << 16) {
        let raw16_len = 1 + 2 * words.len();
        if raw16_len < best.len() {
            let mut raw16 = Vec::with_capacity(raw16_len);
            raw16.push(MODE_RAW16);
            for &w in words {
                raw16.extend_from_slice(&(w as u16).to_le_bytes());
            }
            best = raw16;
        }
    }
    // Dictionary candidate: dense-rank codes, themselves RLE-or-raw
    // encoded at u32 width (codes are bounded by the dictionary size).
    if spec.tier == NarrowTier::Dict {
        if let Some(d) = dict {
            let codes: Option<Vec<u64>> = words.iter().map(|&w| d.code_of(w)).collect();
            if let Some(codes) = codes {
                let mut enc = Vec::with_capacity(codes.len() + 4);
                enc.push(MODE_DICT);
                push_varint(&mut enc, d.epoch());
                enc.extend_from_slice(&encode_words_for::<u32>(&codes));
                if enc.len() < best.len() {
                    best = enc;
                }
            }
        }
    }
    let saved = (legacy_len - best.len()) as u64;
    (best, saved)
}

/// Decodes a stream produced by [`encode_words_narrow`] at the same `T`.
/// `dict` must be the same dictionary the encoder saw (checked via the
/// embedded epoch) whenever the stream is dictionary-coded.
pub fn decode_words_narrow<T: WireWord>(bytes: &[u8], dict: Option<&NarrowDict>) -> Vec<u64> {
    match bytes[0] {
        MODE_RAW16 => bytes[1..]
            .chunks_exact(2)
            .map(|c| u64::from(u16::from_le_bytes([c[0], c[1]])))
            .collect(),
        MODE_DICT => {
            let mut pos = 1usize;
            let epoch = read_varint(bytes, &mut pos);
            let d = dict.expect("dictionary-coded stream without an installed dictionary");
            assert_eq!(epoch, d.epoch(), "dictionary epoch mismatch on decode");
            decode_words_for::<u32>(&bytes[pos..])
                .into_iter()
                .map(|c| d.value_of(c))
                .collect()
        }
        _ => decode_words_for::<T>(bytes),
    }
}

/// [`encode_keys_for`] with the dictionary tier layered on top: when
/// every key is in the dictionary, the sorted key list can be re-deltaed
/// over its dense ranks (rank deltas are tiny where raw label deltas are
/// huge near convergence). The narrow frame is `[0x00, varint(epoch),
/// <rank key stream>]` — unambiguous because a legacy nonempty stream
/// starts with `varint(count) != 0` and the legacy empty stream is the
/// single byte `0x00`. Used only when strictly smaller, so plain streams
/// pay zero overhead. Returns `(stream, bytes saved)`.
pub fn encode_keys_narrow<K: WireWord>(
    keys: &[K],
    spec: NarrowSpec,
    dict: Option<&NarrowDict>,
) -> (Vec<u8>, u64) {
    let plain = encode_keys_for::<K>(keys);
    if spec.tier != NarrowTier::Dict || keys.is_empty() {
        return (plain, 0);
    }
    let Some(d) = dict else {
        return (plain, 0);
    };
    let codes: Option<Vec<u64>> = keys.iter().map(|k| d.code_of(k.to_word())).collect();
    let Some(codes) = codes else {
        return (plain, 0);
    };
    let mut framed = Vec::with_capacity(codes.len() + 4);
    framed.push(0u8);
    push_varint(&mut framed, d.epoch());
    framed.extend_from_slice(&encode_keys(&codes));
    if framed.len() < plain.len() {
        let saved = (plain.len() - framed.len()) as u64;
        (framed, saved)
    } else {
        (plain, 0)
    }
}

/// Decodes a stream produced by [`encode_keys_narrow`] at the same `K`.
pub fn decode_keys_narrow<K: WireWord>(bytes: &[u8], dict: Option<&NarrowDict>) -> Vec<K> {
    if bytes.len() > 1 && bytes[0] == 0 {
        let mut pos = 1usize;
        let epoch = read_varint(bytes, &mut pos);
        let d = dict.expect("dictionary-coded key stream without an installed dictionary");
        assert_eq!(epoch, d.epoch(), "dictionary epoch mismatch on key decode");
        decode_keys(&bytes[pos..])
            .into_iter()
            .map(|c| K::from_word(d.value_of(c)))
            .collect()
    } else {
        decode_keys_for::<K>(bytes)
    }
}

/// A value type with a fixed 64-bit word representation, required to ride
/// an encoded value stream ([`encode_words`]) or a combining reply.
pub trait WireWord: Copy {
    /// Native width of this type on the wire, in bytes. The raw fallback
    /// of [`encode_words_for`] stores this many little-endian bytes per
    /// element, so narrow index/label types are charged their true size.
    const BYTES: usize;
    /// This value as a wire word.
    fn to_word(self) -> u64;
    /// Reconstructs the value from its wire word.
    fn from_word(w: u64) -> Self;
}

impl WireWord for u64 {
    const BYTES: usize = 8;
    fn to_word(self) -> u64 {
        self
    }
    fn from_word(w: u64) -> Self {
        w
    }
}

impl WireWord for usize {
    const BYTES: usize = 8;
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(w: u64) -> Self {
        w as usize
    }
}

impl WireWord for u32 {
    const BYTES: usize = 4;
    fn to_word(self) -> u64 {
        u64::from(self)
    }
    fn from_word(w: u64) -> Self {
        w as u32
    }
}

impl WireWord for u16 {
    const BYTES: usize = 2;
    fn to_word(self) -> u64 {
        u64::from(self)
    }
    fn from_word(w: u64) -> Self {
        w as u16
    }
}

impl WireWord for bool {
    const BYTES: usize = 1;
    fn to_word(self) -> u64 {
        u64::from(self)
    }
    fn from_word(w: u64) -> Self {
        w != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for x in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            push_varint(&mut buf, x);
            assert_eq!(buf.len(), varint_len(x));
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), x);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn key_stream_roundtrips() {
        for keys in [
            vec![],
            vec![0u64],
            vec![5, 5, 5],
            vec![0, 1, 2, 3, 1_000_000],
            (0..500).map(|k| k * 7).collect::<Vec<_>>(),
        ] {
            assert_eq!(decode_keys(&encode_keys(&keys)), keys);
        }
    }

    #[test]
    fn dense_sorted_keys_compress_well() {
        let keys: Vec<u64> = (1000..2000).collect();
        let enc = encode_keys(&keys);
        assert!(enc.len() < keys.len() * 2, "got {} bytes", enc.len());
    }

    #[test]
    fn word_stream_roundtrips() {
        for words in [
            vec![0u64],
            vec![7; 100],
            vec![1, 2, 3, 4, 5],
            vec![u64::MAX; 3],
            (0..64).map(|k| k % 4).collect::<Vec<_>>(),
        ] {
            assert_eq!(decode_words(&encode_words(&words)), words);
        }
    }

    #[test]
    fn repeated_words_take_rle() {
        let words = vec![42u64; 1000];
        let enc = encode_words(&words);
        assert!(
            enc.len() < 16,
            "RLE should collapse the run, got {}",
            enc.len()
        );
    }

    #[test]
    fn adversarial_words_fall_back_to_raw() {
        // Large distinct values: varints would expand past raw.
        let words: Vec<u64> = (0..100).map(|k| u64::MAX - k * 12345).collect();
        let enc = encode_words(&words);
        assert!(enc.len() <= 1 + 8 * words.len());
        assert_eq!(decode_words(&enc), words);
    }

    #[test]
    fn narrow_raw_fallback_is_half_width() {
        // Adversarial u32-range values: varint pairs cost ~6 bytes each,
        // so the narrow 4-byte raw fallback kicks in and beats both the
        // wide raw (8 bytes) and the RLE stream the wide encoder keeps.
        let words: Vec<u64> = (0..100).map(|k| u64::from(u32::MAX) - k * 12345).collect();
        let wide = encode_words_for::<u64>(&words);
        let narrow = encode_words_for::<u32>(&words);
        assert_eq!(narrow.len(), 1 + 4 * words.len());
        assert!(narrow.len() < wide.len());
        assert_eq!(decode_words_for::<u64>(&wide), words);
        assert_eq!(decode_words_for::<u32>(&narrow), words);
    }

    #[test]
    fn narrow_key_stream_matches_wide_bytes() {
        // The delta-varint stream is value-based: narrowing the key type
        // changes nothing on the wire, only the raw fallbacks elsewhere.
        let wide: Vec<u64> = vec![3, 9, 9, 1000, 70000];
        let narrow: Vec<u32> = wide.iter().map(|&k| k as u32).collect();
        let enc = encode_keys_for::<u32>(&narrow);
        assert_eq!(enc, encode_keys_for::<u64>(&wide));
        assert_eq!(decode_keys_for::<u32>(&enc), narrow);
    }

    #[test]
    fn wire_word_roundtrip() {
        assert_eq!(u64::from_word(9u64.to_word()), 9);
        assert_eq!(usize::from_word(17usize.to_word()), 17);
        assert_eq!(u32::from_word(5u32.to_word()), 5);
        assert_eq!(u16::from_word(40000u16.to_word()), 40000);
        assert!(bool::from_word(true.to_word()));
        assert!(!bool::from_word(false.to_word()));
    }

    const U16_SPEC: NarrowSpec = NarrowSpec {
        tier: NarrowTier::U16,
    };
    const DICT_SPEC: NarrowSpec = NarrowSpec {
        tier: NarrowTier::Dict,
    };

    #[test]
    fn narrow_words_native_spec_is_legacy_bytes() {
        let words: Vec<u64> = (0..200).map(|k| k * 999).collect();
        let (enc, saved) = encode_words_narrow::<u32>(&words, NarrowSpec::NATIVE, None);
        assert_eq!(enc, encode_words_for::<u32>(&words));
        assert_eq!(saved, 0);
    }

    #[test]
    fn narrow_words_u16_tier_beats_legacy_and_roundtrips() {
        // Distinct u16-range values: legacy falls back to 4-byte raw,
        // the u16 tier halves that.
        let words: Vec<u64> = (0..300).map(|k| (k * 199) % 65536).collect();
        let legacy = encode_words_for::<u32>(&words);
        let (enc, saved) = encode_words_narrow::<u32>(&words, U16_SPEC, None);
        assert_eq!(enc.len() + saved as usize, legacy.len());
        assert!(saved > 0, "u16 tier should have saved bytes");
        assert_eq!(decode_words_narrow::<u32>(&enc, None), words);
    }

    #[test]
    fn narrow_words_out_of_range_falls_back() {
        let words = vec![1, 2, 1 << 20];
        let (enc, saved) = encode_words_narrow::<u32>(&words, U16_SPEC, None);
        assert_eq!(enc, encode_words_for::<u32>(&words));
        assert_eq!(saved, 0);
        assert_eq!(decode_words_narrow::<u32>(&enc, None), words);
    }

    #[test]
    fn narrow_words_dict_tier_roundtrips_and_saves() {
        // A handful of huge surviving labels: out of u16 range, but the
        // dictionary maps them to tiny dense ranks.
        let survivors: Vec<u64> = vec![1 << 20, 1 << 30, u64::from(u32::MAX) + 7, 1 << 40];
        let dict = NarrowDict::new(3, survivors.clone());
        let words: Vec<u64> = (0..400).map(|k| survivors[k % survivors.len()]).collect();
        let legacy = encode_words_for::<u64>(&words);
        let (enc, saved) = encode_words_narrow::<u64>(&words, DICT_SPEC, Some(&dict));
        assert_eq!(enc.len() + saved as usize, legacy.len());
        assert_eq!(decode_words_narrow::<u64>(&enc, Some(&dict)), words);
    }

    #[test]
    fn narrow_words_dict_miss_falls_back() {
        // Words outside both the u16 range and the dictionary: every
        // narrow candidate is ineligible, so the legacy stream ships.
        let dict = NarrowDict::new(1, vec![1 << 20, 1 << 21]);
        let words = vec![1 << 20, 1 << 21, 1 << 22]; // 1<<22 not in dict
        let (enc, saved) = encode_words_narrow::<u64>(&words, DICT_SPEC, Some(&dict));
        assert_eq!(enc, encode_words_for::<u64>(&words));
        assert_eq!(saved, 0);
    }

    #[test]
    #[should_panic(expected = "dictionary epoch mismatch")]
    fn narrow_words_stale_dict_epoch_panics() {
        let dict = NarrowDict::new(2, vec![1 << 20, 1 << 21, 1 << 22, 1 << 23]);
        let words: Vec<u64> = (0..64).map(|k| 1u64 << (20 + (k % 4))).collect();
        let (enc, _) = encode_words_narrow::<u64>(&words, DICT_SPEC, Some(&dict));
        assert_eq!(enc[0], 3, "expected the dict candidate to win");
        let stale = NarrowDict::new(5, vec![1 << 20, 1 << 21, 1 << 22, 1 << 23]);
        decode_words_narrow::<u64>(&enc, Some(&stale));
    }

    #[test]
    fn narrow_keys_dict_rank_deltas_save_and_roundtrip() {
        // Sparse huge keys, dense ranks: rank deltas are 1-byte varints
        // where the raw deltas are 3-5 bytes.
        let survivors: Vec<u64> = (0..512).map(|k| (1 << 22) + k * 1_000_003).collect();
        let dict = NarrowDict::new(7, survivors.clone());
        let keys: Vec<u64> = survivors.iter().step_by(2).copied().collect();
        let plain = encode_keys(&keys);
        let (enc, saved) = encode_keys_narrow::<u64>(&keys, DICT_SPEC, Some(&dict));
        assert!(saved > 0, "dict rank deltas should beat raw key deltas");
        assert_eq!(enc.len() + saved as usize, plain.len());
        assert_eq!(decode_keys_narrow::<u64>(&enc, Some(&dict)), keys);
        // A key outside the dictionary disables the frame for the stream.
        let mut miss = keys.clone();
        miss.push(u64::MAX);
        let (enc2, saved2) = encode_keys_narrow::<u64>(&miss, DICT_SPEC, Some(&dict));
        assert_eq!(saved2, 0);
        assert_eq!(decode_keys_narrow::<u64>(&enc2, Some(&dict)), miss);
    }

    #[test]
    fn narrow_keys_empty_and_plain_streams_unframed() {
        let dict = NarrowDict::new(1, vec![5, 6]);
        let (enc, saved) = encode_keys_narrow::<u64>(&[], DICT_SPEC, Some(&dict));
        assert_eq!(enc, encode_keys(&[]));
        assert_eq!(saved, 0);
        // Legacy streams always decode unchanged through the narrow
        // decoder (frame detection cannot misfire on them).
        for keys in [vec![], vec![0u64], vec![0, 1, 2], vec![900, 1000]] {
            let plain = encode_keys(&keys);
            assert_eq!(decode_keys_narrow::<u64>(&plain, Some(&dict)), keys);
        }
    }

    #[test]
    fn narrow_dict_lookup() {
        let d = NarrowDict::new(0, vec![100, 200, 300]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.code_of(200), Some(1));
        assert_eq!(d.code_of(150), None);
        assert_eq!(d.value_of(2), 300);
        assert_eq!(d.epoch(), 0);
    }
}
