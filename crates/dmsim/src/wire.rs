//! Wire-format helpers shared by the combining collectives and (via
//! re-export) the gblas sender-side compaction layer.
//!
//! Everything the simulator puts "on the wire" in compressed form goes
//! through these encoders, so the α-β cost model charges the *encoded*
//! byte counts with no special-casing:
//!
//! * **LEB128 varints** ([`push_varint`] / [`read_varint`]) — the base
//!   machinery, also reused by `gblas`'s id-list compaction.
//! * **delta key streams** ([`encode_keys`] / [`decode_keys`]) — a sorted
//!   `u64` key list as LEB128 of the first key then consecutive deltas;
//!   the per-hop request format of the combining hypercube.
//! * **word-stream RLE** ([`encode_words`] / [`decode_words`]) — value
//!   payloads as `(value, run-length)` varint pairs with a raw fallback,
//!   effective when labels near convergence are heavily repeated.
//! * [`WireWord`] — the fixed word representation a value type must have
//!   to ride an encoded value stream.

/// Appends `x` to `out` as a LEB128 varint (7 bits per byte, high bit =
/// continuation).
pub fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let b = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads the varint at `bytes[*pos]`, advancing `pos` past it.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        x |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

/// Encoded length of `x` as a varint, in bytes.
pub fn varint_len(x: u64) -> usize {
    let bits = (64 - x.leading_zeros()).max(1);
    bits.div_ceil(7) as usize
}

/// Encodes a sorted (non-decreasing) `u64` key list as count + first key
/// + consecutive deltas, all varints.
pub fn encode_keys(keys: &[u64]) -> Vec<u8> {
    encode_keys_for::<u64>(keys)
}

/// [`encode_keys`] over any [`WireWord`] key type. The stream is
/// value-based (varints of the key values and their deltas), so a `u32`
/// key list encodes to exactly the same bytes as the equal-valued `u64`
/// list — the declared width matters on the *raw* paths (pairwise
/// fallbacks, tuple payloads), not here.
pub fn encode_keys_for<K: WireWord>(keys: &[K]) -> Vec<u8> {
    debug_assert!(
        keys.windows(2).all(|w| w[0].to_word() <= w[1].to_word()),
        "keys must be sorted"
    );
    let mut out = Vec::with_capacity(keys.len() + 4);
    push_varint(&mut out, keys.len() as u64);
    let mut prev = 0u64;
    for (i, k) in keys.iter().enumerate() {
        let k = k.to_word();
        push_varint(&mut out, if i == 0 { k } else { k - prev });
        prev = k;
    }
    out
}

/// Decodes a stream produced by [`encode_keys`].
pub fn decode_keys(bytes: &[u8]) -> Vec<u64> {
    decode_keys_for::<u64>(bytes)
}

/// Decodes a stream produced by [`encode_keys_for`] at the same `K`.
pub fn decode_keys_for<K: WireWord>(bytes: &[u8]) -> Vec<K> {
    let mut pos = 0usize;
    let n = read_varint(bytes, &mut pos) as usize;
    let mut out = Vec::with_capacity(n);
    let mut cur = 0u64;
    for i in 0..n {
        let d = read_varint(bytes, &mut pos);
        cur = if i == 0 { d } else { cur + d };
        out.push(K::from_word(cur));
    }
    debug_assert_eq!(pos, bytes.len(), "trailing bytes in key stream");
    out
}

const MODE_RAW: u8 = 0;
const MODE_RLE: u8 = 1;

/// Encodes a word stream as run-length `(value, run)` varint pairs, or
/// raw little-endian words when that would be smaller (adversarial
/// values cost at most one mode byte over raw).
pub fn encode_words(words: &[u64]) -> Vec<u8> {
    encode_words_for::<u64>(words)
}

/// [`encode_words`] whose raw fallback stores each word at `T`'s native
/// width ([`WireWord::BYTES`] little-endian bytes), so a narrow value
/// type pays `T::BYTES` per element instead of 8 even when RLE loses.
/// Decode with [`decode_words_for`] at the *same* `T`.
pub fn encode_words_for<T: WireWord>(words: &[u64]) -> Vec<u8> {
    let mut rle = Vec::with_capacity(words.len() + 4);
    rle.push(MODE_RLE);
    push_varint(&mut rle, words.len() as u64);
    let mut i = 0usize;
    while i < words.len() {
        let v = words[i];
        let mut run = 1usize;
        while i + run < words.len() && words[i + run] == v {
            run += 1;
        }
        push_varint(&mut rle, v);
        push_varint(&mut rle, run as u64);
        i += run;
    }
    let raw_len = 1 + T::BYTES * words.len();
    if rle.len() <= raw_len {
        return rle;
    }
    let mut raw = Vec::with_capacity(raw_len);
    raw.push(MODE_RAW);
    for &w in words {
        debug_assert!(
            T::BYTES == 8 || w < 1u64 << (8 * T::BYTES as u32),
            "word {w} exceeds the {}-byte raw width",
            T::BYTES
        );
        raw.extend_from_slice(&w.to_le_bytes()[..T::BYTES]);
    }
    raw
}

/// Decodes a stream produced by [`encode_words`].
pub fn decode_words(bytes: &[u8]) -> Vec<u64> {
    decode_words_for::<u64>(bytes)
}

/// Decodes a stream produced by [`encode_words_for`] at the same `T`.
pub fn decode_words_for<T: WireWord>(bytes: &[u8]) -> Vec<u64> {
    match bytes[0] {
        MODE_RAW => bytes[1..]
            .chunks_exact(T::BYTES)
            .map(|c| {
                let mut buf = [0u8; 8];
                buf[..T::BYTES].copy_from_slice(c);
                u64::from_le_bytes(buf)
            })
            .collect(),
        MODE_RLE => {
            let mut pos = 1usize;
            let n = read_varint(bytes, &mut pos) as usize;
            let mut out = Vec::with_capacity(n);
            while out.len() < n {
                let v = read_varint(bytes, &mut pos);
                let run = read_varint(bytes, &mut pos) as usize;
                out.extend(std::iter::repeat_n(v, run));
            }
            debug_assert_eq!(pos, bytes.len(), "trailing bytes in word stream");
            out
        }
        other => panic!("bad word-stream mode {other}"),
    }
}

/// A value type with a fixed 64-bit word representation, required to ride
/// an encoded value stream ([`encode_words`]) or a combining reply.
pub trait WireWord: Copy {
    /// Native width of this type on the wire, in bytes. The raw fallback
    /// of [`encode_words_for`] stores this many little-endian bytes per
    /// element, so narrow index/label types are charged their true size.
    const BYTES: usize;
    /// This value as a wire word.
    fn to_word(self) -> u64;
    /// Reconstructs the value from its wire word.
    fn from_word(w: u64) -> Self;
}

impl WireWord for u64 {
    const BYTES: usize = 8;
    fn to_word(self) -> u64 {
        self
    }
    fn from_word(w: u64) -> Self {
        w
    }
}

impl WireWord for usize {
    const BYTES: usize = 8;
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(w: u64) -> Self {
        w as usize
    }
}

impl WireWord for u32 {
    const BYTES: usize = 4;
    fn to_word(self) -> u64 {
        u64::from(self)
    }
    fn from_word(w: u64) -> Self {
        w as u32
    }
}

impl WireWord for bool {
    const BYTES: usize = 1;
    fn to_word(self) -> u64 {
        u64::from(self)
    }
    fn from_word(w: u64) -> Self {
        w != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for x in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            push_varint(&mut buf, x);
            assert_eq!(buf.len(), varint_len(x));
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), x);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn key_stream_roundtrips() {
        for keys in [
            vec![],
            vec![0u64],
            vec![5, 5, 5],
            vec![0, 1, 2, 3, 1_000_000],
            (0..500).map(|k| k * 7).collect::<Vec<_>>(),
        ] {
            assert_eq!(decode_keys(&encode_keys(&keys)), keys);
        }
    }

    #[test]
    fn dense_sorted_keys_compress_well() {
        let keys: Vec<u64> = (1000..2000).collect();
        let enc = encode_keys(&keys);
        assert!(enc.len() < keys.len() * 2, "got {} bytes", enc.len());
    }

    #[test]
    fn word_stream_roundtrips() {
        for words in [
            vec![0u64],
            vec![7; 100],
            vec![1, 2, 3, 4, 5],
            vec![u64::MAX; 3],
            (0..64).map(|k| k % 4).collect::<Vec<_>>(),
        ] {
            assert_eq!(decode_words(&encode_words(&words)), words);
        }
    }

    #[test]
    fn repeated_words_take_rle() {
        let words = vec![42u64; 1000];
        let enc = encode_words(&words);
        assert!(
            enc.len() < 16,
            "RLE should collapse the run, got {}",
            enc.len()
        );
    }

    #[test]
    fn adversarial_words_fall_back_to_raw() {
        // Large distinct values: varints would expand past raw.
        let words: Vec<u64> = (0..100).map(|k| u64::MAX - k * 12345).collect();
        let enc = encode_words(&words);
        assert!(enc.len() <= 1 + 8 * words.len());
        assert_eq!(decode_words(&enc), words);
    }

    #[test]
    fn narrow_raw_fallback_is_half_width() {
        // Adversarial u32-range values: varint pairs cost ~6 bytes each,
        // so the narrow 4-byte raw fallback kicks in and beats both the
        // wide raw (8 bytes) and the RLE stream the wide encoder keeps.
        let words: Vec<u64> = (0..100).map(|k| u64::from(u32::MAX) - k * 12345).collect();
        let wide = encode_words_for::<u64>(&words);
        let narrow = encode_words_for::<u32>(&words);
        assert_eq!(narrow.len(), 1 + 4 * words.len());
        assert!(narrow.len() < wide.len());
        assert_eq!(decode_words_for::<u64>(&wide), words);
        assert_eq!(decode_words_for::<u32>(&narrow), words);
    }

    #[test]
    fn narrow_key_stream_matches_wide_bytes() {
        // The delta-varint stream is value-based: narrowing the key type
        // changes nothing on the wire, only the raw fallbacks elsewhere.
        let wide: Vec<u64> = vec![3, 9, 9, 1000, 70000];
        let narrow: Vec<u32> = wide.iter().map(|&k| k as u32).collect();
        let enc = encode_keys_for::<u32>(&narrow);
        assert_eq!(enc, encode_keys_for::<u64>(&wide));
        assert_eq!(decode_keys_for::<u32>(&enc), narrow);
    }

    #[test]
    fn wire_word_roundtrip() {
        assert_eq!(u64::from_word(9u64.to_word()), 9);
        assert_eq!(usize::from_word(17usize.to_word()), 17);
        assert_eq!(u32::from_word(5u32.to_word()), 5);
        assert!(bool::from_word(true.to_word()));
        assert!(!bool::from_word(false.to_word()));
    }
}
