//! 2D process grids.
//!
//! CombBLAS distributes a sparse matrix on a `pr × pc` grid; processor
//! `P(i, j)` owns submatrix `A_ij`. The paper (like CombBLAS) only supports
//! square grids, so `Grid2d::square` is the main constructor; the general
//! form exists for tests.

use crate::comm::{Comm, Group};

/// A `pr × pc` arrangement of ranks in row-major order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid2d {
    pr: usize,
    pc: usize,
}

impl Grid2d {
    /// A square `√p × √p` grid.
    ///
    /// # Panics
    /// If `p` is not a perfect square (CombBLAS' restriction, §VI-A).
    pub fn square(p: usize) -> Self {
        let side = (p as f64).sqrt().round() as usize;
        assert_eq!(side * side, p, "process count {p} is not a perfect square");
        Grid2d { pr: side, pc: side }
    }

    /// A general rectangular grid.
    pub fn new(pr: usize, pc: usize) -> Self {
        assert!(pr >= 1 && pc >= 1);
        Grid2d { pr, pc }
    }

    /// Rows in the grid.
    pub fn rows(&self) -> usize {
        self.pr
    }

    /// Columns in the grid.
    pub fn cols(&self) -> usize {
        self.pc
    }

    /// Total ranks.
    pub fn size(&self) -> usize {
        self.pr * self.pc
    }

    /// Rank at grid position `(i, j)`.
    pub fn rank_of(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.pr && j < self.pc);
        i * self.pc + j
    }

    /// Grid position of `rank`.
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.size());
        (rank / self.pc, rank % self.pc)
    }

    /// The group of ranks sharing this rank's grid row (the "processor row"
    /// used in the reduce-scatter phase of distributed SpMV).
    pub fn row_group(&self, comm: &Comm) -> Group {
        let (i, _) = self.coords_of(comm.rank());
        comm.group((0..self.pc).map(|j| self.rank_of(i, j)).collect())
    }

    /// The group of ranks sharing this rank's grid column (the "processor
    /// column" used in the allgather phase of distributed SpMV).
    pub fn col_group(&self, comm: &Comm) -> Group {
        let (_, j) = self.coords_of(comm.rank());
        comm.group((0..self.pr).map(|i| self.rank_of(i, j)).collect())
    }

    /// The diagonal group `(i, i)` — vector owners in CombBLAS-style
    /// distributions. Only meaningful on square grids.
    pub fn diag_group(&self, comm: &Comm) -> Option<Group> {
        if self.pr != self.pc {
            return None;
        }
        let (i, j) = self.coords_of(comm.rank());
        (i == j).then(|| comm.group((0..self.pr).map(|d| self.rank_of(d, d)).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_spmd;

    #[test]
    fn square_grid_coords_roundtrip() {
        let g = Grid2d::square(16);
        assert_eq!((g.rows(), g.cols()), (4, 4));
        for r in 0..16 {
            let (i, j) = g.coords_of(r);
            assert_eq!(g.rank_of(i, j), r);
        }
    }

    #[test]
    #[should_panic(expected = "not a perfect square")]
    fn non_square_rejected() {
        Grid2d::square(12);
    }

    #[test]
    fn row_and_col_groups_partition() {
        run_spmd(9, |c| {
            let grid = Grid2d::square(9);
            let row = grid.row_group(c);
            let col = grid.col_group(c);
            assert_eq!(row.size(), 3);
            assert_eq!(col.size(), 3);
            // This rank appears in both.
            assert_eq!(row.member(row.my_index()), c.rank());
            assert_eq!(col.member(col.my_index()), c.rank());
            // Row-group sums: each row {0,1,2},{3,4,5},{6,7,8}.
            let s = c.allreduce(&row, c.rank() as u64, |a, b| a + b);
            let (i, _) = grid.coords_of(c.rank());
            assert_eq!(s, (3 * i * 3 + 3) as u64);
        })
        .unwrap();
    }

    #[test]
    fn diag_group_only_on_diagonal() {
        run_spmd(4, |c| {
            let grid = Grid2d::square(4);
            let d = grid.diag_group(c);
            let (i, j) = grid.coords_of(c.rank());
            assert_eq!(d.is_some(), i == j);
        })
        .unwrap();
    }

    #[test]
    fn rectangular_grid() {
        let g = Grid2d::new(2, 3);
        assert_eq!(g.size(), 6);
        assert_eq!(g.coords_of(5), (1, 2));
    }
}
