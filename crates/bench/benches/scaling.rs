//! Criterion benches: distributed LACC at several simulated grid sizes.
//! Wall time here measures the *simulator* (threads + channels), while the
//! experiment binaries report modeled machine time; this bench guards
//! against regressions in the runtime itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmsim::EDISON;
use lacc::RunConfig;
use lacc_graph::generators::community_graph;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let g = community_graph(10_000, 400, 4.0, 1.4, 3);
    let mut group = c.benchmark_group("dist_lacc_simwall");
    group.sample_size(10);
    for p in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let cfg = RunConfig::new(p, EDISON.lacc_model());
            b.iter(|| lacc::run(black_box(&g), &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
