//! Criterion benches: wall time of every connected-components algorithm in
//! the workspace on two contrasting inputs — a many-component community
//! graph (LACC's best case) and a single-component path-heavy graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lacc::{lacc_serial, LaccOpts};
use lacc_baselines as b;
use lacc_graph::generators::{community_graph, metagenome_graph};
use lacc_graph::CsrGraph;
use std::hint::black_box;

fn graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("community_20k", community_graph(20_000, 800, 4.0, 1.4, 1)),
        ("metagenome_20k", metagenome_graph(20_000, 7, 0.005, 2)),
    ]
}

fn bench_cc(c: &mut Criterion) {
    for (gname, g) in graphs() {
        let mut group = c.benchmark_group(format!("cc_{gname}"));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("union_find", gname), &g, |bch, g| {
            bch.iter(|| b::union_find_cc(black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("bfs", gname), &g, |bch, g| {
            bch.iter(|| b::bfs_cc(black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("shiloach_vishkin", gname), &g, |bch, g| {
            bch.iter(|| b::sv::shiloach_vishkin_cc_with_threads(black_box(g), 4))
        });
        group.bench_with_input(
            BenchmarkId::new("label_propagation", gname),
            &g,
            |bch, g| bch.iter(|| b::labelprop::label_propagation_cc_with_threads(black_box(g), 4)),
        );
        group.bench_with_input(BenchmarkId::new("fastsv", gname), &g, |bch, g| {
            bch.iter(|| b::fastsv_cc(black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("lacc_serial", gname), &g, |bch, g| {
            bch.iter(|| lacc_serial(black_box(g), &LaccOpts::default()))
        });
        group.bench_with_input(BenchmarkId::new("lacc_dense_as", gname), &g, |bch, g| {
            bch.iter(|| lacc_serial(black_box(g), &LaccOpts::dense_as()))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_cc);
criterion_main!(benches);
