//! Criterion benches for the all-to-all algorithms (§V-B): wall time of
//! pairwise exchange vs hypercube vs sparse on a 16-rank simulated
//! machine, for balanced, skewed, and nearly-empty payloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmsim::{run_spmd, AllToAll};

fn payload(kind: &str, p: usize, me: usize) -> Vec<Vec<u64>> {
    match kind {
        // Every pair exchanges the same volume.
        "balanced" => (0..p).map(|_| vec![me as u64; 512]).collect(),
        // Everything converges on rank 0 (the Figure-3 pattern).
        "skewed" => (0..p)
            .map(|d| {
                if d == 0 {
                    vec![me as u64; 2048]
                } else {
                    Vec::new()
                }
            })
            .collect(),
        // Only neighbouring ranks talk.
        "sparse" => (0..p)
            .map(|d| {
                if d == (me + 1) % p {
                    vec![me as u64; 256]
                } else {
                    Vec::new()
                }
            })
            .collect(),
        _ => unreachable!(),
    }
}

fn bench_alltoall(c: &mut Criterion) {
    let p = 16;
    let mut group = c.benchmark_group("alltoallv_p16");
    group.sample_size(10);
    for kind in ["balanced", "skewed", "sparse"] {
        for (name, algo) in [
            ("pairwise", AllToAll::Pairwise),
            ("hypercube", AllToAll::Hypercube),
            ("sparse", AllToAll::Sparse),
        ] {
            group.bench_with_input(BenchmarkId::new(name, kind), &algo, |b, &algo| {
                b.iter(|| {
                    run_spmd(p, move |comm| {
                        let world = comm.world();
                        let bufs = payload(kind, p, comm.rank());
                        comm.alltoallv(&world, bufs, algo)
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_alltoall);
criterion_main!(benches);
