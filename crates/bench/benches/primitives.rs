//! Criterion microbenches for the GraphBLAS primitives: SpMV vs SpMSpV at
//! several input densities (the dispatch the paper's `GrB_mxv` performs),
//! plus serial extract/assign throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gblas::serial::{self, Pattern, SparseVec};
use gblas::{Mask, MinUsize};
use lacc_graph::generators::{rmat, RmatParams};
use std::hint::black_box;

fn bench_mxv(c: &mut Criterion) {
    let g = rmat(13, 12, RmatParams::graph500(), 7);
    let n = g.num_vertices();
    let a = Pattern::from_graph(&g);
    let x_dense: Vec<usize> = (0..n).map(|v| v * 7 % n).collect();

    let mut group = c.benchmark_group("mxv");
    group.sample_size(20);
    group.bench_function("spmv_dense_full", |b| {
        b.iter(|| serial::mxv_dense(&a, black_box(&x_dense), Mask::None, MinUsize))
    });
    for density_pct in [1usize, 10, 50] {
        let entries: Vec<(usize, usize)> = (0..n)
            .filter(|v| v % 100 < density_pct)
            .map(|v| (v, x_dense[v]))
            .collect();
        let x_sparse = SparseVec::from_entries(n, entries);
        group.bench_with_input(
            BenchmarkId::new("spmspv", format!("{density_pct}pct")),
            &x_sparse,
            |b, x| b.iter(|| serial::mxv_sparse(&a, black_box(x), Mask::None, MinUsize)),
        );
    }
    group.finish();
}

fn bench_extract_assign(c: &mut Criterion) {
    let n = 1 << 16;
    let src: Vec<usize> = (0..n).map(|v| v * 3 % n).collect();
    let indices: Vec<usize> = (0..n / 4).map(|k| (k * 13) % n).collect();
    let updates: Vec<(usize, usize)> = indices.iter().map(|&i| (i, i / 2)).collect();

    let mut group = c.benchmark_group("indexing");
    group.bench_function("extract_16k", |b| {
        b.iter(|| serial::extract(black_box(&src), black_box(&indices)))
    });
    group.bench_function("assign_16k", |b| {
        b.iter_batched(
            || src.clone(),
            |mut w| serial::assign(&mut w, black_box(&updates), MinUsize),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_mxv, bench_extract_assign);
criterion_main!(benches);
