//! Table II — evaluation platforms.
//!
//! Prints the α-β machine parameterisation derived from the paper's
//! Table II, for both the LACC (4 ranks/node, hybrid) and ParConnect
//! (flat MPI) placements. Every scaling experiment in this suite uses
//! these models.

use dmsim::{CORI_KNL, EDISON};
use lacc_bench::{print_table, write_csv};

fn main() {
    let mut rows = Vec::new();
    for machine in [EDISON, CORI_KNL] {
        for (cfg, rpn) in [
            ("LACC (hybrid)", 4usize),
            ("ParConnect (flat)", machine.cores_per_node),
        ] {
            let m = machine.model(rpn);
            rows.push(vec![
                machine.name.to_string(),
                cfg.to_string(),
                format!("{}", machine.cores_per_node),
                format!("{rpn}"),
                format!("{:.1e}", m.alpha),
                format!("{:.1e}", m.beta),
                format!("{:.2e}", m.rate),
            ]);
        }
    }
    let header = [
        "machine",
        "configuration",
        "cores/node",
        "ranks/node",
        "alpha (s/msg)",
        "beta (s/word)",
        "rank rate (ops/s)",
    ];
    print_table("Table II: machine models", &header, &rows);
    write_csv("table2_machines", &header, &rows);
    println!(
        "\nEdison per-core rate {:.1e} ops/s vs Cori KNL {:.1e}: the ~{:.1}x gap is why both codes run faster per node on Edison (paper §VI-C).",
        EDISON.core_rate,
        CORI_KNL.core_rate,
        EDISON.core_rate / CORI_KNL.core_rate
    );
}
