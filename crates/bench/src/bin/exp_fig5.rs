//! Figure 5 — strong scaling of LACC vs ParConnect on Cori KNL.
//!
//! The four test problems with the most connected components (archaea,
//! eukarya, M3, iso_m100 in the paper; our stand-ins), on the KNL machine
//! model: LACC with 4 ranks/node (16 threads each), ParConnect flat with
//! 64 ranks/node. Expected shapes: LACC wins except on M3 (comparable),
//! and both run slower than on Edison for the same node count.

use dmsim::CORI_KNL;
use lacc::LaccOpts;
use lacc_bench::*;
use lacc_graph::generators::suite::by_name;

fn main() {
    let nodes = scaling_nodes();
    let shrink = shrink();
    let opts = LaccOpts::default();
    let trace = trace_config();
    let names = ["archaea", "eukarya", "M3", "iso_m100"];
    let header = [
        "graph",
        "nodes",
        "lacc ranks",
        "lacc modeled s",
        "pc ranks",
        "pc modeled s",
        "speedup",
    ];
    let mut rows = Vec::new();
    for name in names {
        let prob = by_name(name).expect("known problem");
        let g = if shrink == 1 {
            prob.build()
        } else {
            prob.build_small(shrink)
        };
        eprintln!(
            "[fig5] {}: n={} m={}",
            name,
            g.num_vertices(),
            g.num_directed_edges()
        );
        let lacc_pts = lacc_scaling_traced(
            &g,
            &CORI_KNL,
            &nodes,
            &opts,
            trace.as_ref().map(TraceConfig::sink),
        );
        let pc_pts = parconnect_scaling(&g, &CORI_KNL, &nodes);
        for ((lp, _), (pp, _)) in lacc_pts.iter().zip(&pc_pts) {
            rows.push(vec![
                name.to_string(),
                format!("{}", lp.nodes),
                format!("{}{}", lp.ranks, if lp.clamped { "*" } else { "" }),
                fmt_s(lp.modeled_s),
                format!("{}{}", pp.ranks, if pp.clamped { "*" } else { "" }),
                fmt_s(pp.modeled_s),
                format!("{:.1}x", pp.modeled_s / lp.modeled_s.max(1e-12)),
            ]);
        }
    }
    print_table(
        "Figure 5: strong scaling on Cori KNL (many-component graphs)",
        &header,
        &rows,
    );
    write_csv("fig5_cori_scaling", &header, &rows);
    println!("  (* rank count clamped at {} simulated ranks)", rank_cap());
    if let Some(t) = &trace {
        t.finish();
    }
}
