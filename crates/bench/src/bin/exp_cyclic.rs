//! Future-work experiment (§VII) — cyclic vs blocked vector distribution.
//!
//! The paper's conclusion proposes cyclic vector distribution to remove
//! the communication hot spots of Figure 3. This experiment implements
//! and evaluates it: for a skewed RMAT graph and the M3-like stand-in,
//! compare LACC with blocked vs cyclic vectors on (a) the max/avg
//! imbalance of extract requests received per rank, and (b) total modeled
//! time — exposing the trade: balance improves, but `mxv` loses its
//! grid-aligned gather and must collect vector pieces world-wide.

use lacc::{LaccOpts, LaccRun};
use lacc_bench::*;
use lacc_graph::generators::suite::by_name;
use lacc_graph::generators::{rmat, RmatParams};
use lacc_graph::CsrGraph;

fn imbalance(run: &LaccRun) -> f64 {
    let p = run.p;
    let mut per_rank = vec![0u64; p];
    for it in &run.iters {
        for (r, &x) in it.extract_received.iter().enumerate() {
            per_rank[r] += x;
        }
    }
    let max = *per_rank.iter().max().unwrap_or(&0) as f64;
    let avg = per_rank.iter().sum::<u64>() as f64 / p as f64;
    max / avg.max(1.0)
}

fn main() {
    let shrink = shrink();
    let p = if full_mode() { 256 } else { 64 };
    let graphs: Vec<(String, CsrGraph)> = vec![
        (
            "rmat_skewed".into(),
            rmat(
                if full_mode() { 15 } else { 13 },
                16,
                RmatParams::graph500(),
                42,
            ),
        ),
        ("M3".into(), {
            let prob = by_name("M3").expect("known");
            if shrink == 1 {
                prob.build()
            } else {
                prob.build_small(shrink)
            }
        }),
    ];
    let header = [
        "graph",
        "layout",
        "hot bcast",
        "modeled s",
        "extract max/avg",
        "iters",
    ];
    let mut rows = Vec::new();
    let trace = trace_config();
    for (name, g) in &graphs {
        eprintln!(
            "[cyclic] {name}: n={} m={}",
            g.num_vertices(),
            g.num_directed_edges()
        );
        // Permutation off so vertex ids stay adversarial (min-hooking
        // concentrates parents at low ids — the Figure 3 regime).
        let configs = [
            ("blocked", false, false),
            ("blocked", false, true),
            ("cyclic", true, false),
            ("cyclic", true, true),
        ];
        for (layout, cyclic, hot) in configs {
            let opts = LaccOpts {
                permute: false,
                cyclic_vectors: cyclic,
                dist: gblas::dist::DistOpts {
                    hot_bcast: hot,
                    ..gblas::dist::DistOpts::default()
                },
                ..LaccOpts::default()
            };
            if let Some(t) = &trace {
                t.clear();
            }
            let cfg = lacc::RunConfig::new(p, default_model())
                .with_opts(opts)
                .with_trace_opt(trace.as_ref().map(TraceConfig::sink));
            let run = lacc::run(g, &cfg)
                .expect("distributed LACC rank panicked")
                .run;
            rows.push(vec![
                name.clone(),
                layout.to_string(),
                if hot { "on" } else { "off" }.to_string(),
                fmt_s(run.modeled_total_s),
                format!("{:.1}x", imbalance(&run)),
                format!("{}", run.num_iterations()),
            ]);
        }
    }
    print_table(
        &format!("§VII future work: cyclic vs blocked vectors (p = {p})"),
        &header,
        &rows,
    );
    write_csv("ext_cyclic", &header, &rows);
    if let Some(t) = &trace {
        t.finish();
    }
    println!("\nExpected trade: cyclic flattens the extract imbalance (and makes the hot-rank broadcast unnecessary), while mxv pays a world-wide gather.");
}
