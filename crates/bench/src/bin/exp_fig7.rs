//! Figure 7 — percentage of vertices in converged components per
//! iteration.
//!
//! The five stand-ins with the most connected components. The paper's
//! point: on many-component graphs most vertices retire within a few
//! iterations (which is what powers LACC's sparse vectors), while M3
//! converges late. Serial LACC's per-iteration statistics supply the
//! series exactly.

use lacc::{lacc_serial, LaccOpts};
use lacc_bench::*;
use lacc_graph::generators::suite::by_name;

fn main() {
    let shrink = shrink();
    let names = ["archaea", "eukarya", "M3", "iso_m100", "uk-2002"];
    let mut rows = Vec::new();
    let mut max_iters = 0usize;
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for name in names {
        let prob = by_name(name).expect("known problem");
        let g = if shrink == 1 {
            prob.build()
        } else {
            prob.build_small(shrink)
        };
        let run = lacc_serial(&g, &LaccOpts::default());
        let fr = run.converged_fractions();
        max_iters = max_iters.max(fr.len());
        series.push((name.to_string(), fr));
    }
    for iter in 0..max_iters {
        let mut row = vec![format!("{}", iter + 1)];
        for (_, fr) in &series {
            row.push(match fr.get(iter) {
                Some(f) => format!("{:.1}%", f * 100.0),
                None => "100.0%".to_string(),
            });
        }
        rows.push(row);
    }
    let mut header: Vec<&str> = vec!["iteration"];
    for (name, _) in &series {
        header.push(name);
    }
    print_table(
        "Figure 7: % of vertices in converged components per iteration",
        &header,
        &rows,
    );
    write_csv("fig7_converged_fraction", &header, &rows);
    println!(
        "\nShape check: protein-similarity graphs retire most vertices early; M3 (metagenome) stays active much longer."
    );
}
