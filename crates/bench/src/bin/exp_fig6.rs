//! Figure 6 — the two big graphs at high node counts on Cori KNL.
//!
//! The paper scales MOLIERE_2016 and iso_m100 to 4096 nodes (262,144
//! cores) and shows ParConnect collapsing past 256 nodes while LACC keeps
//! scaling. We run the larger stand-ins over an extended node sweep; rank
//! counts are clamped (thread-per-rank simulation), with the α-β model
//! still charged for the clamped grid, so the reported curve is the
//! modeled time at the simulated rank count.

use dmsim::CORI_KNL;
use lacc::LaccOpts;
use lacc_bench::*;
use lacc_graph::generators::suite::suite_big;

fn main() {
    let nodes: Vec<usize> = if full_mode() {
        vec![4, 16, 64, 256, 1024, 4096]
    } else {
        vec![4, 16, 64, 256]
    };
    let shrink = shrink();
    let opts = LaccOpts::default();
    let trace = trace_config();
    let header = [
        "graph",
        "nodes",
        "lacc ranks",
        "lacc modeled s",
        "pc ranks",
        "pc modeled s",
        "speedup",
    ];
    let mut rows = Vec::new();
    for prob in suite_big() {
        let g = if shrink == 1 {
            prob.build()
        } else {
            prob.build_small(shrink)
        };
        eprintln!(
            "[fig6] {}: n={} m={}",
            prob.name,
            g.num_vertices(),
            g.num_directed_edges()
        );
        let lacc_pts = lacc_scaling_traced(
            &g,
            &CORI_KNL,
            &nodes,
            &opts,
            trace.as_ref().map(TraceConfig::sink),
        );
        let pc_pts = parconnect_scaling(&g, &CORI_KNL, &nodes);
        for ((lp, _), (pp, _)) in lacc_pts.iter().zip(&pc_pts) {
            rows.push(vec![
                prob.name.to_string(),
                format!("{}", lp.nodes),
                format!("{}{}", lp.ranks, if lp.clamped { "*" } else { "" }),
                fmt_s(lp.modeled_s),
                format!("{}{}", pp.ranks, if pp.clamped { "*" } else { "" }),
                fmt_s(pp.modeled_s),
                format!("{:.1}x", pp.modeled_s / lp.modeled_s.max(1e-12)),
            ]);
        }
    }
    print_table("Figure 6: big graphs on Cori KNL", &header, &rows);
    write_csv("fig6_big_graphs", &header, &rows);
    println!("  (* rank count clamped at {} simulated ranks)", rank_cap());
    if let Some(t) = &trace {
        t.finish();
    }
}
