//! Serial vs intra-rank-parallel local kernel timings.
//!
//! Measures `mxv_dense` / `mxv_sparse` against their row-split /
//! entry-chunked parallel variants on Graph500 RMAT matrices
//! (scales 14–16 by default), verifying in the same run that every
//! parallel output is bit-identical to the serial one, and writes the
//! timings to `BENCH_kernels.json` at the workspace root.
//!
//! The thread counts swept are 1, 2 and 4 regardless of the host — a
//! single-core machine will (honestly) show ≈1× speedups; the JSON
//! records `host_cores` so readers can tell. `LACC_BENCH_SCALES` (comma
//! separated) overrides the scale list.

use gblas::serial::{self, CsrMirror, Pattern, SparseVec};
use gblas::{Mask, MinUsize};
use lacc_graph::generators::{rmat, RmatParams};
use std::io::Write;
use std::time::Instant;

const THREADS: [usize; 3] = [1, 2, 4];

struct Sample {
    scale: u32,
    kernel: &'static str,
    threads: usize,
    best_s: f64,
    speedup_vs_serial: f64,
}

/// Best-of-`reps` wall time of `f`, which must return something cheap to
/// compare (keeps the optimizer from deleting the work).
fn time_best<T, F: FnMut() -> T>(reps: usize, mut f: F) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = f();
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, out)
}

fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir;
        }
        if !dir.pop() {
            return std::path::PathBuf::from(".");
        }
    }
}

fn scales() -> Vec<u32> {
    match std::env::var("LACC_BENCH_SCALES") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("LACC_BENCH_SCALES: bad scale"))
            .collect(),
        Err(_) => vec![14, 15, 16],
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut samples: Vec<Sample> = Vec::new();

    for scale in scales() {
        let g = rmat(scale, 16, RmatParams::graph500(), 7);
        let n = g.num_vertices();
        let a = Pattern::from_graph(&g);
        let mirror: CsrMirror = a.csr_mirror();
        eprintln!("[kernels] scale {scale}: n={n} nnz={}", a.nnz());
        let reps = if scale >= 16 { 5 } else { 9 };

        // Dense input: the SpMV case (early LACC iterations).
        let x: Vec<usize> = (0..n).map(|v| v.wrapping_mul(2654435761) % n).collect();
        let (serial_s, y_serial) =
            time_best(reps, || serial::mxv_dense(&a, &x, Mask::None, MinUsize));
        for t in THREADS {
            let (par_s, y_par) = time_best(reps, || {
                serial::mxv_dense_par(&mirror, &x, Mask::None, MinUsize, t)
            });
            assert_eq!(
                y_par, y_serial,
                "mxv_dense_par(t={t}) diverged at scale {scale}"
            );
            samples.push(Sample {
                scale,
                kernel: "mxv_dense",
                threads: t,
                best_s: par_s,
                speedup_vs_serial: serial_s / par_s,
            });
            eprintln!(
                "  mxv_dense   t={t}: {:.2} ms ({:.2}x vs serial {:.2} ms)",
                par_s * 1e3,
                serial_s / par_s,
                serial_s * 1e3
            );
        }

        // Sparse input at 10% fill: the SpMSpV case (late iterations).
        let entries: Vec<(usize, usize)> = (0..n).step_by(10).map(|v| (v, x[v])).collect();
        let xs = SparseVec::from_entries(n, entries);
        let (sp_serial_s, ys_serial) =
            time_best(reps, || serial::mxv_sparse(&a, &xs, Mask::None, MinUsize));
        for t in THREADS {
            let (par_s, ys_par) = time_best(reps, || {
                serial::mxv_sparse_par(&a, &xs, Mask::None, MinUsize, t)
            });
            assert_eq!(
                ys_par, ys_serial,
                "mxv_sparse_par(t={t}) diverged at scale {scale}"
            );
            samples.push(Sample {
                scale,
                kernel: "mxv_sparse",
                threads: t,
                best_s: par_s,
                speedup_vs_serial: sp_serial_s / par_s,
            });
            eprintln!(
                "  mxv_sparse  t={t}: {:.2} ms ({:.2}x vs serial {:.2} ms)",
                par_s * 1e3,
                sp_serial_s / par_s,
                sp_serial_s * 1e3
            );
        }
    }

    // Hand-rolled JSON (the workspace carries no serde).
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str("  \"verified_identical\": true,\n");
    json.push_str("  \"samples\": [\n");
    for (k, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scale\": {}, \"kernel\": \"{}\", \"threads\": {}, \
             \"best_s\": {:.6}, \"speedup_vs_serial\": {:.3}}}{}\n",
            s.scale,
            s.kernel,
            s.threads,
            s.best_s,
            s.speedup_vs_serial,
            if k + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = workspace_root().join("BENCH_kernels.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_kernels.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_kernels.json");
    println!("wrote {}", path.display());

    // Shared tracing flag (`--trace <path>` / `LACC_TRACE`): run a small
    // distributed LACC smoke whose kernels exercise the paths timed above
    // and emit its span trace alongside the timings.
    if let Some(trace) = lacc_bench::trace_config() {
        let scale = scales().iter().copied().min().unwrap_or(12).min(12);
        let g = rmat(scale, 16, RmatParams::graph500(), 7);
        lacc::run_distributed_traced(
            &g,
            4,
            lacc_bench::default_model(),
            &lacc::LaccOpts::default(),
            Some(trace.sink()),
        )
        .expect("distributed LACC rank panicked");
        trace.finish();
    }
}
