//! Serial vs intra-rank-parallel local kernel timings.
//!
//! Measures `mxv_dense` / `mxv_sparse` against their row-split /
//! owner-partitioned parallel variants on Graph500 RMAT matrices
//! (scales 14–16 by default), at both index widths (`u32` and the
//! default machine-word width, reported as `u64`), verifying in the
//! same run that every parallel output is bit-identical to the serial
//! one and that the narrow-width outputs match the wide-width outputs.
//! Timings go to `BENCH_kernels.json` at the workspace root.
//!
//! Each sample also records `bytes_processed`: the index bytes the
//! kernel scans (touched nonzeros × index size), which is the quantity
//! the narrow layout halves.
//!
//! The thread counts swept are 1, 2 and 4 regardless of the host — a
//! single-core machine will (honestly) show ≈1× speedups; the JSON
//! records `host_cores` so readers can tell. `LACC_BENCH_SCALES` (comma
//! separated) overrides the scale list, and `LACC_BENCH_ASSERT=1`
//! turns the ≥0.9× parallel-speedup floor into a hard assert on
//! multi-core hosts.

use gblas::serial::{self, CsrMirror, Pattern, SparseVec};
use gblas::{Mask, MinUsize};
use lacc_graph::generators::{rmat, RmatParams};
use lacc_graph::{CsrGraph, Idx};
use std::io::Write;
use std::time::Instant;

const THREADS: [usize; 3] = [1, 2, 4];

struct Sample {
    scale: u32,
    kernel: &'static str,
    width: &'static str,
    threads: usize,
    best_s: f64,
    bytes_processed: u64,
    speedup_vs_serial: f64,
}

/// Best-of-`reps` wall time of `f`, which must return something cheap to
/// compare (keeps the optimizer from deleting the work).
fn time_best<T, F: FnMut() -> T>(reps: usize, mut f: F) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = f();
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, out)
}

fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir;
        }
        if !dir.pop() {
            return std::path::PathBuf::from(".");
        }
    }
}

fn scales() -> Vec<u32> {
    match std::env::var("LACC_BENCH_SCALES") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("LACC_BENCH_SCALES: bad scale"))
            .collect(),
        Err(_) => vec![14, 15, 16],
    }
}

/// Width-erased sparse output, for cross-width identity asserts.
type WideEntries = Vec<(usize, usize)>;

fn widened<I: Idx>(v: &SparseVec<usize, I>) -> WideEntries {
    v.entries().iter().map(|&(i, t)| (i.idx(), t)).collect()
}

/// Times every kernel × thread-count combination at one index width and
/// returns the (widened) serial dense and sparse outputs so the caller
/// can assert they agree across widths.
fn bench_width<I: Idx>(
    scale: u32,
    reps: usize,
    g: &CsrGraph<I>,
    width: &'static str,
    samples: &mut Vec<Sample>,
) -> (WideEntries, WideEntries) {
    let n = g.num_vertices();
    let a = Pattern::from_graph(g);
    let mirror: CsrMirror<I> = a.csr_mirror();
    let idx_bytes = I::BYTES as u64;

    // Dense input: the SpMV case (early LACC iterations). Every stored
    // index is read exactly once.
    let x: Vec<usize> = (0..n).map(|v| v.wrapping_mul(2654435761) % n).collect();
    let dense_bytes = a.nnz() as u64 * idx_bytes;
    let (serial_s, y_serial) = time_best(reps, || serial::mxv_dense(&a, &x, Mask::None, MinUsize));
    for t in THREADS {
        let (par_s, y_par) = time_best(reps, || {
            serial::mxv_dense_par(&mirror, &x, Mask::None, MinUsize, t)
        });
        assert_eq!(
            y_par, y_serial,
            "mxv_dense_par(t={t}, {width}) diverged at scale {scale}"
        );
        samples.push(Sample {
            scale,
            kernel: "mxv_dense",
            width,
            threads: t,
            best_s: par_s,
            bytes_processed: dense_bytes,
            speedup_vs_serial: serial_s / par_s,
        });
        eprintln!(
            "  mxv_dense   {width} t={t}: {:.2} ms ({:.2}x vs serial {:.2} ms)",
            par_s * 1e3,
            serial_s / par_s,
            serial_s * 1e3
        );
    }

    // Sparse input at 10% fill: the SpMSpV case (late iterations). Only
    // the columns selected by the input vector are scanned.
    let entries: Vec<(I, usize)> = (0..n)
        .step_by(10)
        .map(|v| (I::from_usize(v), x[v]))
        .collect();
    let xs = SparseVec::from_entries(n, entries);
    let sparse_bytes = xs
        .entries()
        .iter()
        .map(|&(c, _)| a.col(c.idx()).len() as u64)
        .sum::<u64>()
        * idx_bytes;
    let (sp_serial_s, ys_serial) =
        time_best(reps, || serial::mxv_sparse(&a, &xs, Mask::None, MinUsize));
    for t in THREADS {
        let (par_s, ys_par) = time_best(reps, || {
            serial::mxv_sparse_par(&a, &xs, Mask::None, MinUsize, t)
        });
        assert_eq!(
            ys_par, ys_serial,
            "mxv_sparse_par(t={t}, {width}) diverged at scale {scale}"
        );
        samples.push(Sample {
            scale,
            kernel: "mxv_sparse",
            width,
            threads: t,
            best_s: par_s,
            bytes_processed: sparse_bytes,
            speedup_vs_serial: sp_serial_s / par_s,
        });
        eprintln!(
            "  mxv_sparse  {width} t={t}: {:.2} ms ({:.2}x vs serial {:.2} ms)",
            par_s * 1e3,
            sp_serial_s / par_s,
            sp_serial_s * 1e3
        );
    }

    (widened(&y_serial), widened(&ys_serial))
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut samples: Vec<Sample> = Vec::new();

    for scale in scales() {
        let g = rmat(scale, 16, RmatParams::graph500(), 7);
        eprintln!(
            "[kernels] scale {scale}: n={} nnz={}",
            g.num_vertices(),
            g.num_directed_edges()
        );
        let reps = if scale >= 16 { 5 } else { 9 };

        let (yd_wide, ys_wide) = bench_width(scale, reps, &g, "u64", &mut samples);
        let g32: CsrGraph<u32> = g.try_narrow().expect("bench scales fit in u32");
        let (yd_narrow, ys_narrow) = bench_width(scale, reps, &g32, "u32", &mut samples);
        assert_eq!(
            yd_narrow, yd_wide,
            "u32 mxv_dense output diverged from u64 at scale {scale}"
        );
        assert_eq!(
            ys_narrow, ys_wide,
            "u32 mxv_sparse output diverged from u64 at scale {scale}"
        );
    }

    // Regression floor: on a multi-core host the owner-partitioned
    // parallel SpMSpV must not be slower than ~serial. Opt-in so that
    // noisy CI machines can still regenerate the JSON without it.
    if std::env::var("LACC_BENCH_ASSERT").ok().as_deref() == Some("1") && cores >= 2 {
        for s in &samples {
            if s.kernel == "mxv_sparse" && s.threads >= 2 {
                assert!(
                    s.speedup_vs_serial >= 0.9,
                    "mxv_sparse regression: {} t={} width={} speedup {:.3} < 0.9",
                    s.scale,
                    s.threads,
                    s.width,
                    s.speedup_vs_serial
                );
            }
        }
        eprintln!("[kernels] speedup floor assert passed (cores={cores})");
    }

    // Hand-rolled JSON (the workspace carries no serde).
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str("  \"verified_identical\": true,\n");
    json.push_str("  \"samples\": [\n");
    for (k, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scale\": {}, \"kernel\": \"{}\", \"width\": \"{}\", \"threads\": {}, \
             \"best_s\": {:.6}, \"bytes_processed\": {}, \"speedup_vs_serial\": {:.3}}}{}\n",
            s.scale,
            s.kernel,
            s.width,
            s.threads,
            s.best_s,
            s.bytes_processed,
            s.speedup_vs_serial,
            if k + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = workspace_root().join("BENCH_kernels.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_kernels.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_kernels.json");
    println!("wrote {}", path.display());

    // Shared tracing flag (`--trace <path>` / `LACC_TRACE`): run a small
    // distributed LACC smoke whose kernels exercise the paths timed above
    // and emit its span trace alongside the timings.
    if let Some(trace) = lacc_bench::trace_config() {
        let scale = scales().iter().copied().min().unwrap_or(12).min(12);
        let g = rmat(scale, 16, RmatParams::graph500(), 7);
        let cfg = lacc::RunConfig::new(4, lacc_bench::default_model()).with_trace(trace.sink());
        lacc::run(&g, &cfg).expect("distributed LACC rank panicked");
        trace.finish();
    }
}
