//! Table III — test problems.
//!
//! Builds every stand-in graph in the suite, computes its census
//! (vertices, directed edges, components — the paper's columns), and
//! prints it next to the paper's reported numbers so the structural match
//! can be judged. `LACC_FULL=1` builds the full-size stand-ins.

use lacc_bench::{print_table, shrink, write_csv};
use lacc_graph::generators::suite::{suite_big, suite_small};
use lacc_graph::stats::graph_stats;

fn main() {
    let shrink = shrink();
    let mut rows = Vec::new();
    for p in suite_small().into_iter().chain(suite_big()) {
        let g = if shrink == 1 {
            p.build()
        } else {
            p.build_small(shrink)
        };
        let s = graph_stats(&g);
        rows.push(vec![
            p.name.to_string(),
            format!("{}", s.vertices),
            format!("{}", s.directed_edges),
            format!("{}", s.components),
            format!("{:.1}", s.avg_degree),
            format!("{}", s.max_degree),
            format!("{}", p.paper_vertices),
            format!("{}", p.paper_edges),
            format!("{}", p.paper_components),
            p.description.to_string(),
        ]);
    }
    let header = [
        "graph",
        "V (ours)",
        "dE (ours)",
        "comps (ours)",
        "avg deg",
        "max deg",
        "V (paper)",
        "dE (paper)",
        "comps (paper)",
        "description",
    ];
    print_table(
        &format!("Table III: test problems (stand-ins at 1/{shrink} scale)"),
        &header,
        &rows,
    );
    write_csv("table3_problems", &header, &rows);
}
