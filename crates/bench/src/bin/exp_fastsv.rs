//! Extension experiment — LACC vs distributed FastSV.
//!
//! FastSV (Zhang, Azad & Hu 2020) superseded LACC in LAGraph; the paper's
//! related-work positioning makes the head-to-head interesting: FastSV
//! runs fewer, simpler supersteps (no star maintenance) but always-dense
//! vectors. Expectation: FastSV wins on few-component graphs, LACC's
//! Lemma-1 retirement wins on many-component graphs as p grows.

use dmsim::EDISON;
use gblas::dist::DistOpts;
use lacc::LaccOpts;
use lacc_baselines::fastsv_dist;
use lacc_bench::*;
use lacc_graph::generators::suite::by_name;

fn main() {
    let nodes = scaling_nodes();
    let shrink = shrink();
    let names = ["archaea", "M3", "queen_4147", "twitter7"];
    let header = [
        "graph",
        "nodes",
        "ranks",
        "lacc modeled s",
        "fastsv modeled s",
        "lacc/fastsv",
        "lacc iters",
        "fastsv rounds",
    ];
    let mut rows = Vec::new();
    let trace = trace_config();
    for name in names {
        let prob = by_name(name).expect("known problem");
        let g = if shrink == 1 {
            prob.build()
        } else {
            prob.build_small(shrink)
        };
        eprintln!(
            "[fastsv] {}: n={} m={}",
            name,
            g.num_vertices(),
            g.num_directed_edges()
        );
        for &n_nodes in &nodes {
            let (ranks, _) = lacc_ranks_for(n_nodes);
            if let Some(t) = &trace {
                t.clear();
            }
            let lacc_run = lacc::run_distributed_traced(
                &g,
                ranks,
                EDISON.lacc_model(),
                &LaccOpts::default(),
                trace.as_ref().map(TraceConfig::sink),
            )
            .expect("distributed LACC rank panicked");
            let fsv = fastsv_dist(&g, ranks, EDISON.lacc_model(), &DistOpts::default())
                .expect("FastSV rank panicked");
            rows.push(vec![
                name.to_string(),
                format!("{n_nodes}"),
                format!("{ranks}"),
                fmt_s(lacc_run.modeled_total_s),
                fmt_s(fsv.modeled_total_s),
                format!(
                    "{:.2}",
                    lacc_run.modeled_total_s / fsv.modeled_total_s.max(1e-12)
                ),
                format!("{}", lacc_run.num_iterations()),
                format!("{}", fsv.rounds),
            ]);
        }
    }
    print_table(
        "Extension: LACC vs distributed FastSV (Edison model)",
        &header,
        &rows,
    );
    write_csv("ext_fastsv", &header, &rows);
    if let Some(t) = &trace {
        t.finish();
    }
}
