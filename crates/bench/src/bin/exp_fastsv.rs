//! Extension experiment — LACC vs the first-class distributed FastSV
//! engine.
//!
//! FastSV (Zhang, Azad & Hu 2020) superseded LACC in LAGraph; the paper's
//! related-work positioning makes the head-to-head interesting: FastSV
//! runs fewer, simpler supersteps (no star maintenance) but always-dense
//! vectors. Expectation: FastSV wins on few-component graphs, LACC's
//! Lemma-1 retirement wins on many-component graphs as p grows. Both
//! engines run over the same optimized `gblas::dist` stack through
//! `lacc::run`, so the comparison isolates the algorithm, not the
//! communication layer.

use dmsim::EDISON;
use lacc::{EngineSelect, LaccOpts, RunConfig};
use lacc_bench::*;
use lacc_graph::generators::suite::by_name;
use lacc_graph::unionfind::canonicalize_labels;

fn main() {
    let nodes = scaling_nodes();
    let shrink = shrink();
    let names = ["archaea", "M3", "queen_4147", "twitter7"];
    let header = [
        "graph",
        "nodes",
        "ranks",
        "lacc modeled s",
        "fastsv modeled s",
        "lacc/fastsv",
        "lacc iters",
        "fastsv rounds",
    ];
    let mut rows = Vec::new();
    let trace = trace_config();
    for name in names {
        let prob = by_name(name).expect("known problem");
        let g = if shrink == 1 {
            prob.build()
        } else {
            prob.build_small(shrink)
        };
        eprintln!(
            "[fastsv] {}: n={} m={}",
            name,
            g.num_vertices(),
            g.num_directed_edges()
        );
        for &n_nodes in &nodes {
            let (ranks, _) = lacc_ranks_for(n_nodes);
            if let Some(t) = &trace {
                t.clear();
            }
            let cfg = RunConfig::new(ranks, EDISON.lacc_model())
                .with_trace_opt(trace.as_ref().map(TraceConfig::sink));
            let lacc_run = lacc::run(&g, &cfg).expect("distributed LACC rank panicked");
            let opts = LaccOpts::builder().engine(EngineSelect::Fastsv).build();
            let fsv = lacc::run(&g, &cfg.clone().with_opts(opts)).expect("FastSV rank panicked");
            assert_eq!(
                canonicalize_labels(&lacc_run.labels),
                canonicalize_labels(&fsv.labels),
                "engines disagree on {name}"
            );
            rows.push(vec![
                name.to_string(),
                format!("{n_nodes}"),
                format!("{ranks}"),
                fmt_s(lacc_run.modeled_total_s),
                fmt_s(fsv.modeled_total_s),
                format!(
                    "{:.2}",
                    lacc_run.modeled_total_s / fsv.modeled_total_s.max(1e-12)
                ),
                format!("{}", lacc_run.num_iterations()),
                format!("{}", fsv.num_iterations()),
            ]);
        }
    }
    print_table(
        "Extension: LACC vs distributed FastSV engine (Edison model)",
        &header,
        &rows,
    );
    write_csv("ext_fastsv", &header, &rows);
    if let Some(t) = &trace {
        t.finish();
    }
}
