//! Figure 4 — strong scaling of LACC vs ParConnect on Edison.
//!
//! Eight smaller test problems, node counts up to 256 (paper: up to 256
//! nodes / 6144 cores). LACC runs 4 ranks per node (hybrid); ParConnect
//! runs flat MPI (24 ranks/node on Edison), squared down to a legal grid.
//! The y-value is modeled seconds from the α-β cost tracker — who wins,
//! by what factor, and where curves flatten is the reproduced shape.

use dmsim::EDISON;
use lacc::LaccOpts;
use lacc_bench::*;
use lacc_graph::generators::suite::suite_small;

fn main() {
    let nodes = scaling_nodes();
    let shrink = shrink();
    let opts = LaccOpts::default();
    let trace = trace_config();
    let header = [
        "graph",
        "nodes",
        "lacc ranks",
        "lacc modeled s",
        "pc ranks",
        "pc modeled s",
        "speedup",
        "lacc iters",
        "pc rounds",
    ];
    let mut rows = Vec::new();
    for prob in suite_small() {
        let g = if shrink == 1 {
            prob.build()
        } else {
            prob.build_small(shrink)
        };
        eprintln!(
            "[fig4] {}: n={} m={}",
            prob.name,
            g.num_vertices(),
            g.num_directed_edges()
        );
        let lacc_pts = lacc_scaling_traced(
            &g,
            &EDISON,
            &nodes,
            &opts,
            trace.as_ref().map(TraceConfig::sink),
        );
        let pc_pts = parconnect_scaling(&g, &EDISON, &nodes);
        for ((lp, _), (pp, _)) in lacc_pts.iter().zip(&pc_pts) {
            rows.push(vec![
                prob.name.to_string(),
                format!("{}", lp.nodes),
                format!("{}{}", lp.ranks, if lp.clamped { "*" } else { "" }),
                fmt_s(lp.modeled_s),
                format!("{}{}", pp.ranks, if pp.clamped { "*" } else { "" }),
                fmt_s(pp.modeled_s),
                format!("{:.1}x", pp.modeled_s / lp.modeled_s.max(1e-12)),
                format!("{}", lp.iterations),
                format!("{}", pp.iterations),
            ]);
        }
    }
    print_table(
        "Figure 4: strong scaling on Edison (LACC vs ParConnect)",
        &header,
        &rows,
    );
    write_csv("fig4_edison_scaling", &header, &rows);
    println!("  (* rank count clamped at {} simulated ranks)", rank_cap());
    if let Some(t) = &trace {
        t.finish();
    }
}
