//! Engine-portfolio benchmark: the three `CcEngine`s head to head.
//!
//! Runs every engine (LACC, FastSV, label propagation) over the same
//! optimized distributed stack on three graph families — Graph500 RMAT
//! (skewed, one giant component), a 3-D mesh (high diameter), and a
//! community graph (many components) — and writes `BENCH_engines.json`
//! at the workspace root with per-(family, engine) metrics:
//!
//! * `iterations` — supersteps/rounds until convergence.
//! * `alltoall_words` — words moved inside `alltoallv` spans.
//! * `words_saved` — sender-side compaction counter (nonzero ⇒ the
//!   engine really runs over the optimized stack, not a naive path).
//! * `modeled_s` — modeled machine seconds.
//!
//! Per family, canonical labels are asserted identical across all three
//! engines, and the `auto` selection's choice + rationale are recorded.
//! The run asserts FastSV converges in strictly fewer rounds than LACC
//! on at least one family — the LAGraph-successor claim the engine
//! portfolio exists to let users exploit.
//!
//! Environment overrides: `LACC_ENG_SCALE` (log2 vertices, default 14),
//! `LACC_ENG_RANKS` (default 16).

use dmsim::{TraceLevel, TraceSink};
use lacc::{EngineKind, EngineSelect, LaccOpts, RunConfig};
use lacc_graph::generators::{community_graph, mesh_3d, rmat, RmatParams};
use lacc_graph::unionfind::canonicalize_labels;
use lacc_graph::CsrGraph;
use std::io::Write;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{name}: bad value")))
        .unwrap_or(default)
}

fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir;
        }
        if !dir.pop() {
            return std::path::PathBuf::from(".");
        }
    }
}

struct Row {
    family: &'static str,
    engine: EngineKind,
    iterations: usize,
    alltoall_words: u64,
    words_saved: u64,
    modeled_s: f64,
}

fn main() {
    let scale = env_or("LACC_ENG_SCALE", 14) as u32;
    let ranks = env_or("LACC_ENG_RANKS", 16);
    let n = 1usize << scale;
    let side = (n as f64).cbrt().round().max(2.0) as usize;
    let families: Vec<(&'static str, CsrGraph)> = vec![
        ("rmat", rmat(scale, 16, RmatParams::graph500(), 7)),
        ("mesh3d", mesh_3d(side, side, side)),
        (
            "community",
            community_graph(n, (n / 50).max(1), 8.0, 1.4, 7),
        ),
    ];
    let model = lacc_bench::default_model();
    let engines = [
        EngineSelect::Lacc,
        EngineSelect::Fastsv,
        EngineSelect::LabelProp,
    ];

    let mut rows: Vec<Row> = Vec::new();
    let mut auto_choices: Vec<(&'static str, EngineKind, String)> = Vec::new();
    let mut fastsv_beats_lacc = false;
    for (family, g) in &families {
        eprintln!(
            "[engines] {family}: n={} m={}",
            g.num_vertices(),
            g.num_directed_edges()
        );
        let mut canon: Option<Vec<usize>> = None;
        let mut iters_by: Vec<(EngineKind, usize)> = Vec::new();
        for &select in &engines {
            let opts = LaccOpts::builder().engine(select).build();
            let sink = TraceSink::new(TraceLevel::Collectives);
            let cfg = RunConfig::new(ranks, model)
                .with_opts(opts)
                .with_trace(&sink);
            let out = lacc::run(g, &cfg).expect("engine rank panicked");
            let labels = canonicalize_labels(&out.labels);
            match &canon {
                None => canon = Some(labels),
                Some(reference) => assert_eq!(
                    reference, &labels,
                    "{} disagrees with lacc on {family}",
                    out.engine
                ),
            }
            let report = sink.report();
            let alltoall_words: u64 = report
                .per_kind
                .iter()
                .filter(|k| k.name.starts_with("alltoallv"))
                .map(|k| k.words)
                .sum();
            eprintln!(
                "  {:>9}: iters={} alltoall={alltoall_words} saved={} modeled={:.2}ms",
                out.engine.name(),
                out.num_iterations(),
                report.words_saved,
                out.modeled_total_s * 1e3
            );
            iters_by.push((out.engine, out.num_iterations()));
            rows.push(Row {
                family,
                engine: out.engine,
                iterations: out.num_iterations(),
                alltoall_words,
                words_saved: report.words_saved,
                modeled_s: out.modeled_total_s,
            });
        }
        let iters_of = |k: EngineKind| {
            iters_by
                .iter()
                .find(|(e, _)| *e == k)
                .map(|(_, i)| *i)
                .expect("engine ran")
        };
        fastsv_beats_lacc |= iters_of(EngineKind::Fastsv) < iters_of(EngineKind::Lacc);

        // What would `auto` have picked here, and why?
        let auto = lacc::run(
            g,
            &RunConfig::new(ranks, model)
                .with_opts(LaccOpts::builder().engine(EngineSelect::Auto).build()),
        )
        .expect("auto rank panicked");
        let why = auto.rationale.clone().expect("auto records a rationale");
        eprintln!("  auto -> {} ({why})", auto.engine);
        auto_choices.push((family, auto.engine, why));
    }
    assert!(
        fastsv_beats_lacc,
        "FastSV must converge in fewer rounds than LACC on at least one family"
    );

    // Hand-rolled JSON (the workspace carries no serde).
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"ranks\": {ranks},\n"));
    json.push_str("  \"canonical_labels_identical\": true,\n");
    json.push_str(&format!(
        "  \"fastsv_fewer_iters_than_lacc_somewhere\": {fastsv_beats_lacc},\n"
    ));
    json.push_str("  \"auto\": [\n");
    for (k, (family, engine, why)) in auto_choices.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"family\": \"{family}\", \"engine\": \"{engine}\", \
             \"rationale\": \"{}\"}}{}\n",
            why.replace('\\', "\\\\").replace('"', "\\\""),
            if k + 1 < auto_choices.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"runs\": [\n");
    for (k, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"family\": \"{}\", \"engine\": \"{}\", \"iterations\": {}, \
             \"alltoall_words\": {}, \"words_saved\": {}, \"modeled_s\": {:.6}}}{}\n",
            r.family,
            r.engine,
            r.iterations,
            r.alltoall_words,
            r.words_saved,
            r.modeled_s,
            if k + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = workspace_root().join("BENCH_engines.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_engines.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_engines.json");
    println!("wrote {}", path.display());
}
