//! Figure 3 — skewed all-to-all during grandparent extraction.
//!
//! The paper plots, for two iterations of LACC on an RMAT graph, the
//! number of extract requests each of 16 processes receives: early
//! iterations are balanced-ish, later ones concentrate on low ranks
//! (parents have small ids after min-hooking), with many ranks receiving
//! nothing — the motivation for the hot-rank broadcast and the sparse
//! all-to-all. We reproduce it with the per-rank `extract_received`
//! counters of a p=16 run, with the hot-rank broadcast disabled so the raw
//! skew is visible.

use lacc::LaccOpts;
use lacc_bench::*;
use lacc_graph::generators::{rmat, RmatParams};

fn main() {
    let scale = if full_mode() { 15 } else { 13 };
    let g = rmat(scale, 16, RmatParams::graph500(), 42);
    eprintln!(
        "[fig3] rmat scale {scale}: n={} m={}",
        g.num_vertices(),
        g.num_directed_edges()
    );
    let p = 16;
    // Naive communication so the imbalance is raw (the paper's Figure 3
    // shows the problem its §V-B optimizations then fix).
    let opts = LaccOpts::naive_comm();
    let trace = trace_config();
    let cfg = lacc::RunConfig::new(p, default_model())
        .with_opts(opts)
        .with_trace_opt(trace.as_ref().map(TraceConfig::sink));
    let run = lacc::run(&g, &cfg)
        .expect("distributed LACC rank panicked")
        .run;
    let niters = run.num_iterations();
    let early = 1.min(niters - 1);
    let late = niters.saturating_sub(2);
    let col_early = format!("iteration {}", early + 1);
    let col_late = format!("iteration {}", late + 1);
    let header: Vec<&str> = vec!["rank", &col_early, &col_late];
    let mut rows = Vec::new();
    for rank in 0..p {
        rows.push(vec![
            format!("{rank}"),
            format!("{}", run.iters[early].extract_received[rank]),
            format!("{}", run.iters[late].extract_received[rank]),
        ]);
    }
    print_table(
        "Figure 3: extract requests received per process (p=16, RMAT)",
        &header,
        &rows,
    );
    write_csv("fig3_extract_skew", &header, &rows);

    // Quantify the skew the way the text does.
    for (label, k) in [("early", early), ("late", late)] {
        let v = &run.iters[k].extract_received;
        let max = *v.iter().max().unwrap() as f64;
        let avg = v.iter().sum::<u64>() as f64 / p as f64;
        let zeros = v.iter().filter(|&&x| x == 0).count();
        println!(
            "  {label} iteration {}: max/avg imbalance {:.1}x, {zeros}/{p} ranks receive nothing",
            k + 1,
            if avg > 0.0 { max / avg } else { 0.0 },
        );
    }
    if let Some(t) = &trace {
        t.finish();
    }
}
