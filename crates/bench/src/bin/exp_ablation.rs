//! Ablation study — each §IV-B / §V-B optimization toggled independently.
//!
//! Not a paper figure, but the paper's conclusions attribute LACC's
//! performance to three mechanisms; this experiment isolates them:
//!
//! 1. **Vector sparsity** (Lemmas 1–2): LACC vs the dense-AS translation.
//! 2. **All-to-all algorithm**: pairwise-exchange vs hypercube vs sparse.
//! 3. **Hot-rank broadcast**: on vs off, plus a sweep of the threshold h.
//!
//! Two comm-layer extensions are ablated the same way: sender-side
//! compaction (dedup / combine / compress, each alone) and the in-flight
//! combining stack (combining hypercube, fused starcheck, value RLE).

use dmsim::{AllToAll, EDISON};
use gblas::dist::DistOpts;
use lacc::LaccOpts;
use lacc_bench::*;
use lacc_graph::generators::suite::by_name;

fn main() {
    let shrink = shrink();
    let p = if full_mode() { 256 } else { 64 };
    let model = EDISON.lacc_model();
    let prob = by_name("archaea").expect("known problem");
    let g = if shrink == 1 {
        prob.build()
    } else {
        prob.build_small(shrink)
    };
    eprintln!(
        "[ablation] {} at p={p}: n={} m={}",
        prob.name,
        g.num_vertices(),
        g.num_directed_edges()
    );

    let mut rows = Vec::new();
    let trace = trace_config();
    let mut run_cfg = |label: &str, opts: LaccOpts| {
        // Cleared per configuration: an exported trace covers the last one.
        if let Some(t) = &trace {
            t.clear();
        }
        let cfg = lacc::RunConfig::new(p, model)
            .with_opts(opts)
            .with_trace_opt(trace.as_ref().map(TraceConfig::sink));
        let run = lacc::run(&g, &cfg)
            .expect("distributed LACC rank panicked")
            .run;
        rows.push(vec![
            label.to_string(),
            fmt_s(run.modeled_total_s),
            format!("{}", run.num_iterations()),
            fmt_s(run.wall_s),
        ]);
    };

    // 1. Sparsity.
    run_cfg("LACC (all optimizations)", LaccOpts::default());
    run_cfg("dense AS (no sparsity)", LaccOpts::dense_as());

    // 2. All-to-all algorithms (sparsity on).
    for (name, algo) in [
        ("alltoall = pairwise", AllToAll::Pairwise),
        ("alltoall = hypercube", AllToAll::Hypercube),
        ("alltoall = direct", AllToAll::Direct),
        ("alltoall = sparse", AllToAll::Sparse),
    ] {
        let opts = LaccOpts {
            dist: DistOpts {
                alltoall: algo,
                ..DistOpts::default()
            },
            ..LaccOpts::default()
        };
        run_cfg(name, opts);
    }

    // 3. Hot-rank broadcast.
    run_cfg(
        "hot-rank broadcast off",
        LaccOpts {
            dist: DistOpts {
                hot_bcast: false,
                ..DistOpts::default()
            },
            ..LaccOpts::default()
        },
    );
    for h in [1.0, 2.0, 4.0, 16.0] {
        let opts = LaccOpts {
            dist: DistOpts {
                hot_threshold: h,
                ..DistOpts::default()
            },
            ..LaccOpts::default()
        };
        run_cfg(&format!("hot threshold h = {h}"), opts);
    }

    // 4. Sender-side compaction: all off, then each mechanism alone.
    run_cfg(
        "compaction off",
        LaccOpts {
            dist: DistOpts {
                dedup_requests: false,
                combine_assigns: false,
                compress_ids: false,
                ..DistOpts::default()
            },
            ..LaccOpts::default()
        },
    );
    for (name, dedup, combine, compress) in [
        ("compaction = dedup only", true, false, false),
        ("compaction = combine only", false, true, false),
        ("compaction = compress only", false, false, true),
    ] {
        let opts = LaccOpts {
            dist: DistOpts {
                dedup_requests: dedup,
                combine_assigns: combine,
                compress_ids: compress,
                ..DistOpts::default()
            },
            ..LaccOpts::default()
        };
        run_cfg(name, opts);
    }

    // 5. In-flight combining: all off (sender-side compaction retained),
    // then the combining stack layered back in. Fused starcheck rides on
    // the combining route, so it only exists with `combine_in_flight`;
    // value RLE also applies to the plain reply path and is ablated alone.
    for (name, in_flight, fuse, rle) in [
        ("combining off (sender-side only)", false, false, false),
        ("combining = in-flight only", true, false, false),
        ("combining = fused starcheck", true, true, false),
        ("combining = value RLE only", false, false, true),
    ] {
        let opts = LaccOpts {
            dist: DistOpts {
                combine_in_flight: in_flight,
                fuse_starcheck: fuse,
                compress_values: rle,
                ..DistOpts::default()
            },
            ..LaccOpts::default()
        };
        run_cfg(name, opts);
    }

    // 6. Index width at the fully optimized point: the modeled time is
    // word-based and so identical; the rows make the iteration/label
    // equivalence visible next to every other knob.
    for (name, width) in [
        ("index width = u32", lacc::IndexWidth::U32),
        ("index width = u64", lacc::IndexWidth::U64),
    ] {
        let opts = LaccOpts {
            index_width: width,
            ..LaccOpts::default()
        };
        run_cfg(name, opts);
    }

    // Fully naive stack for reference.
    run_cfg("naive comm (pairwise, no bcast)", LaccOpts::naive_comm());

    // Extension: the first-class distributed FastSV engine (the LAGraph
    // successor) on the same substrate and machine model.
    let fsv_opts = LaccOpts::builder()
        .engine(lacc::EngineSelect::Fastsv)
        .build();
    run_cfg("FastSV engine (extension)", fsv_opts);

    let header = ["configuration", "modeled s", "iterations", "sim wall s"];
    print_table(
        &format!("Ablation on {} (p = {p}, Edison model)", prob.name),
        &header,
        &rows,
    );
    write_csv("ablation", &header, &rows);
    if let Some(t) = &trace {
        t.finish();
    }
}
