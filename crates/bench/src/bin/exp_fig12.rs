//! Figures 1–2 — a step-by-step walkthrough of the AS algorithm.
//!
//! The paper's Figures 1 and 2 illustrate hooking, shortcutting and star
//! detection on a small example forest. This binary replays the same
//! machinery on a 12-vertex graph and prints the forest and star vector
//! after every step of every iteration — the executable version of those
//! figures.

use lacc::asref::starcheck;
use lacc_graph::{CsrGraph, EdgeList};

fn show(step: &str, f: &[usize], star: &[bool]) {
    let fs: Vec<String> = f.iter().map(|x| format!("{x:>2}")).collect();
    let ss: Vec<String> = star
        .iter()
        .map(|&s| if s { " *" } else { " ." }.into())
        .collect();
    println!("  {step:<24} f = [{}]", fs.join(" "));
    println!("  {:<24} s = [{}]", "", ss.join(" "));
}

fn main() {
    // Two components: a long path (worst case for pointer jumping) and a
    // small clique, with ids shuffled so hooks are interesting.
    let el = EdgeList::from_pairs(
        12,
        [
            (7, 3),
            (3, 9),
            (9, 1),
            (1, 5),
            (5, 11),
            // clique on {0, 2, 4, 6}
            (0, 2),
            (0, 4),
            (0, 6),
            (2, 4),
            (2, 6),
            (4, 6),
            // pendant pair
            (8, 10),
        ],
    );
    let g: CsrGraph = CsrGraph::from_edges(el);
    let n = g.num_vertices();
    let mut f: Vec<usize> = (0..n).collect();
    let mut star = vec![true; n];

    println!("Figures 1-2 walkthrough: path {{7,3,9,1,5,11}}, clique {{0,2,4,6}}, pair {{8,10}}\n");
    show("initial singletons", &f, &star);

    for iteration in 1..=10 {
        println!("\niteration {iteration}:");
        let mut changed = 0usize;

        // Conditional hooking (two-phase, min-combined).
        let mut hooks: Vec<(usize, usize)> = Vec::new();
        for (u, v) in g.edges() {
            if star[u] && f[u] > f[v] {
                hooks.push((f[u], f[v]));
            }
        }
        hooks.sort_unstable();
        hooks.dedup_by(|next, first| next.0 == first.0);
        for &(t, v) in &hooks {
            if f[t] != v {
                f[t] = v;
                changed += 1;
            }
        }
        starcheck(&f, &mut star);
        show("after conditional hook", &f, &star);

        // Unconditional hooking (stars onto nonstars).
        let mut hooks: Vec<(usize, usize)> = Vec::new();
        for (u, v) in g.edges() {
            if star[u] && !star[v] && f[u] != f[v] {
                hooks.push((f[u], f[v]));
            }
        }
        hooks.sort_unstable();
        hooks.dedup_by(|next, first| next.0 == first.0);
        for &(t, v) in &hooks {
            if f[t] != v {
                f[t] = v;
                changed += 1;
            }
        }
        starcheck(&f, &mut star);
        show("after unconditional hook", &f, &star);

        // Shortcut.
        let gf: Vec<usize> = (0..n).map(|v| f[f[v]]).collect();
        for v in 0..n {
            if !star[v] && f[v] != gf[v] {
                f[v] = gf[v];
                changed += 1;
            }
        }
        starcheck(&f, &mut star);
        show("after shortcut", &f, &star);

        if changed == 0 {
            println!("\nconverged after {iteration} iterations (final iteration made no change)");
            break;
        }
    }
    let comps: std::collections::BTreeSet<usize> = f.iter().copied().collect();
    println!("components (roots): {comps:?}");
    assert_eq!(comps.len(), 3);
}
