//! Figure 8 — scalability of the four LACC steps.
//!
//! Per-step modeled time (conditional hooking, unconditional hooking,
//! shortcut, starcheck) versus node count, for three representative
//! graphs on both machines. Expected shapes (paper §VI-E(c)): all four
//! steps scale; conditional hooking costs more than unconditional
//! (the latter exploits Lemma-2 sparsity); shortcut + starcheck stay
//! cheap thanks to the adaptive communication.

use dmsim::{CORI_KNL, EDISON};
use lacc::LaccOpts;
use lacc_bench::*;
use lacc_graph::generators::suite::by_name;

fn main() {
    let nodes = scaling_nodes();
    let shrink = shrink();
    let opts = LaccOpts::default();
    let trace = trace_config();
    let names = ["eukarya", "sk-2005", "MOLIERE_2016"];
    let header = [
        "machine",
        "graph",
        "nodes",
        "ranks",
        "cond s",
        "uncond s",
        "shortcut s",
        "starcheck s",
        "total s",
    ];
    let mut rows = Vec::new();
    for (machine, mname) in [(EDISON, "Edison"), (CORI_KNL, "Cori KNL")] {
        for name in names {
            let prob = by_name(name).expect("known problem");
            let g = if shrink == 1 {
                prob.build()
            } else {
                prob.build_small(shrink)
            };
            eprintln!("[fig8] {mname}/{name}");
            for (pt, run) in lacc_scaling_traced(
                &g,
                &machine,
                &nodes,
                &opts,
                trace.as_ref().map(TraceConfig::sink),
            ) {
                let b = run.breakdown();
                rows.push(vec![
                    mname.to_string(),
                    name.to_string(),
                    format!("{}", pt.nodes),
                    format!("{}", pt.ranks),
                    fmt_s(b.cond_s),
                    fmt_s(b.uncond_s),
                    fmt_s(b.shortcut_s),
                    fmt_s(b.starcheck_s),
                    fmt_s(run.modeled_total_s),
                ]);
            }
        }
    }
    print_table(
        "Figure 8: modeled time breakdown of LACC steps",
        &header,
        &rows,
    );
    write_csv("fig8_step_breakdown", &header, &rows);
    println!("\nNote: starcheck aggregates the three per-iteration star refreshes; the convergence detector's time is outside the four buckets but inside 'total'.");
    if let Some(t) = &trace {
        t.finish();
    }
}
