//! Table I — the scope of sparse vectors at each LACC step.
//!
//! Table I is qualitative ("which vertex subset does each step touch"); we
//! make it quantitative: for every iteration of a run on a many-component
//! graph, print the size of the active subset each step operated on,
//! showing the work collapse that Lemmas 1–2 buy (the dense-AS column is
//! what a sparsity-oblivious implementation would touch every time).

use lacc::{lacc_serial, LaccOpts};
use lacc_bench::*;
use lacc_graph::generators::suite::by_name;

fn main() {
    let shrink = shrink();
    let prob = by_name("eukarya").expect("known problem");
    let g = if shrink == 1 {
        prob.build()
    } else {
        prob.build_small(shrink)
    };
    let n = g.num_vertices();
    let run = lacc_serial(&g, &LaccOpts::default());
    let header = [
        "iteration",
        "active (hooking scope)",
        "mxv path",
        "cond hooks",
        "uncond hooks",
        "shortcut updates",
        "dense-AS scope",
    ];
    let rows: Vec<Vec<String>> = run
        .iters
        .iter()
        .map(|it| {
            vec![
                format!("{}", it.iteration),
                format!("{}", it.active_before),
                if it.spmv_dense {
                    "SpMV".into()
                } else {
                    "SpMSpV".into()
                },
                format!("{}", it.cond_changed),
                format!("{}", it.uncond_changed),
                format!("{}", it.shortcut_changed),
                format!("{n}"),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Table I (quantified): per-step scope on {} (n={n})",
            prob.name
        ),
        &header,
        &rows,
    );
    write_csv("table1_sparsity_scope", &header, &rows);
    println!("\nEvery step operates on the active subset only (Table I); the dense-AS column is the naive scope.");
}
