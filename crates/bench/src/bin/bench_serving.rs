//! Serving-tier benchmark: sustained update and query throughput of the
//! incremental connected-components service.
//!
//! Bootstraps a [`lacc_serving::CcService`] from a Graph500 RMAT graph,
//! then drives a mixed workload: batches of uniform-random edge
//! insertions — spiked with periodic deletions that force full LACC
//! rebuilds — each followed by a burst of `find` / `same_component` /
//! `component_size` queries against the freshly published epoch. Writes
//! `BENCH_serving.json` at the workspace root with:
//!
//! * `updates_per_s`, `queries_per_s` — host wall-clock throughput of
//!   the label-store data structures.
//! * `modeled_query_p50_s`, `modeled_query_p99_s` — α-β modeled query
//!   latency percentiles (messages to the owner shard plus one per
//!   cross-shard pointer chase, compute at the model rate).
//! * `reruns` (+ per-cause splits) and `rerun_modeled_s` — how often and
//!   how expensively the service fell back to full LACC.
//! * `answers_consistent` — final epoch checked component-equivalent to
//!   the brute-force oracle over the surviving edge multiset, *and* the
//!   canonical labels checked bit-identical to a from-scratch
//!   `lacc::run` on the same edges under the optimized stack.
//!
//! Environment overrides: `LACC_SERVE_SCALE` (RMAT scale, default 13),
//! `LACC_SERVE_RANKS` (default 4), `LACC_SERVE_BATCHES` (default 24),
//! `LACC_SERVE_BATCH` (batch size, default 256), `LACC_SERVE_QUERIES`
//! (queries per batch, default 512), `LACC_SERVE_DELETE_EVERY`
//! (default 8).

use lacc_graph::generators::{rmat, RmatParams};
use lacc_graph::unionfind::canonicalize_labels;
use lacc_serving::{run_workload, CcService, ServeOpts, WorkloadCfg};
use std::io::Write;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{name}: bad value")))
        .unwrap_or(default)
}

fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir;
        }
        if !dir.pop() {
            return std::path::PathBuf::from(".");
        }
    }
}

fn main() {
    let scale = env_or("LACC_SERVE_SCALE", 13) as u32;
    let ranks = env_or("LACC_SERVE_RANKS", 4);
    let cfg = WorkloadCfg {
        batches: env_or("LACC_SERVE_BATCHES", 24),
        batch_size: env_or("LACC_SERVE_BATCH", 256),
        queries_per_batch: env_or("LACC_SERVE_QUERIES", 512),
        delete_every: env_or("LACC_SERVE_DELETE_EVERY", 8),
        seed: 1,
    };
    let opts = ServeOpts {
        ranks,
        model: lacc_bench::default_model(),
        ..Default::default()
    };

    // Bootstrap from a thinned RMAT graph (edge factor 4 leaves room for
    // the insertion stream to keep merging components).
    let g = rmat(scale, 4, RmatParams::graph500(), 42);
    println!(
        "bootstrapping service: 2^{scale} vertices, {} edges, {} ranks",
        g.num_undirected_edges(),
        ranks
    );
    let mut svc = CcService::from_graph(&g, opts).expect("bootstrap");
    println!(
        "bootstrap epoch {}: {} components",
        svc.epoch(),
        svc.num_components()
    );

    let rep = run_workload(&mut svc, &cfg).expect("workload");
    let s = rep.stats;

    // Bit-identical check: canonical labels of the served epoch vs a
    // from-scratch optimized run over the same surviving edge multiset.
    let el = lacc_graph::EdgeList::from_pairs(svc.num_vertices(), svc.edges().iter().copied());
    let run_cfg = lacc::RunConfig::new(ranks, opts.model).with_opts(opts.lacc);
    let fresh =
        lacc::run(&lacc_graph::CsrGraph::from_edges(el), &run_cfg).expect("from-scratch rerun");
    let labels_bit_identical =
        canonicalize_labels(&svc.snapshot().labels()) == canonicalize_labels(&fresh.labels);
    let consistent = rep.answers_consistent && labels_bit_identical;

    println!(
        "{} batches: {} inserts ({} no-op), {} deletes, {} hooks",
        s.batches, s.inserts, s.noop_inserts, s.deletes, s.hooks
    );
    println!(
        "reruns: {} ({} deletion, {} staleness), {:.1} ms modeled",
        s.reruns,
        s.deletion_reruns,
        s.staleness_reruns,
        s.rerun_modeled_s * 1e3
    );
    println!(
        "throughput: {:.0} updates/s, {:.0} queries/s",
        rep.updates_per_s(),
        rep.queries_per_s()
    );
    println!(
        "modeled query latency: p50 {:.2} us, p99 {:.2} us",
        rep.latency_percentile_s(50.0) * 1e6,
        rep.latency_percentile_s(99.0) * 1e6
    );
    println!("answers consistent: {consistent} (labels bit-identical: {labels_bit_identical})");

    let out = workspace_root().join("BENCH_serving.json");
    let mut f = std::fs::File::create(&out).expect("create BENCH_serving.json");
    writeln!(
        f,
        "{{\n  \"scale\": {scale},\n  \"ranks\": {ranks},\n  \"vertices\": {},\n  \
         \"batches\": {},\n  \"batch_size\": {},\n  \"queries_per_batch\": {},\n  \
         \"delete_every\": {},\n  \"final_epoch\": {},\n  \"components\": {},\n  \
         \"edges\": {},\n  \"inserts\": {},\n  \"noop_inserts\": {},\n  \"deletes\": {},\n  \
         \"hooks\": {},\n  \"reruns\": {},\n  \"deletion_reruns\": {},\n  \
         \"staleness_reruns\": {},\n  \"rerun_modeled_s\": {:.6},\n  \
         \"updates_per_s\": {:.1},\n  \"queries\": {},\n  \"queries_per_s\": {:.1},\n  \
         \"modeled_query_p50_s\": {:.9},\n  \"modeled_query_p99_s\": {:.9},\n  \
         \"labels_bit_identical\": {labels_bit_identical},\n  \
         \"answers_consistent\": {consistent}\n}}",
        svc.num_vertices(),
        cfg.batches,
        cfg.batch_size,
        cfg.queries_per_batch,
        cfg.delete_every,
        rep.final_epoch,
        rep.final_components,
        rep.final_edges,
        s.inserts,
        s.noop_inserts,
        s.deletes,
        s.hooks,
        s.reruns,
        s.deletion_reruns,
        s.staleness_reruns,
        s.rerun_modeled_s,
        rep.updates_per_s(),
        rep.queries,
        rep.queries_per_s(),
        rep.latency_percentile_s(50.0),
        rep.latency_percentile_s(99.0),
    )
    .expect("write BENCH_serving.json");
    println!("wrote {}", out.display());
    assert!(consistent, "serving answers diverged from ground truth");
}
