//! Sender-side compaction benchmark: wire volume with and without the
//! `DistOpts` compaction flags.
//!
//! Runs distributed LACC on a Graph500 RMAT graph (default scale 16 at
//! p = 16) under a matrix of compaction configurations, all traced at
//! collectives level, and writes `BENCH_comm.json` at the workspace root
//! with per-configuration wire-volume metrics:
//!
//! * `words_sent` — 8-byte words sent over the whole run (summed final
//!   cost snapshots).
//! * `alltoall_words` — words moved (sent + received) inside `alltoallv`
//!   spans only, the traffic the compaction layer targets. Under the
//!   sparse all-to-all this includes its nested metadata exchange, which
//!   makes the compacted numbers *conservative*.
//! * `words_saved` — the observational counter summed over ranks.
//!
//! * `combined_words` — raw-word equivalent of entries merged *in
//!   flight* at combining-hypercube hops (cross-sender duplicates the
//!   sender-side flags cannot see).
//! * `bytes_sent` — exact payload bytes on the wire, which (unlike the
//!   word counters) see the narrow index layout; an extra
//!   `optimized+u32` row runs the optimized stack at 32-bit indices so
//!   `bytes_reduction_u32_vs_u64` reports what the narrow word saves.
//!
//! The §V-B comparison matrix runs at the default `u32` index width
//! (the historical `u64` pin predated width-generic combining key
//! streams and is gone); an `optimized` row keeps `u64` so the
//! `optimized+u32` delta still reports what the narrow word saves.
//!
//! Every matrix row pins `overlap: false` and `narrow_labels: false` so
//! the wire-volume deltas isolate the compaction flags; the closing rows
//! switch one lever each back on at the `optimized+u32` point:
//!
//! * `optimized+overlap` (u64) re-enables non-blocking exchanges at the
//!   wide word and must cut `modeled_s` against the blocking `optimized`
//!   row — by at least 8% at the reference scale-16/p-16 configuration,
//!   strictly at smaller smoke sizes — while moving exactly the same
//!   words (`modeled_reduction_overlap`). `optimized+u32+overlap` runs
//!   the same lever at u32, where thinner exchanges leave less time to
//!   hide: same-words plus strict modeled-time improvement.
//! * `optimized+u32+narrow` re-enables dynamic label-range narrowing
//!   and must cut `bytes_sent` against `optimized+u32` — the
//!   `bytes_reduction_narrow` headline — while moving exactly the same
//!   words over the same iteration count; its `narrow_saved_bytes`
//!   counter must be positive, and must be exactly zero on every other
//!   row (the flag-off guarantee).
//!
//! The headline ratio compares `DistOpts::naive()` against the same
//! pairwise stack with only the three compaction flags turned on, so
//! nothing but sender-side compaction differs; a second ratio stacks
//! the in-flight combining collectives (+ fused starcheck + value RLE)
//! on top, which must strictly beat sender-only compaction. Labels are
//! asserted bit-identical across every configuration.
//!
//! Environment overrides: `LACC_COMM_SCALE` (RMAT scale, default 16),
//! `LACC_COMM_RANKS` (default 16), `LACC_COMM_EF` (edge factor, 16).

use dmsim::{TraceLevel, TraceSink};
use gblas::dist::DistOpts;
use lacc::{IndexWidth, LaccOpts};
use lacc_graph::generators::{rmat, RmatParams};
use std::io::Write;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{name}: bad value")))
        .unwrap_or(default)
}

fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir;
        }
        if !dir.pop() {
            return std::path::PathBuf::from(".");
        }
    }
}

struct Row {
    label: &'static str,
    width: IndexWidth,
    dedup: bool,
    combine: bool,
    compress: bool,
    in_flight: bool,
    overlap: bool,
    narrow: bool,
    words_sent: u64,
    bytes_sent: u64,
    alltoall_words: u64,
    words_saved: u64,
    narrow_saved: u64,
    combined_words: u64,
    overlap_hidden_s: f64,
    modeled_s: f64,
    iterations: usize,
}

fn main() {
    let scale = env_or("LACC_COMM_SCALE", 16) as u32;
    let ranks = env_or("LACC_COMM_RANKS", 16);
    let ef = env_or("LACC_COMM_EF", 16);
    let g = rmat(scale, ef, RmatParams::graph500(), 7);
    eprintln!(
        "[comm] RMAT scale {scale} ef {ef} at p={ranks}: n={} m={}",
        g.num_vertices(),
        g.num_directed_edges()
    );
    let model = lacc_bench::default_model();

    // The naive §V-B stack, varying only the compaction flags, plus the
    // fully optimized configuration for reference. The whole matrix runs
    // blocking (`overlap: false`, which `naive()` already is) so the wire
    // and modeled-time deltas isolate the flag under test; the closing
    // row re-enables overlap on the optimized stack.
    let naive = DistOpts::naive();
    // Blocking, narrowing off: the baseline the single-lever closing rows
    // are measured against.
    let opt_blocking = DistOpts {
        overlap: false,
        narrow_labels: false,
        ..DistOpts::optimized()
    };
    let configs: Vec<(&'static str, DistOpts, IndexWidth)> = vec![
        ("naive", naive, IndexWidth::U32),
        (
            "naive+dedup",
            DistOpts {
                dedup_requests: true,
                ..naive
            },
            IndexWidth::U32,
        ),
        (
            "naive+combine",
            DistOpts {
                combine_assigns: true,
                ..naive
            },
            IndexWidth::U32,
        ),
        (
            "naive+compress",
            DistOpts {
                compress_ids: true,
                ..naive
            },
            IndexWidth::U32,
        ),
        (
            "naive+compaction",
            DistOpts {
                dedup_requests: true,
                combine_assigns: true,
                compress_ids: true,
                ..naive
            },
            IndexWidth::U32,
        ),
        (
            "naive+combining",
            DistOpts {
                combine_in_flight: true,
                ..naive
            },
            IndexWidth::U32,
        ),
        (
            "naive+compaction+combining",
            DistOpts {
                dedup_requests: true,
                combine_assigns: true,
                compress_ids: true,
                combine_in_flight: true,
                fuse_starcheck: true,
                compress_values: true,
                ..naive
            },
            IndexWidth::U32,
        ),
        // The wide-word reference point: the bytes delta between this row
        // and "optimized+u32" is what the narrow index layout saves.
        ("optimized", opt_blocking, IndexWidth::U64),
        ("optimized+u32", opt_blocking, IndexWidth::U32),
        // Non-blocking exchanges at the wide word, where exchange time
        // dominates enough for the 8% modeled-time bar that headline was
        // established at.
        (
            "optimized+overlap",
            DistOpts {
                narrow_labels: false,
                ..DistOpts::optimized()
            },
            IndexWidth::U64,
        ),
        // Non-blocking exchanges on top of the optimized u32 stack:
        // identical traffic, strictly lower modeled time (the narrow word
        // leaves less exchange time to hide, so no fixed percentage bar).
        (
            "optimized+u32+overlap",
            DistOpts {
                narrow_labels: false,
                ..DistOpts::optimized()
            },
            IndexWidth::U32,
        ),
        // Dynamic label-range narrowing on top of the optimized u32
        // stack: identical words and iterations, strictly fewer bytes.
        (
            "optimized+u32+narrow",
            DistOpts {
                overlap: false,
                ..DistOpts::optimized()
            },
            IndexWidth::U32,
        ),
    ];

    let mut rows: Vec<Row> = Vec::new();
    let mut labels: Option<Vec<usize>> = None;
    for (label, dist, width) in configs {
        let opts = LaccOpts {
            dist,
            index_width: width,
            ..LaccOpts::default()
        };
        let sink = TraceSink::new(TraceLevel::Collectives);
        let cfg = lacc::RunConfig::new(ranks, model)
            .with_opts(opts)
            .with_trace(&sink);
        let run = lacc::run(&g, &cfg)
            .expect("distributed LACC rank panicked")
            .run;
        match &labels {
            None => labels = Some(run.labels.clone()),
            Some(reference) => assert_eq!(
                reference, &run.labels,
                "labels diverged under config {label}"
            ),
        }
        let report = sink.report();
        let words_sent: u64 = sink
            .rank_traces()
            .iter()
            .map(|rt| rt.snapshot.words_sent)
            .sum();
        let bytes_sent: u64 = sink
            .rank_traces()
            .iter()
            .map(|rt| rt.snapshot.bytes_sent)
            .sum();
        let combined_words: u64 = sink
            .rank_traces()
            .iter()
            .map(|rt| rt.snapshot.combined_words)
            .sum();
        let narrow_saved: u64 = sink
            .rank_traces()
            .iter()
            .map(|rt| rt.snapshot.narrow_saved_bytes)
            .sum();
        assert!(
            dist.narrow_labels || narrow_saved == 0,
            "narrow_saved_bytes must be zero with narrowing off (config {label})"
        );
        let alltoall_words: u64 = report
            .per_kind
            .iter()
            .filter(|k| k.name.starts_with("alltoallv"))
            .map(|k| k.words)
            .sum();
        eprintln!(
            "  {label:>26} [{width}]: words_sent={words_sent} bytes_sent={bytes_sent} \
             alltoall={alltoall_words} saved={} narrow_saved={narrow_saved} \
             combined={combined_words} hidden={:.2}ms modeled={:.2}ms",
            report.words_saved,
            report.overlap_hidden_s * 1e3,
            run.modeled_total_s * 1e3
        );
        rows.push(Row {
            label,
            width,
            dedup: dist.dedup_requests,
            combine: dist.combine_assigns,
            compress: dist.compress_ids,
            in_flight: dist.combine_in_flight,
            overlap: dist.overlap,
            narrow: dist.narrow_labels,
            words_sent,
            bytes_sent,
            alltoall_words,
            words_saved: report.words_saved,
            narrow_saved,
            combined_words,
            overlap_hidden_s: report.overlap_hidden_s,
            modeled_s: run.modeled_total_s,
            iterations: run.num_iterations(),
        });
    }

    let naive_row = rows.iter().find(|r| r.label == "naive").expect("naive row");
    let compacted = rows
        .iter()
        .find(|r| r.label == "naive+compaction")
        .expect("compaction row");
    let ratio = naive_row.alltoall_words as f64 / compacted.alltoall_words.max(1) as f64;
    let sent_ratio = naive_row.words_sent as f64 / compacted.words_sent.max(1) as f64;
    println!(
        "all-to-all words: naive {} vs compacted {} ({ratio:.2}x); \
         total sent {sent_ratio:.2}x",
        naive_row.alltoall_words, compacted.alltoall_words
    );
    assert!(
        ratio > 1.0,
        "compaction must reduce all-to-all wire volume (got {ratio:.3}x)"
    );
    let combining = rows
        .iter()
        .find(|r| r.label == "naive+compaction+combining")
        .expect("combining row");
    let combining_ratio = compacted.alltoall_words as f64 / combining.alltoall_words.max(1) as f64;
    println!(
        "combining + fused starcheck: {} words vs sender-only {} \
         ({combining_ratio:.2}x further reduction, {} words merged in flight)",
        combining.alltoall_words, compacted.alltoall_words, combining.combined_words
    );
    // At the u64 word the combining route strictly beat sender-only
    // compaction on alltoall words. At the default u32 word the payload
    // halves while the hypercube's fixed per-hop pooling headers (charged
    // conservatively, count phase included) do not, so at larger p the
    // span-local margin can flip by a few percent even though duplicates
    // still merge in flight and modeled time still improves. The gate is
    // therefore strict improvement or near-parity (≤ 5%) with a nonzero
    // in-flight merge volume.
    assert!(
        combining.alltoall_words < compacted.alltoall_words
            || (combining.combined_words > 0
                && (combining.alltoall_words as f64) < compacted.alltoall_words as f64 * 1.05),
        "in-flight combining regressed sender-only compaction by > 5% \
         ({} vs {})",
        combining.alltoall_words,
        compacted.alltoall_words
    );
    assert!(
        combining.combined_words > 0,
        "cross-sender duplicates must merge at the hypercube hops"
    );

    // Narrow-word payoff: the same optimized run at u32 indices must
    // put strictly fewer bytes on the wire than at u64 (word counts and
    // labels are identical by construction).
    let opt64 = rows
        .iter()
        .find(|r| r.label == "optimized")
        .expect("optimized row");
    let opt32 = rows
        .iter()
        .find(|r| r.label == "optimized+u32")
        .expect("optimized+u32 row");
    let bytes_ratio = opt64.bytes_sent as f64 / opt32.bytes_sent.max(1) as f64;
    println!(
        "index width: u64 {} bytes vs u32 {} bytes ({bytes_ratio:.2}x reduction)",
        opt64.bytes_sent, opt32.bytes_sent
    );
    assert!(
        bytes_ratio > 1.0,
        "narrow indices must reduce bytes on the wire (got {bytes_ratio:.3}x)"
    );

    // Overlap payoff: non-blocking exchanges are a pure scheduling change
    // — same traffic, same trajectory, strictly (≥ 8%) lower modeled time
    // at the wide word where the bar was established.
    let opt_overlap = rows
        .iter()
        .find(|r| r.label == "optimized+overlap")
        .expect("optimized+overlap row");
    assert_eq!(
        opt_overlap.words_sent, opt64.words_sent,
        "overlap must not change the words on the wire"
    );
    assert_eq!(
        opt_overlap.iterations, opt64.iterations,
        "overlap must not change the iteration count"
    );
    assert!(
        opt_overlap.overlap_hidden_s > 0.0,
        "overlap credit must be nonzero when the flag is on"
    );
    let overlap_reduction = 1.0 - opt_overlap.modeled_s / opt64.modeled_s;
    println!(
        "overlap: blocking {:.3} ms vs non-blocking {:.3} ms \
         ({:.1}% modeled time hidden behind local compute)",
        opt64.modeled_s * 1e3,
        opt_overlap.modeled_s * 1e3,
        overlap_reduction * 1e2
    );
    // The same lever at the narrow u32 word: identical traffic and
    // strictly lower modeled time, but u32 exchanges leave less time to
    // hide, so the bar is strict improvement rather than a percentage.
    let opt_overlap32 = rows
        .iter()
        .find(|r| r.label == "optimized+u32+overlap")
        .expect("optimized+u32+overlap row");
    assert_eq!(
        opt_overlap32.words_sent, opt32.words_sent,
        "u32 overlap must not change the words on the wire"
    );
    assert_eq!(
        opt_overlap32.iterations, opt32.iterations,
        "u32 overlap must not change the iteration count"
    );
    assert!(
        opt_overlap32.overlap_hidden_s > 0.0 && opt_overlap32.modeled_s < opt32.modeled_s,
        "u32 overlap must hide exchange time and reduce modeled time \
         ({:.3} ms vs {:.3} ms)",
        opt_overlap32.modeled_s * 1e3,
        opt32.modeled_s * 1e3
    );
    // The 8% bar is the acceptance criterion at the reference
    // configuration (scale >= 16, p >= 16); smaller smoke runs have
    // proportionally less multiply compute to hide behind, so there the
    // bar is strict improvement.
    if scale >= 16 && ranks >= 16 {
        assert!(
            overlap_reduction >= 0.08,
            "overlap must cut modeled time by >= 8% (got {:.1}%)",
            overlap_reduction * 1e2
        );
    } else {
        assert!(
            overlap_reduction > 0.0,
            "overlap must reduce modeled time (got {:.1}%)",
            overlap_reduction * 1e2
        );
    }

    // Narrowing payoff: probe-selected wire tiers change only the byte
    // encoding — same words, same iterations, strictly fewer bytes.
    let opt_narrow = rows
        .iter()
        .find(|r| r.label == "optimized+u32+narrow")
        .expect("optimized+u32+narrow row");
    assert_eq!(
        opt_narrow.words_sent, opt32.words_sent,
        "narrowing must not change the words on the wire"
    );
    assert_eq!(
        opt_narrow.iterations, opt32.iterations,
        "narrowing must not change the iteration count"
    );
    assert!(
        opt_narrow.narrow_saved > 0,
        "narrow_saved_bytes must be positive with narrowing on"
    );
    let narrow_ratio = opt32.bytes_sent as f64 / opt_narrow.bytes_sent.max(1) as f64;
    println!(
        "narrowing: native {} bytes vs narrowed {} bytes \
         ({narrow_ratio:.2}x reduction, {} bytes saved by the narrow tiers)",
        opt32.bytes_sent, opt_narrow.bytes_sent, opt_narrow.narrow_saved
    );
    assert!(
        narrow_ratio > 1.0,
        "narrowing must reduce bytes on the wire (got {narrow_ratio:.3}x)"
    );

    // Hand-rolled JSON (the workspace carries no serde).
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"rmat_scale\": {scale},\n"));
    json.push_str(&format!("  \"edge_factor\": {ef},\n"));
    json.push_str(&format!("  \"ranks\": {ranks},\n"));
    json.push_str(&format!("  \"vertices\": {},\n", g.num_vertices()));
    json.push_str(&format!("  \"edges\": {},\n", g.num_directed_edges()));
    json.push_str("  \"labels_identical\": true,\n");
    json.push_str(&format!("  \"alltoall_reduction_vs_naive\": {ratio:.3},\n"));
    json.push_str(&format!(
        "  \"words_sent_reduction_vs_naive\": {sent_ratio:.3},\n"
    ));
    json.push_str(&format!(
        "  \"alltoall_reduction_combining_vs_sender_only\": {combining_ratio:.3},\n"
    ));
    json.push_str(&format!(
        "  \"bytes_reduction_u32_vs_u64\": {bytes_ratio:.3},\n"
    ));
    json.push_str(&format!(
        "  \"modeled_reduction_overlap\": {overlap_reduction:.3},\n"
    ));
    json.push_str(&format!(
        "  \"bytes_reduction_narrow\": {narrow_ratio:.3},\n"
    ));
    json.push_str("  \"configs\": [\n");
    for (k, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"width\": \"{}\", \"dedup_requests\": {}, \
             \"combine_assigns\": {}, \
             \"compress_ids\": {}, \"combine_in_flight\": {}, \"overlap\": {}, \
             \"narrow_labels\": {}, \
             \"words_sent\": {}, \"bytes_sent\": {}, \
             \"alltoall_words\": {}, \"words_saved\": {}, \"narrow_saved_bytes\": {}, \
             \"combined_words\": {}, \
             \"overlap_hidden_s\": {:.6}, \
             \"modeled_s\": {:.6}, \"iterations\": {}}}{}\n",
            r.label,
            r.width,
            r.dedup,
            r.combine,
            r.compress,
            r.in_flight,
            r.overlap,
            r.narrow,
            r.words_sent,
            r.bytes_sent,
            r.alltoall_words,
            r.words_saved,
            r.narrow_saved,
            r.combined_words,
            r.overlap_hidden_s,
            r.modeled_s,
            r.iterations,
            if k + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = workspace_root().join("BENCH_comm.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_comm.json");
    f.write_all(json.as_bytes()).expect("write BENCH_comm.json");
    println!("wrote {}", path.display());
}
