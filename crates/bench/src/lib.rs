//! Shared harness for the experiment binaries.
//!
//! Each `exp_*` binary in `src/bin/` regenerates one table or figure of
//! the paper (see DESIGN.md §4 for the index). This library holds the
//! common machinery: node-count → rank-count mapping, scaling sweeps for
//! LACC and ParConnect, aligned-table printing, and CSV output under
//! `results/`.

#![warn(missing_docs)]

use dmsim::{Machine, MachineModel, TraceLevel, TraceSink};
use lacc::{LaccOpts, LaccRun};
use lacc_baselines::parconnect::{parconnect_sim, ParconnectRun};
use lacc_graph::CsrGraph;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

/// The node counts used by the strong-scaling experiments. With
/// `LACC_FULL=1` in the environment the sweep extends to the paper's 256
/// nodes; the default stops earlier to keep the simulation fast.
pub fn scaling_nodes() -> Vec<usize> {
    if full_mode() {
        vec![1, 4, 16, 64, 256]
    } else {
        vec![1, 4, 16, 64]
    }
}

/// Whether `LACC_FULL=1` is set (larger graphs, more scaling points).
pub fn full_mode() -> bool {
    std::env::var("LACC_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Shrink factor for stand-in graphs: 1 in full mode, 4 otherwise.
pub fn shrink() -> usize {
    if full_mode() {
        1
    } else {
        4
    }
}

/// Largest perfect square ≤ `x` (CombBLAS-style grids must be square;
/// the paper rounds core counts down the same way).
pub fn largest_square_leq(x: usize) -> usize {
    let mut s = (x as f64).sqrt() as usize;
    while (s + 1) * (s + 1) <= x {
        s += 1;
    }
    while s * s > x {
        s -= 1;
    }
    (s * s).max(1)
}

/// Cap on simulated ranks: beyond this, thread-per-rank simulation gets
/// slow; points above the cap are clamped and flagged in the output.
/// 1024 in full mode, 576 otherwise.
pub fn rank_cap() -> usize {
    if full_mode() {
        1024
    } else {
        576
    }
}

/// One point of a strong-scaling sweep.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Nodes on the simulated machine.
    pub nodes: usize,
    /// Ranks actually simulated.
    pub ranks: usize,
    /// True when the rank count was clamped by [`RANK_CAP`].
    pub clamped: bool,
    /// Modeled seconds (the figure's y-axis).
    pub modeled_s: f64,
    /// Wall-clock seconds of the simulation itself.
    pub wall_s: f64,
    /// Iterations / rounds until convergence.
    pub iterations: usize,
}

/// Ranks for an algorithm on `nodes` nodes of `machine` at
/// `ranks_per_node`, squared down and clamped.
pub fn ranks_for(nodes: usize, ranks_per_node: usize) -> (usize, bool) {
    let raw = largest_square_leq(nodes * ranks_per_node);
    let cap = rank_cap();
    if raw > cap {
        (cap, true)
    } else {
        (raw, false)
    }
}

/// Largest power of four ≤ `x` (grids whose side is a power of two keep
/// the hypercube all-to-all available).
pub fn largest_pow4_leq(x: usize) -> usize {
    let mut p = 1usize;
    while p * 4 <= x {
        p *= 4;
    }
    p
}

/// Ranks for LACC on `nodes` nodes (4 ranks/node), kept on power-of-four
/// grids so the §V-B hypercube all-to-all stays applicable, and clamped.
pub fn lacc_ranks_for(nodes: usize) -> (usize, bool) {
    let raw = largest_pow4_leq(nodes * 4);
    let cap = largest_pow4_leq(rank_cap());
    if raw > cap {
        (cap, true)
    } else {
        (raw, false)
    }
}

/// Runs LACC at each node count (paper configuration: 4 ranks per node,
/// remaining cores as threads).
pub fn lacc_scaling(
    g: &CsrGraph,
    machine: &Machine,
    nodes_list: &[usize],
    opts: &LaccOpts,
) -> Vec<(ScalePoint, LaccRun)> {
    lacc_scaling_traced(g, machine, nodes_list, opts, None)
}

/// [`lacc_scaling`] with span tracing: when `sink` is `Some`, each point
/// records into it, cleared between points so the exported trace covers
/// the largest (last) node count.
pub fn lacc_scaling_traced(
    g: &CsrGraph,
    machine: &Machine,
    nodes_list: &[usize],
    opts: &LaccOpts,
    sink: Option<&Arc<TraceSink>>,
) -> Vec<(ScalePoint, LaccRun)> {
    nodes_list
        .iter()
        .map(|&nodes| {
            let (ranks, clamped) = lacc_ranks_for(nodes);
            let model = machine.lacc_model();
            if let Some(s) = sink {
                s.clear();
            }
            let cfg = lacc::RunConfig::new(ranks, model)
                .with_opts(*opts)
                .with_trace_opt(sink);
            let run = lacc::run(g, &cfg)
                .expect("distributed LACC rank panicked")
                .run;
            (
                ScalePoint {
                    nodes,
                    ranks,
                    clamped,
                    modeled_s: run.modeled_total_s,
                    wall_s: run.wall_s,
                    iterations: run.num_iterations(),
                },
                run,
            )
        })
        .collect()
}

/// Runs ParConnect-sim at each node count (flat MPI: one rank per core).
pub fn parconnect_scaling(
    g: &CsrGraph,
    machine: &Machine,
    nodes_list: &[usize],
) -> Vec<(ScalePoint, ParconnectRun)> {
    nodes_list
        .iter()
        .map(|&nodes| {
            let (ranks, clamped) = ranks_for(nodes, machine.cores_per_node);
            let model = machine.flat_model();
            let run = parconnect_sim(g, ranks, model).expect("ParConnect rank panicked");
            (
                ScalePoint {
                    nodes,
                    ranks,
                    clamped,
                    modeled_s: run.modeled_total_s,
                    wall_s: run.wall_s,
                    iterations: run.bfs_levels + run.sv_rounds,
                },
                run,
            )
        })
        .collect()
}

/// Trace output requested through the shared `--trace` flags (see
/// [`trace_config`]). Thread [`TraceConfig::sink`] into the traced run
/// entry points, then call [`TraceConfig::finish`] once at the end.
pub struct TraceConfig {
    path: PathBuf,
    sink: Arc<TraceSink>,
}

impl TraceConfig {
    /// The sink to pass to `lacc::RunConfig::with_trace` /
    /// `run_spmd_traced` (as `Some(cfg.sink())`).
    pub fn sink(&self) -> &Arc<TraceSink> {
        &self.sink
    }

    /// Drops spans recorded so far. Call between runs when only the last
    /// one should end up in the exported trace.
    pub fn clear(&self) {
        self.sink.clear();
    }

    /// Writes the Chrome-trace JSON to the configured path and prints the
    /// aggregated per-rank report.
    pub fn finish(&self) {
        std::fs::write(&self.path, self.sink.chrome_trace_json()).expect("write trace file");
        println!("{}", self.sink.report().render());
        println!("  [trace written: {}]", self.path.display());
    }
}

/// Parses the tracing flags shared by every experiment binary:
/// `--trace <path>` (or `--trace=<path>`) selects the output file and
/// `--trace-level {off,steps,ops,collectives}` the detail (default
/// `collectives`). The `LACC_TRACE` / `LACC_TRACE_LEVEL` environment
/// variables are the fallback, matching the `LACC_FULL` idiom so traces
/// can be requested through `cargo bench` wrappers that own the argv.
/// Returns `None` when tracing was not requested or the level is `off`.
pub fn trace_config() -> Option<TraceConfig> {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| -> Option<String> {
        let prefix = format!("{name}=");
        args.iter().enumerate().find_map(|(i, a)| {
            a.strip_prefix(&prefix)
                .map(str::to_string)
                .or_else(|| (a == name).then(|| args.get(i + 1).cloned()).flatten())
        })
    };
    let path = flag_value("--trace").or_else(|| std::env::var("LACC_TRACE").ok())?;
    let level = flag_value("--trace-level")
        .or_else(|| std::env::var("LACC_TRACE_LEVEL").ok())
        .unwrap_or_else(|| "collectives".to_string());
    let level: TraceLevel = level.parse().expect("bad trace level");
    if level == TraceLevel::Off {
        return None;
    }
    Some(TraceConfig {
        path: PathBuf::from(path),
        sink: TraceSink::new(level),
    })
}

/// Default machine model for one-off distributed runs in experiments.
pub fn default_model() -> MachineModel {
    dmsim::EDISON.lacc_model()
}

/// Prints a row-aligned table: header then rows, column widths derived
/// from content.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[&str]| {
        let line: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", line.join("  "));
    };
    fmt_row(header);
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    fmt_row(&sep.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for row in rows {
        fmt_row(&row.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    }
}

/// Writes rows as CSV under `results/<name>.csv` (relative to the
/// workspace root when run via `cargo run`).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    f.flush().expect("flush csv");
    println!("  [written: {}]", path.display());
}

fn results_dir() -> PathBuf {
    // Walk up from the current dir until a Cargo workspace root is found.
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

/// Formats seconds with sensible precision.
pub fn fmt_s(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.2}ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn largest_square() {
        assert_eq!(largest_square_leq(1), 1);
        assert_eq!(largest_square_leq(24), 16);
        assert_eq!(largest_square_leq(96), 81);
        assert_eq!(largest_square_leq(100), 100);
        assert_eq!(largest_square_leq(0), 1);
    }

    #[test]
    fn ranks_for_clamps() {
        assert_eq!(ranks_for(1, 4), (4, false));
        assert_eq!(ranks_for(256, 24), (rank_cap(), true));
    }

    #[test]
    fn lacc_ranks_stay_power_of_four() {
        assert_eq!(largest_pow4_leq(576), 256);
        assert_eq!(largest_pow4_leq(1024), 1024);
        for nodes in [1, 4, 16, 64, 256] {
            let (p, _) = lacc_ranks_for(nodes);
            assert!(
                p.is_power_of_two() && (p.trailing_zeros() % 2 == 0),
                "p={p}"
            );
        }
    }

    #[test]
    fn fmt_s_ranges() {
        assert_eq!(fmt_s(0.0123), "12.30ms");
        assert_eq!(fmt_s(3.46159), "3.46");
        assert_eq!(fmt_s(123.4), "123");
    }
}
