//! The serving front end: batched updates, consistent queries, rebuilds.

use std::sync::Arc;

use dmsim::{MachineModel, RerunReason, TraceSink, EDISON};
use lacc_graph::{CsrGraph, EdgeList};

use crate::batch::{Update, UpdateBatch};
use crate::policy::RerunPolicy;
use crate::store::{EpochSnapshot, LabelStore};
use crate::Vid;

/// Configuration of a [`CcService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeOpts {
    /// Simulated ranks for the label shards and for rebuild runs (must be
    /// a perfect square).
    pub ranks: usize,
    /// Cost model for rebuild runs and modeled query latencies.
    pub model: MachineModel,
    /// LACC options for rebuild runs (default: the full optimized stack).
    pub lacc: lacc::LaccOpts,
    /// Staleness policy (deletions always rebuild).
    pub policy: RerunPolicy,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            ranks: 4,
            model: EDISON.lacc_model(),
            lacc: lacc::LaccOpts::default(),
            policy: RerunPolicy::default(),
        }
    }
}

/// What one [`CcService::apply_batch`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchOutcome {
    /// The epoch published by this batch (queries now answer against it).
    pub epoch: u64,
    /// Component merges performed incrementally.
    pub hooks: usize,
    /// Edge occurrences actually removed.
    pub deletions: usize,
    /// The rebuild this batch triggered, if any.
    pub rerun: Option<RerunReason>,
}

/// Lifetime counters of a [`CcService`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Batches applied.
    pub batches: u64,
    /// Edge insertions received.
    pub inserts: u64,
    /// Insertions that were no-ops (self loop or endpoints already in the
    /// same component).
    pub noop_inserts: u64,
    /// Deletion requests received (whether or not the edge existed).
    pub deletes: u64,
    /// Incremental component merges.
    pub hooks: u64,
    /// Queries answered (`find` / `same_component` / `component_size`).
    pub queries: u64,
    /// Full LACC rebuilds run.
    pub reruns: u64,
    /// Rebuilds triggered by deletions.
    pub deletion_reruns: u64,
    /// Rebuilds triggered by the staleness policy.
    pub staleness_reruns: u64,
    /// Modeled seconds spent in rebuild runs.
    pub rerun_modeled_s: f64,
}

/// An incrementally maintained connected-components service.
///
/// Owns the authoritative edge multiset and an epoch-versioned
/// [`LabelStore`]; see the crate docs for the update/rebuild life cycle.
#[derive(Debug)]
pub struct CcService {
    edges: Vec<(Vid, Vid)>,
    store: LabelStore,
    opts: ServeOpts,
    sink: Option<Arc<TraceSink>>,
    hooks_since_rebuild: usize,
    stats: ServiceStats,
    last_engine: Option<lacc::EngineKind>,
    last_rationale: Option<String>,
}

impl CcService {
    /// An empty service over `n` vertices (all singletons, epoch 0).
    pub fn new(n: usize, opts: ServeOpts) -> Self {
        CcService {
            edges: Vec::new(),
            store: LabelStore::new_singletons(n, opts.ranks),
            opts,
            sink: None,
            hooks_since_rebuild: 0,
            stats: ServiceStats::default(),
            last_engine: None,
            last_rationale: None,
        }
    }

    /// A service bootstrapped from an existing graph: loads the edge
    /// multiset and runs one full LACC pass (tagged
    /// [`RerunReason::Bootstrap`]) to install converged labels.
    pub fn from_graph(g: &CsrGraph, opts: ServeOpts) -> Result<Self, dmsim::DmsimError> {
        CcService::from_graph_traced(g, opts, None)
    }

    /// [`from_graph`](Self::from_graph) with a trace sink attached *before*
    /// the bootstrap run, so the `rerun(bootstrap)` span is recorded too.
    pub fn from_graph_traced(
        g: &CsrGraph,
        opts: ServeOpts,
        sink: Option<Arc<TraceSink>>,
    ) -> Result<Self, dmsim::DmsimError> {
        let mut svc = CcService::new(g.num_vertices(), opts);
        svc.sink = sink;
        for u in 0..g.num_vertices() {
            for &v in g.neighbors(u) {
                if u <= v {
                    svc.edges.push((u, v));
                }
            }
        }
        svc.rebuild(RerunReason::Bootstrap)?;
        Ok(svc)
    }

    /// Attaches a trace sink: every rebuild records spans into it (tagged
    /// with the triggering [`RerunReason`]).
    pub fn with_trace(mut self, sink: Arc<TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.store.num_vertices()
    }

    /// Number of components at the current epoch.
    pub fn num_components(&self) -> usize {
        self.store.num_components()
    }

    /// The current (published) epoch.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// The authoritative edge multiset, in insertion order.
    pub fn edges(&self) -> &[(Vid, Vid)] {
        &self.edges
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The service configuration.
    pub fn opts(&self) -> &ServeOpts {
        &self.opts
    }

    /// Merges applied since the last full rebuild (the staleness input).
    pub fn hooks_since_rebuild(&self) -> usize {
        self.hooks_since_rebuild
    }

    /// Engine that ran the most recent rebuild (`None` before any rebuild).
    pub fn last_engine(&self) -> Option<lacc::EngineKind> {
        self.last_engine
    }

    /// Why [`Self::last_engine`] was chosen, when the policy's
    /// [`EngineSelect::Auto`](lacc::EngineSelect::Auto) made the call.
    pub fn last_engine_rationale(&self) -> Option<&str> {
        self.last_rationale.as_deref()
    }

    /// Applies one batch and publishes a new epoch.
    ///
    /// Insertions hook incrementally (union by minimum root); effective
    /// deletions — and, failing that, the staleness policy — trigger a
    /// full LACC rebuild whose labels replace the forest atomically.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<BatchOutcome, dmsim::DmsimError> {
        let n = self.num_vertices();
        let mut hooks = 0usize;
        let mut deletions = 0usize;
        for up in batch.updates() {
            match *up {
                Update::Insert(u, v) => {
                    assert!(u < n && v < n, "edge ({u}, {v}) out of range for n = {n}");
                    self.edges.push((u, v));
                    self.stats.inserts += 1;
                    if u == v {
                        self.stats.noop_inserts += 1;
                        continue;
                    }
                    let ru = self.store.find_compress(u);
                    let rv = self.store.find_compress(v);
                    if ru == rv {
                        self.stats.noop_inserts += 1;
                    } else {
                        // Minimum root wins: keeps representatives
                        // canonical-leaning and the merge deterministic.
                        let (keep, give) = if ru < rv { (ru, rv) } else { (rv, ru) };
                        self.store.union_roots(keep, give);
                        hooks += 1;
                    }
                }
                Update::Delete(u, v) => {
                    self.stats.deletes += 1;
                    if let Some(i) = self
                        .edges
                        .iter()
                        .position(|&(a, b)| (a, b) == (u, v) || (a, b) == (v, u))
                    {
                        self.edges.swap_remove(i);
                        deletions += 1;
                    }
                }
            }
        }
        self.hooks_since_rebuild += hooks;
        self.stats.hooks += hooks as u64;
        self.stats.batches += 1;

        let reason = if deletions > 0 {
            Some(RerunReason::Deletion)
        } else if self.opts.policy.stale(self.hooks_since_rebuild, n) {
            Some(RerunReason::Staleness)
        } else {
            None
        };
        match reason {
            Some(r) => self.rebuild(r)?,
            None => {
                self.store.publish();
            }
        }
        Ok(BatchOutcome {
            epoch: self.store.epoch(),
            hooks,
            deletions,
            rerun: reason,
        })
    }

    /// Full LACC recompute over the current edge multiset; installs the
    /// converged labels as a new epoch.
    fn rebuild(&mut self, reason: RerunReason) -> Result<(), dmsim::DmsimError> {
        let n = self.num_vertices();
        let el = EdgeList::from_pairs(n, self.edges.iter().copied());
        let g = CsrGraph::from_edges(el);
        let mut opts = self.opts.lacc;
        opts.engine = self.opts.policy.engine;
        let cfg = lacc::RunConfig::new(self.opts.ranks, self.opts.model)
            .with_opts(opts)
            .with_trace_opt(self.sink.as_ref())
            .with_rerun(reason);
        let out = lacc::run(&g, &cfg)?;
        self.last_engine = Some(out.engine);
        self.last_rationale = out.rationale.clone();
        let run = &out.run;
        self.store.install_labels(&run.labels);
        self.hooks_since_rebuild = 0;
        self.stats.reruns += 1;
        self.stats.rerun_modeled_s += run.modeled_total_s;
        match reason {
            RerunReason::Deletion => self.stats.deletion_reruns += 1,
            RerunReason::Staleness => self.stats.staleness_reruns += 1,
            RerunReason::Bootstrap => {}
        }
        Ok(())
    }

    /// A consistent view of the current epoch (cheap; never blocked or
    /// invalidated by later updates).
    pub fn snapshot(&self) -> EpochSnapshot {
        self.store.snapshot()
    }

    /// Component representative of `u` at the current epoch.
    pub fn find(&mut self, u: Vid) -> Vid {
        self.stats.queries += 1;
        self.snapshot().find(u)
    }

    /// True when `u` and `v` are connected at the current epoch.
    pub fn same_component(&mut self, u: Vid, v: Vid) -> bool {
        self.stats.queries += 1;
        self.snapshot().same_component(u, v)
    }

    /// Size of `u`'s component at the current epoch.
    pub fn component_size(&mut self, u: Vid) -> usize {
        self.stats.queries += 1;
        self.snapshot().component_size(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacc::CcOracle;

    fn insert_batch(pairs: &[(Vid, Vid)]) -> UpdateBatch {
        let mut b = UpdateBatch::new();
        for &(u, v) in pairs {
            b.insert(u, v);
        }
        b
    }

    #[test]
    fn inserts_hook_incrementally_without_reruns() {
        let mut svc = CcService::new(
            12,
            ServeOpts {
                policy: RerunPolicy::never(),
                ..Default::default()
            },
        );
        let out = svc
            .apply_batch(&insert_batch(&[(0, 1), (1, 2), (3, 4), (2, 0), (5, 5)]))
            .unwrap();
        assert_eq!(out.hooks, 3);
        assert_eq!(out.rerun, None);
        assert_eq!(out.epoch, 1);
        assert_eq!(svc.num_components(), 12 - 3);
        assert!(svc.same_component(0, 2));
        assert!(svc.same_component(3, 4));
        assert!(!svc.same_component(2, 4));
        assert_eq!(svc.component_size(1), 3);
        assert_eq!(svc.find(2), 0); // min-root representative
        assert_eq!(svc.stats().noop_inserts, 2); // self loop + cycle-closing edge
        assert_eq!(svc.stats().reruns, 0);
        assert_eq!(svc.stats().queries, 5);

        // Queries agree with the brute-force oracle over the multiset.
        let oracle = CcOracle::from_edges(12, svc.edges().iter().copied());
        let snap = svc.snapshot();
        for u in 0..12 {
            assert_eq!(snap.component_size(u), oracle.component_size(u));
            for v in 0..12 {
                assert_eq!(snap.same_component(u, v), oracle.same_component(u, v));
            }
        }
    }

    #[test]
    fn deletion_triggers_rerun_with_correct_labels() {
        let mut svc = CcService::new(
            8,
            ServeOpts {
                policy: RerunPolicy::never(),
                ..Default::default()
            },
        );
        // A path 0-1-2-3; deleting the middle edge must split it.
        svc.apply_batch(&insert_batch(&[(0, 1), (1, 2), (2, 3)]))
            .unwrap();
        assert!(svc.same_component(0, 3));

        let mut b = UpdateBatch::new();
        b.delete(2, 1); // reversed endpoints still match the (1, 2) edge
        let out = svc.apply_batch(&b).unwrap();
        assert_eq!(out.deletions, 1);
        assert_eq!(out.rerun, Some(RerunReason::Deletion));
        assert!(svc.same_component(0, 1));
        assert!(!svc.same_component(0, 3));
        assert_eq!(svc.component_size(3), 2);
        assert_eq!(svc.stats().deletion_reruns, 1);
        assert!(svc.stats().rerun_modeled_s > 0.0);

        // Deleting an absent edge is a no-op: no rerun.
        let mut b = UpdateBatch::new();
        b.delete(6, 7);
        let out = svc.apply_batch(&b).unwrap();
        assert_eq!(out.deletions, 0);
        assert_eq!(out.rerun, None);
        assert_eq!(svc.stats().reruns, 1);
    }

    #[test]
    fn staleness_policy_schedules_rebuilds() {
        // threshold 0.5 over n = 8: rebuild once > 4 hooks accumulate.
        let mut svc = CcService::new(
            8,
            ServeOpts {
                policy: RerunPolicy::staleness(0.5),
                ..Default::default()
            },
        );
        let out = svc
            .apply_batch(&insert_batch(&[(0, 1), (2, 3), (4, 5), (6, 7)]))
            .unwrap();
        assert_eq!((out.hooks, out.rerun), (4, None));
        let out = svc.apply_batch(&insert_batch(&[(1, 2)])).unwrap();
        assert_eq!(out.rerun, Some(RerunReason::Staleness));
        assert_eq!(svc.hooks_since_rebuild(), 0);
        assert_eq!(svc.stats().staleness_reruns, 1);
        // Labels after the rebuild are the canonical LACC ones.
        assert_eq!(svc.find(3), 0);
        assert_eq!(svc.num_components(), 3); // {0..3}, {4,5}, {6,7}
    }

    #[test]
    fn bootstrap_from_graph_and_trace_reasons() {
        let g = lacc_graph::generators::path_graph(9);
        let sink = TraceSink::new(dmsim::TraceLevel::Steps);
        let opts = ServeOpts {
            policy: RerunPolicy::always(),
            ..Default::default()
        };
        let mut svc = CcService::from_graph_traced(&g, opts, Some(sink.clone())).unwrap();
        assert_eq!(svc.num_components(), 1);
        assert_eq!(svc.component_size(4), 9);
        assert_eq!(svc.stats().reruns, 1); // the bootstrap

        let mut b = UpdateBatch::new();
        b.delete(0, 1); // effective deletion -> rebuild
        svc.apply_batch(&b).unwrap();
        assert_eq!(svc.num_components(), 2);
        let mut b = UpdateBatch::new();
        b.insert(1, 0);
        svc.apply_batch(&b).unwrap(); // 1 hook under always() -> staleness
        assert_eq!(svc.stats().staleness_reruns, 1);
        assert_eq!(svc.num_components(), 1);
        let report = sink.report();
        assert_eq!(report.reruns, 3);
        assert!(report.kind_time_s("rerun(bootstrap)") > 0.0);
        assert!(report.kind_time_s("rerun(deletion)") > 0.0);
        assert!(report.kind_time_s("rerun(staleness)") > 0.0);
    }

    #[test]
    fn policy_engine_routes_rebuilds() {
        let g = lacc_graph::generators::path_graph(16);
        let opts = ServeOpts {
            policy: RerunPolicy::always().with_engine(lacc::EngineSelect::Fastsv),
            ..Default::default()
        };
        let svc = CcService::from_graph(&g, opts).unwrap();
        assert_eq!(svc.last_engine(), Some(lacc::EngineKind::Fastsv));
        assert_eq!(svc.last_engine_rationale(), None); // fixed choice: no rationale

        let auto = ServeOpts {
            policy: RerunPolicy::always().with_engine(lacc::EngineSelect::Auto),
            ..Default::default()
        };
        let mut svc = CcService::from_graph(&g, auto).unwrap();
        assert!(svc.last_engine().is_some());
        assert!(svc.last_engine_rationale().is_some());
        assert!(svc.same_component(0, 15));
    }

    #[test]
    fn snapshot_survives_rebuild() {
        let mut svc = CcService::new(6, ServeOpts::default());
        svc.apply_batch(&insert_batch(&[(0, 1)])).unwrap();
        let old = svc.snapshot();
        let mut b = UpdateBatch::new();
        b.delete(0, 1);
        svc.apply_batch(&b).unwrap(); // rebuild swaps in a new epoch
        assert!(old.same_component(0, 1));
        assert!(!svc.snapshot().same_component(0, 1));
        assert!(svc.snapshot().epoch() > old.epoch());
    }
}
