//! When to schedule a full LACC rebuild.
//!
//! Effective deletions *always* rebuild (a union-find over insertions
//! cannot un-merge), so the policy only governs staleness: how far the
//! incrementally hooked forest may drift from the canonical labels a
//! from-scratch run would produce before the service pays for a rebuild.

use lacc::EngineSelect;

/// Staleness policy for a [`crate::CcService`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RerunPolicy {
    /// Rebuild once `hooks_since_rebuild / n` exceeds this fraction.
    /// `0.0` rebuilds after any batch that hooked at least once;
    /// `f64::INFINITY` never rebuilds for staleness.
    pub staleness_threshold: f64,
    /// Which engine rebuilds run ([`EngineSelect::Auto`] re-selects from
    /// prepass statistics on every rebuild, tracking the evolving graph).
    pub engine: EngineSelect,
}

impl Default for RerunPolicy {
    /// Rebuild after incremental hooks touch a quarter of the vertices.
    fn default() -> Self {
        RerunPolicy {
            staleness_threshold: 0.25,
            engine: EngineSelect::default(),
        }
    }
}

impl RerunPolicy {
    /// A policy with the given threshold.
    pub fn staleness(threshold: f64) -> Self {
        assert!(threshold >= 0.0, "staleness threshold must be nonnegative");
        RerunPolicy {
            staleness_threshold: threshold,
            ..Default::default()
        }
    }

    /// Never rebuild for staleness (deletions still rebuild).
    pub fn never() -> Self {
        RerunPolicy {
            staleness_threshold: f64::INFINITY,
            ..Default::default()
        }
    }

    /// Rebuild after every batch that merged components.
    pub fn always() -> Self {
        RerunPolicy {
            staleness_threshold: 0.0,
            ..Default::default()
        }
    }

    /// The same policy with rebuilds routed to `engine`.
    pub fn with_engine(mut self, engine: EngineSelect) -> Self {
        self.engine = engine;
        self
    }

    /// True when `hooks` incremental merges since the last rebuild exceed
    /// the threshold fraction of `n` vertices.
    pub fn stale(&self, hooks: usize, n: usize) -> bool {
        n > 0 && hooks as f64 / n as f64 > self.staleness_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_semantics() {
        let p = RerunPolicy::default();
        assert!(!p.stale(0, 100));
        assert!(!p.stale(25, 100)); // exactly at the threshold: not stale
        assert!(p.stale(26, 100));

        assert!(RerunPolicy::always().stale(1, 1_000_000));
        assert!(!RerunPolicy::always().stale(0, 100));
        assert!(!RerunPolicy::never().stale(usize::MAX / 2, 2));
        assert!(!RerunPolicy::default().stale(5, 0));
    }

    #[test]
    fn engine_defaults_and_override() {
        assert_eq!(RerunPolicy::default().engine, EngineSelect::Lacc);
        assert_eq!(RerunPolicy::never().engine, EngineSelect::Lacc);
        let p = RerunPolicy::staleness(0.5).with_engine(EngineSelect::Auto);
        assert_eq!(p.engine, EngineSelect::Auto);
        assert_eq!(p.staleness_threshold, 0.5);
    }
}
