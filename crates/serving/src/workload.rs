//! A scripted mixed update/query workload over a [`CcService`].
//!
//! Shared by the CLI `serve` subcommand and the `bench_serving` harness so
//! both drive the service the same way: batches of uniform-random edge
//! insertions (optionally spiked with deletions of existing edges), each
//! followed by a burst of mixed queries against the freshly published
//! epoch. The report carries wall-clock throughput for the host-side data
//! structures and *modeled* α-β latencies for the queries, plus a final
//! consistency verdict against the brute-force [`CcOracle`].

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use lacc::CcOracle;
use lacc_graph::unionfind::canonicalize_labels;

use crate::service::{CcService, ServiceStats};
use crate::UpdateBatch;

/// Shape of a [`run_workload`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadCfg {
    /// Update batches to apply.
    pub batches: usize,
    /// Uniform-random insertions per batch.
    pub batch_size: usize,
    /// Queries issued after each batch (round-robin `find` /
    /// `same_component` / `component_size`).
    pub queries_per_batch: usize,
    /// Every `delete_every`-th batch also deletes one random existing
    /// edge, forcing a full rebuild. `0` disables deletions.
    pub delete_every: usize,
    /// RNG seed (the workload is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for WorkloadCfg {
    fn default() -> Self {
        WorkloadCfg {
            batches: 20,
            batch_size: 64,
            queries_per_batch: 128,
            delete_every: 0,
            seed: 1,
        }
    }
}

/// What a [`run_workload`] run measured.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Service counters accumulated over the run.
    pub stats: ServiceStats,
    /// Epoch published by the last batch.
    pub final_epoch: u64,
    /// Components after the last batch.
    pub final_components: usize,
    /// Edges in the final multiset.
    pub final_edges: usize,
    /// Queries issued (against per-batch snapshots).
    pub queries: u64,
    /// Host wall seconds spent inside `apply_batch`.
    pub update_wall_s: f64,
    /// Host wall seconds spent answering queries.
    pub query_wall_s: f64,
    /// Modeled α-β latency of every query, in issue order.
    pub latencies_s: Vec<f64>,
    /// True when the final epoch's labels are component-equivalent to the
    /// brute-force oracle over the final edge multiset (and component
    /// sizes agree).
    pub answers_consistent: bool,
}

impl WorkloadReport {
    /// Updates applied per host wall second.
    pub fn updates_per_s(&self) -> f64 {
        let updates = self.stats.inserts + self.stats.deletes;
        updates as f64 / self.update_wall_s.max(1e-12)
    }

    /// Queries answered per host wall second.
    pub fn queries_per_s(&self) -> f64 {
        self.queries as f64 / self.query_wall_s.max(1e-12)
    }

    /// The `pct`-th percentile (0–100) of the modeled query latencies.
    pub fn latency_percentile_s(&self, pct: f64) -> f64 {
        assert!((0.0..=100.0).contains(&pct), "percentile out of range");
        if self.latencies_s.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_s.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let i = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
        sorted[i]
    }
}

/// Drives `svc` through `cfg` and reports throughput, modeled latency and
/// the final consistency verdict. Deterministic given `cfg.seed` and the
/// service's starting state.
pub fn run_workload(
    svc: &mut CcService,
    cfg: &WorkloadCfg,
) -> Result<WorkloadReport, dmsim::DmsimError> {
    let n = svc.num_vertices();
    assert!(n >= 2, "workload needs at least two vertices");
    let model = svc.opts().model;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut latencies = Vec::with_capacity(cfg.batches * cfg.queries_per_batch);
    let mut queries = 0u64;
    let mut update_wall = 0.0f64;
    let mut query_wall = 0.0f64;

    for i in 0..cfg.batches {
        let mut batch = UpdateBatch::new();
        if cfg.delete_every > 0 && (i + 1) % cfg.delete_every == 0 && !svc.edges().is_empty() {
            let (u, v) = svc.edges()[rng.random_range(0..svc.edges().len())];
            batch.delete(u, v);
        }
        for _ in 0..cfg.batch_size {
            batch.insert(rng.random_range(0..n), rng.random_range(0..n));
        }
        let t = std::time::Instant::now();
        svc.apply_batch(&batch)?;
        update_wall += t.elapsed().as_secs_f64();

        let snap = svc.snapshot();
        let t = std::time::Instant::now();
        for q in 0..cfg.queries_per_batch {
            let u = rng.random_range(0..n);
            match q % 3 {
                0 => {
                    std::hint::black_box(snap.find(u));
                    latencies.push(snap.modeled_find_latency_s(u, &model));
                }
                1 => {
                    let v = rng.random_range(0..n);
                    std::hint::black_box(snap.same_component(u, v));
                    // The two lookups are issued concurrently; the answer
                    // arrives with the slower of the two.
                    latencies.push(
                        snap.modeled_find_latency_s(u, &model)
                            .max(snap.modeled_find_latency_s(v, &model)),
                    );
                }
                _ => {
                    std::hint::black_box(snap.component_size(u));
                    latencies.push(snap.modeled_find_latency_s(u, &model));
                }
            }
            queries += 1;
        }
        query_wall += t.elapsed().as_secs_f64();
    }

    let answers_consistent = check_consistency(svc);
    Ok(WorkloadReport {
        stats: *svc.stats(),
        final_epoch: svc.epoch(),
        final_components: svc.num_components(),
        final_edges: svc.edges().len(),
        queries,
        update_wall_s: update_wall,
        query_wall_s: query_wall,
        latencies_s: latencies,
        answers_consistent,
    })
}

/// True when the service's current epoch is component-equivalent to the
/// brute-force oracle over its own edge multiset, with matching component
/// sizes and count.
pub fn check_consistency(svc: &CcService) -> bool {
    let n = svc.num_vertices();
    let oracle = CcOracle::from_edges(n, svc.edges().iter().copied());
    let snap = svc.snapshot();
    if snap.num_components() != oracle.num_components() {
        return false;
    }
    if canonicalize_labels(&snap.labels()) != canonicalize_labels(oracle.labels()) {
        return false;
    }
    (0..n).all(|v| snap.component_size(v) == oracle.component_size(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RerunPolicy, ServeOpts};

    #[test]
    fn insert_only_workload_is_consistent_without_reruns() {
        let mut svc = CcService::new(
            64,
            ServeOpts {
                policy: RerunPolicy::never(),
                ..Default::default()
            },
        );
        let cfg = WorkloadCfg {
            batches: 6,
            batch_size: 16,
            queries_per_batch: 30,
            delete_every: 0,
            seed: 7,
        };
        let rep = run_workload(&mut svc, &cfg).unwrap();
        assert!(rep.answers_consistent);
        assert_eq!(rep.stats.reruns, 0);
        assert_eq!(rep.queries, 180);
        assert_eq!(rep.latencies_s.len(), 180);
        assert_eq!(rep.final_epoch, 6);
        assert!(rep.latency_percentile_s(99.0) >= rep.latency_percentile_s(50.0));
        assert!(rep.updates_per_s() > 0.0 && rep.queries_per_s() > 0.0);
    }

    #[test]
    fn deletions_force_rebuilds_and_stay_consistent() {
        let mut svc = CcService::new(48, ServeOpts::default());
        let cfg = WorkloadCfg {
            batches: 8,
            batch_size: 12,
            queries_per_batch: 9,
            delete_every: 3,
            seed: 42,
        };
        let rep = run_workload(&mut svc, &cfg).unwrap();
        assert!(rep.answers_consistent);
        assert!(rep.stats.deletion_reruns >= 2);
        assert!(rep.stats.rerun_modeled_s > 0.0);
    }

    #[test]
    fn workload_is_deterministic() {
        let cfg = WorkloadCfg {
            batches: 4,
            batch_size: 10,
            queries_per_batch: 12,
            delete_every: 2,
            seed: 3,
        };
        let mut a = CcService::new(32, ServeOpts::default());
        let mut b = CcService::new(32, ServeOpts::default());
        let ra = run_workload(&mut a, &cfg).unwrap();
        let rb = run_workload(&mut b, &cfg).unwrap();
        assert_eq!(a.edges(), b.edges());
        assert_eq!(ra.latencies_s, rb.latencies_s);
        assert_eq!(ra.final_components, rb.final_components);
        assert_eq!(ra.stats.reruns, rb.stats.reruns);
    }
}
