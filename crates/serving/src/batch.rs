//! Update batching: the unit of work a [`crate::CcService`] applies.
//!
//! Queries answer against the last *published* epoch, so batching is the
//! consistency knob: updates inside one batch become visible together,
//! and a batch is also the granularity at which the rerun policy is
//! evaluated.

use crate::Vid;

/// One graph mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Update {
    /// Insert the undirected edge `(u, v)`.
    Insert(Vid, Vid),
    /// Delete one occurrence of the undirected edge `(u, v)` (a no-op if
    /// the edge is not present).
    Delete(Vid, Vid),
}

/// An ordered group of updates applied (and published) atomically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    updates: Vec<Update>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Appends an edge insertion.
    pub fn insert(&mut self, u: Vid, v: Vid) -> &mut Self {
        self.updates.push(Update::Insert(u, v));
        self
    }

    /// Appends an edge deletion.
    pub fn delete(&mut self, u: Vid, v: Vid) -> &mut Self {
        self.updates.push(Update::Delete(u, v));
        self
    }

    /// Appends an arbitrary update.
    pub fn push(&mut self, up: Update) -> &mut Self {
        self.updates.push(up);
        self
    }

    /// The updates, in application order.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// Number of updates in the batch.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True when the batch holds no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }
}

/// Accumulates updates and emits a full [`UpdateBatch`] every `capacity`
/// pushes — the ingestion front end of a serving deployment.
#[derive(Clone, Debug)]
pub struct UpdateBatcher {
    capacity: usize,
    pending: UpdateBatch,
}

impl UpdateBatcher {
    /// A batcher emitting batches of `capacity` updates (must be > 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be positive");
        UpdateBatcher {
            capacity,
            pending: UpdateBatch::new(),
        }
    }

    /// Queues an update; returns the completed batch once `capacity`
    /// updates have accumulated.
    pub fn push(&mut self, up: Update) -> Option<UpdateBatch> {
        self.pending.push(up);
        if self.pending.len() >= self.capacity {
            Some(std::mem::take(&mut self.pending))
        } else {
            None
        }
    }

    /// Emits whatever is queued (possibly short), or `None` when empty.
    pub fn flush(&mut self) -> Option<UpdateBatch> {
        if self.pending.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.pending))
        }
    }

    /// Updates currently queued.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batcher_emits_at_capacity_and_flushes_remainder() {
        let mut b = UpdateBatcher::new(3);
        assert_eq!(b.push(Update::Insert(0, 1)), None);
        assert_eq!(b.push(Update::Delete(0, 1)), None);
        let full = b.push(Update::Insert(2, 3)).expect("third push fills");
        assert_eq!(full.len(), 3);
        assert_eq!(full.updates()[1], Update::Delete(0, 1));
        assert_eq!(b.pending_len(), 0);
        assert_eq!(b.flush(), None);

        b.push(Update::Insert(4, 5));
        let short = b.flush().expect("flush emits the partial batch");
        assert_eq!(short.len(), 1);
        assert!(b.flush().is_none());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        UpdateBatcher::new(0);
    }
}
