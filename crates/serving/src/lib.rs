//! `lacc-serving` — an incremental connected-components serving engine.
//!
//! The batch pipeline in [`lacc`] answers "what are the components of this
//! graph" once; this crate keeps the answer *live* while the graph changes.
//! A [`CcService`] owns an epoch-versioned [`LabelStore`] — per-owner label
//! shards matching the distributed [`gblas::dist::VecLayout`], versioned
//! copy-on-write so a reader holding an [`EpochSnapshot`] never blocks (or
//! observes) a writer — and applies batched updates:
//!
//! * **Insertions** are incremental: a new edge either links two component
//!   roots (union by minimum root with path compression) or is a no-op.
//!   No LACC run is needed, and every query stays consistent with the
//!   edges applied so far.
//! * **Deletions** cannot be handled incrementally by a union-find over
//!   insertions, so any effective deletion triggers a full recompute
//!   over the optimized distributed stack ([`lacc::run`] with the engine
//!   chosen by the [`RerunPolicy`]) whose labels are swapped in atomically
//!   as a new epoch.
//! * **Staleness**: incremental hooking answers queries correctly but
//!   leaves the store's trees shallower-than-canonical and drifts away
//!   from the bit-exact labels a from-scratch run would produce. A
//!   [`RerunPolicy`] bounds that drift: once the hooks applied since the
//!   last rebuild exceed a configurable fraction of `n`, the next batch
//!   triggers a background-style full recompute.
//!
//! Rebuild runs flow through [`dmsim::trace`] tagged with their triggering
//! [`dmsim::RerunReason`], so a trace report shows *why* each epoch was
//! recomputed and how much modeled time the rebuilds cost.

#![warn(missing_docs)]

pub mod batch;
pub mod policy;
pub mod service;
pub mod store;
pub mod workload;

pub use batch::{Update, UpdateBatch, UpdateBatcher};
pub use policy::RerunPolicy;
pub use service::{BatchOutcome, CcService, ServeOpts, ServiceStats};
pub use store::{EpochSnapshot, LabelStore};
pub use workload::{check_consistency, run_workload, WorkloadCfg, WorkloadReport};

/// Vertex id type, shared with the rest of the workspace.
pub type Vid = lacc::Vid;
