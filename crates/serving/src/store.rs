//! The epoch-versioned, sharded label store.
//!
//! Labels live in per-owner shards laid out exactly like the distributed
//! vectors of a LACC run ([`VecLayout`] over [`Grid2d::square`]), so the
//! serving tier models the same data placement the batch tier computes
//! with: a query for vertex `v` lands on `layout.owner_of(v)`'s shard and
//! chases parent pointers, paying a modeled message each time the chase
//! crosses a shard boundary.
//!
//! Every shard is an `Arc<Vec<_>>`. An [`EpochSnapshot`] clones the `Arc`s
//! (O(p), not O(n)); subsequent writes go through [`Arc::make_mut`], which
//! copies a shard only while a snapshot still holds it. Readers therefore
//! never block writers and always see the single epoch they captured.

use std::sync::Arc;

use dmsim::{Grid2d, MachineModel};
use gblas::dist::VecLayout;
use lacc_graph::{ensure_fits, Idx};

use crate::Vid;

/// Sharded parent-pointer forest with component sizes, versioned by epoch.
///
/// Invariants between published epochs:
/// * `parents` encodes a forest: chasing pointers from any vertex
///   terminates at a root `r` with `parents[r] == r`.
/// * `sizes[r]` is the vertex count of `r`'s component for every root `r`
///   (non-root entries are stale and never read).
/// * `components` is the number of roots.
///
/// The parent shards store labels at width `I` (default [`Vid`]); the
/// public API speaks full-width [`Vid`] either way, so a service can
/// halve its resident label memory with `LabelStore<u32>` without any
/// caller change. Construction panics with a descriptive message if `n`
/// exceeds `I`'s range — never a silent truncation.
#[derive(Clone, Debug)]
pub struct LabelStore<I: Idx = Vid> {
    layout: VecLayout,
    parents: Vec<Arc<Vec<I>>>,
    sizes: Vec<Arc<Vec<usize>>>,
    epoch: u64,
    components: usize,
}

impl<I: Idx> LabelStore<I> {
    /// A store of `n` singleton components sharded over `ranks` owners
    /// (must be a perfect square, matching [`Grid2d::square`]). Epoch 0.
    pub fn new_singletons(n: usize, ranks: usize) -> Self {
        if let Err(e) = ensure_fits::<I>(n, "vertices") {
            panic!("{e}");
        }
        let layout = VecLayout::new(n, Grid2d::square(ranks));
        let mut parents = Vec::with_capacity(ranks);
        let mut sizes = Vec::with_capacity(ranks);
        for r in 0..ranks {
            let len = layout.local_len(r);
            parents.push(Arc::new(
                (0..len)
                    .map(|o| I::from_usize(layout.global_of(r, o)))
                    .collect(),
            ));
            sizes.push(Arc::new(vec![1usize; len]));
        }
        LabelStore {
            layout,
            parents,
            sizes,
            epoch: 0,
            components: n,
        }
    }

    /// The shard layout (blocked, matching the batch tier's vectors).
    pub fn layout(&self) -> &VecLayout {
        &self.layout
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.layout.len()
    }

    /// Number of components at the current (possibly unpublished) state.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// The current epoch (bumped by [`publish`](Self::publish) and
    /// [`install_labels`](Self::install_labels)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Parent pointer of `v`.
    pub fn parent(&self, v: Vid) -> Vid {
        let r = self.layout.owner_of(v);
        self.parents[r][self.layout.offset_of(r, v)].idx()
    }

    fn set_parent(&mut self, v: Vid, p: Vid) {
        let r = self.layout.owner_of(v);
        let o = self.layout.offset_of(r, v);
        Arc::make_mut(&mut self.parents[r])[o] = I::from_usize(p);
    }

    /// Component size recorded at root `r` (meaningful only for roots).
    pub fn size_of_root(&self, r: Vid) -> usize {
        let rank = self.layout.owner_of(r);
        self.sizes[rank][self.layout.offset_of(rank, r)]
    }

    fn set_size(&mut self, v: Vid, s: usize) {
        let r = self.layout.owner_of(v);
        let o = self.layout.offset_of(r, v);
        Arc::make_mut(&mut self.sizes[r])[o] = s;
    }

    /// Root of `v`'s tree, compressing the whole chased path onto the root
    /// (so later queries on these vertices are one hop).
    pub fn find_compress(&mut self, v: Vid) -> Vid {
        let mut root = v;
        while self.parent(root) != root {
            root = self.parent(root);
        }
        let mut cur = v;
        while cur != root {
            let next = self.parent(cur);
            self.set_parent(cur, root);
            cur = next;
        }
        root
    }

    /// Hooks root `give` under root `keep`, merging the components.
    ///
    /// Both arguments must be distinct roots; `keep` absorbs `give`'s
    /// size and the component count drops by one.
    pub fn union_roots(&mut self, keep: Vid, give: Vid) {
        debug_assert_ne!(keep, give);
        debug_assert_eq!(self.parent(keep), keep);
        debug_assert_eq!(self.parent(give), give);
        let absorbed = self.size_of_root(give);
        self.set_parent(give, keep);
        let grown = self.size_of_root(keep) + absorbed;
        self.set_size(keep, grown);
        self.components -= 1;
    }

    /// Replaces the whole forest with converged LACC labels (`labels[v]`
    /// is the root of `v`'s component, and roots label themselves),
    /// recomputing sizes and the component count, and bumps the epoch.
    pub fn install_labels(&mut self, labels: &[Vid]) {
        assert_eq!(labels.len(), self.layout.len());
        let mut counts = vec![0usize; labels.len()];
        for &l in labels {
            debug_assert_eq!(labels[l], l, "label vector is not converged");
            counts[l] += 1;
        }
        for r in 0..self.parents.len() {
            let len = self.layout.local_len(r);
            let parents: Vec<I> = (0..len)
                .map(|o| I::from_usize(labels[self.layout.global_of(r, o)]))
                .collect();
            let sizes: Vec<usize> = (0..len)
                .map(|o| counts[self.layout.global_of(r, o)])
                .collect();
            self.parents[r] = Arc::new(parents);
            self.sizes[r] = Arc::new(sizes);
        }
        self.components = counts.iter().filter(|&&c| c > 0).count();
        self.epoch += 1;
    }

    /// Publishes the current state as a new epoch (after a batch of
    /// incremental mutations).
    pub fn publish(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// An immutable view of the current epoch. O(p) `Arc` clones; later
    /// mutations copy-on-write and never disturb the snapshot.
    pub fn snapshot(&self) -> EpochSnapshot<I> {
        EpochSnapshot {
            layout: self.layout,
            parents: self.parents.clone(),
            sizes: self.sizes.clone(),
            epoch: self.epoch,
            components: self.components,
        }
    }
}

/// A consistent, immutable view of one epoch of a [`LabelStore`].
///
/// All queries answer against the state captured at snapshot time, no
/// matter what the owning service does afterwards.
#[derive(Clone, Debug)]
pub struct EpochSnapshot<I: Idx = Vid> {
    layout: VecLayout,
    parents: Vec<Arc<Vec<I>>>,
    sizes: Vec<Arc<Vec<usize>>>,
    epoch: u64,
    components: usize,
}

impl<I: Idx> EpochSnapshot<I> {
    /// The epoch this snapshot captured.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.layout.len()
    }

    /// Number of components in this epoch.
    pub fn num_components(&self) -> usize {
        self.components
    }

    fn parent(&self, v: Vid) -> Vid {
        let r = self.layout.owner_of(v);
        self.parents[r][self.layout.offset_of(r, v)].idx()
    }

    /// Component representative (root) of `v`.
    pub fn find(&self, v: Vid) -> Vid {
        self.find_with_hops(v).0
    }

    /// [`find`](Self::find), also reporting the pointer-chase length and
    /// how many chase steps crossed a shard boundary (each such step is a
    /// modeled message in [`modeled_find_latency_s`](Self::modeled_find_latency_s)).
    pub fn find_with_hops(&self, v: Vid) -> (Vid, usize, usize) {
        let mut cur = v;
        let mut shard = self.layout.owner_of(cur);
        let mut hops = 0;
        let mut crossings = 0;
        loop {
            let p = self.parent(cur);
            if p == cur {
                return (cur, hops, crossings);
            }
            let owner = self.layout.owner_of(p);
            if owner != shard {
                crossings += 1;
                shard = owner;
            }
            hops += 1;
            cur = p;
        }
    }

    /// True when `u` and `v` are in the same component in this epoch.
    pub fn same_component(&self, u: Vid, v: Vid) -> bool {
        self.find(u) == self.find(v)
    }

    /// Size of `u`'s component in this epoch.
    pub fn component_size(&self, u: Vid) -> usize {
        let root = self.find(u);
        let r = self.layout.owner_of(root);
        self.sizes[r][self.layout.offset_of(r, root)]
    }

    /// Fully resolved labels (`labels()[v]` = root of `v`) for this epoch.
    pub fn labels(&self) -> Vec<Vid> {
        (0..self.layout.len()).map(|v| self.find(v)).collect()
    }

    /// Modeled latency of serving `find(v)` on `model`'s α-β machine: the
    /// client's request/response round trip to `v`'s owner (2 messages)
    /// plus one forwarded message per cross-shard chase step, plus the
    /// pointer lookups at `model.rate`.
    pub fn modeled_find_latency_s(&self, v: Vid, model: &MachineModel) -> f64 {
        let (_, hops, crossings) = self.find_with_hops(v);
        let messages = (2 + crossings) as f64;
        messages * (model.alpha + model.beta) + (hops + 1) as f64 / model.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_union() {
        let mut st: LabelStore = LabelStore::new_singletons(10, 4);
        assert_eq!(st.epoch(), 0);
        assert_eq!(st.num_components(), 10);
        for v in 0..10 {
            assert_eq!(st.parent(v), v);
            assert_eq!(st.size_of_root(v), 1);
        }
        st.union_roots(2, 7);
        st.union_roots(2, 9);
        assert_eq!(st.num_components(), 8);
        assert_eq!(st.size_of_root(2), 3);
        assert_eq!(st.find_compress(9), 2);
        assert_eq!(st.find_compress(7), 2);
        // Compression flattened 7 and 9 directly onto 2.
        assert_eq!(st.parent(7), 2);
        assert_eq!(st.parent(9), 2);
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut st: LabelStore = LabelStore::new_singletons(8, 4);
        st.union_roots(0, 5);
        st.publish();
        let snap = st.snapshot();
        assert_eq!(snap.epoch(), 1);
        assert!(snap.same_component(0, 5));
        assert!(!snap.same_component(0, 3));

        // Writer moves on: more unions and a full reinstall.
        st.union_roots(0, 3);
        st.publish();
        st.install_labels(&[0, 1, 1, 0, 4, 0, 4, 7]);

        // The old snapshot is untouched by both mutation styles.
        assert_eq!(snap.epoch(), 1);
        assert!(!snap.same_component(0, 3));
        assert_eq!(snap.component_size(0), 2);
        assert_eq!(snap.num_components(), 7);

        let fresh = st.snapshot();
        assert_eq!(fresh.epoch(), 3);
        assert!(fresh.same_component(2, 1));
        assert_eq!(fresh.component_size(5), 3);
        assert_eq!(fresh.num_components(), 4);
    }

    #[test]
    fn install_labels_recomputes_sizes_and_components() {
        let mut st: LabelStore = LabelStore::new_singletons(6, 4);
        st.install_labels(&[0, 0, 0, 3, 3, 5]);
        assert_eq!(st.num_components(), 3);
        assert_eq!(st.size_of_root(0), 3);
        assert_eq!(st.size_of_root(3), 2);
        assert_eq!(st.size_of_root(5), 1);
        assert_eq!(st.epoch(), 1);
        let snap = st.snapshot();
        assert_eq!(snap.labels(), vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn narrow_store_matches_default_width() {
        // Same mutation sequence against a u32-sharded and a default
        // (usize) store: every observable agrees, epoch by epoch.
        let mut wide = LabelStore::<Vid>::new_singletons(12, 4);
        let mut narrow = LabelStore::<u32>::new_singletons(12, 4);
        for (a, b) in [(2usize, 7usize), (2, 9), (0, 5)] {
            wide.union_roots(a, b);
            narrow.union_roots(a, b);
        }
        assert_eq!(wide.find_compress(9), narrow.find_compress(9));
        wide.install_labels(&[0, 0, 2, 2, 4, 4, 6, 6, 8, 8, 10, 10]);
        narrow.install_labels(&[0, 0, 2, 2, 4, 4, 6, 6, 8, 8, 10, 10]);
        assert_eq!(wide.num_components(), narrow.num_components());
        assert_eq!(wide.epoch(), narrow.epoch());
        assert_eq!(wide.snapshot().labels(), narrow.snapshot().labels());
        for v in 0..12 {
            assert_eq!(wide.parent(v), narrow.parent(v));
            assert_eq!(
                wide.snapshot().component_size(v),
                narrow.snapshot().component_size(v)
            );
        }
    }

    #[test]
    #[should_panic(expected = "u32")]
    fn narrow_store_rejects_oversized_n() {
        // u32 can't index beyond u32::MAX vertices; the constructor must
        // fail loudly (the layout is never allocated, so this is cheap).
        let _ = LabelStore::<u32>::new_singletons(u32::MAX as usize + 2, 4);
    }

    #[test]
    fn hops_and_crossings_feed_the_latency_model() {
        let mut st: LabelStore = LabelStore::new_singletons(16, 4);
        // Build a chain 15 -> 8 -> 0 without compression: shards of 16
        // elements over 4 ranks are 4-element blocks, so both links cross
        // shard boundaries.
        st.union_roots(8, 15);
        st.union_roots(0, 8);
        let snap = st.snapshot();
        let (root, hops, crossings) = snap.find_with_hops(15);
        assert_eq!((root, hops, crossings), (0, 2, 2));
        let (_, h0, c0) = snap.find_with_hops(0);
        assert_eq!((h0, c0), (0, 0));

        let model = dmsim::EDISON.lacc_model();
        let far = snap.modeled_find_latency_s(15, &model);
        let near = snap.modeled_find_latency_s(0, &model);
        // Root lookup pays only the 2-message round trip.
        let base = 2.0 * (model.alpha + model.beta) + 1.0 / model.rate;
        assert!((near - base).abs() < 1e-15);
        assert!(far > near + 1.9 * (model.alpha + model.beta));
    }
}
