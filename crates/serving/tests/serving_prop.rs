//! Property tests for the serving engine: a [`CcService`] must be an
//! *incremental encoding* of batch LACC, never a different computation.
//!
//! * Insert-only streams: every published epoch answers exactly like a
//!   union-find maintained alongside, and the final epoch's canonical
//!   labels equal a from-scratch distributed LACC run (optimized stack)
//!   on the final edge list.
//! * `RerunPolicy::always()`: each hooking batch swaps in a full LACC
//!   epoch; the installed labels are *bit-identical* (not merely
//!   equivalent) to an independent `lacc::run` on the same edges.
//! * Mixed insert/delete streams: every epoch agrees with the brute-force
//!   [`CcOracle`] over the surviving multiset, including component sizes.

use lacc::CcOracle;
use lacc_graph::unionfind::{canonicalize_labels, DisjointSets};
use lacc_graph::{CsrGraph, EdgeList};
use lacc_serving::{CcService, RerunPolicy, ServeOpts, UpdateBatch};
use proptest::prelude::*;

/// From-scratch distributed LACC (optimized stack) over an edge multiset.
fn fresh_labels(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let g = CsrGraph::from_edges(EdgeList::from_pairs(n, edges.iter().copied()));
    let opts = ServeOpts::default();
    let cfg = lacc::RunConfig::new(opts.ranks, opts.model).with_opts(opts.lacc);
    lacc::run(&g, &cfg).expect("distributed run").run.labels
}

fn chunk_batches(n: usize, raw: &[(usize, usize)], batch: usize) -> Vec<UpdateBatch> {
    raw.chunks(batch.max(1))
        .map(|chunk| {
            let mut b = UpdateBatch::new();
            for &(u, v) in chunk {
                b.insert(u % n, v % n);
            }
            b
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn insert_only_epochs_match_union_find_and_final_lacc(
        n in 8usize..48,
        raw in proptest::collection::vec((0usize..64, 0usize..64), 0..120),
        batch in 1usize..17,
    ) {
        let mut svc = CcService::new(n, ServeOpts {
            policy: RerunPolicy::never(),
            ..Default::default()
        });
        let mut uf = DisjointSets::new(n);
        let mut applied: Vec<(usize, usize)> = Vec::new();
        for b in chunk_batches(n, &raw, batch) {
            let out = svc.apply_batch(&b).unwrap();
            prop_assert_eq!(out.rerun, None);
            for up in b.updates() {
                if let lacc_serving::Update::Insert(u, v) = *up {
                    uf.union(u, v);
                    applied.push((u, v));
                }
            }
            // Every query agrees with the union-find at this epoch.
            let snap = svc.snapshot();
            prop_assert_eq!(snap.num_components(), uf.num_sets());
            for u in 0..n {
                for v in (u + 1)..n {
                    prop_assert_eq!(snap.same_component(u, v), uf.same_set(u, v));
                }
            }
        }
        prop_assert_eq!(svc.stats().reruns, 0);
        // Final epoch vs from-scratch LACC on the final edge list.
        let snap = svc.snapshot();
        prop_assert_eq!(
            canonicalize_labels(&snap.labels()),
            canonicalize_labels(&fresh_labels(n, svc.edges()))
        );
    }

    #[test]
    fn forced_reruns_install_bit_identical_labels(
        n in 8usize..40,
        raw in proptest::collection::vec((0usize..48, 0usize..48), 1..60),
        batch in 1usize..9,
    ) {
        let mut svc = CcService::new(n, ServeOpts {
            policy: RerunPolicy::always(),
            ..Default::default()
        });
        let mut hooked = false;
        for b in chunk_batches(n, &raw, batch) {
            let out = svc.apply_batch(&b).unwrap();
            hooked |= out.hooks > 0;
            if out.rerun.is_some() {
                // The installed epoch is the LACC run verbatim: raw
                // labels, not just canonical equivalence.
                prop_assert_eq!(
                    svc.snapshot().labels(),
                    fresh_labels(n, svc.edges())
                );
            }
        }
        if hooked {
            prop_assert!(svc.stats().staleness_reruns > 0);
        }
        prop_assert_eq!(
            canonicalize_labels(&svc.snapshot().labels()),
            canonicalize_labels(&fresh_labels(n, svc.edges()))
        );
    }

    #[test]
    fn mixed_updates_match_oracle_every_epoch(
        n in 8usize..32,
        raw in proptest::collection::vec((0usize..4, 0usize..40, 0usize..40), 1..50),
        batch in 1usize..7,
    ) {
        let mut svc = CcService::new(n, ServeOpts::default());
        for chunk in raw.chunks(batch) {
            let mut b = UpdateBatch::new();
            for &(tag, u, v) in chunk {
                // tag 0 (25%): delete an existing edge; otherwise insert.
                if tag == 0 && !svc.edges().is_empty() {
                    // Delete an existing edge (index derived from u, v).
                    let (du, dv) = svc.edges()[(u * 40 + v) % svc.edges().len()];
                    b.delete(du, dv);
                } else {
                    b.insert(u % n, v % n);
                }
            }
            svc.apply_batch(&b).unwrap();
            let oracle = CcOracle::from_edges(n, svc.edges().iter().copied());
            let snap = svc.snapshot();
            prop_assert_eq!(snap.num_components(), oracle.num_components());
            for u in 0..n {
                prop_assert_eq!(snap.find(u) == snap.find(0), oracle.same_component(u, 0));
                prop_assert_eq!(snap.component_size(u), oracle.component_size(u));
            }
        }
        prop_assert_eq!(
            canonicalize_labels(&svc.snapshot().labels()),
            canonicalize_labels(&fresh_labels(n, svc.edges()))
        );
    }
}
