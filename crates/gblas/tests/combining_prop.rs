//! Property tests for the in-flight combining path: the combining
//! hypercube must be an *encoding* of the plain exchanges, never a
//! different computation.
//!
//! * With globally unique keys no merge can fire, and the delivered
//!   payload multiset must match the pairwise and hypercube all-to-alls
//!   exactly.
//! * With colliding keys and a commutative-associative merge (min, sum),
//!   the folded result must be bit-identical to a destination-side fold
//!   of the plain exchange.
//! * At the `dist_extract` / `dist_assign` level, flipping
//!   `combine_in_flight` (and `compress_values`, and the fused route
//!   replay) must not change a single output bit across blocked/cyclic
//!   layouts and power-of-two / fallback group sizes.

use dmsim::{run_spmd, AllToAll, Grid2d};
use gblas::dist::{
    dist_assign, dist_extract, dist_extract_planned, plan_requests, DistOpts, DistVec,
    FusedExtract, VecLayout,
};
use gblas::{AndBool, MinUsize};
use proptest::prelude::*;

/// Group sizes: 1 (degenerate), 3 and 9 (non-power-of-two fallback),
/// 4/8/16 (hypercube rounds).
fn arb_group() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(3), Just(4), Just(8), Just(16)]
}

/// Square grids for the ops-level tests (9 exercises the fallback).
fn arb_grid() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(4), Just(9), Just(16)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn unique_keys_match_plain_exchanges_exactly(
        q in arb_group(),
        lens in proptest::collection::vec(0usize..6, 256),
    ) {
        let lr = &lens;
        let out = run_spmd(q, move |c| {
            let world = c.world();
            let me = c.rank();
            // Keys unique across the whole machine: no merge may fire.
            let bufs: Vec<Vec<(u64, u64)>> = (0..q)
                .map(|d| {
                    let len = lr[(me * q + d) % lr.len()];
                    (0..len)
                        .map(|i| ((((me * q + d) * 8 + i) as u64), (me * 100 + i) as u64))
                        .collect()
                })
                .collect();
            let pw = c.alltoallv(&world, bufs.clone(), AllToAll::Pairwise);
            let hc = c.alltoallv(&world, bufs.clone(), AllToAll::Hypercube);
            let combined = c.alltoallv_combining(&world, bufs, |e: &(u64, u64)| e.0, |_, _| {
                panic!("merge fired on globally unique keys")
            });
            let mut pw: Vec<(u64, u64)> = pw.into_iter().flatten().collect();
            let mut hc: Vec<(u64, u64)> = hc.into_iter().flatten().collect();
            let mut cmb = combined;
            pw.sort_unstable();
            hc.sort_unstable();
            cmb.sort_unstable();
            (pw, hc, cmb, c.snapshot().combined_words)
        })
        .unwrap();
        for (pw, hc, cmb, combined_words) in out {
            prop_assert_eq!(&hc, &pw, "hypercube is a routing of pairwise");
            prop_assert_eq!(&cmb, &pw, "combining without merges is plain routing");
            prop_assert_eq!(combined_words, 0, "nothing to merge, nothing counted");
        }
    }

    #[test]
    fn colliding_keys_fold_bit_identically(
        q in arb_group(),
        lens in proptest::collection::vec(0usize..8, 256),
        use_sum in proptest::bool::ANY,
    ) {
        let lr = &lens;
        let out = run_spmd(q, move |c| {
            let world = c.world();
            let me = c.rank();
            // Few distinct keys per destination: heavy cross-rank
            // collisions, exactly what in-flight combining exists for.
            let bufs: Vec<Vec<(u64, u64)>> = (0..q)
                .map(|d| {
                    let len = lr[(me * q + d) % lr.len()];
                    (0..len)
                        .map(|i| ((i % 5) as u64, (me * 7 + d + i) as u64))
                        .collect()
                })
                .collect();
            let merged = if use_sum {
                c.reduce_scatter_by_key(&world, bufs.clone(), |a: &mut u64, b| *a += b)
            } else {
                c.reduce_scatter_by_key(&world, bufs.clone(), |a: &mut u64, b| *a = (*a).min(b))
            };
            // Reference: plain exchange, then a destination-side fold.
            let plain = c.alltoallv(&world, bufs, AllToAll::Pairwise);
            let mut all: Vec<(u64, u64)> = plain.into_iter().flatten().collect();
            all.sort_by_key(|&(k, _)| k);
            let mut expect: Vec<(u64, u64)> = Vec::new();
            for (k, v) in all {
                match expect.last_mut() {
                    Some(&mut (lk, ref mut lv)) if lk == k => {
                        *lv = if use_sum { *lv + v } else { (*lv).min(v) };
                    }
                    _ => expect.push((k, v)),
                }
            }
            (merged, expect)
        })
        .unwrap();
        for (merged, expect) in out {
            prop_assert_eq!(&merged, &expect, "commutative fold is order-free");
        }
    }

    /// `combine_in_flight`, `compress_values`, and the fused route replay
    /// are wire encodings: extract and assign results must be
    /// bit-identical to the naive exchange on every layout and grid.
    #[test]
    fn combining_ops_bit_identical_to_naive(
        n in 4usize..80,
        (p, cyclic) in arb_grid().prop_flat_map(|p| (Just(p), proptest::bool::ANY)),
        reqs in proptest::collection::vec(0usize..1000, 0..60),
        raw in proptest::collection::vec((0usize..1000, 0usize..400), 0..60),
        compress_values in proptest::bool::ANY,
    ) {
        let naive = DistOpts::naive();
        let combining = DistOpts {
            combine_in_flight: true,
            compress_values,
            ..naive
        };
        let (rr, ur) = (&reqs, &raw);
        let out = run_spmd(p, move |c| {
            let grid = Grid2d::square(p);
            let layout = if cyclic {
                VecLayout::cyclic(n, grid)
            } else {
                VecLayout::new(n, grid)
            };
            let src = DistVec::from_fn(layout, c.rank(), |g| g * 13 % n);
            // Different lists per rank: asymmetric buckets.
            let requests: Vec<usize> = rr.iter().map(|&r| (r + c.rank()) % n).collect();
            let updates: Vec<(usize, usize)> = ur
                .iter()
                .map(|&(i, v)| ((i + c.rank()) % n, v))
                .collect();
            let (base_vals, _) = dist_extract(c, &src, &requests, &naive);
            let (vals, _) = dist_extract(c, &src, &requests, &combining);
            let mut base_dst = DistVec::from_fn(layout, c.rank(), |_| usize::MAX);
            let (base_chg, _) = dist_assign(c, &mut base_dst, &updates, MinUsize, &naive);
            let mut dst = DistVec::from_fn(layout, c.rank(), |_| usize::MAX);
            let (chg, _) = dist_assign(c, &mut dst, &updates, MinUsize, &combining);

            // Fused replay: one request route serves a usize phase, then —
            // after an interleaved assign, as in starcheck — a bool phase.
            let plan = plan_requests(c, layout, &requests, &naive);
            let fx = FusedExtract::begin(c, &plan);
            let fused_vals = fx.extract(c, &src, &plan, &combining);
            let mut star = DistVec::from_fn(layout, c.rank(), |_| true);
            let demote: Vec<(usize, bool)> =
                requests.iter().map(|&g| (g, g % 3 != 0)).collect();
            dist_assign(c, &mut star, &demote, AndBool, &naive);
            let fused_star = fx.extract(c, &star, &plan, &combining);
            let (base_star, _) = dist_extract_planned(c, &star, &plan, &naive);

            (
                (base_vals, vals, fused_vals),
                (base_dst.to_global(c), dst.to_global(c)),
                (base_chg, chg),
                (base_star, fused_star),
            )
        })
        .unwrap();
        for ((base_vals, vals, fused_vals), (base_dst, dst), (base_chg, chg), stars) in out {
            prop_assert_eq!(&vals, &base_vals);
            prop_assert_eq!(&fused_vals, &base_vals, "fused phase 1 matches");
            prop_assert_eq!(&dst, &base_dst);
            prop_assert_eq!(chg, base_chg);
            let (base_star, fused_star) = stars;
            prop_assert_eq!(&fused_star, &base_star, "fused phase 2 sees the assign");
        }
    }
}
