//! Property tests: every distributed primitive must be bit-identical to
//! its serial counterpart on arbitrary inputs and grids.

use dmsim::{run_spmd, AllToAll, Grid2d};
use gblas::dist::{
    dist_assign, dist_extract, dist_mxv, dist_mxv_dense, dist_mxv_sparse, DistMask, DistMat,
    DistOpts, DistSpVec, DistVec, VecLayout,
};
use gblas::serial::{self, Pattern, SparseVec};
use gblas::{Mask, MinUsize};
use lacc_graph::{CsrGraph, EdgeList};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..150)
            .prop_map(move |pairs| CsrGraph::from_edges(EdgeList::from_pairs(n, pairs)))
    })
}

fn arb_grid() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(4), Just(9), Just(16)]
}

fn arb_layout(n: usize, p: usize) -> impl Strategy<Value = VecLayout> {
    proptest::bool::ANY.prop_map(move |cyclic| {
        let grid = Grid2d::square(p);
        if cyclic {
            VecLayout::cyclic(n, grid)
        } else {
            VecLayout::new(n, grid)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mxv_dense_dist_eq_serial(g in arb_graph(), p in arb_grid(), seed in 0u64..1000) {
        let n = g.num_vertices();
        let x_global: Vec<usize> = (0..n).map(|v| (v.wrapping_mul(seed as usize + 7)) % n).collect();
        let mask_global: Vec<bool> = (0..n).map(|v| !(v + seed as usize).is_multiple_of(3)).collect();
        let a_serial = Pattern::from_graph(&g);
        let expect = serial::mxv_dense(&a_serial, &x_global, Mask::Keep(&mask_global), MinUsize);
        let gref = &g;
        let xr = &x_global;
        let mr = &mask_global;
        let out = run_spmd(p, move |c| {
            let grid = Grid2d::square(p);
            let layout = VecLayout::new(n, grid);
            let a = DistMat::from_graph(gref, grid, c.rank());
            let x = DistVec::from_global(layout, c.rank(), xr);
            let m = DistVec::from_global(layout, c.rank(), mr);
            dist_mxv_dense(c, &a, &x, DistMask::Keep(&m), MinUsize, &DistOpts::default())
                .to_serial(c)
        })
        .unwrap();
        for got in out {
            prop_assert_eq!(&got, &expect);
        }
    }

    #[test]
    fn mxv_sparse_dist_eq_serial(g in arb_graph(), p in arb_grid(), stride in 1usize..5) {
        let n = g.num_vertices();
        let entries: Vec<(usize, usize)> = (0..n).step_by(stride).map(|v| (v, v % 17)).collect();
        let x_serial = SparseVec::from_entries(n, entries.clone());
        let a_serial = Pattern::from_graph(&g);
        let expect = serial::mxv_sparse(&a_serial, &x_serial, Mask::None, MinUsize);
        let gref = &g;
        let er = &entries;
        let out = run_spmd(p, move |c| {
            let grid = Grid2d::square(p);
            let layout = VecLayout::new(n, grid);
            let a = DistMat::from_graph(gref, grid, c.rank());
            let (s, e) = layout.range_of_rank(c.rank());
            let local: Vec<(usize, usize)> =
                er.iter().copied().filter(|&(g, _)| g >= s && g < e).collect();
            let x = DistSpVec::from_local_entries(layout, c.rank(), local);
            dist_mxv_sparse(c, &a, &x, DistMask::None, MinUsize, &DistOpts::default()).to_serial(c)
        })
        .unwrap();
        for got in out {
            prop_assert_eq!(&got, &expect);
        }
    }

    #[test]
    fn extract_dist_eq_serial(
        n in 4usize..80,
        (p, layout) in arb_grid().prop_flat_map(|p| (Just(p), arb_layout(80, p))),
        reqs in proptest::collection::vec(0usize..1000, 0..60),
        hot in proptest::bool::ANY,
    ) {
        // Rebuild the layout at the right size (arb_layout used a cap).
        let layout = if layout.distribution() == gblas::dist::Distribution::Cyclic {
            VecLayout::cyclic(n, Grid2d::square(p))
        } else {
            VecLayout::new(n, Grid2d::square(p))
        };
        let src_global: Vec<usize> = (0..n).map(|v| v * 13 % n).collect();
        let requests: Vec<usize> = reqs.iter().map(|&r| r % n).collect();
        let expect = serial::extract(&src_global, &requests);
        let sr = &src_global;
        let rr = &requests;
        let opts = DistOpts { hot_bcast: hot, hot_threshold: 1.5, ..DistOpts::default() };
        let out = run_spmd(p, move |c| {
            let src = DistVec::from_global(layout, c.rank(), sr);
            // Every rank issues the same request list; all must get the
            // same answers.
            dist_extract(c, &src, rr, &opts).0
        })
        .unwrap();
        for got in out {
            prop_assert_eq!(&got, &expect);
        }
    }

    #[test]
    fn mxv_cyclic_eq_serial(g in arb_graph(), p in arb_grid(), seed in 0u64..1000) {
        let n = g.num_vertices();
        let x_global: Vec<usize> = (0..n).map(|v| (v.wrapping_mul(seed as usize + 3)) % n).collect();
        let a_serial = Pattern::from_graph(&g);
        let expect = serial::mxv_dense(&a_serial, &x_global, Mask::None, MinUsize);
        let gref = &g;
        let xr = &x_global;
        let out = run_spmd(p, move |c| {
            let grid = Grid2d::square(p);
            let layout = VecLayout::cyclic(n, grid);
            let a = DistMat::from_graph(gref, grid, c.rank());
            let x = DistVec::from_global(layout, c.rank(), xr);
            let dense = dist_mxv_dense(c, &a, &x, DistMask::None, MinUsize, &DistOpts::default())
                .to_serial(c);
            // Sparse input with the same support as the dense vector.
            let entries: Vec<(usize, usize)> = (0..n)
                .filter(|&g| layout.owner_of(g) == c.rank())
                .map(|g| (g, xr[g]))
                .collect();
            let xs = DistSpVec::from_local_entries(layout, c.rank(), entries);
            let sparse =
                dist_mxv_sparse(c, &a, &xs, DistMask::None, MinUsize, &DistOpts::default())
                    .to_serial(c);
            (dense, sparse)
        })
        .unwrap();
        for (dense, sparse) in out {
            prop_assert_eq!(&dense, &expect);
            prop_assert_eq!(&sparse, &expect);
        }
    }

    #[test]
    fn mxv_parallel_and_adaptive_eq_serial(
        g in arb_graph(),
        p in arb_grid(),
        threads in prop_oneof![Just(1usize), Just(2), Just(4)],
        threshold in prop_oneof![Just(0.0f64), Just(0.5), Just(1.1)],
        stride in 1usize..4,
        masked in proptest::bool::ANY,
    ) {
        // Dense SpMV, SpMSpV, and the adaptive dispatcher must all be
        // bit-identical to serial for every kernel-thread count and every
        // dispatch threshold (0.0 forces the dense-style branch, 1.1 the
        // sparse branch).
        let n = g.num_vertices();
        let x_global: Vec<usize> = (0..n).map(|v| v.wrapping_mul(31) % n).collect();
        let entries: Vec<(usize, usize)> = (0..n).step_by(stride).map(|v| (v, v % 23)).collect();
        let mask_global: Vec<bool> = (0..n).map(|v| !masked || v % 4 != 1).collect();
        let x_serial = SparseVec::from_entries(n, entries.clone());
        let a_serial = Pattern::from_graph(&g);
        let expect_dense =
            serial::mxv_dense(&a_serial, &x_global, Mask::Keep(&mask_global), MinUsize);
        let expect_sparse =
            serial::mxv_sparse(&a_serial, &x_serial, Mask::Keep(&mask_global), MinUsize);
        let opts = DistOpts {
            kernel_threads: threads,
            spmv_threshold: threshold,
            ..DistOpts::default()
        };
        let (gref, xr, er, mr) = (&g, &x_global, &entries, &mask_global);
        let out = run_spmd(p, move |c| {
            let grid = Grid2d::square(p);
            let layout = VecLayout::new(n, grid);
            let a = DistMat::from_graph(gref, grid, c.rank());
            let x = DistVec::from_global(layout, c.rank(), xr);
            let m = DistVec::from_global(layout, c.rank(), mr);
            let dense =
                dist_mxv_dense(c, &a, &x, DistMask::Keep(&m), MinUsize, &opts).to_serial(c);
            let (s, e) = layout.range_of_rank(c.rank());
            let local: Vec<(usize, usize)> =
                er.iter().copied().filter(|&(g, _)| g >= s && g < e).collect();
            let xs = DistSpVec::from_local_entries(layout, c.rank(), local.clone());
            let sparse =
                dist_mxv_sparse(c, &a, &xs, DistMask::Keep(&m), MinUsize, &opts).to_serial(c);
            let xs2 = DistSpVec::from_local_entries(layout, c.rank(), local);
            let adaptive =
                dist_mxv(c, &a, &xs2, DistMask::Keep(&m), MinUsize, &opts).to_serial(c);
            (dense, sparse, adaptive)
        })
        .unwrap();
        for (dense, sparse, adaptive) in out {
            prop_assert_eq!(&dense, &expect_dense);
            prop_assert_eq!(&sparse, &expect_sparse);
            prop_assert_eq!(&adaptive, &expect_sparse);
        }
    }

    #[test]
    fn assign_dist_eq_serial(
        n in 4usize..80,
        p in arb_grid(),
        raw in proptest::collection::vec((0usize..1000, 0usize..1000), 0..60),
    ) {
        let updates: Vec<(usize, usize)> = raw.iter().map(|&(i, v)| (i % n, v)).collect();
        let mut expect: Vec<usize> = vec![usize::MAX; n];
        // Each of p ranks submits the same update list; serial reference
        // combines p copies (idempotent under min).
        serial::assign(&mut expect, &updates, MinUsize);
        let ur = &updates;
        let out = run_spmd(p, move |c| {
            let layout = VecLayout::new(n, Grid2d::square(p));
            let mut dst = DistVec::from_fn(layout, c.rank(), |_| usize::MAX);
            dist_assign(c, &mut dst, ur, MinUsize, &DistOpts::default());
            dst.to_global(c)
        })
        .unwrap();
        for got in out {
            prop_assert_eq!(&got, &expect);
        }
    }

    /// Sender-side compaction is an encoding of the same traffic: for every
    /// flag combination, all-to-all algorithm, and layout, `dist_extract`
    /// and `dist_assign` must be bit-identical to the naive wire format.
    /// Each rank issues a *different* request/update list so the test also
    /// covers asymmetric bucket shapes.
    #[test]
    fn compaction_bit_identical_to_naive(
        n in 4usize..80,
        (p, cyclic) in arb_grid().prop_flat_map(|p| (Just(p), proptest::bool::ANY)),
        reqs in proptest::collection::vec(0usize..1000, 0..60),
        raw in proptest::collection::vec((0usize..1000, 0usize..1000), 0..60),
        algo in prop_oneof![
            Just(AllToAll::Pairwise),
            Just(AllToAll::Hypercube),
            Just(AllToAll::Sparse),
        ],
        dedup in proptest::bool::ANY,
        combine in proptest::bool::ANY,
        compress in proptest::bool::ANY,
        density in prop_oneof![Just(0.0f64), Just(0.0625), Just(1.0)],
        hash in proptest::bool::ANY,
    ) {
        let naive = DistOpts {
            alltoall: algo,
            hot_bcast: false,
            ..DistOpts::naive()
        };
        let variant = DistOpts {
            dedup_requests: dedup,
            combine_assigns: combine,
            compress_ids: compress,
            compress_bitmap_density: density,
            // threshold 1 forces the hash dedup path, the default the
            // sort path
            dedup_hash_threshold: if hash { 1 } else { 2048 },
            ..naive
        };
        let (rr, ur) = (&reqs, &raw);
        let out = run_spmd(p, move |c| {
            let grid = Grid2d::square(p);
            let layout = if cyclic {
                VecLayout::cyclic(n, grid)
            } else {
                VecLayout::new(n, grid)
            };
            let src = DistVec::from_fn(layout, c.rank(), |g| g * 13 % n);
            let requests: Vec<usize> =
                rr.iter().map(|&r| (r + c.rank()) % n).collect();
            let updates: Vec<(usize, usize)> = ur
                .iter()
                .map(|&(i, v)| ((i + c.rank()) % n, v % 991))
                .collect();
            let (base_vals, base_stats) = dist_extract(c, &src, &requests, &naive);
            let (vals, stats) = dist_extract(c, &src, &requests, &variant);
            let mut base_dst = DistVec::from_fn(layout, c.rank(), |_| usize::MAX);
            let (base_chg, base_astats) =
                dist_assign(c, &mut base_dst, &updates, MinUsize, &naive);
            let mut dst = DistVec::from_fn(layout, c.rank(), |_| usize::MAX);
            let (chg, astats) = dist_assign(c, &mut dst, &updates, MinUsize, &variant);
            (
                (base_vals, vals, base_dst.to_global(c), dst.to_global(c)),
                (base_chg, chg),
                (base_stats, stats, base_astats, astats),
            )
        })
        .unwrap();
        for ((base_vals, vals, base_dst, dst), (base_chg, chg), stats) in out {
            prop_assert_eq!(&vals, &base_vals);
            prop_assert_eq!(&dst, &base_dst);
            prop_assert_eq!(chg, base_chg);
            let (base_es, es, base_as, as_) = stats;
            // The naive wire format never reports savings; compaction may.
            prop_assert_eq!(base_es.dedup_saved_words + base_es.compress_saved_words, 0);
            prop_assert_eq!(base_as.combine_saved_words + base_as.compress_saved_words, 0);
            if !dedup {
                prop_assert_eq!(es.dedup_saved_words, 0);
            }
            if !compress {
                prop_assert_eq!(es.compress_saved_words, 0);
                prop_assert_eq!(as_.compress_saved_words, 0);
            }
            if !combine {
                prop_assert_eq!(as_.combine_saved_words, 0);
            }
        }
    }
}
