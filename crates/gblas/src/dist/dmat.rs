//! 2D-distributed pattern matrices.

use super::dvec::block_range;
use crate::serial::{CsrMirror, Dcsc};
use crate::Vid;
use dmsim::Grid2d;
use lacc_graph::{CsrGraph, Idx};

/// The local view of an `n × n` symmetric pattern matrix distributed on a
/// square process grid: rank `(i, j)` stores block `A_ij` (rows in row
/// block `i`, columns in column block `j`) as a DCSC with block-local
/// indices, plus a row-major mirror of the same block for the row-split
/// parallel local multiply (the matrix is static across iterations, so the
/// mirror is built once).
///
/// Block indices are stored at width `I`; the narrowing happens per rank
/// while slicing, so no globally narrowed copy of the graph is ever
/// materialized. Callers must have checked `ensure_fits::<I>(n)` first.
#[derive(Clone, Debug)]
pub struct DistMat<I: Idx = Vid> {
    n: usize,
    grid: Grid2d,
    row_range: (usize, usize),
    col_range: (usize, usize),
    local: Dcsc<I>,
    row_mirror: CsrMirror<I>,
}

impl<I: Idx> DistMat<I> {
    /// Extracts rank `rank`'s block from a (conceptually replicated) graph.
    ///
    /// In a real distributed setting the graph would arrive pre-partitioned
    /// from disk; in the simulation every rank slices its block from the
    /// shared input. The caller should apply a random symmetric permutation
    /// first (`lacc_graph::permute`) for load balance, as CombBLAS does.
    pub fn from_graph(g: &CsrGraph, grid: Grid2d, rank: usize) -> Self {
        assert_eq!(grid.rows(), grid.cols(), "LACC requires a square grid");
        let n = g.num_vertices();
        let (i, j) = grid.coords_of(rank);
        let row_range = block_range(n, grid.rows(), i);
        let col_range = block_range(n, grid.cols(), j);
        let mut pairs: Vec<(I, I)> = Vec::new();
        for gc in col_range.0..col_range.1 {
            for &gr in g.neighbors(gc) {
                if gr >= row_range.0 && gr < row_range.1 {
                    pairs.push((
                        I::from_usize(gr - row_range.0),
                        I::from_usize(gc - col_range.0),
                    ));
                }
            }
        }
        let local = Dcsc::from_pairs(row_range.1 - row_range.0, col_range.1 - col_range.0, pairs);
        let row_mirror =
            CsrMirror::from_col_major_pairs(local.nrows(), local.ncols(), local.pairs());
        DistMat {
            n,
            grid,
            row_range,
            col_range,
            local,
            row_mirror,
        }
    }

    /// Global matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The process grid.
    pub fn grid(&self) -> Grid2d {
        self.grid
    }

    /// Global row range of the local block.
    pub fn row_range(&self) -> (usize, usize) {
        self.row_range
    }

    /// Global column range of the local block.
    pub fn col_range(&self) -> (usize, usize) {
        self.col_range
    }

    /// The local DCSC block (block-local indices).
    pub fn local(&self) -> &Dcsc<I> {
        &self.local
    }

    /// Row-major mirror of the local block (block-local indices); each
    /// row's columns are ascending, matching the DCSC column-sweep combine
    /// order.
    pub fn row_mirror(&self) -> &CsrMirror<I> {
        &self.row_mirror
    }

    /// Local nonzero count.
    pub fn local_nnz(&self) -> usize {
        self.local.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsim::run_spmd;
    use lacc_graph::generators::{erdos_renyi_gnm, path_graph};

    #[test]
    fn blocks_partition_all_edges() {
        let g = erdos_renyi_gnm(50, 200, 3);
        let m = g.num_directed_edges();
        for p in [1usize, 4, 9, 16] {
            let grid = Grid2d::square(p);
            let total: usize = (0..p)
                .map(|r| DistMat::<Vid>::from_graph(&g, grid, r).local_nnz())
                .sum();
            assert_eq!(total, m, "p={p}");
        }
    }

    #[test]
    fn block_entries_match_global_graph() {
        let g = path_graph(11);
        let grid = Grid2d::square(4);
        for r in 0..4 {
            let blk = DistMat::<Vid>::from_graph(&g, grid, r);
            let (rs, _) = blk.row_range();
            let (cs, _) = blk.col_range();
            for (lr, lc) in blk.local().pairs() {
                assert!(g.has_edge(rs + lr, cs + lc));
            }
        }
    }

    #[test]
    fn narrow_blocks_match_default_width() {
        let g = erdos_renyi_gnm(40, 120, 7);
        let grid = Grid2d::square(4);
        for r in 0..4 {
            let wide = DistMat::<Vid>::from_graph(&g, grid, r);
            let narrow = DistMat::<u32>::from_graph(&g, grid, r);
            assert_eq!(wide.local_nnz(), narrow.local_nnz());
            let w: Vec<(usize, usize)> = wide.local().pairs().collect();
            let n: Vec<(usize, usize)> = narrow
                .local()
                .pairs()
                .map(|(a, b)| (a.idx(), b.idx()))
                .collect();
            assert_eq!(w, n, "rank {r}");
        }
    }

    #[test]
    fn works_inside_spmd() {
        let g = path_graph(9);
        let out = run_spmd(9, |c| {
            let blk = DistMat::<Vid>::from_graph(&g, Grid2d::square(9), c.rank());
            blk.local_nnz()
        })
        .unwrap();
        assert_eq!(out.iter().sum::<usize>(), g.num_directed_edges());
    }

    #[test]
    #[should_panic(expected = "square grid")]
    fn rejects_rectangular_grid() {
        let g = path_graph(4);
        DistMat::<Vid>::from_graph(&g, Grid2d::new(2, 1), 0);
    }
}
