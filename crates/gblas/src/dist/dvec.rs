//! Distributed dense and sparse vectors: block or cyclic layout.
//!
//! The paper's CombBLAS substrate block-distributes vectors; §VII proposes
//! **cyclic distribution** as future work to spread the hot low-id parents
//! across ranks. Both layouts are implemented here behind [`VecLayout`]:
//!
//! * [`Distribution::Blocked`] — contiguous chunks in column-major grid
//!   order, aligned with the matrix column blocks so the `mxv` gather
//!   stays inside processor columns (CombBLAS `FullyDistVec`).
//! * [`Distribution::Cyclic`] — element `g` lives on the rank of chunk
//!   `g mod p`. `extract`/`assign` load-balance perfectly under skewed
//!   access, at the price of a world-wide (instead of grid-aligned)
//!   gather in `mxv` — the trade-off the `exp_cyclic` experiment
//!   quantifies.

use crate::serial::SparseVec;
use crate::Vid;
use dmsim::{Comm, Grid2d, PooledBuf};
use lacc_graph::Idx;

/// Even split of `0..n` into `parts` contiguous blocks; block `k` is
/// `[k·n/parts, (k+1)·n/parts)`.
pub fn block_range(n: usize, parts: usize, k: usize) -> (usize, usize) {
    (k * n / parts, (k + 1) * n / parts)
}

/// How vector elements map to ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// Contiguous chunks (CombBLAS default; matrix-aligned).
    Blocked,
    /// Round-robin by index (the paper's §VII future-work layout).
    Cyclic,
}

/// The common distribution of all vectors in a computation: `n` elements
/// over the grid's `p` ranks, where the chunk of grid rank `(i, j)` has
/// *chunk index* `j·pr + i` (column-major).
///
/// In the blocked layout that ordering aligns vector chunks with matrix
/// column blocks; in the cyclic layout chunk `c` owns every index `g` with
/// `g ≡ c (mod p)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VecLayout {
    n: usize,
    grid: Grid2d,
    dist: Distribution,
}

impl VecLayout {
    /// Blocked layout for `n` elements on `grid` (the paper's default).
    pub fn new(n: usize, grid: Grid2d) -> Self {
        VecLayout {
            n,
            grid,
            dist: Distribution::Blocked,
        }
    }

    /// Cyclic layout for `n` elements on `grid` (§VII future work).
    pub fn cyclic(n: usize, grid: Grid2d) -> Self {
        VecLayout {
            n,
            grid,
            dist: Distribution::Cyclic,
        }
    }

    /// Vector length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the empty vector.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The process grid.
    pub fn grid(&self) -> Grid2d {
        self.grid
    }

    /// The distribution kind.
    pub fn distribution(&self) -> Distribution {
        self.dist
    }

    /// Chunk index owned by `rank` (column-major grid order).
    pub fn chunk_of_rank(&self, rank: usize) -> usize {
        let (i, j) = self.grid.coords_of(rank);
        j * self.grid.rows() + i
    }

    /// Rank owning chunk `c`.
    pub fn rank_of_chunk(&self, c: usize) -> usize {
        let (i, j) = (c % self.grid.rows(), c / self.grid.rows());
        self.grid.rank_of(i, j)
    }

    /// Number of elements stored by `rank`.
    pub fn local_len(&self, rank: usize) -> usize {
        let c = self.chunk_of_rank(rank);
        match self.dist {
            Distribution::Blocked => {
                let (s, e) = block_range(self.n, self.grid.size(), c);
                e - s
            }
            Distribution::Cyclic => {
                if self.n > c {
                    (self.n - c - 1) / self.grid.size() + 1
                } else {
                    0
                }
            }
        }
    }

    /// Global index of `rank`'s element at local `offset`.
    pub fn global_of(&self, rank: usize, offset: usize) -> Vid {
        let c = self.chunk_of_rank(rank);
        match self.dist {
            Distribution::Blocked => block_range(self.n, self.grid.size(), c).0 + offset,
            Distribution::Cyclic => c + offset * self.grid.size(),
        }
    }

    /// Local offset of global index `g` on its owner.
    ///
    /// # Panics (debug)
    /// If `g` is not owned by `rank`.
    pub fn offset_of(&self, rank: usize, g: Vid) -> usize {
        let c = self.chunk_of_rank(rank);
        match self.dist {
            Distribution::Blocked => {
                let (s, e) = block_range(self.n, self.grid.size(), c);
                debug_assert!(g >= s && g < e, "index {g} not owned by rank {rank}");
                g - s
            }
            Distribution::Cyclic => {
                debug_assert_eq!(
                    g % self.grid.size(),
                    c,
                    "index {g} not owned by rank {rank}"
                );
                (g - c) / self.grid.size()
            }
        }
    }

    /// Global index range owned by `rank` (blocked layout only).
    pub fn range_of_rank(&self, rank: usize) -> (usize, usize) {
        assert_eq!(
            self.dist,
            Distribution::Blocked,
            "range_of_rank requires a blocked layout"
        );
        block_range(self.n, self.grid.size(), self.chunk_of_rank(rank))
    }

    /// Chunk index containing global index `g` (blocked layout only; used
    /// by the grid-aligned `mxv` routing).
    pub fn chunk_containing(&self, g: Vid) -> usize {
        assert_eq!(
            self.dist,
            Distribution::Blocked,
            "chunk_containing requires a blocked layout"
        );
        debug_assert!(g < self.n);
        let p = self.grid.size();
        // First guess by proportion, then correct for flooring.
        let mut c = (g * p) / self.n;
        while block_range(self.n, p, c).0 > g {
            c -= 1;
        }
        while block_range(self.n, p, c).1 <= g {
            c += 1;
        }
        c
    }

    /// Rank owning global index `g`.
    pub fn owner_of(&self, g: Vid) -> usize {
        match self.dist {
            Distribution::Blocked => self.rank_of_chunk(self.chunk_containing(g)),
            Distribution::Cyclic => {
                debug_assert!(g < self.n);
                self.rank_of_chunk(g % self.grid.size())
            }
        }
    }

    /// Buckets `(global id, payload)` items by owning rank in one pass,
    /// into RAII-pooled buffers (they recycle on drop). The shared first
    /// step of extract request planning, `dist_assign` routing, and the
    /// `mxv` reduce scatter. Ids stay at their native index width `I` so
    /// narrow layouts charge narrow wire words downstream.
    pub fn bucket_by_owner<I: Idx, P: Copy + Send + 'static>(
        &self,
        comm: &Comm,
        items: impl Iterator<Item = (I, P)>,
    ) -> Vec<PooledBuf<(I, P)>> {
        let mut buckets: Vec<PooledBuf<(I, P)>> =
            (0..self.grid.size()).map(|_| comm.pooled_buf()).collect();
        for (g, it) in items {
            buckets[self.owner_of(g.idx())].push((g, it));
        }
        buckets
    }
}

/// A dense distributed vector: every rank stores its elements in local
/// offset order.
#[derive(Clone, Debug, PartialEq)]
pub struct DistVec<T> {
    layout: VecLayout,
    rank: usize,
    local: Vec<T>,
}

impl<T: Copy + Send + 'static> DistVec<T> {
    /// Builds this rank's elements from a function of the global index.
    pub fn from_fn(layout: VecLayout, rank: usize, f: impl Fn(Vid) -> T) -> Self {
        let len = layout.local_len(rank);
        DistVec {
            layout,
            rank,
            local: (0..len).map(|o| f(layout.global_of(rank, o))).collect(),
        }
    }

    /// Slices this rank's elements out of a replicated global vector (test
    /// and setup convenience).
    pub fn from_global(layout: VecLayout, rank: usize, global: &[T]) -> Self {
        assert_eq!(global.len(), layout.len());
        Self::from_fn(layout, rank, |g| global[g])
    }

    /// The layout.
    pub fn layout(&self) -> VecLayout {
        self.layout
    }

    /// The owning rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Global range `[start, end)` of the local chunk (blocked only).
    pub fn range(&self) -> (usize, usize) {
        self.layout.range_of_rank(self.rank)
    }

    /// Local elements in offset order.
    pub fn local(&self) -> &[T] {
        &self.local
    }

    /// Mutable local elements.
    pub fn local_mut(&mut self) -> &mut [T] {
        &mut self.local
    }

    /// Global index of the element at local `offset`.
    pub fn global_of(&self, offset: usize) -> Vid {
        self.layout.global_of(self.rank, offset)
    }

    /// Value at a locally owned global index.
    pub fn get_local(&self, g: Vid) -> T {
        self.local[self.layout.offset_of(self.rank, g)]
    }

    /// Sets a locally owned global index.
    pub fn set_local(&mut self, g: Vid, v: T) {
        self.local[self.layout.offset_of(self.rank, g)] = v;
    }

    /// True if this rank owns global index `g`.
    pub fn owns(&self, g: Vid) -> bool {
        g < self.layout.len() && self.layout.owner_of(g) == self.rank
    }

    /// Assembles the full vector on every rank (allgather).
    pub fn to_global(&self, comm: &mut Comm) -> Vec<T>
    where
        T: Clone,
    {
        let world = comm.world();
        let by_rank = comm.allgatherv(&world, self.local.clone());
        let n = self.layout.n;
        let mut pairs: Vec<(Vid, T)> = Vec::with_capacity(n);
        for (r, block) in by_rank.into_iter().enumerate() {
            for (o, v) in block.into_iter().enumerate() {
                pairs.push((self.layout.global_of(r, o), v));
            }
        }
        debug_assert_eq!(pairs.len(), n);
        pairs.sort_unstable_by_key(|&(g, _)| g);
        pairs.into_iter().map(|(_, v)| v).collect()
    }
}

/// A sparse distributed vector: each rank stores the present entries that
/// it owns, as `(global index, value)` sorted by index. The index word is
/// generic over [`Idx`] — `DistSpVec<T, u32>` halves entry index traffic.
#[derive(Clone, Debug, PartialEq)]
pub struct DistSpVec<T, I: Idx = Vid> {
    layout: VecLayout,
    rank: usize,
    entries: Vec<(I, T)>,
}

impl<T: Copy + Send + 'static, I: Idx> DistSpVec<T, I> {
    /// An empty sparse vector.
    pub fn empty(layout: VecLayout, rank: usize) -> Self {
        DistSpVec {
            layout,
            rank,
            entries: Vec::new(),
        }
    }

    /// Builds from this rank's local entries (must be owned here; sorted
    /// and checked).
    pub fn from_local_entries(layout: VecLayout, rank: usize, mut entries: Vec<(I, T)>) -> Self {
        entries.sort_unstable_by_key(|&(g, _)| g);
        assert!(
            entries
                .iter()
                .all(|&(g, _)| g.idx() < layout.len() && layout.owner_of(g.idx()) == rank),
            "entry outside local chunk"
        );
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate index"
        );
        DistSpVec {
            layout,
            rank,
            entries,
        }
    }

    /// The layout.
    pub fn layout(&self) -> VecLayout {
        self.layout
    }

    /// Global range of the local chunk (blocked only).
    pub fn range(&self) -> (usize, usize) {
        self.layout.range_of_rank(self.rank)
    }

    /// Local entries, sorted by global index.
    pub fn entries(&self) -> &[(I, T)] {
        &self.entries
    }

    /// Number of locally stored entries.
    pub fn local_nvals(&self) -> usize {
        self.entries.len()
    }

    /// Total stored entries across all ranks (an allreduce).
    pub fn global_nvals(&self, comm: &mut Comm) -> usize {
        let world = comm.world();
        comm.allreduce(&world, self.entries.len() as u64, |a, b| a + b) as usize
    }

    /// Assembles the full sparse vector on every rank.
    pub fn to_serial(&self, comm: &mut Comm) -> SparseVec<T, I> {
        let world = comm.world();
        let by_rank = comm.allgatherv(&world, self.entries.clone());
        let mut all: Vec<(I, T)> = by_rank.into_iter().flatten().collect();
        all.sort_unstable_by_key(|&(g, _)| g);
        SparseVec::from_entries(self.layout.n, all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsim::run_spmd;

    #[test]
    fn block_range_covers_and_partitions() {
        for (n, parts) in [(10, 3), (7, 7), (100, 16), (5, 8), (0, 4)] {
            let mut prev = 0;
            for k in 0..parts {
                let (s, e) = block_range(n, parts, k);
                assert_eq!(s, prev);
                assert!(e >= s);
                prev = e;
            }
            assert_eq!(prev, n);
        }
    }

    #[test]
    fn layout_owner_matches_offsets_both_distributions() {
        for layout in [
            VecLayout::new(103, Grid2d::square(9)),
            VecLayout::cyclic(103, Grid2d::square(9)),
        ] {
            let mut seen = 0usize;
            for r in 0..9 {
                for o in 0..layout.local_len(r) {
                    let g = layout.global_of(r, o);
                    assert!(g < 103);
                    assert_eq!(layout.owner_of(g), r);
                    assert_eq!(layout.offset_of(r, g), o);
                    seen += 1;
                }
            }
            assert_eq!(seen, 103, "every index owned exactly once");
        }
    }

    #[test]
    fn cyclic_spreads_low_indices() {
        let layout = VecLayout::cyclic(64, Grid2d::square(16));
        // Indices 0..16 all land on distinct ranks.
        let owners: std::collections::BTreeSet<usize> =
            (0..16).map(|g| layout.owner_of(g)).collect();
        assert_eq!(owners.len(), 16);
        // Blocked puts them all on one rank.
        let blocked = VecLayout::new(64, Grid2d::square(16));
        let owners_b: std::collections::BTreeSet<usize> =
            (0..4).map(|g| blocked.owner_of(g)).collect();
        assert_eq!(owners_b.len(), 1);
    }

    #[test]
    fn column_major_chunks_align_with_column_blocks() {
        // Blocked chunks of processor column j must concatenate to the
        // matrix column block j.
        let grid = Grid2d::square(16);
        let layout = VecLayout::new(97, grid);
        for j in 0..4 {
            let col_block = block_range(97, 4, j);
            let first = layout.range_of_rank(grid.rank_of(0, j)).0;
            let last = layout.range_of_rank(grid.rank_of(3, j)).1;
            assert_eq!((first, last), col_block);
        }
    }

    #[test]
    fn chunk_rank_roundtrip() {
        let layout = VecLayout::new(50, Grid2d::square(4));
        for c in 0..4 {
            assert_eq!(layout.chunk_of_rank(layout.rank_of_chunk(c)), c);
        }
    }

    #[test]
    fn distvec_to_global_roundtrip_both_layouts() {
        let global: Vec<u64> = (0..37).map(|g| g * 3).collect();
        for cyclic in [false, true] {
            let gref = &global;
            let out = run_spmd(4, move |c| {
                let grid = Grid2d::square(4);
                let layout = if cyclic {
                    VecLayout::cyclic(37, grid)
                } else {
                    VecLayout::new(37, grid)
                };
                let v = DistVec::from_global(layout, c.rank(), gref);
                v.to_global(c)
            })
            .unwrap();
            for got in out {
                assert_eq!(got, global, "cyclic={cyclic}");
            }
        }
    }

    #[test]
    fn distvec_local_accessors() {
        run_spmd(4, |c| {
            let layout = VecLayout::cyclic(20, Grid2d::square(4));
            let mut v = DistVec::from_fn(layout, c.rank(), |g| g as u64);
            for o in 0..v.local().len() {
                let g = v.global_of(o);
                assert!(v.owns(g));
                assert_eq!(v.get_local(g), g as u64);
            }
            if !v.local().is_empty() {
                let g = v.global_of(0);
                v.set_local(g, 999);
                assert_eq!(v.local()[0], 999);
            }
        })
        .unwrap();
    }

    #[test]
    fn distspvec_global_roundtrip() {
        let out = run_spmd(9, |c| {
            let layout = VecLayout::new(40, Grid2d::square(9));
            let entries: Vec<(usize, u64)> = (0..40)
                .filter(|&g| g % 3 == 0 && layout.owner_of(g) == c.rank())
                .map(|g| (g, g as u64 * 2))
                .collect();
            let v = DistSpVec::from_local_entries(layout, c.rank(), entries);
            let total = v.global_nvals(c);
            let serial = v.to_serial(c);
            (total, serial)
        })
        .unwrap();
        let expect: Vec<(usize, u64)> = (0..40)
            .filter(|g| g % 3 == 0)
            .map(|g| (g, g as u64 * 2))
            .collect();
        for (total, serial) in out {
            assert_eq!(total, expect.len());
            assert_eq!(serial.entries(), &expect[..]);
        }
    }

    #[test]
    fn spvec_rejects_foreign_entries() {
        let err = run_spmd(4, |c| {
            let layout = VecLayout::new(16, Grid2d::square(4));
            if c.rank() == 0 {
                // Index 15 belongs to the last chunk, not rank 0's.
                let _ = DistSpVec::from_local_entries(layout, 0, vec![(15usize, 1u8)]);
            }
        })
        .unwrap_err();
        assert_eq!(err.rank, 0);
        assert!(err.message().contains("outside local chunk"));
    }
}
