//! Compressed id-list encodings for the sender-side compaction layer.
//!
//! When [`super::DistOpts::compress_ids`] is on, `dist_extract` /
//! `dist_assign` exchange lists of local *offsets* (the destination
//! owner's view of each index, which is dense even under the cyclic
//! layout) as byte streams instead of one 8-byte word per id:
//!
//! * **delta-varint** — LEB128 of the first offset, then of consecutive
//!   deltas. A sorted list of `k` offsets spanning `s` slots costs about
//!   `k · (1 + log₁₂₈(s/k))` bytes instead of `8k`.
//! * **bitmap** — base + span + one bit per slot. Chosen only for
//!   duplicate-free lists whose density within the spanned range reaches
//!   [`super::DistOpts::compress_bitmap_density`] *and* whose bitmap is
//!   actually smaller than the delta stream.
//!
//! The simulated exchange sends the encoded bytes themselves, so the
//! dmsim cost model charges the *compressed* word counts with no
//! special-casing — modeled time honestly reflects the savings.
//!
//! The varint machinery lives in [`dmsim::wire`], shared with the
//! combining collectives; this module adds the offset-list modes on top
//! plus the [`encode_values`] value-stream wrappers.

use dmsim::wire::{push_varint, read_varint, varint_len};
use dmsim::WireWord;

const MODE_DELTA: u8 = 0;
const MODE_BITMAP: u8 = 1;

/// Encodes a sorted (non-decreasing) offset list. `unique` asserts the
/// list is duplicate-free, unlocking the bitmap representation; the
/// encoder picks whichever of delta-varint and bitmap is smaller, with
/// the bitmap additionally gated behind `bitmap_density`.
pub fn encode_offsets(offs: &[usize], unique: bool, bitmap_density: f64) -> Vec<u8> {
    debug_assert!(
        offs.windows(2).all(|w| w[0] <= w[1]),
        "offsets must be sorted"
    );
    if offs.is_empty() {
        return Vec::new();
    }
    let mut delta = Vec::with_capacity(offs.len() + 10);
    delta.push(MODE_DELTA);
    push_varint(&mut delta, offs.len() as u64);
    let mut prev = 0u64;
    for (k, &o) in offs.iter().enumerate() {
        let o = o as u64;
        push_varint(&mut delta, if k == 0 { o } else { o - prev });
        prev = o;
    }
    if unique {
        let (min, max) = (offs[0], *offs.last().expect("nonempty"));
        let span = max - min + 1;
        let density = offs.len() as f64 / span as f64;
        let bitmap_len = 1 + varint_len(min as u64) + varint_len(span as u64) + span.div_ceil(8);
        if density >= bitmap_density && bitmap_len < delta.len() {
            let mut bm = Vec::with_capacity(bitmap_len);
            bm.push(MODE_BITMAP);
            push_varint(&mut bm, min as u64);
            push_varint(&mut bm, span as u64);
            let bits_at = bm.len();
            bm.resize(bits_at + span.div_ceil(8), 0u8);
            for &o in offs {
                let b = o - min;
                bm[bits_at + b / 8] |= 1 << (b % 8);
            }
            return bm;
        }
    }
    delta
}

/// Decodes a stream produced by [`encode_offsets`] back into the sorted
/// offset list.
pub fn decode_offsets(bytes: &[u8]) -> Vec<usize> {
    if bytes.is_empty() {
        return Vec::new();
    }
    let mut pos = 0usize;
    let mode = bytes[pos];
    pos += 1;
    match mode {
        MODE_DELTA => {
            let k = read_varint(bytes, &mut pos) as usize;
            let mut out = Vec::with_capacity(k);
            let mut cur = 0u64;
            for i in 0..k {
                let d = read_varint(bytes, &mut pos);
                cur = if i == 0 { d } else { cur + d };
                out.push(cur as usize);
            }
            out
        }
        MODE_BITMAP => {
            let min = read_varint(bytes, &mut pos) as usize;
            let span = read_varint(bytes, &mut pos) as usize;
            let mut out = Vec::new();
            for b in 0..span {
                if bytes[pos + b / 8] & (1 << (b % 8)) != 0 {
                    out.push(min + b);
                }
            }
            out
        }
        other => panic!("bad id-list encoding mode {other}"),
    }
}

/// Encodes a value stream (the non-id half of an extract reply or assign
/// payload) with run-length encoding and a raw fallback at `T`'s native
/// width ([`dmsim::wire::encode_words_for`]), so narrow label types pay
/// 4 bytes per element instead of 8 when RLE loses. Empty streams encode
/// to zero bytes.
pub fn encode_values<T: WireWord>(vals: &[T]) -> Vec<u8> {
    if vals.is_empty() {
        return Vec::new();
    }
    let words: Vec<u64> = vals.iter().map(|v| v.to_word()).collect();
    dmsim::wire::encode_words_for::<T>(&words)
}

/// Decodes a stream produced by [`encode_values`].
pub fn decode_values<T: WireWord>(bytes: &[u8]) -> Vec<T> {
    if bytes.is_empty() {
        return Vec::new();
    }
    dmsim::wire::decode_words_for::<T>(bytes)
        .into_iter()
        .map(T::from_word)
        .collect()
}

/// [`encode_values`] with a dynamic narrowing tier
/// ([`dmsim::wire::encode_words_narrow`]): under an active spec the
/// stream may additionally ship as raw `u16` or dictionary codes when
/// that is strictly smaller than the legacy encoding. Returns the bytes
/// and the saving vs [`encode_values`] (0 under
/// [`dmsim::NarrowSpec::NATIVE`], where the bytes are identical).
pub fn encode_values_narrow<T: WireWord>(
    vals: &[T],
    spec: dmsim::NarrowSpec,
    dict: Option<&dmsim::NarrowDict>,
) -> (Vec<u8>, u64) {
    if vals.is_empty() {
        return (Vec::new(), 0);
    }
    let words: Vec<u64> = vals.iter().map(|v| v.to_word()).collect();
    dmsim::wire::encode_words_narrow::<T>(&words, spec, dict)
}

/// Decodes a stream produced by [`encode_values_narrow`] (any tier).
pub fn decode_values_narrow<T: WireWord>(bytes: &[u8], dict: Option<&dmsim::NarrowDict>) -> Vec<T> {
    if bytes.is_empty() {
        return Vec::new();
    }
    dmsim::wire::decode_words_narrow::<T>(bytes, dict)
        .into_iter()
        .map(T::from_word)
        .collect()
}

/// A value type whose streams can ride a narrow-framed exchange.
///
/// The mxv gather/exchange payloads are not always scalar wire words —
/// LACC's conditional hook ships `(parent, value)` pairs — so the codec
/// is chunk-level: a whole value slice encodes to one self-delimiting
/// byte frame and decodes back without external length information.
/// Scalar wire types delegate to [`encode_values_narrow`]; pairs split
/// into two component planes with a varint length prefix on the first.
///
/// Contract: `decode_chunk(&encode_chunk(v, spec, dict), dict) == v` for
/// any `spec` the encoder saw and the same `dict` epoch, and the empty
/// slice encodes to the empty frame.
pub trait NarrowVal: Copy + Send + Sync + 'static {
    /// Encodes a value slice as one self-delimiting frame.
    fn encode_chunk(
        vals: &[Self],
        spec: dmsim::NarrowSpec,
        dict: Option<&dmsim::NarrowDict>,
    ) -> Vec<u8>;
    /// Decodes a frame produced by [`NarrowVal::encode_chunk`].
    fn decode_chunk(bytes: &[u8], dict: Option<&dmsim::NarrowDict>) -> Vec<Self>;
}

macro_rules! narrow_val_scalar {
    ($($t:ty),*) => {$(
        impl NarrowVal for $t {
            fn encode_chunk(
                vals: &[Self],
                spec: dmsim::NarrowSpec,
                dict: Option<&dmsim::NarrowDict>,
            ) -> Vec<u8> {
                encode_values_narrow::<$t>(vals, spec, dict).0
            }
            fn decode_chunk(bytes: &[u8], dict: Option<&dmsim::NarrowDict>) -> Vec<Self> {
                decode_values_narrow::<$t>(bytes, dict)
            }
        }
    )*};
}

narrow_val_scalar!(u16, u32, u64, usize, bool);

impl<A: NarrowVal, B: NarrowVal> NarrowVal for (A, B) {
    fn encode_chunk(
        vals: &[Self],
        spec: dmsim::NarrowSpec,
        dict: Option<&dmsim::NarrowDict>,
    ) -> Vec<u8> {
        if vals.is_empty() {
            return Vec::new();
        }
        let a_plane: Vec<A> = vals.iter().map(|&(a, _)| a).collect();
        let b_plane: Vec<B> = vals.iter().map(|&(_, b)| b).collect();
        let a_bytes = A::encode_chunk(&a_plane, spec, dict);
        let b_bytes = B::encode_chunk(&b_plane, spec, dict);
        let mut out = Vec::with_capacity(a_bytes.len() + b_bytes.len() + 4);
        push_varint(&mut out, a_bytes.len() as u64);
        out.extend_from_slice(&a_bytes);
        out.extend_from_slice(&b_bytes);
        out
    }
    fn decode_chunk(bytes: &[u8], dict: Option<&dmsim::NarrowDict>) -> Vec<Self> {
        if bytes.is_empty() {
            return Vec::new();
        }
        let mut pos = 0usize;
        let a_len = read_varint(bytes, &mut pos) as usize;
        let a_plane = A::decode_chunk(&bytes[pos..pos + a_len], dict);
        let b_plane = B::decode_chunk(&bytes[pos + a_len..], dict);
        debug_assert_eq!(a_plane.len(), b_plane.len(), "tuple planes align");
        a_plane.into_iter().zip(b_plane).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(offs: &[usize], unique: bool, density: f64) {
        let enc = encode_offsets(offs, unique, density);
        assert_eq!(decode_offsets(&enc), offs, "unique={unique}");
    }

    #[test]
    fn tuple_chunks_roundtrip_across_tiers() {
        let pairs: Vec<(u32, usize)> = (0..300u32)
            .map(|k| (k * 5 % 97, (k % 11) as usize))
            .collect();
        for tier in [dmsim::NarrowTier::Native, dmsim::NarrowTier::U16] {
            let spec = dmsim::NarrowSpec { tier };
            let frame = <(u32, usize)>::encode_chunk(&pairs, spec, None);
            assert_eq!(
                <(u32, usize)>::decode_chunk(&frame, None),
                pairs,
                "{tier:?}"
            );
        }
        let spec = dmsim::NarrowSpec {
            tier: dmsim::NarrowTier::U16,
        };
        assert!(<(u32, usize)>::encode_chunk(&[], spec, None).is_empty());
        assert!(<(u32, usize)>::decode_chunk(&[], None).is_empty());
    }

    #[test]
    fn value_stream_roundtrips() {
        let labels: Vec<usize> = vec![3, 3, 3, 3, 9, 9, 3, 3];
        assert_eq!(decode_values::<usize>(&encode_values(&labels)), labels);
        let flags = vec![true, true, false, true];
        assert_eq!(decode_values::<bool>(&encode_values(&flags)), flags);
        assert!(encode_values::<usize>(&[]).is_empty());
        assert!(decode_values::<usize>(&[]).is_empty());
    }

    #[test]
    fn repeated_labels_collapse() {
        // Near convergence most replies carry the same label.
        let labels = vec![7usize; 4096];
        let enc = encode_values(&labels);
        assert!(enc.len() < 16, "got {} bytes", enc.len());
    }

    #[test]
    fn empty_list_is_empty_stream() {
        assert!(encode_offsets(&[], true, 0.0625).is_empty());
        assert!(decode_offsets(&[]).is_empty());
    }

    #[test]
    fn delta_roundtrips_with_duplicates() {
        roundtrip(&[0, 0, 0, 5, 5, 900, 900, 1_000_000], false, 0.0625);
        roundtrip(&[42], false, 0.0625);
    }

    #[test]
    fn dense_unique_list_takes_the_bitmap() {
        let offs: Vec<usize> = (100..400).collect();
        let enc = encode_offsets(&offs, true, 0.0625);
        assert_eq!(enc[0], MODE_BITMAP);
        // 300 contiguous offsets: ~38 bitmap bytes vs ~300 delta bytes.
        assert!(
            enc.len() < 50,
            "bitmap should be compact, got {}",
            enc.len()
        );
        assert_eq!(decode_offsets(&enc), offs);
    }

    #[test]
    fn sparse_unique_list_takes_delta() {
        let offs: Vec<usize> = (0..50).map(|k| k * 1000).collect();
        let enc = encode_offsets(&offs, true, 0.0625);
        assert_eq!(enc[0], MODE_DELTA);
        assert_eq!(decode_offsets(&enc), offs);
    }

    #[test]
    fn density_threshold_gates_the_bitmap() {
        // Density 0.5: a threshold above it forces delta even though the
        // bitmap would be smaller.
        let offs: Vec<usize> = (0..200).map(|k| k * 2).collect();
        let delta = encode_offsets(&offs, true, 0.9);
        assert_eq!(delta[0], MODE_DELTA);
        let bm = encode_offsets(&offs, true, 0.25);
        assert_eq!(bm[0], MODE_BITMAP);
        assert_eq!(decode_offsets(&delta), offs);
        assert_eq!(decode_offsets(&bm), offs);
    }

    #[test]
    fn compression_beats_raw_words_on_typical_buckets() {
        // A skewed request bucket: many small offsets. Raw cost is 8 bytes
        // per id; the encoded stream must be several times smaller.
        let offs: Vec<usize> = (0..1000).map(|k| k / 3).collect();
        let enc = encode_offsets(&offs, false, 0.0625);
        assert!(
            enc.len() * 4 < offs.len() * 8,
            "encoded {} bytes",
            enc.len()
        );
    }
}
