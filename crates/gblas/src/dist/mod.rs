//! Distributed GraphBLAS layer over [`dmsim`] — the CombBLAS role.
//!
//! * Matrices are 2D-partitioned on a square `√p × √p` grid
//!   ([`DistMat`]), with each local block stored in DCSC.
//! * Vectors ([`DistVec`], [`DistSpVec`]) are block-distributed in
//!   *column-major chunk order* so that the chunks owned by processor
//!   column `j` concatenate into exactly the vector segment matching the
//!   matrix's column block `j` — the alignment CombBLAS guarantees so that
//!   the allgather phase of `mxv` stays inside processor columns.
//! * [`ops`] implements the distributed primitives: `mxv` (SpMV/SpMSpV),
//!   `extract`, `assign`, each matching its serial counterpart
//!   bit-for-bit, with the paper's §V-B communication optimizations.

pub mod compact;
pub mod dmat;
pub mod dvec;
pub mod ops;

pub use compact::NarrowVal;
pub use dmat::DistMat;
pub use dvec::{DistSpVec, DistVec, Distribution, VecLayout};
pub use ops::{
    dist_assign, dist_extract, dist_extract_planned, dist_extract_start, dist_mxv, dist_mxv_dense,
    dist_mxv_dense_start, dist_mxv_sparse, dist_mxv_start, plan_requests, spmv_wins, AssignStats,
    DistMask, DistOpts, ExtractStats, FusedExtract, RequestPlan,
};
