//! Distributed GraphBLAS primitives.
//!
//! Each primitive reproduces CombBLAS' communication structure (§V-A):
//!
//! * [`dist_mxv_dense`] (SpMV) — allgather of vector chunks within
//!   processor columns → local block multiply → reduce-scatter within
//!   processor rows → transpose exchange to restore vector alignment.
//! * [`dist_mxv_sparse`] (SpMSpV) — sparse allgather within columns →
//!   local multiply → irregular all-to-all within rows + local merge
//!   (the paper's description verbatim) → transpose exchange.
//! * [`dist_extract`] / [`dist_assign`] — request/reply through a global
//!   all-to-all, with the §V-B mitigations: selectable all-to-all
//!   algorithm (pairwise / hypercube / sparse) and the hot-rank broadcast
//!   fallback for the skewed access pattern of Figure 3.
//!
//! All primitives are bit-identical to their serial counterparts in
//! [`crate::serial`]; the test module checks this across grid sizes.

use super::compact::{self, NarrowVal};
use super::dmat::DistMat;
use super::dvec::{block_range, DistSpVec, DistVec, Distribution, VecLayout};
use crate::serial::{kernel_pool, CsrMirror, Dcsc};
use crate::types::Monoid;
use crate::Vid;
use dmsim::{
    bytes_of, words_of, AllToAll, CombineRoute, Comm, CommHandle, FramedBlock, Group, NarrowSpec,
    PooledBuf, SpanKind, WireWord,
};
use lacc_graph::Idx;
use std::collections::HashMap;

/// Tuning knobs for the distributed primitives (the paper's §V-B levers
/// plus the intra-rank threading added on top).
#[derive(Clone, Copy, Debug)]
pub struct DistOpts {
    /// All-to-all algorithm for irregular exchanges.
    pub alltoall: AllToAll,
    /// Enables the hot-rank broadcast fallback in [`dist_extract`].
    pub hot_bcast: bool,
    /// A rank broadcasts its chunk instead of answering requests when it
    /// would receive more than `hot_threshold ×` its chunk length in
    /// requests (the paper's system-dependent `h`).
    pub hot_threshold: f64,
    /// Worker threads for the local multiply inside the `mxv` paths
    /// (`<= 1` runs the serial kernels). Callers should budget
    /// `ranks × kernel_threads ≤ cores`; the shared pool in the `rayon`
    /// shim additionally guarantees `P` ranks asking for `T` threads share
    /// one `T`-worker pool rather than spawning `P×T` OS threads.
    pub kernel_threads: usize,
    /// [`dist_mxv`] takes the SpMV-style (dense, column-scan) local kernel
    /// when the input's measured global fill `nvals/n` is at least this;
    /// below it, the SpMSpV per-entry kernel. Mirrors the internal dispatch
    /// of the paper's `GrB_mxv`.
    pub spmv_threshold: f64,
    /// Sender-side request dedup in [`dist_extract`]: each per-destination
    /// bucket carries every unique id once, and each unique reply is
    /// scattered back to all originating request positions. Bit-identical
    /// to the naive exchange (grandparent lookups `f[f[v]]` repeat the
    /// same parent once per child, so this collapses most of LACC's
    /// extract traffic).
    pub dedup_requests: bool,
    /// Sender-side pre-combining in [`dist_assign`]: per-destination
    /// `(id, value)` updates folded through the op's monoid before the
    /// exchange, so each target index crosses the wire at most once.
    /// Bit-identical for associative monoids (pre-combining one sender's
    /// bucket only re-associates — never reorders — the receiver's fold).
    pub combine_assigns: bool,
    /// Compressed id streams: sorted per-bucket id lists cross the wire
    /// delta-varint- or bitmap-encoded ([`super::compact`]) as local
    /// offsets on the destination rank. The exchange sends the encoded
    /// bytes themselves, so modeled time reflects the compressed size.
    pub compress_ids: bool,
    /// Unique-offsets-per-span density at or above which a compressed
    /// bucket may switch from delta-varint to bitmap encoding (the encoder
    /// still requires the bitmap to actually be smaller).
    pub compress_bitmap_density: f64,
    /// Request buckets at least this long dedup through a hash set (one
    /// linear pass plus a sort of the unique ids); shorter buckets
    /// sort-and-dedup in place.
    pub dedup_hash_threshold: usize,
    /// In-flight combining: [`dist_extract`] routes request ids through
    /// [`Comm::combining_requests`] (replies scattered back along the
    /// recorded reverse route) and [`dist_assign`] merges updates through
    /// [`Comm::reduce_scatter_by_key`], so duplicates issued by
    /// *different* ranks collapse at the hypercube hop where their routes
    /// meet — traffic sender-side compaction cannot see. Bit-identical
    /// for the commutative monoids LACC uses (in-flight merging may
    /// reorder the fold across origins).
    pub combine_in_flight: bool,
    /// Fuses starcheck's two planned extracts (grandparent, then parent
    /// starness) into one combining exchange: the request route is paid
    /// for once and replayed for both reply phases. Requires
    /// `combine_in_flight`; ignored without it.
    pub fuse_starcheck: bool,
    /// Run-length encoding for the *value* halves of extract replies and
    /// assign payloads ([`super::compact::encode_values`]) — labels near
    /// convergence are heavily repeated, so reply streams collapse to a
    /// few runs. Applies to both the plain and the combining reply paths.
    pub compress_values: bool,
    /// Non-blocking execution of the hot-path exchanges. Engines post
    /// `mxv` through [`dist_mxv_start`] / [`dist_mxv_dense_start`] (or an
    /// extract through [`dist_extract_start`]) and collect the result with
    /// [`dmsim::CommHandle::wait`], or credit an exchange against a
    /// preceding compute window ([`dmsim::Comm::overlap_from`]). The
    /// operation still runs eagerly with an identical message pattern and
    /// identical charges — this flag only controls whether the modeled
    /// clock is *refunded* at completion for exchange time that overlapped
    /// independent local compute — so labels, iteration counts and
    /// `words_sent` are bit-identical with the flag on or off.
    pub overlap: bool,
    /// Lets the adaptive [`dist_mxv`] dispatch account for overlap credit
    /// when choosing SpMV vs SpMSpV: with `overlap` on, SpMV's bulk
    /// column allgather is largely hideable behind its streaming local
    /// multiply (`hideable_s`), so the effective fill threshold drops (see
    /// [`spmv_wins`]). Off by default — unlike every other lever this one
    /// changes the *message pattern* with `overlap`, which would break the
    /// overlap-invariance contract (`words_sent` identical on/off) the
    /// proptests and bench assert; opt in where that contract is not
    /// relied on.
    pub overlap_dispatch: bool,
    /// Dynamic label-range narrowing: each engine iteration probes the
    /// active label range/cardinality (piggybacked on the convergence
    /// allreduce) and, when the labels fit, re-encodes the exchange
    /// streams as raw `u16` or dictionary codes ([`dmsim::NarrowTier`]).
    /// Decode always widens back to the index type, so labels and
    /// iteration counts are bit-identical on/off; only bytes shrink
    /// ([`dmsim::CostSnapshot::narrow_saved_bytes`]).
    pub narrow_labels: bool,
    /// The raw-`u16` tier activates when every live label word is below
    /// this bound (default `2^16`, the widest the tier can represent;
    /// tests lower it to force the dictionary tier on small graphs).
    pub narrow_u16_max: u64,
    /// The dictionary tier builds/keeps a dense-rank dictionary when the
    /// global surviving-label count is below this bound (default `2^16`;
    /// a build-cost heuristic — dictionary codes themselves are varint,
    /// not limited to 16 bits).
    pub narrow_dict_max: u64,
    /// The tier selected for the *current* iteration's exchanges. Runtime
    /// state set by the engine's probe (see `lacc_core`'s narrow planner),
    /// not a user-facing knob: leave it at the default
    /// ([`dmsim::NarrowSpec::NATIVE`]) when calling primitives directly.
    pub narrow: dmsim::NarrowSpec,
}

impl Default for DistOpts {
    fn default() -> Self {
        // The optimized LACC configuration: sparse all-to-all (hypercube
        // metadata exchange), hot-rank broadcasts, and the full
        // sender-side compaction stack.
        DistOpts {
            alltoall: AllToAll::Sparse,
            hot_bcast: true,
            hot_threshold: 4.0,
            kernel_threads: 1,
            spmv_threshold: 0.5,
            dedup_requests: true,
            combine_assigns: true,
            compress_ids: true,
            compress_bitmap_density: 1.0 / 16.0,
            dedup_hash_threshold: 2048,
            combine_in_flight: true,
            fuse_starcheck: true,
            compress_values: true,
            overlap: true,
            overlap_dispatch: false,
            narrow_labels: true,
            narrow_u16_max: 1 << 16,
            narrow_dict_max: 1 << 16,
            narrow: dmsim::NarrowSpec::NATIVE,
        }
    }
}

impl DistOpts {
    /// The unoptimized baseline: MPI_Alltoallv-style pairwise exchange, no
    /// broadcast fallback — what §V-B says stopped scaling past 1024
    /// ranks — and no sender-side compaction.
    pub fn naive() -> Self {
        DistOpts {
            alltoall: AllToAll::Pairwise,
            hot_bcast: false,
            hot_threshold: f64::INFINITY,
            dedup_requests: false,
            combine_assigns: false,
            compress_ids: false,
            combine_in_flight: false,
            fuse_starcheck: false,
            compress_values: false,
            overlap: false,
            narrow_labels: false,
            ..DistOpts::default()
        }
    }

    /// The fully optimized configuration (an explicit alias of `Default`):
    /// sparse all-to-all, hot-rank broadcasts, all sender-side compaction
    /// flags, and compute/communication overlap on.
    pub fn optimized() -> Self {
        DistOpts::default()
    }
}

/// Whether the adaptive [`dist_mxv`] dispatch takes the SpMV (dense,
/// column-scan) execution at this measured global fill.
///
/// The base rule is the paper's: SpMV at `fill ≥ spmv_threshold`. With
/// both [`DistOpts::overlap`] and [`DistOpts::overlap_dispatch`] on, the
/// effective threshold is halved: SpMV's one bulk column allgather is
/// posted ahead of a long streaming multiply, so most of its exchange
/// cost is hideable (`hideable_s` ≈ the β transfer), while SpMSpV's
/// smaller, irregular exchanges leave little compute to hide behind —
/// overlap credit shifts the break-even point toward SpMV.
pub fn spmv_wins(fill: f64, opts: &DistOpts) -> bool {
    let threshold = if opts.overlap && opts.overlap_dispatch {
        opts.spmv_threshold * 0.5
    } else {
        opts.spmv_threshold
    };
    fill >= threshold
}

/// Allgathers each rank's value chunk, re-encoding the stream under an
/// active narrowing spec (raw `Vec<T>` otherwise — byte-identical to the
/// legacy exchange). The framed ring charges β at the legacy chunk word
/// count, so `words_sent` and the modeled clock are identical with
/// narrowing on or off; savings (charged against the raw chunk bytes,
/// once per ring hop the block travels) show up only in `bytes_sent`.
/// Decoding happens inside the posted operation, so the handle yields
/// per-rank chunks either way.
fn allgather_chunks_narrow<T>(
    comm: &mut Comm,
    group: &Group,
    local: Vec<T>,
    opts: &DistOpts,
) -> CommHandle<Vec<Vec<T>>>
where
    T: NarrowVal,
{
    let spec = opts.narrow;
    if !spec.active() {
        return comm.post(opts.overlap, move |c| c.allgatherv(group, local));
    }
    let hops = group.size().saturating_sub(1) as u64;
    comm.post(opts.overlap, move |c| {
        let dict = c.narrow_dict();
        let bytes = T::encode_chunk(&local, spec, dict.as_deref());
        c.note_narrow_saved(bytes_of::<T>(local.len()).saturating_sub(bytes.len() as u64) * hops);
        c.charge_compute(local.len() as u64 + 1);
        let gathered = c.allgatherv_framed(
            group,
            FramedBlock {
                legacy_words: words_of::<T>(local.len()),
                items: local.len() as u64,
                bytes,
            },
        );
        gathered
            .into_iter()
            .map(|b| T::decode_chunk(&b, dict.as_deref()))
            .collect()
    })
}

/// [`allgather_chunks_narrow`] over sorted sparse entries: each rank's
/// `(id, value)` list ships as one frame — varint count, delta-encoded id
/// stream, narrowed value stream — under an active spec, or as the legacy
/// raw tuple vector otherwise. Same framed-ring charging contract as
/// [`allgather_chunks_narrow`].
fn allgather_entries_narrow<T, I>(
    comm: &mut Comm,
    group: &Group,
    entries: Vec<(I, T)>,
    opts: &DistOpts,
) -> CommHandle<Vec<Vec<(I, T)>>>
where
    T: NarrowVal,
    I: Idx + WireWord,
{
    let spec = opts.narrow;
    if !spec.active() {
        return comm.post(opts.overlap, move |c| c.allgatherv(group, entries));
    }
    let hops = group.size().saturating_sub(1) as u64;
    comm.post(opts.overlap, move |c| {
        let dict = c.narrow_dict();
        let frame = encode_entry_frame(&entries, spec, dict.as_deref());
        c.note_narrow_saved(
            bytes_of::<(I, T)>(entries.len()).saturating_sub(frame.len() as u64) * hops,
        );
        c.charge_compute(entries.len() as u64 + 1);
        let gathered = c.allgatherv_framed(
            group,
            FramedBlock {
                legacy_words: words_of::<(I, T)>(entries.len()),
                items: entries.len() as u64,
                bytes: frame,
            },
        );
        gathered
            .into_iter()
            .map(|b| decode_entry_frame::<T, I>(&b, dict.as_deref()))
            .collect()
    })
}

/// One narrowed sparse-entry frame: varint id-stream length, the
/// delta-encoded (possibly dictionary-ranked) id stream, then the
/// narrowed value stream. Requires ids sorted ascending.
fn encode_entry_frame<T, I>(
    entries: &[(I, T)],
    spec: NarrowSpec,
    dict: Option<&dmsim::NarrowDict>,
) -> Vec<u8>
where
    T: NarrowVal,
    I: Idx + WireWord,
{
    debug_assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0), "ids sorted");
    let ids: Vec<I> = entries.iter().map(|&(g, _)| g).collect();
    let (id_bytes, _) = dmsim::wire::encode_keys_narrow::<I>(&ids, spec, dict);
    let vals: Vec<T> = entries.iter().map(|&(_, v)| v).collect();
    let val_bytes = T::encode_chunk(&vals, spec, dict);
    let mut frame = Vec::with_capacity(10 + id_bytes.len() + val_bytes.len());
    dmsim::wire::push_varint(&mut frame, id_bytes.len() as u64);
    frame.extend_from_slice(&id_bytes);
    frame.extend_from_slice(&val_bytes);
    frame
}

/// Decodes a frame produced by [`encode_entry_frame`].
fn decode_entry_frame<T, I>(bytes: &[u8], dict: Option<&dmsim::NarrowDict>) -> Vec<(I, T)>
where
    T: NarrowVal,
    I: Idx + WireWord,
{
    if bytes.is_empty() {
        // A sparse exchange slot whose sender was gated off (items == 0).
        return Vec::new();
    }
    let mut pos = 0usize;
    let id_len = dmsim::wire::read_varint(bytes, &mut pos) as usize;
    let ids = dmsim::wire::decode_keys_narrow::<I>(&bytes[pos..pos + id_len], dict);
    let vals = T::decode_chunk(&bytes[pos + id_len..], dict);
    debug_assert_eq!(ids.len(), vals.len(), "id/value frame halves misaligned");
    ids.into_iter().zip(vals).collect()
}

/// A mask aligned with the output vector's distribution.
#[derive(Clone, Copy)]
pub enum DistMask<'a> {
    /// No masking.
    None,
    /// Keep where `true`.
    Keep(&'a DistVec<bool>),
    /// Keep where `false` (`GrB_SCMP`).
    Complement(&'a DistVec<bool>),
}

impl DistMask<'_> {
    fn allows(&self, g: Vid) -> bool {
        match self {
            DistMask::None => true,
            DistMask::Keep(m) => m.get_local(g),
            DistMask::Complement(m) => !m.get_local(g),
        }
    }
}

/// Statistics from one [`dist_extract`] call (Figure 3's data).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Requests this rank received and answered point-to-point (after
    /// senders deduped, when [`DistOpts::dedup_requests`] is on).
    pub received_requests: u64,
    /// Whether this rank took the broadcast fallback.
    pub did_broadcast: bool,
    /// 8-byte words this rank kept off the wire by request dedup (ids out
    /// plus replies back, relative to the naive all-to-all; hot-broadcast
    /// buckets excluded). Zero when `dedup_requests` is off.
    pub dedup_saved_words: u64,
    /// Words saved by delta/bitmap encoding of the request id streams.
    /// Zero when `compress_ids` is off.
    pub compress_saved_words: u64,
    /// Words saved by run-length encoding the reply value streams. Zero
    /// when `compress_values` is off.
    pub value_saved_words: u64,
}

/// Statistics from one [`dist_assign`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AssignStats {
    /// Updates this rank received (after senders pre-combined, when
    /// [`DistOpts::combine_assigns`] is on).
    pub received_updates: u64,
    /// 8-byte words this rank kept off the wire by monoid pre-combining.
    /// Zero when `combine_assigns` is off.
    pub combine_saved_words: u64,
    /// Words saved by id compression of the update exchange. Zero when
    /// `compress_ids` is off.
    pub compress_saved_words: u64,
    /// Words saved by run-length encoding the update value streams. Zero
    /// when `compress_values` is off.
    pub value_saved_words: u64,
}

/// Scatters locally produced `(global row, value)` results to their layout
/// owners through a world-wide all-to-all, merging duplicates through the
/// monoid and applying the mask owner-side. The reduce phase of the
/// cyclic-layout `mxv` paths.
fn scatter_merge_to_owners<T, M, I>(
    comm: &mut Comm,
    layout: VecLayout,
    produced: Vec<(I, T)>,
    mask: DistMask<'_>,
    monoid: M,
    opts: &DistOpts,
) -> DistSpVec<T, I>
where
    T: Copy + Send + 'static,
    M: Monoid<T>,
    I: Idx,
{
    let world = comm.world();
    let buckets = layout.bucket_by_owner(comm, produced.into_iter());
    let buckets = buckets.into_iter().map(PooledBuf::detach).collect();
    let incoming = comm.alltoallv(&world, buckets, opts.alltoall);
    let mut merged: HashMap<I, T> = HashMap::new();
    let mut nops = 1u64;
    for part in incoming {
        // Adopt each incoming part so its allocation recycles on drop.
        let part = comm.adopt_buf(part);
        nops += part.len() as u64;
        for &(g, v) in part.iter() {
            merged
                .entry(g)
                .and_modify(|acc| *acc = monoid.combine(*acc, v))
                .or_insert(v);
        }
    }
    comm.charge_compute(nops);
    let entries: Vec<(I, T)> = merged
        .into_iter()
        .filter(|&(g, _)| mask.allows(g.idx()))
        .collect();
    DistSpVec::from_local_entries(layout, comm.rank(), entries)
}

/// Cyclic-layout SpMV/SpMSpV: the vector is not grid-aligned, so the
/// gather phase is a world-wide allgather (each rank reassembles its
/// column block from all chunks) and the reduce phase routes results
/// straight to their cyclic owners. This is the communication price §VII
/// anticipates paying for the better `extract`/`assign` balance.
fn dist_mxv_cyclic<T, M, I>(
    comm: &mut Comm,
    a: &DistMat<I>,
    x_dense: Option<&DistVec<T>>,
    x_sparse: Option<&DistSpVec<T, I>>,
    mask: DistMask<'_>,
    monoid: M,
    opts: &DistOpts,
) -> DistSpVec<T, I>
where
    T: Copy + Send + 'static,
    M: Monoid<T>,
    I: Idx,
{
    let layout = x_dense
        .map(|x| x.layout())
        .or(x_sparse.map(|x| x.layout()))
        .expect("one input");
    let world = comm.world();
    let (cs, ce) = a.col_range();
    let (rs, re) = a.row_range();
    let h = re - rs;
    let mut acc = vec![monoid.identity(); h];
    let mut is_touched = vec![false; h];
    let mut touched: Vec<usize> = Vec::new();
    let mut ops = 1u64;
    // Both gathers are posted non-blocking: the column sweep consumes
    // chunks as they stream in, so its charge hides the transfer tail
    // exactly as in the blocked-layout paths.
    match (x_dense, x_sparse) {
        (Some(x), None) => {
            let gh = comm.post(opts.overlap, |c| c.allgatherv(&world, x.local().to_vec()));
            let chunks = gh.peek();
            for g in cs..ce {
                let o = layout.owner_of(g);
                let xv = chunks[o][layout.offset_of(o, g)];
                let rows = a.local().col(g - cs);
                for &lr in rows {
                    let lr = lr.idx();
                    if !is_touched[lr] {
                        is_touched[lr] = true;
                        touched.push(lr);
                    }
                    acc[lr] = monoid.combine(acc[lr], xv);
                }
                ops += rows.len() as u64 + 1;
            }
            comm.charge_compute(ops);
            gh.wait(comm);
        }
        (None, Some(x)) => {
            let gh = comm.post(opts.overlap, |c| c.allgatherv(&world, x.entries().to_vec()));
            for &(g, xv) in gh.peek().iter().flatten() {
                let g = g.idx();
                if g < cs || g >= ce {
                    continue;
                }
                let rows = a.local().col(g - cs);
                for &lr in rows {
                    let lr = lr.idx();
                    if !is_touched[lr] {
                        is_touched[lr] = true;
                        touched.push(lr);
                    }
                    acc[lr] = monoid.combine(acc[lr], xv);
                }
                ops += rows.len() as u64 + 1;
            }
            comm.charge_compute(ops);
            gh.wait(comm);
        }
        _ => unreachable!("exactly one input"),
    }
    touched.sort_unstable();
    let produced: Vec<(I, T)> = touched
        .into_iter()
        .map(|lr| (I::from_usize(rs + lr), acc[lr]))
        .collect();
    scatter_merge_to_owners(comm, layout, produced, mask, monoid, opts)
}

/// Phase-2 local multiply for the SpMV-style paths: folds `x_block[j]`
/// into every stored row of the local block. With `threads <= 1` this is
/// the serial DCSC column sweep; otherwise rows are split across the
/// kernel pool via the row mirror. A mirror row's columns are ascending —
/// the same order the column sweep combines them in — so the two are
/// bit-identical for any associative monoid. When `present` is given,
/// only columns flagged there contribute (the densified-sparse-input case
/// of [`dist_mxv`]).
fn local_multiply_block<T, M, I>(
    local: &Dcsc<I>,
    mirror: &CsrMirror<I>,
    x_block: &[T],
    present: Option<&[bool]>,
    monoid: M,
    threads: usize,
) -> (Vec<T>, Vec<bool>, u64)
where
    T: Copy + Send + Sync,
    M: Monoid<T>,
    I: Idx,
{
    let h = local.nrows();
    let mut acc = vec![monoid.identity(); h];
    let mut touched = vec![false; h];
    if threads <= 1 {
        let mut ops: u64 = 0;
        for (lc, rows) in local.nonempty_cols() {
            if let Some(pr) = present {
                if !pr[lc] {
                    continue;
                }
            }
            let xv = x_block[lc];
            for &lr in rows {
                let lr = lr.idx();
                acc[lr] = monoid.combine(acc[lr], xv);
                touched[lr] = true;
            }
            ops += rows.len() as u64;
        }
        return (acc, touched, ops);
    }
    let pool = kernel_pool(threads);
    let chunk = h.div_ceil(pool.current_num_threads()).max(1);
    let mut chunk_ops = vec![0u64; h.div_ceil(chunk)];
    pool.scope(|s| {
        for (((k, ac), tc), co) in acc
            .chunks_mut(chunk)
            .enumerate()
            .zip(touched.chunks_mut(chunk))
            .zip(chunk_ops.iter_mut())
        {
            let lo = k * chunk;
            s.spawn(move || {
                let mut ops = 0u64;
                for (o, (a_slot, t_slot)) in ac.iter_mut().zip(tc.iter_mut()).enumerate() {
                    for &j in mirror.row(lo + o) {
                        let j = j.idx();
                        if let Some(pr) = present {
                            if !pr[j] {
                                continue;
                            }
                        }
                        *a_slot = monoid.combine(*a_slot, x_block[j]);
                        *t_slot = true;
                        ops += 1;
                    }
                }
                *co = ops;
            });
        }
    });
    (acc, touched, chunk_ops.iter().sum())
}

/// Phase-2 local multiply for the SpMSpV-style paths: per-entry scatter of
/// the gathered input through DCSC column lookups.
///
/// With `threads > 1` this uses the same merge-free owner-partitioned
/// scheme as [`crate::serial::mxv_sparse_par`]: the block's row space is
/// split into one contiguous partition per worker, scanners expand their
/// contiguous slice of the gathered entries into `(row, value)`
/// contributions binned by owning partition, and each owner folds its bins
/// in scanner order into a disjoint slice of one shared accumulator. No
/// cross-thread merge phase ever re-reads the full row space — the step
/// that made the old chunk-then-merge scheme memory-bound. Per row the
/// contributions arrive in gathered order (scanner slices are contiguous),
/// so the fold is the serial fold verbatim: bit-identical for any monoid.
///
/// Returns `(acc, touched rows, op count)`; the serial path reports
/// `touched` in first-touch order and the partitioned path in ascending
/// order — callers sort. The op count charges the expansion exactly as the
/// serial sweep does, so the modeled cost is thread-count-independent.
fn local_multiply_entries<T, M, I>(
    local: &Dcsc<I>,
    cs: usize,
    gathered: &[(I, T)],
    monoid: M,
    threads: usize,
) -> (Vec<T>, Vec<Vid>, u64)
where
    T: Copy + Send + Sync,
    M: Monoid<T>,
    I: Idx,
{
    let h = local.nrows();
    let mut ops: u64 = 1;
    if threads <= 1 || gathered.len() < 2 || h == 0 {
        let mut acc = vec![monoid.identity(); h];
        let mut is_touched = vec![false; h];
        let mut touched: Vec<Vid> = Vec::new();
        for &(gc, xv) in gathered {
            let rows = local.col(gc.idx() - cs);
            for &lr in rows {
                let lr = lr.idx();
                if !is_touched[lr] {
                    is_touched[lr] = true;
                    touched.push(lr);
                }
                acc[lr] = monoid.combine(acc[lr], xv);
            }
            ops += rows.len() as u64 + 1;
        }
        return (acc, touched, ops);
    }
    let pool = kernel_pool(threads);
    let nt = pool.current_num_threads().max(1);
    let part = h.div_ceil(nt).max(1);
    let nparts = h.div_ceil(part);
    let chunk = gathered.len().div_ceil(nt).max(1);
    let nscan = gathered.chunks(chunk).len();

    // Phase 1: scanners expand contiguous entry slices, binning row
    // contributions by owning partition. `bins[s][k]` holds scanner s's
    // contributions to partition k, in gathered order.
    let mut bins: Vec<Vec<Vec<(I, T)>>> = (0..nscan).map(|_| vec![Vec::new(); nparts]).collect();
    let mut scan_ops = vec![0u64; nscan];
    pool.scope(|s| {
        for ((b, es), so) in bins
            .iter_mut()
            .zip(gathered.chunks(chunk))
            .zip(scan_ops.iter_mut())
        {
            s.spawn(move || {
                let mut ops = 0u64;
                for &(gc, xv) in es {
                    let rows = local.col(gc.idx() - cs);
                    for &lr in rows {
                        b[lr.idx() / part].push((lr, xv));
                    }
                    ops += rows.len() as u64 + 1;
                }
                *so = ops;
            });
        }
    });
    ops += scan_ops.iter().sum::<u64>();

    // Phase 2: each owner folds its bins — scanner order restores gathered
    // order per row — into its disjoint accumulator slice, then sorts its
    // own touched list.
    let mut acc = vec![monoid.identity(); h];
    let mut is_touched = vec![false; h];
    let mut owner_touched: Vec<Vec<Vid>> = vec![Vec::new(); nparts];
    let bins = &bins;
    pool.scope(|s| {
        for (((k, ac), tc), tk) in acc
            .chunks_mut(part)
            .enumerate()
            .zip(is_touched.chunks_mut(part))
            .zip(owner_touched.iter_mut())
        {
            let lo = k * part;
            s.spawn(move || {
                for sb in bins {
                    for &(lr, xv) in &sb[k] {
                        let li = lr.idx() - lo;
                        if !tc[li] {
                            tc[li] = true;
                            tk.push(lr.idx());
                        }
                        ac[li] = monoid.combine(ac[li], xv);
                    }
                }
                tk.sort_unstable();
            });
        }
    });

    // Phase 3: partitions cover ascending row ranges, so concatenation is
    // globally sorted.
    let touched: Vec<Vid> = owner_touched.concat();
    (acc, touched, ops)
}

/// Phases 3–4 shared by the SpMSpV-style paths ([`dist_mxv_sparse`] and
/// the dense-execution branch of [`dist_mxv`]): route the touched partial
/// results to their subchunk owners within the processor row (irregular
/// all-to-all + monoid merge), then the transpose exchange to the layout
/// owner, applying the mask owner-side.
#[allow(clippy::too_many_arguments)] // internal seam between two mxv phases
fn spmspv_reduce_and_transpose<T, M, I>(
    comm: &mut Comm,
    a: &DistMat<I>,
    layout: VecLayout,
    acc: &[T],
    mut touched: Vec<Vid>,
    mask: DistMask<'_>,
    monoid: M,
    opts: &DistOpts,
) -> DistSpVec<T, I>
where
    T: NarrowVal,
    M: Monoid<T>,
    I: Idx + WireWord,
{
    let me = comm.rank();
    let grid = a.grid();
    let (i, j) = grid.coords_of(me);
    let pc = grid.cols();
    let (rs, _re) = a.row_range();
    let row_group = grid.row_group(comm);
    let mut buckets: Vec<PooledBuf<(I, T)>> = (0..pc).map(|_| comm.pooled_buf()).collect();
    touched.sort_unstable();
    for &lr in &touched {
        let g = rs + lr;
        let c = layout.chunk_containing(g);
        debug_assert!(c >= i * pc && c < (i + 1) * pc);
        buckets[c - i * pc].push((I::from_usize(g), acc[lr]));
    }
    let buckets: Vec<Vec<(I, T)>> = buckets.into_iter().map(PooledBuf::detach).collect();
    // Under an active narrowing spec the per-destination buckets ship as
    // entry frames (ids are pushed in sorted `touched` order, so each
    // bucket's id stream is monotone); the legacy tuple exchange is
    // byte-identical with narrowing off. (The later transpose exchange
    // stays raw: its HashMap-order entries have no sorted id stream.)
    let mut merged: HashMap<I, T> = HashMap::new();
    let mut merge_ops = 0u64;
    if opts.narrow.active() {
        let dict = comm.narrow_dict();
        let mut frames: Vec<FramedBlock> = Vec::with_capacity(pc);
        for b in &buckets {
            let frame = encode_entry_frame(b, opts.narrow, dict.as_deref());
            comm.note_narrow_saved(bytes_of::<(I, T)>(b.len()).saturating_sub(frame.len() as u64));
            frames.push(FramedBlock {
                legacy_words: words_of::<(I, T)>(b.len()),
                items: b.len() as u64,
                bytes: frame,
            });
        }
        comm.charge_compute(buckets.iter().map(|b| b.len() as u64).sum::<u64>() + 1);
        for bytes in comm.alltoallv_framed(&row_group, frames, opts.alltoall) {
            let part = decode_entry_frame::<T, I>(&bytes, dict.as_deref());
            merge_ops += part.len() as u64;
            for (g, v) in part {
                merged
                    .entry(g)
                    .and_modify(|acc| *acc = monoid.combine(*acc, v))
                    .or_insert(v);
            }
        }
    } else {
        let incoming = comm.alltoallv(&row_group, buckets, opts.alltoall);
        for part in incoming {
            let part = comm.adopt_buf(part);
            merge_ops += part.len() as u64;
            for &(g, v) in part.iter() {
                merged
                    .entry(g)
                    .and_modify(|acc| *acc = monoid.combine(*acc, v))
                    .or_insert(v);
            }
        }
    }
    comm.charge_compute(merge_ops);

    let held_chunk = i * pc + j;
    let owner = layout.rank_of_chunk(held_chunk);
    let my_chunk = layout.chunk_of_rank(me);
    let holder = grid.rank_of(my_chunk / pc, my_chunk % pc);
    let to_send: Vec<(I, T)> = merged.into_iter().collect();
    let mine: Vec<(I, T)> = if owner == me {
        to_send
    } else {
        comm.send_vec(owner, to_send);
        comm.recv(holder)
    };

    let entries: Vec<(I, T)> = mine
        .into_iter()
        .filter(|&(g, _)| mask.allows(g.idx()))
        .collect();
    comm.charge_compute(entries.len() as u64);
    DistSpVec::from_local_entries(layout, me, entries)
}

/// Distributed SpMV: `y = A ⊕.2nd x` with dense input `x`, masked output.
pub fn dist_mxv_dense<T, M, I>(
    comm: &mut Comm,
    a: &DistMat<I>,
    x: &DistVec<T>,
    mask: DistMask<'_>,
    monoid: M,
    opts: &DistOpts,
) -> DistSpVec<T, I>
where
    T: NarrowVal,
    M: Monoid<T>,
    I: Idx + WireWord,
{
    let span = comm.span_open(SpanKind::Mxv);
    let out = mxv_dense_impl(comm, a, x, mask, monoid, opts);
    comm.span_close(span);
    out
}

/// [`dist_mxv_dense`] posted as a non-blocking operation (see
/// [`dist_mxv_start`] for the contract).
pub fn dist_mxv_dense_start<T, M, I>(
    comm: &mut Comm,
    a: &DistMat<I>,
    x: &DistVec<T>,
    mask: DistMask<'_>,
    monoid: M,
    opts: &DistOpts,
) -> CommHandle<DistSpVec<T, I>>
where
    T: NarrowVal,
    M: Monoid<T>,
    I: Idx + WireWord,
{
    comm.post(opts.overlap, |c| {
        let span = c.span_open(SpanKind::Mxv);
        let out = mxv_dense_impl(c, a, x, mask, monoid, opts);
        c.span_close(span);
        out
    })
}

fn mxv_dense_impl<T, M, I>(
    comm: &mut Comm,
    a: &DistMat<I>,
    x: &DistVec<T>,
    mask: DistMask<'_>,
    monoid: M,
    opts: &DistOpts,
) -> DistSpVec<T, I>
where
    T: NarrowVal,
    M: Monoid<T>,
    I: Idx + WireWord,
{
    let grid = a.grid();
    let layout = x.layout();
    assert_eq!(layout.len(), a.n(), "matrix/vector dimension mismatch");
    if layout.distribution() == Distribution::Cyclic {
        return dist_mxv_cyclic(comm, a, Some(x), None, mask, monoid, opts);
    }
    let me = comm.rank();
    let (i, j) = grid.coords_of(me);
    let (pr, pc, p) = (grid.rows(), grid.cols(), grid.size());

    // Phase 1: assemble the column-block segment of x within the processor
    // column (group index within col_group equals grid row, so blocks
    // concatenate in global order). Posted non-blocking: the multiply
    // consumes gathered chunks as they stream in, so its charge lands
    // between the post and the wait and hides the transfer tail. Under an
    // active narrowing spec the chunks ship re-encoded (u16/dictionary).
    let col_group = grid.col_group(comm);
    let gh = allgather_chunks_narrow(comm, &col_group, x.local().to_vec(), opts);
    let x_block: Vec<T> = gh.peek().concat();
    debug_assert_eq!(x_block.len(), a.col_range().1 - a.col_range().0);

    // Phase 2: local block multiply into a row-block accumulator
    // (row-split across the kernel pool when `opts.kernel_threads > 1`).
    let (rs, _re) = a.row_range();
    let (acc, touched, ops) = local_multiply_block(
        a.local(),
        a.row_mirror(),
        &x_block,
        None,
        monoid,
        opts.kernel_threads,
    );
    comm.charge_compute(ops + x_block.len() as u64);
    gh.wait(comm);

    // Phase 3: reduce-scatter within the processor row. Subchunk k of this
    // row block is global chunk i·pc + k, destined for row-group member k.
    let row_group = grid.row_group(comm);
    let parts: Vec<Vec<(T, bool)>> = (0..pc)
        .map(|k| {
            let (s, e) = block_range(a.n(), p, i * pc + k);
            (s..e).map(|g| (acc[g - rs], touched[g - rs])).collect()
        })
        .collect();
    let reduced = comm.reduce_scatter(&row_group, parts, |aa: &mut (T, bool), bb: (T, bool)| {
        if bb.1 {
            if aa.1 {
                aa.0 = monoid.combine(aa.0, bb.0);
            } else {
                *aa = bb;
            }
        }
    });

    // Phase 4: transpose exchange — the reduced chunk i·pc + j belongs to
    // rank (j, i) under the column-major vector layout.
    let held_chunk = i * pc + j;
    let owner = layout.rank_of_chunk(held_chunk);
    let my_chunk = layout.chunk_of_rank(me);
    let holder = grid.rank_of(my_chunk / pc, my_chunk % pc);
    let mine: Vec<(T, bool)> = if owner == me {
        debug_assert_eq!(holder, me);
        reduced
    } else {
        comm.send_vec(owner, reduced);
        comm.recv(holder)
    };
    let _ = pr;

    // Owner-side: keep touched entries passing the mask.
    let (s, _e) = layout.range_of_rank(me);
    let entries: Vec<(I, T)> = mine
        .into_iter()
        .enumerate()
        .filter(|(_, (_, t))| *t)
        .map(|(off, (v, _))| (s + off, v))
        .filter(|&(g, _)| mask.allows(g))
        .map(|(g, v)| (I::from_usize(g), v))
        .collect();
    comm.charge_compute(entries.len() as u64);
    DistSpVec::from_local_entries(layout, me, entries)
}

/// Distributed SpMSpV: `y = A ⊕.2nd x` with sparse input `x`.
pub fn dist_mxv_sparse<T, M, I>(
    comm: &mut Comm,
    a: &DistMat<I>,
    x: &DistSpVec<T, I>,
    mask: DistMask<'_>,
    monoid: M,
    opts: &DistOpts,
) -> DistSpVec<T, I>
where
    T: NarrowVal,
    M: Monoid<T>,
    I: Idx + WireWord,
{
    let span = comm.span_open(SpanKind::Mxv);
    let out = mxv_sparse_impl(comm, a, x, mask, monoid, opts);
    comm.span_close(span);
    out
}

fn mxv_sparse_impl<T, M, I>(
    comm: &mut Comm,
    a: &DistMat<I>,
    x: &DistSpVec<T, I>,
    mask: DistMask<'_>,
    monoid: M,
    opts: &DistOpts,
) -> DistSpVec<T, I>
where
    T: NarrowVal,
    M: Monoid<T>,
    I: Idx + WireWord,
{
    let grid = a.grid();
    let layout = x.layout();
    assert_eq!(layout.len(), a.n(), "matrix/vector dimension mismatch");
    if layout.distribution() == Distribution::Cyclic {
        return dist_mxv_cyclic(comm, a, None, Some(x), mask, monoid, opts);
    }

    // Phase 1: sparse allgather of x entries within the processor column,
    // posted non-blocking so the per-entry multiply streams behind it.
    // Under an active narrowing spec each rank's entries ship as one
    // id-stream + narrowed-value frame.
    let col_group = grid.col_group(comm);
    let gh = allgather_entries_narrow(comm, &col_group, x.entries().to_vec(), opts);
    let gathered: Vec<(I, T)> = gh.peek().iter().flatten().copied().collect();

    // Phase 2: local multiply through the DCSC block (owner-partitioned
    // across the kernel pool when `opts.kernel_threads > 1`).
    let (cs, _ce) = a.col_range();
    let (acc, touched, ops) =
        local_multiply_entries(a.local(), cs, &gathered, monoid, opts.kernel_threads);
    comm.charge_compute(ops);
    gh.wait(comm);

    // Phases 3–4: row-wise reduce + transpose exchange (the paper's SpMSpV
    // reduce phase).
    spmspv_reduce_and_transpose(comm, a, layout, &acc, touched, mask, monoid, opts)
}

/// Adaptive distributed `mxv` over a sparse input: measures the input's
/// global fill (`nvals/n`, one allreduce — every rank takes the same
/// branch) and dispatches between SpMV-style and SpMSpV-style *execution*
/// of the local multiply, mirroring the internal dispatch of the paper's
/// `GrB_mxv` (§V-A).
///
/// * fill ≥ [`DistOpts::spmv_threshold`] — the gathered entries are
///   densified into the column-block segment plus a presence bitmap, and
///   the local multiply scans the block's stored columns linearly (or
///   row-splits over the mirror when threaded) instead of binary-searching
///   the DCSC once per input entry.
/// * fill below the threshold — [`dist_mxv_sparse`]'s per-entry kernel.
///
/// Both branches produce **bit-identical** results (same gather, same
/// per-row combine order, same reduce/transpose phases), so the dispatch
/// is purely a performance choice; the proptests pin this down.
pub fn dist_mxv<T, M, I>(
    comm: &mut Comm,
    a: &DistMat<I>,
    x: &DistSpVec<T, I>,
    mask: DistMask<'_>,
    monoid: M,
    opts: &DistOpts,
) -> DistSpVec<T, I>
where
    T: NarrowVal,
    M: Monoid<T>,
    I: Idx + WireWord,
{
    // One Mxv span covers whichever execution branch runs (the sparse
    // branch goes through `mxv_sparse_impl` directly, not the public
    // wrapper, so the span is never doubled).
    let span = comm.span_open(SpanKind::Mxv);
    let out = mxv_adaptive_impl(comm, a, x, mask, monoid, opts);
    comm.span_close(span);
    out
}

/// [`dist_mxv`] posted as a non-blocking operation. The multiply runs
/// *now* — message pattern, charges and result are exactly those of the
/// blocking call — and the returned handle remembers how much of its
/// modeled cost was hideable exchange time (β transfer plus
/// synchronization waits; α posts and the local multiply are not
/// hideable). Local compute charged between this call and
/// [`dmsim::CommHandle::wait`] earns the clock a refund of up to that
/// amount when [`DistOpts::overlap`] is on; with it off the handle is
/// inert and `wait` returns the value unchanged. Either way the caller
/// gets a bit-identical vector.
pub fn dist_mxv_start<T, M, I>(
    comm: &mut Comm,
    a: &DistMat<I>,
    x: &DistSpVec<T, I>,
    mask: DistMask<'_>,
    monoid: M,
    opts: &DistOpts,
) -> CommHandle<DistSpVec<T, I>>
where
    T: NarrowVal,
    M: Monoid<T>,
    I: Idx + WireWord,
{
    comm.post(opts.overlap, |c| {
        let span = c.span_open(SpanKind::Mxv);
        let out = mxv_adaptive_impl(c, a, x, mask, monoid, opts);
        c.span_close(span);
        out
    })
}

fn mxv_adaptive_impl<T, M, I>(
    comm: &mut Comm,
    a: &DistMat<I>,
    x: &DistSpVec<T, I>,
    mask: DistMask<'_>,
    monoid: M,
    opts: &DistOpts,
) -> DistSpVec<T, I>
where
    T: NarrowVal,
    M: Monoid<T>,
    I: Idx + WireWord,
{
    let layout = x.layout();
    assert_eq!(layout.len(), a.n(), "matrix/vector dimension mismatch");
    let n = a.n();
    let fill = if n == 0 {
        0.0
    } else {
        x.global_nvals(comm) as f64 / n as f64
    };
    if layout.distribution() == Distribution::Cyclic || !spmv_wins(fill, opts) {
        return mxv_sparse_impl(comm, a, x, mask, monoid, opts);
    }

    // SpMV-style execution: same sparse allgather (posted, so the densify
    // and block multiply stream behind the transfer), then densify.
    let grid = a.grid();
    let col_group = grid.col_group(comm);
    let gh = allgather_entries_narrow(comm, &col_group, x.entries().to_vec(), opts);
    let gathered: Vec<(I, T)> = gh.peek().iter().flatten().copied().collect();
    let (cs, ce) = a.col_range();
    let w = ce - cs;
    let mut x_block = vec![monoid.identity(); w];
    let mut present = vec![false; w];
    for &(g, v) in &gathered {
        x_block[g.idx() - cs] = v;
        present[g.idx() - cs] = true;
    }
    let (acc, touched_flags, ops) = local_multiply_block(
        a.local(),
        a.row_mirror(),
        &x_block,
        Some(&present),
        monoid,
        opts.kernel_threads,
    );
    comm.charge_compute(ops + w as u64 + gathered.len() as u64);
    gh.wait(comm);
    let touched: Vec<Vid> = touched_flags
        .iter()
        .enumerate()
        .filter(|&(_, &t)| t)
        .map(|(lr, _)| lr)
        .collect();
    spmspv_reduce_and_transpose(comm, a, layout, &acc, touched, mask, monoid, opts)
}

/// The owner-bucketing of one extract request list, computed once by
/// [`plan_requests`] and reusable across several [`dist_extract_planned`]
/// calls over vectors sharing the layout (LACC's starcheck issues two
/// back-to-back extracts with the identical grandparent request slice, so
/// the plan is built once).
///
/// With [`DistOpts::dedup_requests`] each per-owner wire list carries
/// every unique id once (sorted); `scatter` routes each reply back to all
/// of its originating request positions. With only
/// [`DistOpts::compress_ids`] the lists are sorted but keep duplicates;
/// with neither flag they preserve request order — every combination is
/// bit-identical to the unplanned exchange.
pub struct RequestPlan<I: Idx = Vid> {
    layout: VecLayout,
    n_requests: usize,
    /// Per-owner ids as they will cross the wire, at index width `I`.
    wire_ids: Vec<Vec<I>>,
    /// Per-owner `(index into wire_ids[o], original request position)`.
    scatter: Vec<Vec<(u32, u32)>>,
    /// Wire lists are sorted (dedup or compression was requested).
    sorted: bool,
    /// Wire lists are duplicate-free.
    deduped: bool,
}

impl<I: Idx> RequestPlan<I> {
    /// The layout the plan was built against.
    pub fn layout(&self) -> VecLayout {
        self.layout
    }

    /// Number of local requests the plan answers.
    pub fn n_requests(&self) -> usize {
        self.n_requests
    }

    /// Duplicate request ids this rank will *not* send, per owner.
    fn removed(&self, o: usize) -> usize {
        self.scatter[o].len() - self.wire_ids[o].len()
    }

    /// Total duplicate request ids collapsed by dedup on this rank.
    pub fn duplicates_removed(&self) -> usize {
        (0..self.wire_ids.len()).map(|o| self.removed(o)).sum()
    }
}

/// Buckets `requests` by owning rank under `layout` and (per
/// [`DistOpts::dedup_requests`] / [`DistOpts::compress_ids`]) sorts and
/// dedups each bucket, recording the reply scatter. Charged as local
/// compute; no communication happens here.
pub fn plan_requests<I: Idx>(
    comm: &mut Comm,
    layout: VecLayout,
    requests: &[I],
    opts: &DistOpts,
) -> RequestPlan<I> {
    let p = comm.size();
    assert!(
        requests.len() < u32::MAX as usize,
        "request list too long for the plan's u32 positions"
    );
    let sorted = opts.dedup_requests || opts.compress_ids;
    let mut pairs = layout.bucket_by_owner(
        comm,
        requests.iter().enumerate().map(|(pos, &g)| (g, pos as u32)),
    );
    let mut wire_ids: Vec<Vec<I>> = Vec::with_capacity(p);
    let mut scatter: Vec<Vec<(u32, u32)>> = Vec::with_capacity(p);
    let mut ops = requests.len() as u64 + 1;
    for bucket in pairs.iter_mut() {
        let k = bucket.len();
        if !sorted {
            // Naive path: request order on the wire, sequential scatter.
            wire_ids.push(bucket.iter().map(|&(g, _)| g).collect());
            scatter.push(
                bucket
                    .iter()
                    .enumerate()
                    .map(|(w, &(_, pos))| (w as u32, pos))
                    .collect(),
            );
            continue;
        }
        if opts.dedup_requests && k >= opts.dedup_hash_threshold {
            // Hash path: one linear pass collects unique ids, then only
            // those are sorted — wins when duplication is heavy.
            let mut uniq: HashMap<I, u32> = HashMap::with_capacity(k / 4);
            for &(g, _) in bucket.iter() {
                uniq.entry(g).or_insert(0);
            }
            let mut ids: Vec<I> = uniq.keys().copied().collect();
            ids.sort_unstable();
            for (w, &g) in ids.iter().enumerate() {
                *uniq.get_mut(&g).expect("id just inserted") = w as u32;
            }
            let sc: Vec<(u32, u32)> = bucket.iter().map(|&(g, pos)| (uniq[&g], pos)).collect();
            ops += 2 * k as u64 + ids.len() as u64;
            wire_ids.push(ids);
            scatter.push(sc);
        } else {
            // Sort path: sort the (id, position) pairs and walk the runs,
            // collapsing equal ids only when dedup is on (compression
            // alone needs sorted order but keeps duplicates).
            let mut b: Vec<(I, u32)> = bucket.to_vec();
            b.sort_unstable_by_key(|&(g, _)| g);
            let mut ids: Vec<I> = Vec::with_capacity(k);
            let mut sc: Vec<(u32, u32)> = Vec::with_capacity(k);
            for (g, pos) in b {
                let collapse = opts.dedup_requests && ids.last() == Some(&g);
                if !collapse {
                    ids.push(g);
                }
                sc.push((ids.len() as u32 - 1, pos));
            }
            ops += 2 * k as u64;
            wire_ids.push(ids);
            scatter.push(sc);
        }
    }
    comm.charge_compute(ops);
    RequestPlan {
        layout,
        n_requests: requests.len(),
        wire_ids,
        scatter,
        sorted,
        deduped: opts.dedup_requests,
    }
}

/// Distributed gather (`GrB_extract` by index list): returns
/// `src[requests[k]]` for each locally supplied request, in order.
///
/// Implements the paper's skew mitigation: per-owner request totals are
/// allreduced; owners whose incoming load exceeds `hot_threshold ×` their
/// chunk size broadcast their chunk instead of answering point-to-point
/// (then drop out of the all-to-all, which the sparse algorithm exploits).
/// On top of that, the sender-side compaction flags in [`DistOpts`] dedup
/// and compress what the all-to-all carries.
pub fn dist_extract<T, I>(
    comm: &mut Comm,
    src: &DistVec<T>,
    requests: &[I],
    opts: &DistOpts,
) -> (Vec<T>, ExtractStats)
where
    T: Copy + Send + WireWord + 'static,
    I: Idx + WireWord,
{
    let span = comm.span_open(SpanKind::Extract);
    let plan = plan_requests(comm, src.layout(), requests, opts);
    let out = extract_impl(comm, src, &plan, opts);
    comm.span_close(span);
    out
}

/// [`dist_extract`] posted as a non-blocking operation: plans and runs
/// the exchange *now* (identical messages, charges and results), and the
/// returned handle refunds hideable exchange time against local compute
/// charged before [`dmsim::CommHandle::wait`] when [`DistOpts::overlap`]
/// is on. See [`dist_mxv_start`] for the full contract.
pub fn dist_extract_start<T, I>(
    comm: &mut Comm,
    src: &DistVec<T>,
    requests: &[I],
    opts: &DistOpts,
) -> CommHandle<(Vec<T>, ExtractStats)>
where
    T: Copy + Send + WireWord + 'static,
    I: Idx + WireWord,
{
    comm.post(opts.overlap, |c| {
        let span = c.span_open(SpanKind::Extract);
        let plan = plan_requests(c, src.layout(), requests, opts);
        let out = extract_impl(c, src, &plan, opts);
        c.span_close(span);
        out
    })
}

/// [`dist_extract`] against a request plan built once with
/// [`plan_requests`] — callers issuing several extracts with the same
/// request list over same-layout vectors skip the repeated bucketing.
pub fn dist_extract_planned<T, I>(
    comm: &mut Comm,
    src: &DistVec<T>,
    plan: &RequestPlan<I>,
    opts: &DistOpts,
) -> (Vec<T>, ExtractStats)
where
    T: Copy + Send + WireWord + 'static,
    I: Idx + WireWord,
{
    let span = comm.span_open(SpanKind::Extract);
    let out = extract_impl(comm, src, plan, opts);
    comm.span_close(span);
    out
}

fn extract_impl<T, I>(
    comm: &mut Comm,
    src: &DistVec<T>,
    plan: &RequestPlan<I>,
    opts: &DistOpts,
) -> (Vec<T>, ExtractStats)
where
    T: Copy + Send + WireWord + 'static,
    I: Idx + WireWord,
{
    let layout = src.layout();
    assert_eq!(layout, plan.layout, "plan built for a different layout");
    let p = comm.size();
    let me = comm.rank();
    let world = comm.world();

    let mut results: Vec<Option<T>> = vec![None; plan.n_requests];
    let mut stats = ExtractStats::default();

    // Detect hot owners by global request totals — counted post-dedup,
    // i.e. by the traffic actually offered to each owner.
    let hot: Vec<bool> = if opts.hot_bcast && p > 1 {
        let my_counts: Vec<u64> = plan.wire_ids.iter().map(|v| v.len() as u64).collect();
        let totals = comm.allreduce_counted(&world, my_counts, p as u64, |a, b| {
            a.iter().zip(&b).map(|(x, y)| x + y).collect()
        });
        (0..p)
            .map(|o| totals[o] as f64 > opts.hot_threshold * (layout.local_len(o).max(1) as f64))
            .collect()
    } else {
        vec![false; p]
    };

    // Hot owners broadcast their chunk; requesters self-serve.
    for o in 0..p {
        if !hot[o] {
            continue;
        }
        let chunk = comm.bcast_vec(&world, o, (me == o).then(|| src.local().to_vec()));
        if me == o {
            stats.did_broadcast = true;
        }
        for &(w, pos) in &plan.scatter[o] {
            results[pos as usize] =
                Some(chunk[layout.offset_of(o, plan.wire_ids[o][w as usize].idx())]);
        }
        comm.charge_compute(plan.scatter[o].len() as u64 + 1);
    }

    // Dedup savings relative to the naive exchange: every collapsed
    // duplicate would have crossed the wire twice (id out, reply back) —
    // charged at the narrow id width actually on the wire.
    for (o, &is_hot) in hot.iter().enumerate() {
        if is_hot {
            continue;
        }
        let removed = plan.removed(o);
        stats.dedup_saved_words += words_of::<I>(removed) + words_of::<T>(removed);
    }

    // In-flight combining: request ids ride the combining hypercube as
    // delta-encoded key streams, merging cross-rank duplicates at the hop
    // where their routes first meet; replies scatter back along the
    // recorded reverse route. Keys stay at the narrow index width `I` —
    // the delta streams encode identically, but the pairwise fallbacks
    // and reply tuples are charged at `I`'s true size. Hot owners keep
    // the broadcast fallback and contribute empty key buckets.
    if opts.combine_in_flight {
        let key_bufs: Vec<Vec<I>> = (0..p)
            .map(|o| {
                if hot[o] {
                    Vec::new()
                } else {
                    plan.wire_ids[o].clone()
                }
            })
            .collect();
        let route = comm.combining_requests_narrow(&world, key_bufs, opts.narrow);
        stats.received_requests = route.delivered_keys().len() as u64;
        let values: Vec<T> = route
            .delivered_keys()
            .iter()
            .map(|&k| src.get_local(k.idx()))
            .collect();
        comm.charge_compute(stats.received_requests + 1);
        comm.note_words_saved(stats.dedup_saved_words);
        let reply = comm.combining_replies_narrow(
            &world,
            &route,
            &values,
            opts.compress_values,
            opts.narrow,
        );
        for (o, pairs) in reply.iter().enumerate() {
            if hot[o] {
                continue;
            }
            for &(w, pos) in &plan.scatter[o] {
                let key = plan.wire_ids[o][w as usize];
                let i = pairs
                    .binary_search_by_key(&key, |&(k, _)| k)
                    .expect("reply for every requested id");
                results[pos as usize] = Some(pairs[i].1);
            }
            comm.charge_compute(plan.scatter[o].len() as u64 + 1);
        }
        return (
            results
                .into_iter()
                .map(|r| r.expect("every request answered"))
                .collect(),
            stats,
        );
    }

    // Remaining requests go through the all-to-all — as raw id words, or
    // as delta/bitmap-encoded local offsets when compression is on (the
    // owner's offsets are monotone in the global id under both layouts,
    // and serving replies indexes the local slice directly).
    let compress = opts.compress_ids && plan.sorted;
    let replies: Vec<Vec<T>> = if compress {
        let mut send: Vec<Vec<u8>> = Vec::with_capacity(p);
        for (o, &is_hot) in hot.iter().enumerate() {
            if is_hot || plan.wire_ids[o].is_empty() {
                send.push(Vec::new());
                continue;
            }
            let offs: Vec<usize> = plan.wire_ids[o]
                .iter()
                .map(|&g| layout.offset_of(o, g.idx()))
                .collect();
            let enc = compact::encode_offsets(&offs, plan.deduped, opts.compress_bitmap_density);
            stats.compress_saved_words +=
                words_of::<I>(offs.len()).saturating_sub(words_of::<u8>(enc.len()));
            send.push(enc);
        }
        comm.charge_compute(plan.wire_ids.iter().map(|v| v.len() as u64).sum::<u64>() + 1);
        let incoming = comm.alltoallv(&world, send, opts.alltoall);
        incoming
            .into_iter()
            .map(|bytes| {
                let bytes = comm.adopt_buf(bytes);
                let offs = compact::decode_offsets(&bytes);
                stats.received_requests += offs.len() as u64;
                offs.iter().map(|&off| src.local()[off]).collect()
            })
            .collect()
    } else {
        let send: Vec<Vec<I>> = (0..p)
            .map(|o| {
                if hot[o] {
                    Vec::new()
                } else {
                    plan.wire_ids[o].clone()
                }
            })
            .collect();
        let incoming = comm.alltoallv(&world, send, opts.alltoall);
        incoming
            .into_iter()
            .map(|ids| {
                // Adopt the id list so its allocation recycles after the
                // reply is built.
                let ids = comm.adopt_buf(ids);
                stats.received_requests += ids.len() as u64;
                ids.iter().map(|&g| src.get_local(g.idx())).collect()
            })
            .collect()
    };
    comm.charge_compute(stats.received_requests + 1);
    // Reply values go back raw, or run-length encoded when value
    // compression is on (near convergence most replies repeat the same
    // few labels, so the streams collapse to a handful of runs).
    let reply_back: Vec<Vec<T>> = if opts.compress_values {
        let dict = comm.narrow_dict();
        let mut enc: Vec<FramedBlock> = Vec::with_capacity(p);
        let mut narrow_saved = 0u64;
        for r in &replies {
            let (e, saved) = compact::encode_values_narrow(r, opts.narrow, dict.as_deref());
            narrow_saved += saved;
            // Both the β charge and the value-compression stat are taken
            // at the legacy stream length (e.len() + saved), so neither
            // words_sent nor ExtractStats depends on the narrowing tier.
            let legacy_len = e.len() + saved as usize;
            stats.value_saved_words +=
                words_of::<T>(r.len()).saturating_sub(words_of::<u8>(legacy_len));
            enc.push(FramedBlock {
                legacy_words: words_of::<u8>(legacy_len),
                items: r.len() as u64,
                bytes: e,
            });
        }
        comm.note_narrow_saved(narrow_saved);
        comm.note_words_saved(
            stats.dedup_saved_words + stats.compress_saved_words + stats.value_saved_words,
        );
        let back = comm.alltoallv_framed(&world, enc, opts.alltoall);
        back.into_iter()
            .map(|bytes| compact::decode_values_narrow(&bytes, dict.as_deref()))
            .collect()
    } else {
        comm.note_words_saved(stats.dedup_saved_words + stats.compress_saved_words);
        comm.alltoallv(&world, replies, opts.alltoall)
    };
    for o in 0..p {
        if hot[o] {
            continue;
        }
        for &(w, pos) in &plan.scatter[o] {
            results[pos as usize] = Some(reply_back[o][w as usize]);
        }
    }
    (
        results
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect(),
        stats,
    )
}

/// A combining request route paid for once and replayed for several
/// extract phases against the same request list.
///
/// Starcheck issues two extracts with identical requests (grandparent,
/// then parent starness) separated by an assign. `FusedExtract` sends the
/// ids through the combining hypercube once ([`FusedExtract::begin`]) and
/// scatters each phase's replies back along the recorded reverse route
/// ([`FusedExtract::extract`]). Values are read at reply time, so a phase
/// observes assigns applied after `begin` — exactly the ordering the
/// unfused pair of extracts had. This path never takes the hot-rank
/// broadcast: the combining tree already collapses the duplicate traffic
/// that made owners hot. Keys stay at the plan's index width `I`.
pub struct FusedExtract<I: Idx = Vid> {
    route: CombineRoute<I>,
}

impl<I: Idx + WireWord> FusedExtract<I> {
    /// Sends the plan's per-owner request ids through the combining
    /// hypercube and records the route for later reply phases.
    pub fn begin(comm: &mut Comm, plan: &RequestPlan<I>) -> FusedExtract<I> {
        Self::begin_narrow(comm, plan, NarrowSpec::NATIVE)
    }

    /// [`FusedExtract::begin`] with a dynamic narrowing tier for the
    /// forward key streams (see [`DistOpts::narrow_labels`]).
    pub fn begin_narrow(
        comm: &mut Comm,
        plan: &RequestPlan<I>,
        spec: NarrowSpec,
    ) -> FusedExtract<I> {
        let world = comm.world();
        let key_bufs: Vec<Vec<I>> = plan.wire_ids.to_vec();
        let route = comm.combining_requests_narrow(&world, key_bufs, spec);
        FusedExtract { route }
    }

    /// Unique request ids the route delivered to this rank — what this
    /// rank serves per reply phase.
    pub fn received(&self) -> u64 {
        self.route.delivered_keys().len() as u64
    }

    /// One reply phase: serves the delivered ids from `src` as of *now*
    /// and returns `src[requests[k]]` for each planned request, in order.
    pub fn extract<T>(
        &self,
        comm: &mut Comm,
        src: &DistVec<T>,
        plan: &RequestPlan<I>,
        opts: &DistOpts,
    ) -> Vec<T>
    where
        T: Copy + Send + WireWord + 'static,
    {
        let span = comm.span_open(SpanKind::Extract);
        let world = comm.world();
        assert_eq!(
            src.layout(),
            plan.layout,
            "plan built for a different layout"
        );
        let values: Vec<T> = self
            .route
            .delivered_keys()
            .iter()
            .map(|&k| src.get_local(k.idx()))
            .collect();
        comm.charge_compute(values.len() as u64 + 1);
        let reply = comm.combining_replies_narrow(
            &world,
            &self.route,
            &values,
            opts.compress_values,
            opts.narrow,
        );
        let mut results: Vec<Option<T>> = vec![None; plan.n_requests];
        for (o, pairs) in reply.iter().enumerate() {
            for &(w, pos) in &plan.scatter[o] {
                let key = plan.wire_ids[o][w as usize];
                let i = pairs
                    .binary_search_by_key(&key, |&(k, _)| k)
                    .expect("reply for every requested id");
                results[pos as usize] = Some(pairs[i].1);
            }
        }
        comm.charge_compute(plan.n_requests as u64 + 1);
        comm.span_close(span);
        results
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }
}

/// Distributed scatter (`GrB_assign` by index list): applies
/// `dst[g] = v` for every locally supplied update `(g, v)`. Duplicate
/// targets (across all ranks) are resolved deterministically through the
/// monoid, mirroring [`crate::serial::assign`].
///
/// Returns the number of *locally owned* elements whose value changed
/// (callers allreduce this for the global convergence test) and the
/// per-rank [`AssignStats`].
pub fn dist_assign<T, M, I>(
    comm: &mut Comm,
    dst: &mut DistVec<T>,
    updates: &[(I, T)],
    monoid: M,
    opts: &DistOpts,
) -> (usize, AssignStats)
where
    T: Copy + Send + PartialEq + WireWord + 'static,
    M: Monoid<T>,
    I: Idx + WireWord,
{
    let span = comm.span_open(SpanKind::Assign);
    let out = assign_impl(comm, dst, updates, monoid, opts);
    comm.span_close(span);
    out
}

fn assign_impl<T, M, I>(
    comm: &mut Comm,
    dst: &mut DistVec<T>,
    updates: &[(I, T)],
    monoid: M,
    opts: &DistOpts,
) -> (usize, AssignStats)
where
    T: Copy + Send + PartialEq + WireWord + 'static,
    M: Monoid<T>,
    I: Idx + WireWord,
{
    let layout = dst.layout();
    let me = comm.rank();
    let world = comm.world();
    let mut stats = AssignStats::default();
    let raw = layout.bucket_by_owner(comm, updates.iter().copied());
    comm.charge_compute(updates.len() as u64 + 1);

    // Sender-side pre-combining: fold duplicate targets through the
    // monoid in arrival order — re-associating, never reordering, the
    // receiver's fold, so the result is bit-identical for associative
    // monoids — then sort by id. Compression alone sorts *stably*
    // (preserving per-target arrival order) so the offset stream is
    // monotone without changing what the receiver folds.
    let mut ops = 1u64;
    let buckets: Vec<Vec<(I, T)>> = raw
        .into_iter()
        .map(|b| {
            let b = b.detach();
            if opts.combine_assigns {
                let before = b.len();
                let mut m: HashMap<I, T> = HashMap::with_capacity(before.min(1024));
                for (g, v) in b {
                    m.entry(g)
                        .and_modify(|acc| *acc = monoid.combine(*acc, v))
                        .or_insert(v);
                }
                let mut c: Vec<(I, T)> = m.into_iter().collect();
                c.sort_unstable_by_key(|&(g, _)| g);
                ops += before as u64 + c.len() as u64;
                stats.combine_saved_words += words_of::<(I, T)>(before - c.len());
                c
            } else if opts.compress_ids {
                let mut b = b;
                b.sort_by_key(|&(g, _)| g);
                ops += b.len() as u64;
                b
            } else {
                b
            }
        })
        .collect();
    comm.charge_compute(ops);

    // In-flight combining: updates ride the combining hypercube keyed by
    // target id, folding through the monoid wherever two origins' routes
    // meet — each target reaches its owner at most once per arrival
    // branch instead of once per sender. LACC's monoids (min-hook,
    // and-fold) are commutative, so the merge-tree order is immaterial.
    // Keys ride at the narrow index width `I`, so the per-entry tuples
    // are charged at their true size.
    if opts.combine_in_flight {
        let merged = comm.reduce_scatter_by_key_narrow(
            &world,
            buckets,
            |acc: &mut T, v| *acc = monoid.combine(*acc, v),
            opts.narrow,
        );
        stats.received_updates = merged.len() as u64;
        comm.charge_compute(stats.received_updates + 1);
        comm.note_words_saved(stats.combine_saved_words);
        let mut changed = 0;
        for (k, v) in merged {
            let g = k.idx();
            if dst.get_local(g) != v {
                dst.set_local(g, v);
                changed += 1;
            }
        }
        return (changed, stats);
    }

    let mut combined: HashMap<Vid, T> = HashMap::new();
    let mut nops = 0u64;
    if opts.compress_ids {
        // Ids cross the wire as encoded local offsets; values ride in a
        // parallel (position-aligned) exchange.
        let mut id_bufs: Vec<Vec<u8>> = Vec::with_capacity(buckets.len());
        let mut val_bufs: Vec<Vec<T>> = Vec::with_capacity(buckets.len());
        for (o, b) in buckets.iter().enumerate() {
            let offs: Vec<usize> = b
                .iter()
                .map(|&(g, _)| layout.offset_of(o, g.idx()))
                .collect();
            let enc =
                compact::encode_offsets(&offs, opts.combine_assigns, opts.compress_bitmap_density);
            let raw_words = words_of::<(I, T)>(b.len());
            let sent_words = words_of::<u8>(enc.len()) + words_of::<T>(b.len());
            stats.compress_saved_words += raw_words.saturating_sub(sent_words);
            id_bufs.push(enc);
            val_bufs.push(b.iter().map(|&(_, v)| v).collect());
        }
        let in_ids = comm.alltoallv(&world, id_bufs, opts.alltoall);
        // Values ride raw or run-length encoded per compress_values.
        let in_vals: Vec<Vec<T>> = if opts.compress_values {
            let dict = comm.narrow_dict();
            let mut enc_vals: Vec<FramedBlock> = Vec::with_capacity(val_bufs.len());
            let mut narrow_saved = 0u64;
            for v in &val_bufs {
                let (e, saved) = compact::encode_values_narrow(v, opts.narrow, dict.as_deref());
                narrow_saved += saved;
                // β and the compression stat are charged at the legacy
                // stream length (e.len() + saved), so words_sent and
                // AssignStats are identical with narrowing on or off.
                let legacy_len = e.len() + saved as usize;
                stats.value_saved_words +=
                    words_of::<T>(v.len()).saturating_sub(words_of::<u8>(legacy_len));
                enc_vals.push(FramedBlock {
                    legacy_words: words_of::<u8>(legacy_len),
                    items: v.len() as u64,
                    bytes: e,
                });
            }
            comm.note_narrow_saved(narrow_saved);
            comm.alltoallv_framed(&world, enc_vals, opts.alltoall)
                .into_iter()
                .map(|bytes| compact::decode_values_narrow(&bytes, dict.as_deref()))
                .collect()
        } else {
            comm.alltoallv(&world, val_bufs, opts.alltoall)
        };
        for (bytes, vals) in in_ids.into_iter().zip(in_vals) {
            let bytes = comm.adopt_buf(bytes);
            let offs = compact::decode_offsets(&bytes);
            debug_assert_eq!(offs.len(), vals.len(), "id/value streams misaligned");
            nops += offs.len() as u64;
            for (&off, &v) in offs.iter().zip(vals.iter()) {
                combined
                    .entry(layout.global_of(me, off))
                    .and_modify(|acc| *acc = monoid.combine(*acc, v))
                    .or_insert(v);
            }
        }
    } else {
        let incoming = comm.alltoallv(&world, buckets, opts.alltoall);
        for part in incoming {
            let part = comm.adopt_buf(part);
            nops += part.len() as u64;
            for &(g, v) in part.iter() {
                combined
                    .entry(g.idx())
                    .and_modify(|acc| *acc = monoid.combine(*acc, v))
                    .or_insert(v);
            }
        }
    }
    stats.received_updates = nops;
    comm.charge_compute(nops + 1);
    comm.note_words_saved(
        stats.combine_saved_words + stats.compress_saved_words + stats.value_saved_words,
    );
    let mut changed = 0;
    for (g, v) in combined {
        if dst.get_local(g) != v {
            dst.set_local(g, v);
            changed += 1;
        }
    }
    (changed, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::dvec::VecLayout;
    use crate::serial::{self, Pattern, SparseVec};
    use crate::types::{Mask, MinUsize};
    use dmsim::{run_spmd, Grid2d};
    use lacc_graph::generators::{erdos_renyi_gnm, path_graph, rmat, RmatParams};
    use lacc_graph::CsrGraph;
    use rand::{Rng, SeedableRng};

    const GRIDS: [usize; 4] = [1, 4, 9, 16];

    #[test]
    fn overlap_dispatch_halves_the_spmv_threshold() {
        let mut opts = DistOpts {
            spmv_threshold: 0.5,
            overlap: true,
            overlap_dispatch: false,
            ..DistOpts::optimized()
        };
        // Without the opt-in the base threshold applies regardless of overlap.
        assert!(!spmv_wins(0.3, &opts));
        assert!(spmv_wins(0.6, &opts));
        opts.overlap_dispatch = true;
        // Overlap credit halves the bar: a 0.3 fill now picks SpMV.
        assert!(spmv_wins(0.3, &opts));
        assert!(!spmv_wins(0.2, &opts));
        // No overlap means no hideable allgather, so no credit.
        opts.overlap = false;
        assert!(!spmv_wins(0.3, &opts));
    }

    #[test]
    fn narrow_entry_frames_roundtrip_and_shrink() {
        let entries: Vec<(u32, usize)> = (0..200u32).map(|k| (k * 3, (k % 7) as usize)).collect();
        let spec = dmsim::NarrowSpec {
            tier: dmsim::NarrowTier::U16,
        };
        let frame = encode_entry_frame(&entries, spec, None);
        assert_eq!(decode_entry_frame::<usize, u32>(&frame, None), entries);
        // 200 ids + 200 u16 values must land well under the raw wire cost.
        assert!(
            (frame.len() as u64) < bytes_of::<(u32, usize)>(entries.len()),
            "frame is {} bytes",
            frame.len()
        );
        assert!(encode_entry_frame::<usize, u32>(&[], spec, None).len() <= 4);
    }

    fn random_dense(n: usize, seed: u64) -> Vec<usize> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0..n.max(1))).collect()
    }

    fn check_mxv_dense(g: &CsrGraph, x_global: &[usize], mask_global: Option<&[bool]>) {
        let a_serial = Pattern::from_graph(g);
        let n = g.num_vertices();
        for p in GRIDS {
            let expected = match mask_global {
                None => serial::mxv_dense(&a_serial, x_global, Mask::None, MinUsize),
                Some(m) => serial::mxv_dense(&a_serial, x_global, Mask::Keep(m), MinUsize),
            };
            let out = run_spmd(p, |c| {
                let grid = Grid2d::square(p);
                let layout = VecLayout::new(n, grid);
                let a = DistMat::from_graph(g, grid, c.rank());
                let x = DistVec::from_global(layout, c.rank(), x_global);
                let mv = mask_global.map(|m| DistVec::from_global(layout, c.rank(), m));
                let mask = match &mv {
                    None => DistMask::None,
                    Some(m) => DistMask::Keep(m),
                };
                let y = dist_mxv_dense(c, &a, &x, mask, MinUsize, &DistOpts::default());
                y.to_serial(c)
            })
            .unwrap();
            for y in out {
                assert_eq!(y, expected, "p={p}");
            }
        }
    }

    #[test]
    fn mxv_dense_matches_serial_er() {
        let g = erdos_renyi_gnm(60, 150, 1);
        let x = random_dense(60, 2);
        check_mxv_dense(&g, &x, None);
    }

    #[test]
    fn mxv_dense_matches_serial_masked() {
        let g = rmat(6, 4, RmatParams::graph500(), 3);
        let n = g.num_vertices();
        let x = random_dense(n, 5);
        let mask: Vec<bool> = (0..n).map(|v| v % 3 != 0).collect();
        check_mxv_dense(&g, &x, Some(&mask));
    }

    #[test]
    fn mxv_dense_path_small_n_large_p() {
        // n=10 with p=16 ranks: some chunks are empty.
        let g = path_graph(10);
        let x = random_dense(10, 7);
        check_mxv_dense(&g, &x, None);
    }

    fn check_mxv_sparse(g: &CsrGraph, x_serial: &SparseVec<usize>, opts: DistOpts) {
        let a_serial = Pattern::from_graph(g);
        let n = g.num_vertices();
        let expected = serial::mxv_sparse(&a_serial, x_serial, Mask::None, MinUsize);
        for p in GRIDS {
            let out = run_spmd(p, |c| {
                let grid = Grid2d::square(p);
                let layout = VecLayout::new(n, grid);
                let a = DistMat::from_graph(g, grid, c.rank());
                let (s, e) = layout.range_of_rank(c.rank());
                let local: Vec<(usize, usize)> = x_serial
                    .entries()
                    .iter()
                    .copied()
                    .filter(|&(g, _)| g >= s && g < e)
                    .collect();
                let x = DistSpVec::from_local_entries(layout, c.rank(), local);
                let y = dist_mxv_sparse(c, &a, &x, DistMask::None, MinUsize, &opts);
                y.to_serial(c)
            })
            .unwrap();
            for y in out {
                assert_eq!(y, expected, "p={p}");
            }
        }
    }

    #[test]
    fn mxv_sparse_matches_serial_all_algorithms() {
        let g = erdos_renyi_gnm(50, 120, 11);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let mut entries: Vec<(usize, usize)> = Vec::new();
        for i in 0..50 {
            if rng.random_bool(0.3) {
                entries.push((i, rng.random_range(0..50)));
            }
        }
        let x = SparseVec::from_entries(50, entries);
        for algo in [
            AllToAll::Direct,
            AllToAll::Pairwise,
            AllToAll::Hypercube,
            AllToAll::Sparse,
        ] {
            check_mxv_sparse(
                &g,
                &x,
                DistOpts {
                    alltoall: algo,
                    ..DistOpts::default()
                },
            );
        }
    }

    #[test]
    fn adaptive_mxv_both_branches_match_sparse_bitwise() {
        // A ~60% fill input: threshold 0.9 forces the SpMSpV branch,
        // threshold 0.1 forces the SpMV-style branch. Both must equal the
        // pure sparse path bit-for-bit, threaded or not.
        let g = erdos_renyi_gnm(48, 140, 17);
        let n = g.num_vertices();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(19);
        let mut entries: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            if rng.random_bool(0.6) {
                entries.push((i, rng.random_range(0..n)));
            }
        }
        let x_serial = SparseVec::from_entries(n, entries);
        let a_serial = Pattern::from_graph(&g);
        let expected = serial::mxv_sparse(&a_serial, &x_serial, Mask::None, MinUsize);
        for p in [1usize, 4, 9] {
            for threshold in [0.1f64, 0.9] {
                for threads in [1usize, 4] {
                    let opts = DistOpts {
                        spmv_threshold: threshold,
                        kernel_threads: threads,
                        ..DistOpts::default()
                    };
                    let out = run_spmd(p, |c| {
                        let grid = Grid2d::square(p);
                        let layout = VecLayout::new(n, grid);
                        let a = DistMat::from_graph(&g, grid, c.rank());
                        let (s, e) = layout.range_of_rank(c.rank());
                        let local: Vec<(usize, usize)> = x_serial
                            .entries()
                            .iter()
                            .copied()
                            .filter(|&(g, _)| g >= s && g < e)
                            .collect();
                        let x = DistSpVec::from_local_entries(layout, c.rank(), local);
                        let y = dist_mxv(c, &a, &x, DistMask::None, MinUsize, &opts);
                        y.to_serial(c)
                    })
                    .unwrap();
                    for y in out {
                        assert_eq!(y, expected, "p={p} threshold={threshold} threads={threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn mxv_sparse_empty_input() {
        let g = path_graph(20);
        let x = SparseVec::empty(20);
        check_mxv_sparse(&g, &x, DistOpts::default());
    }

    #[test]
    fn mxv_sparse_single_entry() {
        let g = path_graph(20);
        let x = SparseVec::from_entries(20, vec![(10, 3)]);
        check_mxv_sparse(&g, &x, DistOpts::default());
    }

    #[test]
    fn extract_matches_serial() {
        let n = 80;
        let src_global: Vec<usize> = (0..n).map(|g| g * 7 % 64).collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        // Skewed request pattern: most requests hit low indices (as parent
        // pointers do after conditional hooking).
        let all_requests: Vec<Vec<usize>> = (0..16)
            .map(|_| (0..30).map(|_| rng.random_range(0..n) / 3).collect())
            .collect();
        for p in GRIDS {
            for opts in [DistOpts::default(), DistOpts::naive()] {
                let out = run_spmd(p, |c| {
                    let layout = VecLayout::new(n, Grid2d::square(p));
                    let src = DistVec::from_global(layout, c.rank(), &src_global);
                    let (vals, _) = dist_extract(c, &src, &all_requests[c.rank()], &opts);
                    vals
                })
                .unwrap();
                for (r, vals) in out.iter().enumerate() {
                    let expected = serial::extract(&src_global, &all_requests[r]);
                    assert_eq!(vals, &expected, "p={p} rank={r}");
                }
            }
        }
    }

    #[test]
    fn extract_hot_rank_broadcasts() {
        let n = 64;
        let p = 16;
        let src_global: Vec<usize> = (0..n).collect();
        let out = run_spmd(p, |c| {
            let layout = VecLayout::new(n, Grid2d::square(p));
            let src = DistVec::from_global(layout, c.rank(), &src_global);
            // Everyone hammers index 0 — its owner becomes hot.
            let reqs = vec![0usize; 40];
            let opts = DistOpts {
                hot_threshold: 2.0,
                ..DistOpts::default()
            };
            let (vals, stats) = dist_extract(c, &src, &reqs, &opts);
            assert!(vals.iter().all(|&v| v == 0));
            stats
        })
        .unwrap();
        let owner0 = out.iter().filter(|s| s.did_broadcast).count();
        assert_eq!(owner0, 1, "exactly the owner of index 0 broadcasts");
        // The broadcasting owner answers no point-to-point requests.
        assert!(out
            .iter()
            .all(|s| !s.did_broadcast || s.received_requests == 0));
    }

    #[test]
    fn assign_matches_serial_with_duplicates() {
        let n = 60;
        let init: Vec<usize> = vec![usize::MAX; n];
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        let all_updates: Vec<Vec<(usize, usize)>> = (0..16)
            .map(|_| {
                (0..25)
                    .map(|_| (rng.random_range(0..n), rng.random_range(0..1000)))
                    .collect()
            })
            .collect();
        for p in GRIDS {
            // Serial reference: the first p ranks' updates, min-combined.
            let mut expected = init.clone();
            let flat: Vec<(usize, usize)> = all_updates[..p].iter().flatten().copied().collect();
            serial::assign(&mut expected, &flat, MinUsize);
            let out = run_spmd(p, |c| {
                let layout = VecLayout::new(n, Grid2d::square(p));
                let mut dst = DistVec::from_global(layout, c.rank(), &init);
                dist_assign(
                    c,
                    &mut dst,
                    &all_updates[c.rank()],
                    MinUsize,
                    &DistOpts::default(),
                );
                dst.to_global(c)
            })
            .unwrap();
            for got in out {
                assert_eq!(got, expected, "p={p}");
            }
        }
    }

    #[test]
    fn assign_empty_updates_is_noop() {
        let n = 10;
        let init: Vec<usize> = (0..n).collect();
        let out = run_spmd(4, |c| {
            let layout = VecLayout::new(n, Grid2d::square(4));
            let mut dst = DistVec::from_global(layout, c.rank(), &init);
            let none: &[(usize, usize)] = &[];
            dist_assign(c, &mut dst, none, MinUsize, &DistOpts::default());
            dst.to_global(c)
        })
        .unwrap();
        assert_eq!(out[0], init);
    }

    /// Issues `copies` duplicates of every request/update on each rank and
    /// returns the per-rank (extract stats, assign stats, snapshot
    /// words_saved) under the given options.
    fn compaction_savings(copies: usize, opts: DistOpts) -> Vec<(ExtractStats, AssignStats, u64)> {
        let n = 64;
        let p = 4;
        run_spmd(p, move |c| {
            let layout = VecLayout::new(n, Grid2d::square(p));
            let src = DistVec::from_fn(layout, c.rank(), |g| g * 3 % n);
            let mut reqs = Vec::new();
            let mut upds = Vec::new();
            for g in (0..n).step_by(2) {
                for _ in 0..copies {
                    reqs.push(g);
                    upds.push((g, g + c.rank()));
                }
            }
            let opts = DistOpts {
                hot_bcast: false,
                ..opts
            };
            let (_, es) = dist_extract(c, &src, &reqs, &opts);
            let mut dst = DistVec::from_fn(layout, c.rank(), |_| usize::MAX);
            let (_, asgn) = dist_assign(c, &mut dst, &upds, MinUsize, &opts);
            (es, asgn, c.snapshot().words_saved)
        })
        .unwrap()
    }

    #[test]
    fn savings_counters_zero_when_flags_off() {
        for (es, asgn, noted) in compaction_savings(4, DistOpts::naive()) {
            assert_eq!(es.dedup_saved_words, 0);
            assert_eq!(es.compress_saved_words, 0);
            assert_eq!(asgn.combine_saved_words, 0);
            assert_eq!(asgn.compress_saved_words, 0);
            assert_eq!(noted, 0);
        }
    }

    #[test]
    fn savings_counters_positive_and_monotone_in_duplication() {
        // With duplicated traffic and the sender-side stack on (combining
        // disabled so the classic exchange runs), every mechanism must
        // report savings, and quadrupling the duplication can only save
        // more words.
        let sender_side = DistOpts {
            combine_in_flight: false,
            fuse_starcheck: false,
            ..DistOpts::optimized()
        };
        let twice = compaction_savings(2, sender_side);
        let eight = compaction_savings(8, sender_side);
        for ((es2, as2, noted2), (es8, as8, noted8)) in twice.iter().zip(&eight) {
            assert!(es2.dedup_saved_words > 0, "dedup saves on duplicates");
            assert!(es2.compress_saved_words > 0, "ids compress");
            assert!(as2.combine_saved_words > 0, "combine collapses updates");
            assert_eq!(
                *noted2,
                es2.dedup_saved_words
                    + es2.compress_saved_words
                    + es2.value_saved_words
                    + as2.combine_saved_words
                    + as2.compress_saved_words
                    + as2.value_saved_words,
                "comm counter matches the per-op stats"
            );
            assert!(es8.dedup_saved_words >= es2.dedup_saved_words);
            assert!(as8.combine_saved_words >= as2.combine_saved_words);
            assert!(noted8 >= noted2, "savings are monotone in duplication");
        }
    }

    #[test]
    fn combined_words_zero_when_off_and_monotone_when_on() {
        // The in-flight counter stays zero on every non-combining path
        // and grows with cross-rank duplication when combining is on:
        // every rank requesting the same ids gives the hypercube hops
        // more to merge.
        let combined = |copies: usize, opts: DistOpts| -> Vec<u64> {
            let n = 64;
            let p = 4;
            run_spmd(p, move |c| {
                let layout = VecLayout::new(n, Grid2d::square(p));
                let src = DistVec::from_fn(layout, c.rank(), |g| g * 3 % n);
                let reqs: Vec<usize> = (0..n)
                    .step_by(2)
                    .flat_map(|g| std::iter::repeat_n(g, copies))
                    .collect();
                let opts = DistOpts {
                    hot_bcast: false,
                    ..opts
                };
                let _ = dist_extract(c, &src, &reqs, &opts);
                let mut dst = DistVec::from_fn(layout, c.rank(), |_| usize::MAX);
                let upds: Vec<(usize, usize)> = reqs.iter().map(|&g| (g, g + c.rank())).collect();
                dist_assign(c, &mut dst, &upds, MinUsize, &opts);
                c.snapshot().combined_words
            })
            .unwrap()
        };
        for w in combined(4, DistOpts::naive()) {
            assert_eq!(w, 0, "naive path never combines");
        }
        let off = DistOpts {
            combine_in_flight: false,
            ..DistOpts::optimized()
        };
        for w in combined(4, off) {
            assert_eq!(w, 0, "flag off pins the counter at zero");
        }
        let once = combined(1, DistOpts::optimized());
        for (rank, &w) in once.iter().enumerate() {
            assert!(w > 0, "rank {rank}: identical cross-rank requests merge");
        }
    }

    #[test]
    fn posted_ops_match_blocking_and_refund_overlap() {
        // dist_mxv_start / dist_extract_start run eagerly: bit-identical
        // results to the blocking calls, and with overlap on the compute
        // charged between post and wait earns a positive clock refund.
        let g = erdos_renyi_gnm(48, 140, 23);
        let n = g.num_vertices();
        let p = 4;
        let out = dmsim::run_spmd_with_model(p, dmsim::EDISON.lacc_model(), |c| {
            let grid = Grid2d::square(p);
            let layout = VecLayout::new(n, grid);
            let a = DistMat::from_graph(&g, grid, c.rank());
            let (s, e) = layout.range_of_rank(c.rank());
            let local: Vec<(usize, usize)> =
                (s..e).filter(|v| v % 2 == 0).map(|v| (v, v)).collect();
            let x = DistSpVec::from_local_entries(layout, c.rank(), local);
            let opts = DistOpts::optimized();
            let blocking = dist_mxv(c, &a, &x, DistMask::None, MinUsize, &opts);
            let h = dist_mxv_start(c, &a, &x, DistMask::None, MinUsize, &opts);
            c.charge_compute(10_000_000);
            let posted = h.wait(c);
            assert_eq!(posted.entries(), blocking.entries());

            let src = DistVec::from_fn(layout, c.rank(), |g| g * 3 % n);
            let reqs: Vec<usize> = (s..e).map(|v| v * 7 % n).collect();
            let (vb, _) = dist_extract(c, &src, &reqs, &opts);
            let h2 = dist_extract_start(c, &src, &reqs, &opts);
            c.charge_compute(10_000_000);
            let (vp, _) = h2.wait(c);
            assert_eq!(vp, vb);
            c.snapshot().overlap_hidden_s
        })
        .unwrap();
        for hidden in out {
            assert!(hidden > 0.0, "posted exchanges refund against compute");
        }
    }

    #[test]
    fn posted_ops_inert_when_overlap_off() {
        // With DistOpts::overlap off the handles still deliver identical
        // values but never refund the clock.
        let p = 4;
        let n = 64;
        let out = dmsim::run_spmd_with_model(p, dmsim::EDISON.lacc_model(), |c| {
            let layout = VecLayout::new(n, Grid2d::square(p));
            let opts = DistOpts {
                overlap: false,
                ..DistOpts::optimized()
            };
            let src = DistVec::from_fn(layout, c.rank(), |g| g * 3 % n);
            let reqs: Vec<usize> = (0..32).map(|k| (k * 5 + c.rank()) % n).collect();
            let (vb, _) = dist_extract(c, &src, &reqs, &opts);
            let h = dist_extract_start(c, &src, &reqs, &opts);
            c.charge_compute(10_000_000);
            let (vp, _) = h.wait(c);
            assert_eq!(vp, vb);
            c.snapshot().overlap_hidden_s
        })
        .unwrap();
        for hidden in out {
            assert_eq!(hidden, 0.0, "flag off keeps the clock uncredited");
        }
    }

    #[test]
    fn planned_extract_matches_unplanned() {
        // starcheck reuses one request plan for two extracts; both must
        // match independent dist_extract calls on the same requests.
        let n = 72;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(47);
        let all_requests: Vec<Vec<usize>> = (0..16)
            .map(|_| (0..40).map(|_| rng.random_range(0..n) / 2).collect())
            .collect();
        for p in GRIDS {
            for opts in [DistOpts::optimized(), DistOpts::naive()] {
                let out = run_spmd(p, |c| {
                    let layout = VecLayout::new(n, Grid2d::square(p));
                    let a = DistVec::from_fn(layout, c.rank(), |g| g * 5 % n);
                    let b = DistVec::from_fn(layout, c.rank(), |g| (g % 7 == 0) as usize);
                    let reqs = &all_requests[c.rank()];
                    let plan = plan_requests(c, a.layout(), reqs, &opts);
                    let (pa, _) = dist_extract_planned(c, &a, &plan, &opts);
                    let (pb, _) = dist_extract_planned(c, &b, &plan, &opts);
                    let (ua, _) = dist_extract(c, &a, reqs, &opts);
                    let (ub, _) = dist_extract(c, &b, reqs, &opts);
                    (pa, pb, ua, ub)
                })
                .unwrap();
                for (r, (pa, pb, ua, ub)) in out.into_iter().enumerate() {
                    assert_eq!(pa, ua, "p={p} rank={r}");
                    assert_eq!(pb, ub, "p={p} rank={r}");
                }
            }
        }
    }
}
