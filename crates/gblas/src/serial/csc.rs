//! Compressed sparse column matrices.

use crate::Vid;
use lacc_graph::CsrGraph;

/// A sparse matrix in CSC form with values of type `T`.
///
/// `Pattern` (`T = ()`) is the adjacency-matrix case LACC uses: the
/// `(Select2nd, min)` semiring never reads edge values.
#[derive(Clone, Debug, PartialEq)]
pub struct Csc<T> {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<Vid>,
    values: Vec<T>,
}

/// Pattern-only sparse matrix (adjacency structure).
pub type Pattern = Csc<()>;

impl<T: Copy> Csc<T> {
    /// Builds from triples `(row, col, value)`; duplicates are not allowed.
    pub fn from_triples(nrows: usize, ncols: usize, mut triples: Vec<(Vid, Vid, T)>) -> Self {
        triples.sort_unstable_by_key(|&(r, c, _)| (c, r));
        debug_assert!(
            triples.windows(2).all(|w| (w[0].0, w[0].1) != (w[1].0, w[1].1)),
            "duplicate entries in triples"
        );
        let mut colptr = vec![0usize; ncols + 1];
        for &(_, c, _) in &triples {
            assert!(c < ncols, "column {c} out of range");
            colptr[c + 1] += 1;
        }
        for c in 0..ncols {
            colptr[c + 1] += colptr[c];
        }
        let mut rowidx = Vec::with_capacity(triples.len());
        let mut values = Vec::with_capacity(triples.len());
        for (r, c, v) in triples {
            assert!(r < nrows, "row {r} out of range");
            let _ = c;
            rowidx.push(r);
            values.push(v);
        }
        Csc { nrows, ncols, colptr, rowidx, values }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// Row indices of column `c`.
    pub fn col(&self, c: Vid) -> &[Vid] {
        &self.rowidx[self.colptr[c]..self.colptr[c + 1]]
    }

    /// Row indices and values of column `c`.
    pub fn col_entries(&self, c: Vid) -> impl Iterator<Item = (Vid, T)> + '_ {
        let range = self.colptr[c]..self.colptr[c + 1];
        self.rowidx[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&r, &v)| (r, v))
    }

    /// Iterates over all entries as `(row, col, value)` in column order.
    pub fn triples(&self) -> impl Iterator<Item = (Vid, Vid, T)> + '_ {
        (0..self.ncols).flat_map(move |c| self.col_entries(c).map(move |(r, v)| (r, c, v)))
    }
}

impl Pattern {
    /// Builds the adjacency pattern of a symmetric graph.
    pub fn from_graph(g: &CsrGraph) -> Pattern {
        // CSR of a symmetric graph is also its CSC.
        let n = g.num_vertices();
        Csc {
            nrows: n,
            ncols: n,
            colptr: g.offsets().to_vec(),
            rowidx: g.targets().to_vec(),
            values: vec![(); g.num_directed_edges()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacc_graph::generators::path_graph;
    use lacc_graph::EdgeList;

    #[test]
    fn from_triples_structure() {
        let m = Csc::from_triples(3, 4, vec![(0, 1, 10), (2, 1, 20), (1, 3, 30)]);
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (3, 4, 3));
        assert_eq!(m.col(0), &[] as &[usize]);
        assert_eq!(m.col(1), &[0, 2]);
        let e: Vec<_> = m.col_entries(3).collect();
        assert_eq!(e, vec![(1, 30)]);
    }

    #[test]
    fn triples_roundtrip() {
        let t = vec![(0, 0, 1), (1, 2, 2), (0, 2, 3)];
        let m = Csc::from_triples(2, 3, t);
        let back: Vec<_> = m.triples().collect();
        assert_eq!(back, vec![(0, 0, 1), (0, 2, 3), (1, 2, 2)]);
    }

    #[test]
    fn pattern_from_graph_matches_adjacency() {
        let g = path_graph(4);
        let a = Pattern::from_graph(&g);
        assert_eq!(a.nnz(), 6);
        assert_eq!(a.col(1), &[0, 2]);
        assert_eq!(a.col(0), &[1]);
    }

    #[test]
    fn empty_matrix() {
        let g = CsrGraph::from_edges(EdgeList::new(3));
        let a = Pattern::from_graph(&g);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.col(2), &[] as &[usize]);
    }

    use lacc_graph::CsrGraph;
}
