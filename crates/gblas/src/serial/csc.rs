//! Compressed sparse column matrices.

use crate::Vid;
use lacc_graph::{CsrGraph, Idx};

/// A sparse matrix in CSC form with values of type `T` and `I`-width row
/// indices.
///
/// `Pattern` (`T = ()`) is the adjacency-matrix case LACC uses: the
/// `(Select2nd, min)` semiring never reads edge values.
#[derive(Clone, Debug, PartialEq)]
pub struct Csc<T, I: Idx = Vid> {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<I>,
    values: Vec<T>,
}

/// Pattern-only sparse matrix (adjacency structure).
pub type Pattern<I = Vid> = Csc<(), I>;

impl<T: Copy, I: Idx> Csc<T, I> {
    /// Builds from triples `(row, col, value)`; duplicates are not allowed.
    pub fn from_triples(nrows: usize, ncols: usize, mut triples: Vec<(Vid, Vid, T)>) -> Self {
        triples.sort_unstable_by_key(|&(r, c, _)| (c, r));
        debug_assert!(
            triples
                .windows(2)
                .all(|w| (w[0].0, w[0].1) != (w[1].0, w[1].1)),
            "duplicate entries in triples"
        );
        let mut colptr = vec![0usize; ncols + 1];
        for &(_, c, _) in &triples {
            assert!(c < ncols, "column {c} out of range");
            colptr[c + 1] += 1;
        }
        for c in 0..ncols {
            colptr[c + 1] += colptr[c];
        }
        let mut rowidx = Vec::with_capacity(triples.len());
        let mut values = Vec::with_capacity(triples.len());
        for (r, c, v) in triples {
            assert!(r < nrows, "row {r} out of range");
            let _ = c;
            rowidx.push(I::from_usize(r));
            values.push(v);
        }
        Csc {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// Row indices of column `c`.
    pub fn col(&self, c: usize) -> &[I] {
        &self.rowidx[self.colptr[c]..self.colptr[c + 1]]
    }

    /// Row indices and values of column `c`.
    pub fn col_entries(&self, c: usize) -> impl Iterator<Item = (Vid, T)> + '_ {
        let range = self.colptr[c]..self.colptr[c + 1];
        self.rowidx[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&r, &v)| (r.idx(), v))
    }

    /// Iterates over all entries as `(row, col, value)` in column order.
    pub fn triples(&self) -> impl Iterator<Item = (Vid, Vid, T)> + '_ {
        (0..self.ncols).flat_map(move |c| self.col_entries(c).map(move |(r, v)| (r, c, v)))
    }
}

impl<I: Idx> Pattern<I> {
    /// Builds the adjacency pattern of a symmetric graph.
    pub fn from_graph(g: &CsrGraph<I>) -> Pattern<I> {
        // CSR of a symmetric graph is also its CSC.
        let n = g.num_vertices();
        Csc {
            nrows: n,
            ncols: n,
            colptr: g.offsets().to_vec(),
            rowidx: g.targets().to_vec(),
            values: vec![(); g.num_directed_edges()],
        }
    }
}

/// Row-major mirror of a pattern: for each row, its column indices in
/// ascending order.
///
/// The parallel SpMV ([`crate::serial::mxv_dense_par`]) splits work by
/// *rows* so each thread owns a disjoint slice of the accumulator; the
/// CSC storage above only supports column sweeps. Iterating a mirror row
/// visits columns in the same ascending-`j` order the serial column sweep
/// combines them in, which is what keeps the row-split result bit-identical
/// to [`crate::serial::mxv_dense`] for any associative monoid.
///
/// Build it once per matrix (`O(nnz)`) and reuse it across iterations; the
/// matrix is static for the lifetime of a connected-components run.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMirror<I: Idx = Vid> {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<I>,
}

impl<I: Idx> CsrMirror<I> {
    /// Transposes the index structure of `a` into row-major form.
    pub fn from_csc<T: Copy>(a: &Csc<T, I>) -> CsrMirror<I> {
        let mut rowptr = vec![0usize; a.nrows + 1];
        for &i in &a.rowidx {
            rowptr[i.idx() + 1] += 1;
        }
        for i in 0..a.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colidx = vec![I::zero(); a.rowidx.len()];
        let mut cursor = rowptr.clone();
        // Ascending-j column sweep ⇒ each row's colidx fills in ascending j.
        for j in 0..a.ncols {
            for &i in &a.rowidx[a.colptr[j]..a.colptr[j + 1]] {
                colidx[cursor[i.idx()]] = I::from_usize(j);
                cursor[i.idx()] += 1;
            }
        }
        CsrMirror {
            nrows: a.nrows,
            ncols: a.ncols,
            rowptr,
            colidx,
        }
    }

    /// Builds a mirror from `(row, col)` pairs that arrive in **column-major
    /// order** (ascending column, e.g. [`super::Dcsc::pairs`]), so each
    /// row's `colidx` fills in ascending `j` — the same invariant
    /// [`CsrMirror::from_csc`] establishes.
    pub fn from_col_major_pairs<It>(nrows: usize, ncols: usize, pairs: It) -> CsrMirror<I>
    where
        It: Iterator<Item = (I, I)> + Clone,
    {
        let mut rowptr = vec![0usize; nrows + 1];
        for (r, _) in pairs.clone() {
            rowptr[r.idx() + 1] += 1;
        }
        for i in 0..nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let nnz = rowptr[nrows];
        let mut colidx = vec![I::zero(); nnz];
        let mut cursor = rowptr.clone();
        for (r, c) in pairs {
            debug_assert!(c.idx() < ncols);
            colidx[cursor[r.idx()]] = c;
            cursor[r.idx()] += 1;
        }
        CsrMirror {
            nrows,
            ncols,
            rowptr,
            colidx,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Column indices of row `i`, ascending.
    pub fn row(&self, i: usize) -> &[I] {
        &self.colidx[self.rowptr[i]..self.rowptr[i + 1]]
    }
}

impl<T: Copy, I: Idx> Csc<T, I> {
    /// Builds the row-major mirror of this matrix's pattern.
    pub fn csr_mirror(&self) -> CsrMirror<I> {
        CsrMirror::from_csc(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacc_graph::generators::path_graph;
    use lacc_graph::EdgeList;

    #[test]
    fn from_triples_structure() {
        let m: Csc<i32> = Csc::from_triples(3, 4, vec![(0, 1, 10), (2, 1, 20), (1, 3, 30)]);
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (3, 4, 3));
        assert_eq!(m.col(0), &[] as &[usize]);
        assert_eq!(m.col(1), &[0, 2]);
        let e: Vec<_> = m.col_entries(3).collect();
        assert_eq!(e, vec![(1, 30)]);
    }

    #[test]
    fn triples_roundtrip() {
        let t = vec![(0, 0, 1), (1, 2, 2), (0, 2, 3)];
        let m: Csc<i32> = Csc::from_triples(2, 3, t);
        let back: Vec<_> = m.triples().collect();
        assert_eq!(back, vec![(0, 0, 1), (0, 2, 3), (1, 2, 2)]);
    }

    #[test]
    fn pattern_from_graph_matches_adjacency() {
        let g = path_graph(4);
        let a = Pattern::from_graph(&g);
        assert_eq!(a.nnz(), 6);
        assert_eq!(a.col(1), &[0, 2]);
        assert_eq!(a.col(0), &[1]);
    }

    #[test]
    fn narrow_pattern_matches_default() {
        let g = path_graph(4);
        let narrow = Pattern::from_graph(&g.try_narrow::<u32>().unwrap());
        let wide = Pattern::from_graph(&g);
        assert_eq!(narrow.nnz(), wide.nnz());
        assert_eq!(narrow.col(1), &[0u32, 2u32]);
        let n: Vec<_> = narrow.triples().collect();
        let w: Vec<_> = wide.triples().collect();
        assert_eq!(n, w);
    }

    #[test]
    fn csr_mirror_rows_ascending() {
        // Asymmetric pattern: rows and columns genuinely differ.
        let m: Pattern =
            Csc::from_triples(3, 4, vec![(0, 1, ()), (2, 1, ()), (1, 3, ()), (0, 3, ())]);
        let r = m.csr_mirror();
        assert_eq!((r.nrows(), r.ncols(), r.nnz()), (3, 4, 4));
        assert_eq!(r.row(0), &[1, 3]);
        assert_eq!(r.row(1), &[3]);
        assert_eq!(r.row(2), &[1]);
    }

    #[test]
    fn csr_mirror_of_symmetric_graph_matches_csc() {
        let g = path_graph(5);
        let a = Pattern::from_graph(&g);
        let r = a.csr_mirror();
        for v in 0..5 {
            assert_eq!(r.row(v), a.col(v), "symmetric matrix: row {v} == col {v}");
        }
    }

    #[test]
    fn empty_matrix() {
        let g: CsrGraph = CsrGraph::from_edges(EdgeList::new(3));
        let a = Pattern::from_graph(&g);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.col(2), &[] as &[usize]);
    }

    use lacc_graph::CsrGraph;
}
