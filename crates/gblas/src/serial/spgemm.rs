//! Sparse general matrix-matrix multiply (Gustavson's algorithm).
//!
//! LACC itself never multiplies two matrices, but its flagship application
//! — HipMCL-style Markov clustering (§VI-F) — is built on repeated SpGEMM
//! with on-the-fly pruning. The `protein_clustering` example uses this
//! kernel for the expansion step, then calls LACC on the converged matrix.

use super::csc::Csc;
use crate::Vid;

/// Pruning policy applied to each output column as it is formed (MCL keeps
/// matrices sparse by dropping tiny transition probabilities).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prune {
    /// Entries with absolute value below this are dropped.
    pub threshold: f64,
    /// At most this many entries are kept per column (largest magnitude
    /// first); `usize::MAX` disables the cap.
    pub max_per_column: usize,
}

impl Prune {
    /// No pruning.
    pub fn none() -> Self {
        Prune {
            threshold: 0.0,
            max_per_column: usize::MAX,
        }
    }
}

/// Computes `C = A · B` over `(·, +)` with pruning.
pub fn spgemm(a: &Csc<f64>, b: &Csc<f64>, prune: Prune) -> Csc<f64> {
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let nrows = a.nrows();
    let mut acc = vec![0.0f64; nrows];
    let mut touched: Vec<Vid> = Vec::new();
    let mut is_touched = vec![false; nrows];
    let mut triples: Vec<(Vid, Vid, f64)> = Vec::new();
    // Gustavson: column j of C = Σ_k B[k,j] · A[:,k].
    for j in 0..b.ncols() {
        for (k, bkj) in b.col_entries(j) {
            for (i, aik) in a.col_entries(k) {
                if !is_touched[i] {
                    is_touched[i] = true;
                    touched.push(i);
                }
                acc[i] += aik * bkj;
            }
        }
        touched.sort_unstable();
        let mut col: Vec<(Vid, f64)> = touched
            .iter()
            .map(|&i| (i, acc[i]))
            .filter(|&(_, v)| v.abs() >= prune.threshold && v != 0.0)
            .collect();
        if col.len() > prune.max_per_column {
            col.sort_unstable_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("no NaN"));
            col.truncate(prune.max_per_column);
            col.sort_unstable_by_key(|&(i, _)| i);
        }
        for (i, v) in col {
            triples.push((i, j, v));
        }
        for &i in &touched {
            acc[i] = 0.0;
            is_touched[i] = false;
        }
        touched.clear();
    }
    Csc::from_triples(nrows, b.ncols(), triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_mul(a: &Csc<f64>, b: &Csc<f64>) -> Vec<Vec<f64>> {
        let mut c = vec![vec![0.0; b.ncols()]; a.nrows()];
        for (k, j, bv) in b.triples() {
            for (i, av) in a.col_entries(k) {
                c[i][j] += av * bv;
            }
        }
        c
    }

    fn to_dense(m: &Csc<f64>) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; m.ncols()]; m.nrows()];
        for (i, j, v) in m.triples() {
            d[i][j] = v;
        }
        d
    }

    #[test]
    fn matches_dense_reference() {
        let a = Csc::from_triples(
            3,
            3,
            vec![(0, 0, 1.0), (1, 0, 2.0), (2, 1, 3.0), (0, 2, 4.0)],
        );
        let b = Csc::from_triples(3, 2, vec![(0, 0, 1.0), (1, 0, 1.0), (2, 1, 2.0)]);
        let c = spgemm(&a, &b, Prune::none());
        assert_eq!(to_dense(&c), dense_mul(&a, &b));
    }

    #[test]
    fn threshold_prunes_small_entries() {
        let a = Csc::from_triples(2, 2, vec![(0, 0, 0.001), (1, 1, 1.0)]);
        let b = Csc::from_triples(2, 2, vec![(0, 0, 1.0), (1, 1, 1.0)]);
        let c = spgemm(
            &a,
            &b,
            Prune {
                threshold: 0.01,
                max_per_column: usize::MAX,
            },
        );
        assert_eq!(c.nnz(), 1);
        let entries: Vec<_> = c.triples().collect();
        assert_eq!(entries, vec![(1, 1, 1.0)]);
    }

    #[test]
    fn column_cap_keeps_largest() {
        let a = Csc::from_triples(3, 1, vec![(0, 0, 0.1), (1, 0, 0.9), (2, 0, 0.5)]);
        let b = Csc::from_triples(1, 1, vec![(0, 0, 1.0)]);
        let c = spgemm(
            &a,
            &b,
            Prune {
                threshold: 0.0,
                max_per_column: 2,
            },
        );
        let entries: Vec<_> = c.triples().collect();
        assert_eq!(entries, vec![(1, 0, 0.9), (2, 0, 0.5)]);
    }

    #[test]
    fn identity_multiplication() {
        let i2 = Csc::from_triples(2, 2, vec![(0, 0, 1.0), (1, 1, 1.0)]);
        let a = Csc::from_triples(2, 2, vec![(0, 1, 5.0), (1, 0, 7.0)]);
        let c = spgemm(&a, &i2, Prune::none());
        assert_eq!(to_dense(&c), to_dense(&a));
    }
}
