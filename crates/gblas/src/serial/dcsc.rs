//! Doubly compressed sparse columns.
//!
//! CombBLAS stores each local submatrix in DCSC (§V): when a matrix is
//! 2D-partitioned among many processes, most local blocks have far fewer
//! nonzero *columns* than total columns, so a plain CSC's `O(ncols)`
//! column-pointer array dominates memory. DCSC stores only the nonempty
//! columns (`jc`) plus a compressed pointer array — `O(nnz)` space
//! regardless of dimensions.
//!
//! Indices are generic over [`Idx`]; `Dcsc<u32>` halves index traffic in
//! the distributed kernels for blocks under 2^32 on a side.

use crate::Vid;
use lacc_graph::Idx;

/// A pattern-only doubly compressed sparse column matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dcsc<I: Idx = Vid> {
    nrows: usize,
    ncols: usize,
    /// Nonempty column ids, ascending.
    jc: Vec<I>,
    /// `colptr[k]..colptr[k+1]` indexes `rowidx` for column `jc[k]`.
    colptr: Vec<usize>,
    rowidx: Vec<I>,
}

impl<I: Idx> Dcsc<I> {
    /// Builds from (row, col) pairs; duplicates are not allowed.
    pub fn from_pairs(nrows: usize, ncols: usize, mut pairs: Vec<(I, I)>) -> Self {
        pairs.sort_unstable_by_key(|&(r, c)| (c, r));
        debug_assert!(pairs.windows(2).all(|w| w[0] != w[1]), "duplicate entries");
        let mut jc: Vec<I> = Vec::new();
        let mut colptr = vec![0usize];
        let mut rowidx = Vec::with_capacity(pairs.len());
        for (r, c) in pairs {
            assert!(
                r.idx() < nrows && c.idx() < ncols,
                "entry ({r},{c}) out of range"
            );
            if jc.last() != Some(&c) {
                jc.push(c);
                colptr.push(rowidx.len());
            }
            rowidx.push(r);
            *colptr.last_mut().expect("colptr nonempty") = rowidx.len();
        }
        Dcsc {
            nrows,
            ncols,
            jc,
            colptr,
            rowidx,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// Number of nonempty columns.
    pub fn ncols_nonempty(&self) -> usize {
        self.jc.len()
    }

    /// Row indices of column `c` (empty slice if the column is empty).
    pub fn col(&self, c: usize) -> &[I] {
        let Some(key) = I::try_from_usize(c) else {
            return &[];
        };
        match self.jc.binary_search(&key) {
            Ok(k) => &self.rowidx[self.colptr[k]..self.colptr[k + 1]],
            Err(_) => &[],
        }
    }

    /// Iterates over `(column id, row indices)` for nonempty columns.
    pub fn nonempty_cols(&self) -> impl Iterator<Item = (usize, &[I])> + Clone + '_ {
        self.jc
            .iter()
            .enumerate()
            .map(move |(k, &c)| (c.idx(), &self.rowidx[self.colptr[k]..self.colptr[k + 1]]))
    }

    /// All entries as `(row, col)` pairs in column order.
    pub fn pairs(&self) -> impl Iterator<Item = (I, I)> + Clone + '_ {
        self.jc.iter().enumerate().flat_map(move |(k, &c)| {
            self.rowidx[self.colptr[k]..self.colptr[k + 1]]
                .iter()
                .map(move |&r| (r, c))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypersparse_storage() {
        // 1M x 1M block with 3 entries: storage must be O(nnz).
        let d: Dcsc =
            Dcsc::from_pairs(1_000_000, 1_000_000, vec![(5, 100), (7, 100), (3, 999_999)]);
        assert_eq!(d.nnz(), 3);
        assert_eq!(d.ncols_nonempty(), 2);
        assert_eq!(d.col(100), &[5, 7]);
        assert_eq!(d.col(999_999), &[3]);
        assert_eq!(d.col(0), &[] as &[usize]);
    }

    #[test]
    fn empty_block() {
        let d: Dcsc = Dcsc::from_pairs(10, 10, vec![]);
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.ncols_nonempty(), 0);
        assert_eq!(d.col(5), &[] as &[usize]);
        assert_eq!(d.pairs().count(), 0);
    }

    #[test]
    fn pairs_roundtrip_sorted() {
        let input = vec![(2, 0), (1, 0), (0, 3)];
        let d: Dcsc = Dcsc::from_pairs(3, 4, input);
        let out: Vec<_> = d.pairs().collect();
        assert_eq!(out, vec![(1, 0), (2, 0), (0, 3)]);
    }

    #[test]
    fn nonempty_cols_iteration() {
        let d: Dcsc = Dcsc::from_pairs(4, 8, vec![(0, 2), (3, 2), (1, 6)]);
        let cols: Vec<_> = d.nonempty_cols().map(|(c, rows)| (c, rows.len())).collect();
        assert_eq!(cols, vec![(2, 2), (6, 1)]);
    }

    #[test]
    fn narrow_block_matches_default() {
        let pairs = vec![(0, 2), (3, 2), (1, 6)];
        let wide: Dcsc = Dcsc::from_pairs(4, 8, pairs.clone());
        let narrow: Dcsc<u32> = Dcsc::from_pairs(
            4,
            8,
            pairs.iter().map(|&(r, c)| (r as u32, c as u32)).collect(),
        );
        let w: Vec<(usize, usize)> = wide.pairs().collect();
        let n: Vec<(usize, usize)> = narrow.pairs().map(|(r, c)| (r.idx(), c.idx())).collect();
        assert_eq!(w, n);
        assert_eq!(narrow.col(2), &[0u32, 3u32]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _: Dcsc = Dcsc::from_pairs(2, 2, vec![(2, 0)]);
    }
}
