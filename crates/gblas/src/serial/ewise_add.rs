//! Element-wise addition on the union of supports (`GrB_eWiseAdd`).

use super::vector::SparseVec;
use crate::types::Monoid;
use crate::Vid;

/// Union combine: positions present in both vectors combine through the
/// monoid; positions present in exactly one keep their value.
pub fn ewise_add<T, M>(u: &SparseVec<T>, v: &SparseVec<T>, monoid: M) -> SparseVec<T>
where
    T: Copy,
    M: Monoid<T>,
{
    assert_eq!(u.len(), v.len(), "vector length mismatch");
    let (ue, ve) = (u.entries(), v.entries());
    let mut out: Vec<(Vid, T)> = Vec::with_capacity(ue.len() + ve.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ue.len() || j < ve.len() {
        match (ue.get(i), ve.get(j)) {
            (Some(&(iu, tu)), Some(&(iv, tv))) => match iu.cmp(&iv) {
                std::cmp::Ordering::Less => {
                    out.push((iu, tu));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((iv, tv));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((iu, monoid.combine(tu, tv)));
                    i += 1;
                    j += 1;
                }
            },
            (Some(&(iu, tu)), None) => {
                out.push((iu, tu));
                i += 1;
            }
            (None, Some(&(iv, tv))) => {
                out.push((iv, tv));
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    SparseVec::from_entries(u.len(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AddUsize, MinUsize};

    #[test]
    fn union_semantics() {
        let u = SparseVec::from_entries(8, vec![(0, 1usize), (3, 5), (6, 2)]);
        let v = SparseVec::from_entries(8, vec![(3, 2usize), (4, 9)]);
        let w = ewise_add(&u, &v, AddUsize);
        assert_eq!(w.entries(), &[(0, 1), (3, 7), (4, 9), (6, 2)]);
        let m = ewise_add(&u, &v, MinUsize);
        assert_eq!(m.get(3), Some(2));
        assert_eq!(m.get(0), Some(1));
    }

    #[test]
    fn empty_operands() {
        let u: SparseVec<usize> = SparseVec::empty(5);
        let v = SparseVec::from_entries(5, vec![(2, 7usize)]);
        assert_eq!(ewise_add(&u, &v, AddUsize), v);
        assert_eq!(ewise_add(&v, &u, AddUsize), v);
        assert_eq!(ewise_add(&u, &u, AddUsize).nvals(), 0);
    }

    #[test]
    fn commutative_for_commutative_monoid() {
        let u = SparseVec::from_entries(10, vec![(1, 4usize), (5, 6)]);
        let v = SparseVec::from_entries(10, vec![(1, 2usize), (9, 8)]);
        assert_eq!(ewise_add(&u, &v, AddUsize), ewise_add(&v, &u, AddUsize));
    }
}
