//! Matrix-level operations on [`Csc`]: transpose, value maps, column
//! reductions, and column normalization (the Markov-clustering helpers).

use super::csc::Csc;
use crate::types::Monoid;
use crate::Vid;

/// Transposes a matrix (`GrB_transpose`).
pub fn transpose<T: Copy>(m: &Csc<T>) -> Csc<T> {
    let triples: Vec<(Vid, Vid, T)> = m.triples().map(|(i, j, v)| (j, i, v)).collect();
    Csc::from_triples(m.ncols(), m.nrows(), triples)
}

/// Maps a function over stored values (`GrB_apply` on matrices).
pub fn map_values<T, W, F>(m: &Csc<T>, f: F) -> Csc<W>
where
    T: Copy,
    W: Copy,
    F: Fn(T) -> W,
{
    let triples = m.triples().map(|(i, j, v)| (i, j, f(v))).collect();
    Csc::from_triples(m.nrows(), m.ncols(), triples)
}

/// Reduces each column through a monoid (`GrB_reduce` along rows);
/// empty columns yield the identity.
pub fn column_reduce<T, M>(m: &Csc<T>, monoid: M) -> Vec<T>
where
    T: Copy,
    M: Monoid<T>,
{
    let mut out = vec![monoid.identity(); m.ncols()];
    for (_, j, v) in m.triples() {
        out[j] = monoid.combine(out[j], v);
    }
    out
}

/// Rescales every column of a nonnegative matrix to sum to 1 (columns
/// summing to zero are left untouched). The MCL normalization step.
pub fn normalize_columns(m: &Csc<f64>) -> Csc<f64> {
    let sums = column_reduce(m, crate::types::AddF64);
    let triples = m
        .triples()
        .map(|(i, j, v)| (i, j, if sums[j] > 0.0 { v / sums[j] } else { v }))
        .collect();
    Csc::from_triples(m.nrows(), m.ncols(), triples)
}

/// Structural equality up to a tolerance on values; missing entries count
/// as zero. Used as the MCL convergence test.
pub fn max_abs_diff(a: &Csc<f64>, b: &Csc<f64>) -> f64 {
    use std::collections::HashMap;
    assert_eq!(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
        "shape mismatch"
    );
    let mut map: HashMap<(Vid, Vid), f64> = a.triples().map(|(i, j, v)| ((i, j), v)).collect();
    let mut d = 0.0f64;
    for (i, j, v) in b.triples() {
        let av = map.remove(&(i, j)).unwrap_or(0.0);
        d = d.max((av - v).abs());
    }
    for (_, av) in map {
        d = d.max(av.abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AddF64, MaxUsize};

    fn sample() -> Csc<f64> {
        Csc::from_triples(3, 2, vec![(0, 0, 1.0), (2, 0, 3.0), (1, 1, 2.0)])
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = transpose(&m);
        assert_eq!((t.nrows(), t.ncols()), (2, 3));
        assert_eq!(transpose(&t), m);
        let entries: Vec<_> = t.triples().collect();
        assert!(entries.contains(&(0, 2, 3.0)));
    }

    #[test]
    fn map_values_changes_type() {
        let m = sample();
        let ints: Csc<usize> = map_values(&m, |v| v as usize);
        assert_eq!(ints.nnz(), 3);
        assert_eq!(column_reduce(&ints, MaxUsize), vec![3, 2]);
    }

    #[test]
    fn column_reduce_sums() {
        assert_eq!(column_reduce(&sample(), AddF64), vec![4.0, 2.0]);
        // Empty columns give the identity.
        let empty: Csc<f64> = Csc::from_triples(2, 3, vec![(0, 1, 5.0)]);
        assert_eq!(column_reduce(&empty, AddF64), vec![0.0, 5.0, 0.0]);
    }

    #[test]
    fn normalize_columns_is_stochastic() {
        let n = normalize_columns(&sample());
        let sums = column_reduce(&n, AddF64);
        for s in sums {
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Normalization is idempotent.
        assert!(max_abs_diff(&n, &normalize_columns(&n)) < 1e-12);
    }

    #[test]
    fn max_abs_diff_sees_missing_entries() {
        let a = sample();
        let b = Csc::from_triples(3, 2, vec![(0, 0, 1.0), (1, 1, 2.0)]);
        // (2,0,3.0) missing from b.
        assert!((max_abs_diff(&a, &b) - 3.0).abs() < 1e-12);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }
}
