//! Serial GraphBLAS operations.
//!
//! Naming follows the paper's usage of the C API:
//!
//! * [`mxv_dense`] / [`mxv_sparse`] — `GrB_mxv` on the `(Select2nd, min)`
//!   style semiring over a pattern matrix: the multiply passes the vector
//!   value through, the monoid argument accumulates. The two entry points
//!   mirror the SpMV / SpMSpV dispatch the paper's `GrB_mxv` performs
//!   internally based on input sparsity.
//! * [`ewise_mult`] — `GrB_eWiseMult` on the intersection of supports.
//! * [`extract`] — vector-variant `GrB_extract`: gather `u[indices]`.
//! * [`assign`] — vector-variant `GrB_assign`: scatter into `w[indices]`.
//!   Duplicate target indices are resolved with the supplied monoid (the
//!   PRAM original allows arbitrary CRCW winners; a monoid makes serial
//!   and distributed runs bit-identical).
//! * [`reduce`], [`apply`], [`select`] — the obvious GraphBLAS siblings.
//!
//! # Mask semantics
//!
//! All `mxv` variants share one mask contract: **the mask restricts the
//! output support only**. An output entry exists at row `i` iff the matrix
//! has at least one stored entry in row `i` with a corresponding input
//! contribution *and* `mask.allows(i)`; its value is the monoid fold of
//! **all** of row `i`'s contributions, never reduced by the mask. The two
//! implementations realize this differently — [`mxv_dense`] accumulates
//! everywhere and filters when collecting the result, while [`mxv_sparse`]
//! skips disallowed rows *during* accumulation as an optimization — but
//! because rows accumulate independently, skipping a disallowed row early
//! changes no allowed row's value, so the observable results are
//! identical. The non-idempotent-monoid test
//! `mask_semantics_identical_across_paths` pins this equivalence down.
//!
//! # Parallel variants
//!
//! [`mxv_dense_par`], [`mxv_sparse_par`], [`assign_par`], [`extract_par`]
//! and [`apply_par`] run the same kernels on a shared `rayon` worker pool
//! ([`rayon::ThreadPoolBuilder`] keyed by thread count; `threads <= 1`
//! executes inline). [`mxv_dense_par`] splits *output rows*; the other
//! chunked kernels split the input into contiguous chunks whose partial
//! results combine **in chunk order**, so every monoid fold sees its
//! contributions in exactly the serial order (segmented associatively).
//! [`mxv_sparse_par`] uses a merge-free owner-partitioned accumulator (see
//! its docs): each worker owns a disjoint slice of the output index space
//! and folds only its own rows, again in serial contribution order. All
//! parallel kernels are bit-identical to their serial counterparts for any
//! associative monoid with a strict identity, which every monoid in
//! [`crate::types`] is.

use super::csc::{CsrMirror, Pattern};
use super::vector::SparseVec;
use crate::types::{Mask, Monoid};
use crate::Vid;
use lacc_graph::Idx;
use rayon::{ThreadPool, ThreadPoolBuilder};

/// The shared kernel pool for `threads` workers (`<= 1` ⇒ inline).
pub(crate) fn kernel_pool(threads: usize) -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("kernel pool construction cannot fail")
}

/// `y = A ⊕.2nd x` with a dense input vector (SpMV). Returns the sparse
/// result restricted by `mask`.
///
/// ```
/// use gblas::serial::{mxv_dense, Pattern};
/// use gblas::{Mask, MinUsize};
/// use lacc_graph::generators::path_graph;
///
/// // On a path 0-1-2, each vertex takes the min of its neighbors' values.
/// let a = Pattern::from_graph(&path_graph(3));
/// let y = mxv_dense(&a, &[5usize, 0, 9], Mask::None, MinUsize);
/// assert_eq!(y.to_dense(usize::MAX), vec![0, 5, 0]);
/// ```
pub fn mxv_dense<T, M, I>(a: &Pattern<I>, x: &[T], mask: Mask<'_>, monoid: M) -> SparseVec<T, I>
where
    T: Copy,
    M: Monoid<T>,
    I: Idx,
{
    let n = a.nrows();
    assert_eq!(x.len(), a.ncols(), "vector length mismatch");
    let mut acc = vec![monoid.identity(); n];
    let mut touched = vec![false; n];
    for (j, &xv) in x.iter().enumerate() {
        for &i in a.col(j) {
            acc[i.idx()] = monoid.combine(acc[i.idx()], xv);
            touched[i.idx()] = true;
        }
    }
    let entries = (0..n)
        .filter(|&i| touched[i] && mask.allows(i))
        .map(|i| (I::from_usize(i), acc[i]))
        .collect();
    SparseVec::from_entries(n, entries)
}

/// `y = A ⊕.2nd x` with a sparse input vector (SpMSpV).
pub fn mxv_sparse<T, M, I>(
    a: &Pattern<I>,
    x: &SparseVec<T, I>,
    mask: Mask<'_>,
    monoid: M,
) -> SparseVec<T, I>
where
    T: Copy,
    M: Monoid<T>,
    I: Idx,
{
    let n = a.nrows();
    assert_eq!(x.len(), a.ncols(), "vector length mismatch");
    let mut acc = vec![monoid.identity(); n];
    let mut touched: Vec<I> = Vec::new();
    let mut is_touched = vec![false; n];
    for &(j, xv) in x.entries() {
        for &i in a.col(j.idx()) {
            if !mask.allows(i.idx()) {
                continue;
            }
            if !is_touched[i.idx()] {
                is_touched[i.idx()] = true;
                touched.push(i);
            }
            acc[i.idx()] = monoid.combine(acc[i.idx()], xv);
        }
    }
    touched.sort_unstable();
    let entries = touched.into_iter().map(|i| (i, acc[i.idx()])).collect();
    SparseVec::from_entries(n, entries)
}

/// Element-wise multiply on the intersection of two sparse supports.
pub fn ewise_mult<T, U, W, F, I>(u: &SparseVec<T, I>, v: &SparseVec<U, I>, f: F) -> SparseVec<W, I>
where
    T: Copy,
    U: Copy,
    W: Copy,
    F: Fn(T, U) -> W,
    I: Idx,
{
    assert_eq!(u.len(), v.len(), "vector length mismatch");
    let (ue, ve) = (u.entries(), v.entries());
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ue.len() && j < ve.len() {
        match ue[i].0.cmp(&ve[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push((ue[i].0, f(ue[i].1, ve[j].1)));
                i += 1;
                j += 1;
            }
        }
    }
    SparseVec::from_entries(u.len(), out)
}

/// Element-wise multiply of a sparse vector with a dense one: the result
/// has the sparse operand's support.
pub fn ewise_mult_dense<T, U, W, F, I>(u: &SparseVec<T, I>, dense: &[U], f: F) -> SparseVec<W, I>
where
    T: Copy,
    U: Copy,
    W: Copy,
    F: Fn(T, U) -> W,
    I: Idx,
{
    assert_eq!(u.len(), dense.len(), "vector length mismatch");
    let entries = u
        .entries()
        .iter()
        .map(|&(i, t)| (i, f(t, dense[i.idx()])))
        .collect();
    SparseVec::from_entries(u.len(), entries)
}

/// Gather: `w[k] = src[indices[k]]` (`GrB_extract` with an index list).
pub fn extract<T: Copy>(src: &[T], indices: &[Vid]) -> Vec<T> {
    indices.iter().map(|&i| src[i]).collect()
}

/// Scatter: `w[i] ← v` for each `(i, v)` update, where duplicate target
/// indices within the batch combine through the monoid against each other
/// (not against the old value — the paper's assigns overwrite).
///
/// Returns the number of elements whose value actually changed (LACC's
/// convergence test is "`f` remains unchanged").
pub fn assign<T, M>(w: &mut [T], updates: &[(Vid, T)], monoid: M) -> usize
where
    T: Copy + PartialEq,
    M: Monoid<T>,
{
    // Combine duplicates first so the result is order-independent, then
    // overwrite.
    let mut combined: std::collections::HashMap<Vid, T> = std::collections::HashMap::new();
    for &(i, v) in updates {
        combined
            .entry(i)
            .and_modify(|acc| *acc = monoid.combine(*acc, v))
            .or_insert(v);
    }
    let mut changed = 0;
    for (i, v) in combined {
        if w[i] != v {
            w[i] = v;
            changed += 1;
        }
    }
    changed
}

/// Reduces all stored entries of `u` through the monoid.
pub fn reduce<T, M, I>(u: &SparseVec<T, I>, monoid: M) -> T
where
    T: Copy,
    M: Monoid<T>,
    I: Idx,
{
    u.entries()
        .iter()
        .fold(monoid.identity(), |acc, &(_, v)| monoid.combine(acc, v))
}

/// Maps a function over stored values (`GrB_apply`).
pub fn apply<T, W, F, I>(u: &SparseVec<T, I>, f: F) -> SparseVec<W, I>
where
    T: Copy,
    W: Copy,
    F: Fn(T) -> W,
    I: Idx,
{
    let entries = u.entries().iter().map(|&(i, v)| (i, f(v))).collect();
    SparseVec::from_entries(u.len(), entries)
}

/// Keeps entries satisfying the predicate (`GrB_select`).
pub fn select<T, F, I>(u: &SparseVec<T, I>, pred: F) -> SparseVec<T, I>
where
    T: Copy,
    F: Fn(Vid, T) -> bool,
    I: Idx,
{
    let entries = u
        .entries()
        .iter()
        .copied()
        .filter(|&(i, v)| pred(i.idx(), v))
        .collect();
    SparseVec::from_entries(u.len(), entries)
}

/// Parallel SpMV: row-split [`mxv_dense`] over the matrix's row-major
/// mirror.
///
/// Each worker owns a contiguous row range, so accumulator slots are
/// disjoint and every row folds its contributions in ascending-`j` order —
/// exactly the order the serial column sweep combines them in. The result
/// is therefore bit-identical to `mxv_dense(a, x, mask, monoid)` where
/// `rows == a.csr_mirror()`, for any associative monoid.
pub fn mxv_dense_par<T, M, I>(
    rows: &CsrMirror<I>,
    x: &[T],
    mask: Mask<'_>,
    monoid: M,
    threads: usize,
) -> SparseVec<T, I>
where
    T: Copy + Send + Sync,
    M: Monoid<T>,
    I: Idx,
{
    let n = rows.nrows();
    assert_eq!(x.len(), rows.ncols(), "vector length mismatch");
    let pool = kernel_pool(threads);
    let chunk = n.div_ceil(pool.current_num_threads()).max(1);
    let nchunks = if n == 0 { 0 } else { n.div_ceil(chunk) };
    let mut parts: Vec<Vec<(I, T)>> = vec![Vec::new(); nchunks];
    pool.scope(|s| {
        for (k, slot) in parts.iter_mut().enumerate() {
            let lo = k * chunk;
            let hi = ((k + 1) * chunk).min(n);
            s.spawn(move || {
                let mut out = Vec::new();
                for i in lo..hi {
                    let cols = rows.row(i);
                    // `touched` in the serial kernel ⇔ the row has entries.
                    if cols.is_empty() || !mask.allows(i) {
                        continue;
                    }
                    let mut acc = monoid.identity();
                    for &j in cols {
                        acc = monoid.combine(acc, x[j.idx()]);
                    }
                    out.push((I::from_usize(i), acc));
                }
                *slot = out;
            });
        }
    });
    let entries = if parts.len() == 1 {
        parts.pop().unwrap()
    } else {
        parts.concat()
    };
    SparseVec::from_entries(n, entries)
}

/// Parallel SpMSpV with a merge-free **owner-partitioned accumulator**.
///
/// The old scheme chunked the input entries and gave every worker a
/// full-height accumulator (`threads × n` identity writes), then folded
/// the partials together serially — a merge pass that streamed all
/// `threads` accumulators through one core and left the kernel
/// bandwidth-bound below 1× speedup. Here the *output* index space is
/// what gets partitioned:
///
/// 1. **Scan/bin** — workers scan contiguous input chunks and, for every
///    matrix entry the mask admits, push `(row, value)` into the bin of
///    the row's owner (owner = `row / ceil(n/threads)`).
/// 2. **Fold** — each owner folds the bins targeting its disjoint
///    accumulator slice. No other thread writes those rows, so there is
///    no cross-thread merge and no second pass over `threads × n` words.
/// 3. **Collect** — owners' sorted touched lists concatenate in owner
///    order, which is ascending row order.
///
/// Bit-identity with [`mxv_sparse`]: scanners process contiguous input
/// ranges and owners drain scanner bins in scanner order, so each row
/// folds the same contributions in exactly the serial input order; the
/// mask is applied at the same point (during the scan); the output is
/// sorted the same way. Holds for any associative monoid.
pub fn mxv_sparse_par<T, M, I>(
    a: &Pattern<I>,
    x: &SparseVec<T, I>,
    mask: Mask<'_>,
    monoid: M,
    threads: usize,
) -> SparseVec<T, I>
where
    T: Copy + Send + Sync,
    M: Monoid<T>,
    I: Idx,
{
    let n = a.nrows();
    assert_eq!(x.len(), a.ncols(), "vector length mismatch");
    let xe = x.entries();
    let pool = kernel_pool(threads);
    let nt = pool.current_num_threads();
    if nt <= 1 || xe.len() < 2 || n == 0 {
        return mxv_sparse(a, x, mask, monoid);
    }
    let part = n.div_ceil(nt).max(1);
    let nparts = n.div_ceil(part);
    let chunk = xe.len().div_ceil(nt).max(1);

    // Phase 1: scanners bin admitted contributions by owner.
    let mut bins: Vec<Vec<Vec<(I, T)>>> = Vec::new();
    bins.resize_with(xe.chunks(chunk).len(), || {
        let mut owners = Vec::new();
        owners.resize_with(nparts, Vec::new);
        owners
    });
    pool.scope(|s| {
        for (slot, xs) in bins.iter_mut().zip(xe.chunks(chunk)) {
            s.spawn(move || {
                for &(j, xv) in xs {
                    for &i in a.col(j.idx()) {
                        if !mask.allows(i.idx()) {
                            continue;
                        }
                        slot[i.idx() / part].push((i, xv));
                    }
                }
            });
        }
    });

    // Phase 2: owners fold into disjoint accumulator slices — merge-free.
    let mut acc: Vec<T> = vec![monoid.identity(); n];
    let mut is_touched: Vec<bool> = vec![false; n];
    let mut owner_touched: Vec<Vec<I>> = Vec::new();
    owner_touched.resize_with(nparts, Vec::new);
    let bins = &bins;
    pool.scope(|s| {
        for (k, ((acc_k, ist_k), touched_k)) in acc
            .chunks_mut(part)
            .zip(is_touched.chunks_mut(part))
            .zip(owner_touched.iter_mut())
            .enumerate()
        {
            s.spawn(move || {
                let lo = k * part;
                for scanner in bins {
                    for &(i, xv) in &scanner[k] {
                        let li = i.idx() - lo;
                        if !ist_k[li] {
                            ist_k[li] = true;
                            touched_k.push(i);
                        }
                        acc_k[li] = monoid.combine(acc_k[li], xv);
                    }
                }
                touched_k.sort_unstable();
            });
        }
    });

    // Phase 3: owner ranges ascend, so concatenation is globally sorted.
    let total: usize = owner_touched.iter().map(Vec::len).sum();
    let mut entries = Vec::with_capacity(total);
    for touched_k in &owner_touched {
        entries.extend(touched_k.iter().map(|&i| (i, acc[i.idx()])));
    }
    SparseVec::from_entries(n, entries)
}

/// Parallel [`assign`]: per-worker duplicate combination over contiguous
/// update chunks, merged in chunk order (= update order, segmented), then
/// a serial overwrite pass. Returns the changed-element count, identical
/// to the serial kernel's.
pub fn assign_par<T, M>(w: &mut [T], updates: &[(Vid, T)], monoid: M, threads: usize) -> usize
where
    T: Copy + PartialEq + Send + Sync,
    M: Monoid<T>,
{
    let pool = kernel_pool(threads);
    if pool.current_num_threads() <= 1 || updates.len() < 2 {
        return assign(w, updates, monoid);
    }
    let chunk = updates.len().div_ceil(pool.current_num_threads()).max(1);
    let mut parts: Vec<std::collections::HashMap<Vid, T>> =
        vec![std::collections::HashMap::new(); updates.chunks(chunk).len()];
    pool.scope(|s| {
        for (slot, upd) in parts.iter_mut().zip(updates.chunks(chunk)) {
            s.spawn(move || {
                for &(i, v) in upd {
                    slot.entry(i)
                        .and_modify(|acc| *acc = monoid.combine(*acc, v))
                        .or_insert(v);
                }
            });
        }
    });
    let mut combined: std::collections::HashMap<Vid, T> = std::collections::HashMap::new();
    for part in parts {
        for (i, v) in part {
            combined
                .entry(i)
                .and_modify(|acc| *acc = monoid.combine(*acc, v))
                .or_insert(v);
        }
    }
    let mut changed = 0;
    for (i, v) in combined {
        if w[i] != v {
            w[i] = v;
            changed += 1;
        }
    }
    changed
}

/// Parallel [`extract`]: the index list is split into contiguous chunks
/// gathered concurrently, concatenated in chunk order.
pub fn extract_par<T: Copy + Send + Sync>(src: &[T], indices: &[Vid], threads: usize) -> Vec<T> {
    let pool = kernel_pool(threads);
    if pool.current_num_threads() <= 1 || indices.len() < 2 {
        return extract(src, indices);
    }
    let chunk = indices.len().div_ceil(pool.current_num_threads()).max(1);
    let mut parts: Vec<Vec<T>> = vec![Vec::new(); indices.chunks(chunk).len()];
    pool.scope(|s| {
        for (slot, idx) in parts.iter_mut().zip(indices.chunks(chunk)) {
            s.spawn(move || *slot = idx.iter().map(|&i| src[i]).collect());
        }
    });
    parts.concat()
}

/// Parallel [`apply`]: stored entries mapped in contiguous chunks.
pub fn apply_par<T, W, F, I>(u: &SparseVec<T, I>, f: F, threads: usize) -> SparseVec<W, I>
where
    T: Copy + Sync,
    W: Copy + Send,
    F: Fn(T) -> W + Sync,
    I: Idx,
{
    let pool = kernel_pool(threads);
    let ue = u.entries();
    if pool.current_num_threads() <= 1 || ue.len() < 2 {
        return apply(u, f);
    }
    let chunk = ue.len().div_ceil(pool.current_num_threads()).max(1);
    let mut parts: Vec<Vec<(I, W)>> = vec![Vec::new(); ue.chunks(chunk).len()];
    let f = &f;
    pool.scope(|s| {
        for (slot, es) in parts.iter_mut().zip(ue.chunks(chunk)) {
            s.spawn(move || *slot = es.iter().map(|&(i, v)| (i, f(v))).collect());
        }
    });
    SparseVec::from_entries(u.len(), parts.concat())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AddUsize, MinUsize};
    use lacc_graph::generators::{path_graph, star_graph};

    #[test]
    fn mxv_dense_min_neighbor() {
        // Path 0-1-2-3; x = [10, 0, 30, 20].
        let a = Pattern::from_graph(&path_graph(4));
        let x = vec![10usize, 0, 30, 20];
        let y = mxv_dense(&a, &x, Mask::None, MinUsize);
        // y[i] = min of neighbors' x.
        assert_eq!(y.to_dense(usize::MAX), vec![0, 10, 0, 30]);
    }

    #[test]
    fn mxv_dense_masked() {
        let a = Pattern::from_graph(&path_graph(4));
        let x = vec![10usize, 0, 30, 20];
        let mask = [true, false, true, false];
        let y = mxv_dense(&a, &x, Mask::Keep(&mask), MinUsize);
        assert_eq!(y.entries(), &[(0, 0), (2, 0)]);
        let yc = mxv_dense(&a, &x, Mask::Complement(&mask), MinUsize);
        assert_eq!(yc.entries(), &[(1, 10), (3, 30)]);
    }

    #[test]
    fn mxv_sparse_matches_dense() {
        let a = Pattern::from_graph(&star_graph(6));
        let dense_x = vec![9usize, 4, 2, 7, 5, 1];
        let sparse_x = SparseVec::dense(&dense_x);
        let yd = mxv_dense(&a, &dense_x, Mask::None, MinUsize);
        let ys = mxv_sparse(&a, &sparse_x, Mask::None, MinUsize);
        assert_eq!(yd, ys);
    }

    #[test]
    fn mxv_sparse_restricted_support() {
        let a = Pattern::from_graph(&path_graph(5));
        // Only vertex 2 active.
        let x = SparseVec::from_entries(5, vec![(2, 42usize)]);
        let y = mxv_sparse(&a, &x, Mask::None, MinUsize);
        assert_eq!(y.entries(), &[(1, 42), (3, 42)]);
    }

    #[test]
    fn mxv_isolated_vertex_gets_no_entry() {
        let el = lacc_graph::EdgeList::from_pairs(3, [(0, 1)]);
        let g: lacc_graph::CsrGraph = lacc_graph::CsrGraph::from_edges(el);
        let a = Pattern::from_graph(&g);
        let y = mxv_dense(&a, &[5usize, 6, 7], Mask::None, MinUsize);
        assert_eq!(y.get(2), None);
        assert_eq!(y.nvals(), 2);
    }

    #[test]
    fn ewise_mult_intersection() {
        let u: SparseVec<usize> = SparseVec::from_entries(6, vec![(0, 2), (2, 3), (5, 4)]);
        let v: SparseVec<usize> = SparseVec::from_entries(6, vec![(2, 10), (4, 20), (5, 30)]);
        let w = ewise_mult(&u, &v, |a, b| a + b);
        assert_eq!(w.entries(), &[(2, 13), (5, 34)]);
    }

    #[test]
    fn ewise_mult_dense_keeps_sparse_support() {
        let u: SparseVec<usize> = SparseVec::from_entries(4, vec![(1, 100), (3, 200)]);
        let d = vec![1usize, 2, 3, 4];
        // "second" operator: take the dense value (Algorithm 3's f_h).
        let w = ewise_mult_dense(&u, &d, |_, b| b);
        assert_eq!(w.entries(), &[(1, 2), (3, 4)]);
        // "min" operator (Algorithm 3 line 5).
        let m = ewise_mult_dense(&u, &d, |a, b| a.min(b));
        assert_eq!(m.entries(), &[(1, 2), (3, 4)]);
    }

    #[test]
    fn extract_and_assign_roundtrip() {
        let src = vec![10usize, 11, 12, 13];
        assert_eq!(extract(&src, &[3, 0, 0]), vec![13, 10, 10]);
        let mut w = vec![0usize; 4];
        assign(&mut w, &[(1, 5), (3, 6)], MinUsize);
        assert_eq!(w, vec![0, 5, 0, 6]);
    }

    #[test]
    fn assign_duplicates_resolved_by_monoid() {
        let mut w = vec![100usize; 3];
        assign(&mut w, &[(1, 7), (1, 3), (1, 9)], MinUsize);
        assert_eq!(w[1], 3);
        // Overwrite semantics: old value does not participate.
        let mut w2 = vec![0usize; 3];
        assign(&mut w2, &[(2, 9)], MinUsize);
        assert_eq!(w2[2], 9);
    }

    #[test]
    fn reduce_apply_select() {
        let u: SparseVec<usize> = SparseVec::from_entries(10, vec![(1, 5), (4, 2), (9, 8)]);
        assert_eq!(reduce(&u, MinUsize), 2);
        assert_eq!(reduce(&u, AddUsize), 15);
        let doubled = apply(&u, |v| v * 2);
        assert_eq!(doubled.get(4), Some(4));
        let big = select(&u, |_, v| v >= 5);
        assert_eq!(big.nvals(), 2);
    }

    #[test]
    fn reduce_empty_is_identity() {
        let u: SparseVec<usize> = SparseVec::empty(5);
        assert_eq!(reduce(&u, MinUsize), usize::MAX);
    }

    /// Pins the documented mask contract with a **non-idempotent** monoid
    /// (`AddUsize`): if either path dropped or double-counted a
    /// contribution depending on when the mask is applied, the sums would
    /// differ.
    #[test]
    fn mask_semantics_identical_across_paths() {
        for g in [path_graph(7), star_graph(7)] {
            let a = Pattern::from_graph(&g);
            let x: Vec<usize> = (0..7).map(|v| v * 3 + 1).collect();
            let xs = SparseVec::dense(&x);
            let flags = [true, false, true, true, false, false, true];
            for mask in [Mask::None, Mask::Keep(&flags), Mask::Complement(&flags)] {
                let yd = mxv_dense(&a, &x, mask, AddUsize);
                let ys = mxv_sparse(&a, &xs, mask, AddUsize);
                assert_eq!(yd, ys, "dense vs sparse mask semantics diverge");
                let rows = a.csr_mirror();
                for t in [1, 2, 4] {
                    assert_eq!(yd, mxv_dense_par(&rows, &x, mask, AddUsize, t));
                    assert_eq!(ys, mxv_sparse_par(&a, &xs, mask, AddUsize, t));
                }
            }
        }
    }

    #[test]
    fn parallel_mxv_matches_serial_bitwise() {
        for g in [path_graph(33), star_graph(17)] {
            let a = Pattern::from_graph(&g);
            let rows = a.csr_mirror();
            let n = a.nrows();
            let x: Vec<usize> = (0..n).map(|v| (v * 7 + 3) % 11).collect();
            let flags: Vec<bool> = (0..n).map(|v| v % 3 != 0).collect();
            // Sparse input with partial support exercises SpMSpV chunking.
            let xs = SparseVec::from_entries(
                n,
                (0..n).filter(|v| v % 2 == 0).map(|v| (v, x[v])).collect(),
            );
            for mask in [Mask::None, Mask::Keep(&flags), Mask::Complement(&flags)] {
                let yd = mxv_dense(&a, &x, mask, MinUsize);
                let ys = mxv_sparse(&a, &xs, mask, AddUsize);
                for t in [1, 2, 4] {
                    assert_eq!(
                        yd,
                        mxv_dense_par(&rows, &x, mask, MinUsize, t),
                        "threads={t}"
                    );
                    assert_eq!(
                        ys,
                        mxv_sparse_par(&a, &xs, mask, AddUsize, t),
                        "threads={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_assign_extract_apply_match_serial() {
        let updates: Vec<(Vid, usize)> =
            (0..40).map(|k| ((k * 13) % 16, (k * 5 + 2) % 9)).collect();
        for t in [1, 2, 4] {
            let mut w1 = vec![100usize; 16];
            let mut w2 = vec![100usize; 16];
            let c1 = assign(&mut w1, &updates, MinUsize);
            let c2 = assign_par(&mut w2, &updates, MinUsize, t);
            assert_eq!((c1, &w1), (c2, &w2), "threads={t}");

            let src: Vec<usize> = (0..32).map(|v| v * v).collect();
            let idx: Vec<Vid> = (0..50).map(|k| (k * 17) % 32).collect();
            assert_eq!(
                extract(&src, &idx),
                extract_par(&src, &idx, t),
                "threads={t}"
            );

            let u = SparseVec::from_entries(64, (0..64).step_by(3).map(|i| (i, i + 1)).collect());
            let f = |v: usize| v * 2 + 1;
            assert_eq!(apply(&u, f), apply_par(&u, f, t), "threads={t}");
        }
    }

    #[test]
    fn owner_partitioned_sparse_par_identical_at_u32() {
        // The merge-free accumulator must stay bit-identical to serial at
        // the narrow index width too.
        let g = path_graph(33).try_narrow::<u32>().unwrap();
        let a = Pattern::from_graph(&g);
        let n = a.nrows();
        let xs: SparseVec<u32, u32> = SparseVec::from_entries(
            n,
            (0..n as u32)
                .filter(|v| v % 2 == 0)
                .map(|v| (v, (v * 7 + 3) % 11))
                .collect(),
        );
        let flags: Vec<bool> = (0..n).map(|v| v % 3 != 0).collect();
        for mask in [Mask::None, Mask::Keep(&flags), Mask::Complement(&flags)] {
            let serial = mxv_sparse(&a, &xs, mask, MinUsize);
            for t in [1, 2, 4] {
                assert_eq!(serial, mxv_sparse_par(&a, &xs, mask, MinUsize, t), "t={t}");
            }
        }
    }

    #[test]
    fn parallel_kernels_handle_empty_inputs() {
        let g: lacc_graph::CsrGraph =
            lacc_graph::CsrGraph::from_edges(lacc_graph::EdgeList::new(4));
        let a = Pattern::from_graph(&g);
        let rows = a.csr_mirror();
        let x = vec![1usize; 4];
        assert_eq!(mxv_dense_par(&rows, &x, Mask::None, MinUsize, 4).nvals(), 0);
        let xs: SparseVec<usize> = SparseVec::empty(4);
        assert_eq!(mxv_sparse_par(&a, &xs, Mask::None, MinUsize, 4).nvals(), 0);
        let mut w: Vec<usize> = vec![7; 4];
        assert_eq!(assign_par(&mut w, &[], MinUsize, 4), 0);
        assert_eq!(extract_par(&w, &[], 4), Vec::<usize>::new());
    }
}
