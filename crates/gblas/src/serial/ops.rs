//! Serial GraphBLAS operations.
//!
//! Naming follows the paper's usage of the C API:
//!
//! * [`mxv_dense`] / [`mxv_sparse`] — `GrB_mxv` on the `(Select2nd, min)`
//!   style semiring over a pattern matrix: the multiply passes the vector
//!   value through, the monoid argument accumulates. The two entry points
//!   mirror the SpMV / SpMSpV dispatch the paper's `GrB_mxv` performs
//!   internally based on input sparsity.
//! * [`ewise_mult`] — `GrB_eWiseMult` on the intersection of supports.
//! * [`extract`] — vector-variant `GrB_extract`: gather `u[indices]`.
//! * [`assign`] — vector-variant `GrB_assign`: scatter into `w[indices]`.
//!   Duplicate target indices are resolved with the supplied monoid (the
//!   PRAM original allows arbitrary CRCW winners; a monoid makes serial
//!   and distributed runs bit-identical).
//! * [`reduce`], [`apply`], [`select`] — the obvious GraphBLAS siblings.

use super::csc::Pattern;
use super::vector::SparseVec;
use crate::types::{Mask, Monoid};
use crate::Vid;

/// `y = A ⊕.2nd x` with a dense input vector (SpMV). Returns the sparse
/// result restricted by `mask`.
///
/// ```
/// use gblas::serial::{mxv_dense, Pattern};
/// use gblas::{Mask, MinUsize};
/// use lacc_graph::generators::path_graph;
///
/// // On a path 0-1-2, each vertex takes the min of its neighbors' values.
/// let a = Pattern::from_graph(&path_graph(3));
/// let y = mxv_dense(&a, &[5usize, 0, 9], Mask::None, MinUsize);
/// assert_eq!(y.to_dense(usize::MAX), vec![0, 5, 0]);
/// ```
pub fn mxv_dense<T, M>(a: &Pattern, x: &[T], mask: Mask<'_>, monoid: M) -> SparseVec<T>
where
    T: Copy,
    M: Monoid<T>,
{
    let n = a.nrows();
    assert_eq!(x.len(), a.ncols(), "vector length mismatch");
    let mut acc = vec![monoid.identity(); n];
    let mut touched = vec![false; n];
    for (j, &xv) in x.iter().enumerate() {
        for &i in a.col(j) {
            acc[i] = monoid.combine(acc[i], xv);
            touched[i] = true;
        }
    }
    let entries = (0..n)
        .filter(|&i| touched[i] && mask.allows(i))
        .map(|i| (i, acc[i]))
        .collect();
    SparseVec::from_entries(n, entries)
}

/// `y = A ⊕.2nd x` with a sparse input vector (SpMSpV).
pub fn mxv_sparse<T, M>(a: &Pattern, x: &SparseVec<T>, mask: Mask<'_>, monoid: M) -> SparseVec<T>
where
    T: Copy,
    M: Monoid<T>,
{
    let n = a.nrows();
    assert_eq!(x.len(), a.ncols(), "vector length mismatch");
    let mut acc = vec![monoid.identity(); n];
    let mut touched: Vec<Vid> = Vec::new();
    let mut is_touched = vec![false; n];
    for &(j, xv) in x.entries() {
        for &i in a.col(j) {
            if !mask.allows(i) {
                continue;
            }
            if !is_touched[i] {
                is_touched[i] = true;
                touched.push(i);
            }
            acc[i] = monoid.combine(acc[i], xv);
        }
    }
    touched.sort_unstable();
    let entries = touched.into_iter().map(|i| (i, acc[i])).collect();
    SparseVec::from_entries(n, entries)
}

/// Element-wise multiply on the intersection of two sparse supports.
pub fn ewise_mult<T, U, W, F>(u: &SparseVec<T>, v: &SparseVec<U>, f: F) -> SparseVec<W>
where
    T: Copy,
    U: Copy,
    W: Copy,
    F: Fn(T, U) -> W,
{
    assert_eq!(u.len(), v.len(), "vector length mismatch");
    let (ue, ve) = (u.entries(), v.entries());
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ue.len() && j < ve.len() {
        match ue[i].0.cmp(&ve[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push((ue[i].0, f(ue[i].1, ve[j].1)));
                i += 1;
                j += 1;
            }
        }
    }
    SparseVec::from_entries(u.len(), out)
}

/// Element-wise multiply of a sparse vector with a dense one: the result
/// has the sparse operand's support.
pub fn ewise_mult_dense<T, U, W, F>(u: &SparseVec<T>, dense: &[U], f: F) -> SparseVec<W>
where
    T: Copy,
    U: Copy,
    W: Copy,
    F: Fn(T, U) -> W,
{
    assert_eq!(u.len(), dense.len(), "vector length mismatch");
    let entries = u.entries().iter().map(|&(i, t)| (i, f(t, dense[i]))).collect();
    SparseVec::from_entries(u.len(), entries)
}

/// Gather: `w[k] = src[indices[k]]` (`GrB_extract` with an index list).
pub fn extract<T: Copy>(src: &[T], indices: &[Vid]) -> Vec<T> {
    indices.iter().map(|&i| src[i]).collect()
}

/// Scatter: `w[i] ← v` for each `(i, v)` update, where duplicate target
/// indices within the batch combine through the monoid against each other
/// (not against the old value — the paper's assigns overwrite).
///
/// Returns the number of elements whose value actually changed (LACC's
/// convergence test is "`f` remains unchanged").
pub fn assign<T, M>(w: &mut [T], updates: &[(Vid, T)], monoid: M) -> usize
where
    T: Copy + PartialEq,
    M: Monoid<T>,
{
    // Combine duplicates first so the result is order-independent, then
    // overwrite.
    let mut combined: std::collections::HashMap<Vid, T> = std::collections::HashMap::new();
    for &(i, v) in updates {
        combined
            .entry(i)
            .and_modify(|acc| *acc = monoid.combine(*acc, v))
            .or_insert(v);
    }
    let mut changed = 0;
    for (i, v) in combined {
        if w[i] != v {
            w[i] = v;
            changed += 1;
        }
    }
    changed
}

/// Reduces all stored entries of `u` through the monoid.
pub fn reduce<T, M>(u: &SparseVec<T>, monoid: M) -> T
where
    T: Copy,
    M: Monoid<T>,
{
    u.entries()
        .iter()
        .fold(monoid.identity(), |acc, &(_, v)| monoid.combine(acc, v))
}

/// Maps a function over stored values (`GrB_apply`).
pub fn apply<T, W, F>(u: &SparseVec<T>, f: F) -> SparseVec<W>
where
    T: Copy,
    W: Copy,
    F: Fn(T) -> W,
{
    let entries = u.entries().iter().map(|&(i, v)| (i, f(v))).collect();
    SparseVec::from_entries(u.len(), entries)
}

/// Keeps entries satisfying the predicate (`GrB_select`).
pub fn select<T, F>(u: &SparseVec<T>, pred: F) -> SparseVec<T>
where
    T: Copy,
    F: Fn(Vid, T) -> bool,
{
    let entries = u.entries().iter().copied().filter(|&(i, v)| pred(i, v)).collect();
    SparseVec::from_entries(u.len(), entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AddUsize, MinUsize};
    use lacc_graph::generators::{path_graph, star_graph};

    #[test]
    fn mxv_dense_min_neighbor() {
        // Path 0-1-2-3; x = [10, 0, 30, 20].
        let a = Pattern::from_graph(&path_graph(4));
        let x = vec![10usize, 0, 30, 20];
        let y = mxv_dense(&a, &x, Mask::None, MinUsize);
        // y[i] = min of neighbors' x.
        assert_eq!(y.to_dense(usize::MAX), vec![0, 10, 0, 30]);
    }

    #[test]
    fn mxv_dense_masked() {
        let a = Pattern::from_graph(&path_graph(4));
        let x = vec![10usize, 0, 30, 20];
        let mask = [true, false, true, false];
        let y = mxv_dense(&a, &x, Mask::Keep(&mask), MinUsize);
        assert_eq!(y.entries(), &[(0, 0), (2, 0)]);
        let yc = mxv_dense(&a, &x, Mask::Complement(&mask), MinUsize);
        assert_eq!(yc.entries(), &[(1, 10), (3, 30)]);
    }

    #[test]
    fn mxv_sparse_matches_dense() {
        let a = Pattern::from_graph(&star_graph(6));
        let dense_x = vec![9usize, 4, 2, 7, 5, 1];
        let sparse_x = SparseVec::dense(&dense_x);
        let yd = mxv_dense(&a, &dense_x, Mask::None, MinUsize);
        let ys = mxv_sparse(&a, &sparse_x, Mask::None, MinUsize);
        assert_eq!(yd, ys);
    }

    #[test]
    fn mxv_sparse_restricted_support() {
        let a = Pattern::from_graph(&path_graph(5));
        // Only vertex 2 active.
        let x = SparseVec::from_entries(5, vec![(2, 42usize)]);
        let y = mxv_sparse(&a, &x, Mask::None, MinUsize);
        assert_eq!(y.entries(), &[(1, 42), (3, 42)]);
    }

    #[test]
    fn mxv_isolated_vertex_gets_no_entry() {
        let el = lacc_graph::EdgeList::from_pairs(3, [(0, 1)]);
        let a = Pattern::from_graph(&lacc_graph::CsrGraph::from_edges(el));
        let y = mxv_dense(&a, &[5usize, 6, 7], Mask::None, MinUsize);
        assert_eq!(y.get(2), None);
        assert_eq!(y.nvals(), 2);
    }

    #[test]
    fn ewise_mult_intersection() {
        let u = SparseVec::from_entries(6, vec![(0, 2usize), (2, 3), (5, 4)]);
        let v = SparseVec::from_entries(6, vec![(2, 10usize), (4, 20), (5, 30)]);
        let w = ewise_mult(&u, &v, |a, b| a + b);
        assert_eq!(w.entries(), &[(2, 13), (5, 34)]);
    }

    #[test]
    fn ewise_mult_dense_keeps_sparse_support() {
        let u = SparseVec::from_entries(4, vec![(1, 100usize), (3, 200)]);
        let d = vec![1usize, 2, 3, 4];
        // "second" operator: take the dense value (Algorithm 3's f_h).
        let w = ewise_mult_dense(&u, &d, |_, b| b);
        assert_eq!(w.entries(), &[(1, 2), (3, 4)]);
        // "min" operator (Algorithm 3 line 5).
        let m = ewise_mult_dense(&u, &d, |a, b| a.min(b));
        assert_eq!(m.entries(), &[(1, 2), (3, 4)]);
    }

    #[test]
    fn extract_and_assign_roundtrip() {
        let src = vec![10usize, 11, 12, 13];
        assert_eq!(extract(&src, &[3, 0, 0]), vec![13, 10, 10]);
        let mut w = vec![0usize; 4];
        assign(&mut w, &[(1, 5), (3, 6)], MinUsize);
        assert_eq!(w, vec![0, 5, 0, 6]);
    }

    #[test]
    fn assign_duplicates_resolved_by_monoid() {
        let mut w = vec![100usize; 3];
        assign(&mut w, &[(1, 7), (1, 3), (1, 9)], MinUsize);
        assert_eq!(w[1], 3);
        // Overwrite semantics: old value does not participate.
        let mut w2 = vec![0usize; 3];
        assign(&mut w2, &[(2, 9)], MinUsize);
        assert_eq!(w2[2], 9);
    }

    #[test]
    fn reduce_apply_select() {
        let u = SparseVec::from_entries(10, vec![(1, 5usize), (4, 2), (9, 8)]);
        assert_eq!(reduce(&u, MinUsize), 2);
        assert_eq!(reduce(&u, AddUsize), 15);
        let doubled = apply(&u, |v| v * 2);
        assert_eq!(doubled.get(4), Some(4));
        let big = select(&u, |_, v| v >= 5);
        assert_eq!(big.nvals(), 2);
    }

    #[test]
    fn reduce_empty_is_identity() {
        let u: SparseVec<usize> = SparseVec::empty(5);
        assert_eq!(reduce(&u, MinUsize), usize::MAX);
    }
}
