//! Serial GraphBLAS layer — the correctness reference.
//!
//! This plays the role of the paper's SuiteSparse:GraphBLAS implementation
//! (the "simplified unoptimized serial" LACC committed to LAGraph): every
//! distributed primitive in [`crate::dist`] is tested for bit-identical
//! results against these functions.

mod csc;
mod dcsc;
mod ewise_add;
mod matrix_ops;
mod ops;
mod spgemm;
mod vector;

pub use csc::{Csc, CsrMirror, Pattern};
pub use dcsc::Dcsc;
pub use ewise_add::ewise_add;
pub use matrix_ops::{column_reduce, map_values, max_abs_diff, normalize_columns, transpose};
pub(crate) use ops::kernel_pool;
pub use ops::{
    apply, apply_par, assign, assign_par, ewise_mult, ewise_mult_dense, extract, extract_par,
    mxv_dense, mxv_dense_par, mxv_sparse, mxv_sparse_par, reduce, select,
};
pub use spgemm::{spgemm, Prune};
pub use vector::SparseVec;
