//! Serial GraphBLAS layer — the correctness reference.
//!
//! This plays the role of the paper's SuiteSparse:GraphBLAS implementation
//! (the "simplified unoptimized serial" LACC committed to LAGraph): every
//! distributed primitive in [`crate::dist`] is tested for bit-identical
//! results against these functions.

mod csc;
mod dcsc;
mod ewise_add;
mod matrix_ops;
mod ops;
mod spgemm;
mod vector;

pub use csc::{Csc, Pattern};
pub use ewise_add::ewise_add;
pub use matrix_ops::{column_reduce, map_values, max_abs_diff, normalize_columns, transpose};
pub use dcsc::Dcsc;
pub use ops::{
    apply, assign, ewise_mult, ewise_mult_dense, extract, mxv_dense, mxv_sparse, reduce, select,
};
pub use spgemm::{spgemm, Prune};
pub use vector::SparseVec;
