//! Sparse vectors.
//!
//! Dense GraphBLAS vectors are plain `Vec<T>` in this workspace (every
//! element stored). A [`SparseVec`] stores only present entries — the
//! representation LACC's vectors collapse into after the first couple of
//! iterations ("vectors start out dense and get sparse rapidly", §IV).
//!
//! The index word is generic over [`Idx`]: `SparseVec<T, u32>` stores
//! 4-byte indices, halving entry traffic for graphs under 2^32 vertices.

use crate::Vid;
use lacc_graph::{ensure_fits, Idx};

/// A sparse vector: sorted, duplicate-free `(index, value)` entries over a
/// universe of size `n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseVec<T, I: Idx = Vid> {
    n: usize,
    entries: Vec<(I, T)>,
}

impl<T: Copy, I: Idx> SparseVec<T, I> {
    /// An empty vector over `0..n`.
    pub fn empty(n: usize) -> Self {
        SparseVec {
            n,
            entries: Vec::new(),
        }
    }

    /// Builds from entries, sorting them; panics on duplicates or
    /// out-of-range indices.
    pub fn from_entries(n: usize, mut entries: Vec<(I, T)>) -> Self {
        entries.sort_unstable_by_key(|&(i, _)| i);
        assert!(
            entries.iter().all(|&(i, _)| i.idx() < n),
            "index out of range"
        );
        assert!(
            entries.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate indices in sparse vector"
        );
        SparseVec { n, entries }
    }

    /// A fully dense vector as a `SparseVec` (all indices present).
    pub fn dense(values: &[T]) -> Self {
        if let Err(e) = ensure_fits::<I>(values.len(), "dense sparse vector") {
            panic!("{e}");
        }
        SparseVec {
            n: values.len(),
            entries: values
                .iter()
                .copied()
                .enumerate()
                .map(|(i, v)| (I::from_usize(i), v))
                .collect(),
        }
    }

    /// Universe size (`GrB_Vector_size`).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of stored entries (`GrB_Vector_nvals`).
    pub fn nvals(&self) -> usize {
        self.entries.len()
    }

    /// The stored entries, sorted by index (`GrB_Vector_extractTuples`).
    pub fn entries(&self) -> &[(I, T)] {
        &self.entries
    }

    /// Consumes the vector, returning its entries.
    pub fn into_entries(self) -> Vec<(I, T)> {
        self.entries
    }

    /// Value at index `i`, if present (binary search).
    pub fn get(&self, i: usize) -> Option<T> {
        let key = I::try_from_usize(i)?;
        self.entries
            .binary_search_by_key(&key, |&(j, _)| j)
            .ok()
            .map(|k| self.entries[k].1)
    }

    /// Density `nvals / n` (the `f` of the paper's SpMSpV analysis).
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.entries.len() as f64 / self.n as f64
        }
    }

    /// Scatters into a dense vector, with `fill` elsewhere.
    pub fn to_dense(&self, fill: T) -> Vec<T> {
        let mut out = vec![fill; self.n];
        for &(i, v) in &self.entries {
            out[i.idx()] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_entries_sorts() {
        let v: SparseVec<char> = SparseVec::from_entries(10, vec![(7, 'a'), (2, 'b')]);
        assert_eq!(v.entries(), &[(2, 'b'), (7, 'a')]);
        assert_eq!(v.nvals(), 2);
        assert_eq!(v.get(7), Some('a'));
        assert_eq!(v.get(3), None);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicates_rejected() {
        SparseVec::<u8>::from_entries(5, vec![(1, 0u8), (1, 1u8)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn range_checked() {
        SparseVec::<u8>::from_entries(5, vec![(5, 0u8)]);
    }

    #[test]
    fn dense_roundtrip() {
        let v: SparseVec<i32> = SparseVec::dense(&[10, 20, 30]);
        assert_eq!(v.nvals(), 3);
        assert!((v.density() - 1.0).abs() < 1e-12);
        assert_eq!(v.to_dense(0), vec![10, 20, 30]);
    }

    #[test]
    fn to_dense_fills_gaps() {
        let v: SparseVec<i32> = SparseVec::from_entries(4, vec![(1, 9)]);
        assert_eq!(v.to_dense(-1), vec![-1, 9, -1, -1]);
        assert!((v.density() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_vector() {
        let v: SparseVec<u32> = SparseVec::empty(0);
        assert!(v.is_empty());
        assert_eq!(v.density(), 0.0);
    }

    #[test]
    fn narrow_width_matches_default() {
        let narrow: SparseVec<u32, u32> = SparseVec::from_entries(9, vec![(4, 40), (1, 10)]);
        let wide: SparseVec<u32> = SparseVec::from_entries(9, vec![(4, 40), (1, 10)]);
        assert_eq!(narrow.to_dense(0), wide.to_dense(0));
        assert_eq!(narrow.get(4), Some(40));
    }
}
