//! `gblas` — GraphBLAS-style sparse linear algebra, serial and distributed.
//!
//! The paper expresses LACC in terms of the GraphBLAS C API (`GrB_mxv`,
//! `GrB_eWiseMult`, `GrB_extract`, `GrB_assign`, `GrB_Vector_extractTuples`,
//! masks, semirings) and implements those primitives on CombBLAS'
//! 2D-distributed sparse matrices. This crate rebuilds both layers:
//!
//! * [`serial`] — a complete single-address-space implementation: CSC and
//!   DCSC sparse matrices, dense/sparse vectors, masked `mxv` (SpMV and
//!   SpMSpV), element-wise multiply, extract, assign, reduce, apply, and an
//!   SpGEMM (needed by the Markov-clustering example). This layer plays
//!   the role of SuiteSparse:GraphBLAS in the paper — the correctness
//!   reference.
//! * [`dist`] — the CombBLAS role: matrices distributed on a √p×√p
//!   process grid ([`dmsim::Grid2d`]), block-distributed vectors aligned
//!   with the grid, two-phase `mxv` (allgather within processor columns,
//!   reduce-scatter/all-to-all within processor rows), and distributed
//!   `extract`/`assign` with the paper's skew mitigations (hypercube
//!   all-to-all, sparse all-to-all, hot-rank broadcast).
//!
//! The only semiring LACC needs is `(Select2nd, min)` over pattern
//! matrices; the multiply therefore passes the vector value straight
//! through and the add monoid is a type parameter (see [`types::Monoid`]).

#![warn(missing_docs)]

pub mod dist;
pub mod serial;
pub mod types;

pub use types::{AddF64, AddUsize, AndBool, Mask, MaxUsize, MinMaxUsize, MinUsize, Monoid, OrBool};

/// Vertex/index type, shared with `lacc-graph`.
pub type Vid = lacc_graph::Vid;
