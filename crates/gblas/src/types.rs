//! Algebraic building blocks: monoids, the `(Select2nd, min)` semiring
//! convention, and output masks.

use lacc_graph::Idx;

/// A commutative, associative combine with identity — the "add" of a
/// GraphBLAS semiring.
pub trait Monoid<T: Copy>: Copy + Send + Sync + 'static {
    /// The identity element (`combine(identity(), x) == x`).
    fn identity(&self) -> T;
    /// Combines two values.
    fn combine(&self, a: T, b: T) -> T;
}

/// `min` over any index word — the accumulator of the paper's
/// `(Select2nd, min)` semiring: among all neighbors' parent ids, keep the
/// smallest. The identity is `I::max_value()`, which [`lacc_graph::ensure_fits`]
/// guarantees never collides with a real vertex id.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinUsize;

impl<I: Idx> Monoid<I> for MinUsize {
    fn identity(&self) -> I {
        I::max_value()
    }
    fn combine(&self, a: I, b: I) -> I {
        a.min(b)
    }
}

/// `max` over any index word (used in tests and the tie-break ablation —
/// the paper notes any semiring "add" works for unconditional hooking).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxUsize;

impl<I: Idx> Monoid<I> for MaxUsize {
    fn identity(&self) -> I {
        I::zero()
    }
    fn combine(&self, a: I, b: I) -> I {
        a.max(b)
    }
}

/// `+` over `usize` (degree counts, test oracles).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AddUsize;

impl Monoid<usize> for AddUsize {
    fn identity(&self) -> usize {
        0
    }
    fn combine(&self, a: usize, b: usize) -> usize {
        a + b
    }
}

/// `+` over `f64` (SpGEMM in the Markov-clustering example).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AddF64;

impl Monoid<f64> for AddF64 {
    fn identity(&self) -> f64 {
        0.0
    }
    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

/// Simultaneous `(min, max)` over index-word pairs.
///
/// Used by LACC's convergence detector: one `mxv` on this monoid yields,
/// per vertex, both the smallest and the largest parent id among its
/// neighbors. A star tree whose members all see `min == max == root` has
/// no boundary edges and is a complete, converged component. (This is the
/// sound strengthening of the paper's Lemma 1 — see `lacc::serial` docs.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinMaxUsize;

impl<I: Idx> Monoid<(I, I)> for MinMaxUsize {
    fn identity(&self) -> (I, I) {
        (I::max_value(), I::zero())
    }
    fn combine(&self, a: (I, I), b: (I, I)) -> (I, I) {
        (a.0.min(b.0), a.1.max(b.1))
    }
}

/// Logical AND over `bool` (star-membership demotion in `StarCheck`:
/// once a vertex is marked nonstar it must stay nonstar within the pass).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AndBool;

impl Monoid<bool> for AndBool {
    fn identity(&self) -> bool {
        true
    }
    fn combine(&self, a: bool, b: bool) -> bool {
        a && b
    }
}

/// Logical OR over `bool`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OrBool;

impl Monoid<bool> for OrBool {
    fn identity(&self) -> bool {
        false
    }
    fn combine(&self, a: bool, b: bool) -> bool {
        a || b
    }
}

/// A GraphBLAS output mask: results are written only where the mask
/// permits.
///
/// `Complement` is the API's `GrB_SCMP` (structural complement), which the
/// paper uses in unconditional hooking to select *nonstar* parents.
#[derive(Clone, Copy, Debug)]
pub enum Mask<'a> {
    /// No masking: all outputs kept.
    None,
    /// Keep outputs at positions where the mask is `true`.
    Keep(&'a [bool]),
    /// Keep outputs at positions where the mask is `false`.
    Complement(&'a [bool]),
}

impl Mask<'_> {
    /// Whether position `i` passes the mask.
    #[inline]
    pub fn allows(&self, i: usize) -> bool {
        match self {
            Mask::None => true,
            Mask::Keep(m) => m[i],
            Mask::Complement(m) => !m[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_monoid_laws() {
        let m = MinUsize;
        assert_eq!(m.combine(m.identity(), 5usize), 5);
        assert_eq!(m.combine(3usize, 7), 3);
        assert_eq!(
            m.combine(m.combine(9usize, 2), 5),
            m.combine(9, m.combine(2, 5))
        );
    }

    #[test]
    fn monoids_generic_over_index_width() {
        // The blanket impls give the same algebra at every width.
        assert_eq!(MinUsize.combine(MinUsize.identity(), 5u32), 5);
        assert_eq!(<MinUsize as Monoid<u32>>::identity(&MinUsize), u32::MAX);
        assert_eq!(<MinUsize as Monoid<u64>>::identity(&MinUsize), u64::MAX);
        assert_eq!(MaxUsize.combine(MaxUsize.identity(), 9u32), 9);
        assert_eq!(
            MinMaxUsize.combine(MinMaxUsize.identity(), (3u32, 7u32)),
            (3, 7)
        );
    }

    #[test]
    fn add_monoids() {
        assert_eq!(AddUsize.combine(AddUsize.identity(), 4), 4);
        assert_eq!(AddF64.combine(1.5, 2.5), 4.0);
        assert_eq!(MaxUsize.combine(MaxUsize.identity(), 0usize), 0);
    }

    #[test]
    fn mask_semantics() {
        let m = [true, false];
        assert!(Mask::None.allows(1));
        assert!(Mask::Keep(&m).allows(0));
        assert!(!Mask::Keep(&m).allows(1));
        assert!(!Mask::Complement(&m).allows(0));
        assert!(Mask::Complement(&m).allows(1));
    }
}
