//! Compressed-sparse-row adjacency structure.
//!
//! [`CsrGraph`] is the canonical immutable graph representation consumed by
//! every connected-components algorithm in the workspace. It always stores
//! a *symmetric* simple graph: building it from an [`EdgeList`]
//! canonicalizes (self loops removed, both directions present, no
//! duplicates), matching the paper's storage of symmetric adjacency
//! matrices (Table III counts directed edges for the same reason).

use crate::{EdgeList, Vid};

/// A symmetric graph in CSR form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<Vid>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list, canonicalizing it first.
    pub fn from_edges(mut el: EdgeList) -> Self {
        el.canonicalize();
        Self::from_canonical_edges(&el)
    }

    /// Builds a CSR graph from an edge list already in canonical form
    /// (symmetric, deduplicated, loop-free). This is cheaper than
    /// [`from_edges`](Self::from_edges) but panics in debug builds if the
    /// input is not canonical.
    pub fn from_canonical_edges(el: &EdgeList) -> Self {
        let n = el.num_vertices();
        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in el.edges() {
            offsets[u + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0 as Vid; el.len()];
        let mut cursor = offsets.clone();
        for &(u, v) in el.edges() {
            debug_assert_ne!(u, v, "self loop in canonical edge list");
            targets[cursor[u]] = v;
            cursor[u] += 1;
        }
        // Sort each adjacency row for deterministic traversal and binary
        // search support.
        for v in 0..n {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        let g = CsrGraph {
            n,
            offsets,
            targets,
        };
        debug_assert!(g.is_symmetric(), "edge list was not symmetric");
        g
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of stored directed edges (twice the undirected edge count).
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Number of undirected edges.
    pub fn num_undirected_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Neighbors of `v`, sorted ascending.
    pub fn neighbors(&self, v: Vid) -> &[Vid] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: Vid) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Average degree `2m/n` (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.targets.len() as f64 / self.n as f64
        }
    }

    /// The CSR offsets array (length `n + 1`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The CSR targets array (length = number of directed edges).
    pub fn targets(&self) -> &[Vid] {
        &self.targets
    }

    /// True if `{u, v}` is an edge (binary search).
    pub fn has_edge(&self, u: Vid, v: Vid) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (Vid, Vid)> + '_ {
        (0..self.n).flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Converts back to an edge list (directed entries).
    pub fn to_edgelist(&self) -> EdgeList {
        EdgeList::from_pairs(self.n, self.edges())
    }

    /// Checks structural symmetry: `(u,v)` present iff `(v,u)` present.
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| self.has_edge(v, u))
    }

    /// Validates internal invariants (monotone offsets, in-range targets,
    /// sorted rows, no self loops, no duplicates). Returns a description of
    /// the first violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.n + 1 {
            return Err(format!(
                "offsets length {} != n+1 {}",
                self.offsets.len(),
                self.n + 1
            ));
        }
        if self.offsets[0] != 0 || *self.offsets.last().unwrap() != self.targets.len() {
            return Err("offsets endpoints wrong".into());
        }
        for v in 0..self.n {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(format!("offsets not monotone at {v}"));
            }
            let row = self.neighbors(v);
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {v} not strictly sorted"));
                }
            }
            for &t in row {
                if t >= self.n {
                    return Err(format!("target {t} out of range in row {v}"));
                }
                if t == v {
                    return Err(format!("self loop at {v}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(EdgeList::from_pairs(3, [(0, 1), (1, 2), (2, 0)]))
    }

    #[test]
    fn triangle_structure() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_directed_edges(), 6);
        assert_eq!(g.num_undirected_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(2), 2);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn from_edges_canonicalizes() {
        // Duplicates, loops, one direction only.
        let el = EdgeList::from_pairs(4, [(0, 1), (0, 1), (2, 2), (3, 1)]);
        let g = CsrGraph::from_edges(el);
        assert_eq!(g.num_undirected_edges(), 2);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(2, 2));
        assert!(g.is_symmetric());
    }

    #[test]
    fn empty_and_isolated() {
        let g = CsrGraph::from_edges(EdgeList::new(5));
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_directed_edges(), 0);
        assert_eq!(g.neighbors(3), &[] as &[Vid]);
        assert!(g.validate().is_ok());

        let g0 = CsrGraph::from_edges(EdgeList::new(0));
        assert_eq!(g0.num_vertices(), 0);
        assert_eq!(g0.average_degree(), 0.0);
    }

    #[test]
    fn has_edge_and_iteration() {
        let g = triangle();
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        let all: Vec<_> = g.edges().collect();
        assert_eq!(all.len(), 6);
        assert!(all.contains(&(2, 1)));
    }

    #[test]
    fn roundtrip_through_edgelist() {
        let g = triangle();
        let g2 = CsrGraph::from_edges(g.to_edgelist());
        assert_eq!(g, g2);
    }

    #[test]
    fn average_degree() {
        let g = triangle();
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }
}
