//! Compressed-sparse-row adjacency structure.
//!
//! [`CsrGraph`] is the canonical immutable graph representation consumed by
//! every connected-components algorithm in the workspace. It always stores
//! a *symmetric* simple graph: building it from an [`EdgeList`]
//! canonicalizes (self loops removed, both directions present, no
//! duplicates), matching the paper's storage of symmetric adjacency
//! matrices (Table III counts directed edges for the same reason).
//!
//! The target array is generic over the index word width [`Idx`]: the
//! default `CsrGraph` stores `usize` targets (the legacy [`Vid`] layout),
//! while `CsrGraph<u32>` halves adjacency memory traffic for graphs under
//! 2^32 vertices. Narrowing conversions are checked — see
//! [`CsrGraph::try_from_edges`] and [`CsrGraph::try_narrow`].

use crate::idx::{ensure_fits, Idx, IdxOverflow};
use crate::{EdgeList, Vid};

/// A symmetric graph in CSR form with `I`-width target indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph<I: Idx = Vid> {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<I>,
}

impl<I: Idx> CsrGraph<I> {
    /// Builds a CSR graph from an edge list, canonicalizing it first.
    ///
    /// Panics if the vertex count exceeds the index width `I`; use
    /// [`try_from_edges`](Self::try_from_edges) for a recoverable error.
    pub fn from_edges(el: EdgeList) -> Self {
        match Self::try_from_edges(el) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a CSR graph from an edge list, canonicalizing it first, with
    /// a checked index-width conversion.
    pub fn try_from_edges(mut el: EdgeList) -> Result<Self, IdxOverflow> {
        // Check the universe *before* canonicalization allocates scratch
        // proportional to the edge count.
        ensure_fits::<I>(el.num_vertices(), "CSR graph")?;
        el.canonicalize();
        Ok(Self::from_canonical_edges(&el))
    }

    /// Builds a CSR graph from an edge list already in canonical form
    /// (symmetric, deduplicated, loop-free). This is cheaper than
    /// [`from_edges`](Self::from_edges) but panics in debug builds if the
    /// input is not canonical. Panics if the vertex count exceeds `I`; use
    /// [`try_from_canonical_edges`](Self::try_from_canonical_edges) to
    /// recover.
    pub fn from_canonical_edges(el: &EdgeList) -> Self {
        match Self::try_from_canonical_edges(el) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked variant of
    /// [`from_canonical_edges`](Self::from_canonical_edges): returns a
    /// descriptive [`IdxOverflow`] — before allocating anything sized by
    /// the vertex count — when the graph does not fit `I`.
    pub fn try_from_canonical_edges(el: &EdgeList) -> Result<Self, IdxOverflow> {
        let n = el.num_vertices();
        ensure_fits::<I>(n, "CSR graph")?;
        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in el.edges() {
            offsets[u + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![I::zero(); el.len()];
        let mut cursor = offsets.clone();
        for &(u, v) in el.edges() {
            debug_assert_ne!(u, v, "self loop in canonical edge list");
            targets[cursor[u]] = I::from_usize(v);
            cursor[u] += 1;
        }
        // Sort each adjacency row for deterministic traversal and binary
        // search support.
        for v in 0..n {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        let g = CsrGraph {
            n,
            offsets,
            targets,
        };
        debug_assert!(g.is_symmetric(), "edge list was not symmetric");
        Ok(g)
    }

    /// Re-stores the same graph at index width `J`, checking that the
    /// vertex count fits. The structure is copied verbatim (no
    /// re-canonicalization), so the result is structurally identical.
    pub fn try_narrow<J: Idx>(&self) -> Result<CsrGraph<J>, IdxOverflow> {
        ensure_fits::<J>(self.n, "CSR graph")?;
        Ok(CsrGraph {
            n: self.n,
            offsets: self.offsets.clone(),
            targets: self
                .targets
                .iter()
                .map(|&t| J::from_usize(t.idx()))
                .collect(),
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of stored directed edges (twice the undirected edge count).
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Number of undirected edges.
    pub fn num_undirected_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Neighbors of `v`, sorted ascending.
    pub fn neighbors(&self, v: Vid) -> &[I] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: Vid) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Average degree `2m/n` (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.targets.len() as f64 / self.n as f64
        }
    }

    /// The CSR offsets array (length `n + 1`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The CSR targets array (length = number of directed edges).
    pub fn targets(&self) -> &[I] {
        &self.targets
    }

    /// True if `{u, v}` is an edge (binary search).
    pub fn has_edge(&self, u: Vid, v: Vid) -> bool {
        self.neighbors(u).binary_search(&I::from_usize(v)).is_ok()
    }

    /// Iterates over all directed edges `(u, v)` as widened [`Vid`] pairs.
    pub fn edges(&self) -> impl Iterator<Item = (Vid, Vid)> + '_ {
        (0..self.n).flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v.idx())))
    }

    /// Converts back to an edge list (directed entries).
    pub fn to_edgelist(&self) -> EdgeList {
        EdgeList::from_pairs(self.n, self.edges())
    }

    /// Checks structural symmetry: `(u,v)` present iff `(v,u)` present.
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| self.has_edge(v, u))
    }

    /// Validates internal invariants (monotone offsets, in-range targets,
    /// sorted rows, no self loops, no duplicates). Returns a description of
    /// the first violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.n + 1 {
            return Err(format!(
                "offsets length {} != n+1 {}",
                self.offsets.len(),
                self.n + 1
            ));
        }
        if self.offsets[0] != 0 || *self.offsets.last().unwrap() != self.targets.len() {
            return Err("offsets endpoints wrong".into());
        }
        for v in 0..self.n {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(format!("offsets not monotone at {v}"));
            }
            let row = self.neighbors(v);
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {v} not strictly sorted"));
                }
            }
            for &t in row {
                if t.idx() >= self.n {
                    return Err(format!("target {t} out of range in row {v}"));
                }
                if t.idx() == v {
                    return Err(format!("self loop at {v}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(EdgeList::from_pairs(3, [(0, 1), (1, 2), (2, 0)]))
    }

    #[test]
    fn triangle_structure() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_directed_edges(), 6);
        assert_eq!(g.num_undirected_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(2), 2);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn from_edges_canonicalizes() {
        // Duplicates, loops, one direction only.
        let el = EdgeList::from_pairs(4, [(0, 1), (0, 1), (2, 2), (3, 1)]);
        let g = CsrGraph::<Vid>::from_edges(el);
        assert_eq!(g.num_undirected_edges(), 2);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(2, 2));
        assert!(g.is_symmetric());
    }

    #[test]
    fn empty_and_isolated() {
        let g = CsrGraph::<Vid>::from_edges(EdgeList::new(5));
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_directed_edges(), 0);
        assert_eq!(g.neighbors(3), &[] as &[Vid]);
        assert!(g.validate().is_ok());

        let g0 = CsrGraph::<Vid>::from_edges(EdgeList::new(0));
        assert_eq!(g0.num_vertices(), 0);
        assert_eq!(g0.average_degree(), 0.0);
    }

    #[test]
    fn has_edge_and_iteration() {
        let g = triangle();
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        let all: Vec<_> = g.edges().collect();
        assert_eq!(all.len(), 6);
        assert!(all.contains(&(2, 1)));
    }

    #[test]
    fn roundtrip_through_edgelist() {
        let g = triangle();
        let g2 = CsrGraph::from_edges(g.to_edgelist());
        assert_eq!(g, g2);
    }

    #[test]
    fn average_degree() {
        let g = triangle();
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn narrow_width_matches_default() {
        let el = EdgeList::from_pairs(6, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)]);
        let wide = CsrGraph::<Vid>::from_edges(el.clone());
        let narrow = CsrGraph::<u32>::from_edges(el);
        assert_eq!(wide.num_directed_edges(), narrow.num_directed_edges());
        assert_eq!(narrow.neighbors(4), &[3u32, 5u32]);
        assert!(narrow.validate().is_ok());
        // Structural identity after widening back.
        let widened: Vec<_> = narrow.edges().collect();
        let original: Vec<_> = wide.edges().collect();
        assert_eq!(widened, original);
        // And try_narrow roundtrips.
        let renarrowed = wide.try_narrow::<u32>().unwrap();
        assert_eq!(renarrowed, narrow);
    }

    #[test]
    fn overflow_is_a_descriptive_error_not_truncation() {
        // EdgeList::new is cheap (no per-vertex allocation), so we can ask
        // for a universe beyond u32 without exhausting memory. The checked
        // constructor must refuse *before* allocating offsets.
        let huge = EdgeList::new(u32::MAX as usize + 10);
        let err = CsrGraph::<u32>::try_from_edges(huge).unwrap_err();
        assert_eq!(err.width(), "u32");
        assert_eq!(err.required(), u32::MAX as usize + 10);
        let msg = err.to_string();
        assert!(
            msg.contains("u32") && msg.contains("--index-width u64"),
            "{msg}"
        );

        let huge = EdgeList::new(u32::MAX as usize + 10);
        assert!(CsrGraph::<u32>::try_from_canonical_edges(&huge).is_err());

        // Narrowing an in-range graph succeeds; the guard is about counts,
        // not edge density.
        let small = CsrGraph::<Vid>::from_edges(EdgeList::from_pairs(3, [(0, 1)]));
        assert!(small.try_narrow::<u32>().is_ok());
    }
}
