//! Graph containers, generators, and I/O for the LACC reproduction.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`EdgeList`] — a mutable list of undirected edges with cleanup
//!   operations (symmetrization, deduplication, self-loop removal).
//! * [`CsrGraph`] — an immutable, symmetric compressed-sparse-row adjacency
//!   structure; the canonical input to every connected-components algorithm
//!   in the workspace.
//! * [`generators`] — synthetic graph families that stand in for the
//!   paper's proprietary test problems (Table III), matched on component
//!   structure, average degree and degree skew.
//! * [`io`] — Matrix Market, plain edge-list, and binary readers/writers.
//! * [`permute`] — random symmetric vertex permutations (the load-balancing
//!   trick CombBLAS applies before 2D distribution).
//! * [`stats`] — degree/component census used by the Table III experiment.
//! * [`DisjointSets`] — union-find, used both as the serial ground truth
//!   and inside the generators/stats.

#![warn(missing_docs)]

pub mod csr;
pub mod edgelist;
pub mod generators;
pub mod idx;
pub mod io;
pub mod permute;
pub mod stats;
pub mod unionfind;

pub use csr::CsrGraph;
pub use edgelist::EdgeList;
pub use idx::{ensure_fits, Idx, IdxOverflow};
pub use unionfind::DisjointSets;

/// Vertex identifier used across the workspace.
///
/// The paper targets graphs with up to ~68M vertices and ~67B edges; our
/// laptop-scale stand-ins stay well within `usize` on 64-bit hosts.
pub type Vid = usize;
