//! Generic vertex-index word width.
//!
//! The paper's test problems top out at ~68M vertices — comfortably inside
//! 32 bits — yet the workspace historically stored every vertex id and
//! label as `usize` (8 bytes on the simulated machines). [`Idx`] makes the
//! index word width a type parameter of the whole stack: graphs, the
//! GraphBLAS kernels, the distributed vectors, and the serving label store
//! all narrow from 8-byte to 4-byte words when instantiated at `u32`,
//! halving both kernel memory traffic and the wire words the α-β cost
//! model charges.
//!
//! `u32` is the runtime default (`lacc::IndexWidth`); `u64` is the opt-in
//! wide layout for graphs beyond the 32-bit range. Conversions *into* a
//! narrow width are always checked: [`ensure_fits`] (and the fallible
//! constructors built on it, e.g. `CsrGraph::try_narrow`) return a
//! descriptive [`IdxOverflow`] instead of ever truncating silently.

use std::fmt;
use std::hash::Hash;

/// A vertex-index word: the storage type for vertex ids and labels.
///
/// Implemented for `u32` (narrow, the default), `u64` (wide), and `usize`
/// (the legacy [`crate::Vid`] width, so existing monomorphic call sites
/// keep compiling through default type parameters).
///
/// The contract mirrors how LACC uses indices: values are always in
/// `0..n` for a checked `n` (see [`ensure_fits`]), and `Self::max_value()`
/// doubles as the min-monoid identity — `ensure_fits` guarantees `n - 1 <
/// max_value()`, so the identity never collides with a real id.
pub trait Idx:
    Copy + Ord + Eq + Hash + fmt::Debug + fmt::Display + Default + Send + Sync + 'static
{
    /// Bits in the stored representation.
    const BITS: u32;
    /// Bytes each index occupies in memory and on the wire.
    const BYTES: usize;
    /// Short human-readable name (`"u32"`), used in errors and bench rows.
    const NAME: &'static str;
    /// Largest `usize` value this width can represent.
    const MAX_USIZE: usize;

    /// Converts from `usize`; debug-asserts the value fits.
    fn from_usize(v: usize) -> Self;
    /// Checked conversion from `usize`.
    fn try_from_usize(v: usize) -> Option<Self>;
    /// Widens to `usize` (always lossless for the supported widths).
    fn idx(self) -> usize;
    /// Widens to `u64` (the combining-collective key width).
    fn to_u64(self) -> u64;
    /// Converts from a `u64` key; debug-asserts the value fits.
    fn from_u64(v: u64) -> Self;
    /// The maximum representable value (the min-monoid identity).
    fn max_value() -> Self;
    /// Zero (the max-monoid identity).
    fn zero() -> Self {
        Self::default()
    }
}

macro_rules! impl_idx {
    ($ty:ty, $name:literal) => {
        impl Idx for $ty {
            const BITS: u32 = <$ty>::BITS;
            const BYTES: usize = std::mem::size_of::<$ty>();
            const NAME: &'static str = $name;
            const MAX_USIZE: usize = {
                // On 64-bit hosts u64::MAX exceeds nothing; saturate for
                // hypothetical 32-bit hosts rather than overflow the const.
                if <$ty>::BITS as usize >= usize::BITS as usize {
                    usize::MAX
                } else {
                    <$ty>::MAX as usize
                }
            };

            #[inline]
            fn from_usize(v: usize) -> Self {
                debug_assert!(v <= Self::MAX_USIZE, "index {v} exceeds {}", $name);
                v as $ty
            }

            #[inline]
            fn try_from_usize(v: usize) -> Option<Self> {
                (v <= Self::MAX_USIZE).then(|| v as $ty)
            }

            #[inline]
            fn idx(self) -> usize {
                self as usize
            }

            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }

            #[inline]
            fn from_u64(v: u64) -> Self {
                debug_assert!(v <= <$ty>::MAX as u64, "key {v} exceeds {}", $name);
                v as $ty
            }

            #[inline]
            fn max_value() -> Self {
                <$ty>::MAX
            }
        }
    };
}

impl_idx!(u32, "u32");
impl_idx!(u64, "u64");
impl_idx!(usize, "usize");

/// The error returned when a vertex universe does not fit the configured
/// index width. Carries everything needed for an actionable message; never
/// produced by a silent truncation path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdxOverflow {
    what: String,
    required: usize,
    width: &'static str,
    max: usize,
}

impl IdxOverflow {
    /// The index width that was too narrow (`"u32"`).
    pub fn width(&self) -> &'static str {
        self.width
    }

    /// The vertex count that did not fit.
    pub fn required(&self) -> usize {
        self.required
    }
}

impl fmt::Display for IdxOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} needs {} distinct vertex indices, but the {} index width holds at most {}; \
             rerun with the wide index layout (--index-width u64 or the `wide-index` feature)",
            self.what, self.required, self.width, self.max
        )
    }
}

impl std::error::Error for IdxOverflow {}

/// Checks that a universe of `count` indices (`0..count`) fits `I`,
/// leaving headroom for `I::max_value()` to serve as the min-monoid
/// identity. Call this *before* allocating anything sized by `count`.
pub fn ensure_fits<I: Idx>(count: usize, what: &str) -> Result<(), IdxOverflow> {
    if count <= I::MAX_USIZE {
        Ok(())
    } else {
        Err(IdxOverflow {
            what: what.to_string(),
            required: count,
            width: I::NAME,
            max: I::MAX_USIZE,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_names() {
        assert_eq!(<u32 as Idx>::BYTES, 4);
        assert_eq!(<u64 as Idx>::BYTES, 8);
        assert_eq!(<u32 as Idx>::NAME, "u32");
        assert_eq!(<usize as Idx>::MAX_USIZE, usize::MAX);
    }

    #[test]
    fn roundtrips() {
        for v in [0usize, 1, 77, u32::MAX as usize] {
            assert_eq!(<u32 as Idx>::from_usize(v).idx(), v);
            assert_eq!(<u64 as Idx>::from_u64(v as u64).to_u64(), v as u64);
        }
        assert_eq!(<u32 as Idx>::try_from_usize(u32::MAX as usize + 1), None);
        assert_eq!(<u32 as Idx>::try_from_usize(5), Some(5u32));
    }

    #[test]
    fn ensure_fits_is_checked_not_truncating() {
        // A count over u32::MAX must fail *before* any allocation, with an
        // actionable message — never wrap around.
        let too_big = u32::MAX as usize + 2;
        let err = ensure_fits::<u32>(too_big, "test graph").unwrap_err();
        assert_eq!(err.width(), "u32");
        assert_eq!(err.required(), too_big);
        let msg = err.to_string();
        assert!(msg.contains("u32"), "{msg}");
        assert!(msg.contains("--index-width u64"), "{msg}");
        assert!(ensure_fits::<u64>(too_big, "test graph").is_ok());
        assert!(ensure_fits::<u32>(u32::MAX as usize, "edge graph").is_ok());
    }

    #[test]
    fn max_value_never_collides_with_checked_ids() {
        // ensure_fits(count) admits ids 0..count-1 < max_value().
        let count = u32::MAX as usize;
        assert!(ensure_fits::<u32>(count, "g").is_ok());
        assert!(((count - 1) as u32) < <u32 as Idx>::max_value());
    }
}
