//! Graph readers and writers.
//!
//! Three formats:
//!
//! * **Matrix Market** (`.mtx`) — the format the paper's SuiteSparse
//!   graphs ship in; `pattern symmetric` coordinate files are supported
//!   (values, if present, are ignored — LACC only needs structure).
//! * **Plain edge lists** — whitespace-separated `u v` pairs, `#` comments.
//! * **Binary** — a compact little-endian format (magic, n, m, pairs) for
//!   fast reload of generated stand-ins.

use crate::{EdgeList, Vid};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the input file.
    Parse(String),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Reads a Matrix Market coordinate file as an undirected graph.
///
/// One-based indices are converted to zero-based. For `general` files both
/// directions must appear (or will be added by canonicalization later); for
/// `symmetric` files each entry is mirrored.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<EdgeList, IoError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| IoError::Parse("empty file".into()))??;
    let header = header.to_ascii_lowercase();
    if !header.starts_with("%%matrixmarket matrix coordinate") {
        return Err(IoError::Parse(format!("unsupported header: {header}")));
    }
    let symmetric = header.contains("symmetric");

    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| IoError::Parse("missing size line".into()))?;
    let mut it = size_line.split_ascii_whitespace();
    let rows: usize = parse_tok(it.next(), "rows")?;
    let cols: usize = parse_tok(it.next(), "cols")?;
    let nnz: usize = parse_tok(it.next(), "nnz")?;
    let n = rows.max(cols);

    let mut el = EdgeList::new(n);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_ascii_whitespace();
        let r: usize = parse_tok(it.next(), "row index")?;
        let c: usize = parse_tok(it.next(), "col index")?;
        if r == 0 || c == 0 || r > n || c > n {
            return Err(IoError::Parse(format!("index out of range: {r} {c}")));
        }
        let (u, v) = (r - 1, c - 1);
        el.push(u, v);
        if symmetric && u != v {
            el.push(v, u);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(IoError::Parse(format!(
            "expected {nnz} entries, found {seen}"
        )));
    }
    Ok(el)
}

fn parse_tok<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, IoError> {
    tok.ok_or_else(|| IoError::Parse(format!("missing {what}")))?
        .parse()
        .map_err(|_| IoError::Parse(format!("bad {what}")))
}

/// Writes a graph as a `pattern symmetric` Matrix Market file, emitting
/// each undirected edge once (lower-triangle convention).
pub fn write_matrix_market<W: Write>(writer: W, el: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate pattern symmetric")?;
    let lower: Vec<(Vid, Vid)> = el
        .edges()
        .iter()
        .copied()
        .filter(|&(u, v)| u >= v)
        .collect();
    writeln!(
        w,
        "{} {} {}",
        el.num_vertices(),
        el.num_vertices(),
        lower.len()
    )?;
    for (u, v) in lower {
        writeln!(w, "{} {}", u + 1, v + 1)?;
    }
    w.flush()
}

/// Reads a whitespace edge list (`u v` per line, `#` comments). Vertex
/// universe is `max id + 1` unless `n` is given.
pub fn read_edge_list<R: Read>(reader: R, n: Option<usize>) -> Result<EdgeList, IoError> {
    let mut pairs = Vec::new();
    let mut max_id = 0usize;
    for line in BufReader::new(reader).lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_ascii_whitespace();
        let u: usize = parse_tok(it.next(), "source")?;
        let v: usize = parse_tok(it.next(), "target")?;
        max_id = max_id.max(u).max(v);
        pairs.push((u, v));
    }
    let n = match n {
        Some(n) => {
            if !pairs.is_empty() && max_id >= n {
                return Err(IoError::Parse(format!("vertex {max_id} ≥ declared n={n}")));
            }
            n
        }
        None => {
            if pairs.is_empty() {
                0
            } else {
                max_id + 1
            }
        }
    };
    Ok(EdgeList::from_pairs(n, pairs))
}

/// Writes a plain edge list.
pub fn write_edge_list<W: Write>(writer: W, el: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# {} vertices, {} directed edges",
        el.num_vertices(),
        el.len()
    )?;
    for &(u, v) in el.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

const BINARY_MAGIC: u32 = 0x4C41_4343; // "LACC"

/// Serializes an edge list to the compact binary format.
pub fn to_binary(el: &EdgeList) -> Vec<u8> {
    let mut buf = Vec::with_capacity(20 + el.len() * 16);
    buf.extend_from_slice(&BINARY_MAGIC.to_le_bytes());
    buf.extend_from_slice(&(el.num_vertices() as u64).to_le_bytes());
    buf.extend_from_slice(&(el.len() as u64).to_le_bytes());
    for &(u, v) in el.edges() {
        buf.extend_from_slice(&(u as u64).to_le_bytes());
        buf.extend_from_slice(&(v as u64).to_le_bytes());
    }
    buf
}

/// Reads the little-endian `u64` at `*pos`, advancing the cursor.
fn get_u64_le(bytes: &[u8], pos: &mut usize) -> u64 {
    let v = u64::from_le_bytes(bytes[*pos..*pos + 8].try_into().expect("8-byte slice"));
    *pos += 8;
    v
}

/// Deserializes the compact binary format.
pub fn from_binary(bytes: impl AsRef<[u8]>) -> Result<EdgeList, IoError> {
    let bytes = bytes.as_ref();
    if bytes.len() < 20 {
        return Err(IoError::Parse("binary file too short".into()));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4-byte slice"));
    if magic != BINARY_MAGIC {
        return Err(IoError::Parse("bad magic".into()));
    }
    let mut pos = 4;
    let n = get_u64_le(bytes, &mut pos) as usize;
    let m = get_u64_le(bytes, &mut pos) as usize;
    if bytes.len() - pos < m * 16 {
        return Err(IoError::Parse("truncated edge section".into()));
    }
    let mut el = EdgeList::new(n);
    for _ in 0..m {
        let u = get_u64_le(bytes, &mut pos) as usize;
        let v = get_u64_le(bytes, &mut pos) as usize;
        if u >= n || v >= n {
            return Err(IoError::Parse(format!("edge ({u},{v}) out of range")));
        }
        el.push(u, v);
    }
    Ok(el)
}

/// Convenience: writes the binary format to a file.
pub fn save_binary(path: &Path, el: &EdgeList) -> io::Result<()> {
    std::fs::write(path, to_binary(el))
}

/// Convenience: reads the binary format from a file.
pub fn load_binary(path: &Path) -> Result<EdgeList, IoError> {
    let data = std::fs::read(path)?;
    from_binary(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_market_roundtrip() {
        let el = EdgeList::from_pairs(4, [(1, 0), (2, 0), (3, 2), (0, 1), (0, 2), (2, 3)]);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &el).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap();
        let mut a = el.clone();
        let mut b = back;
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a, b);
    }

    #[test]
    fn matrix_market_symmetric_mirrors() {
        let text =
            "%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n3 3 2\n2 1\n3 3\n";
        let el = read_matrix_market(text.as_bytes()).unwrap();
        // (2,1) mirrored; (3,3) diagonal not mirrored.
        assert_eq!(el.edges(), &[(1, 0), (0, 1), (2, 2)]);
    }

    #[test]
    fn matrix_market_rejects_garbage() {
        assert!(read_matrix_market("hello\n".as_bytes()).is_err());
        let bad_count = "%%MatrixMarket matrix coordinate pattern general\n2 2 5\n1 2\n";
        assert!(read_matrix_market(bad_count.as_bytes()).is_err());
        let oob = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(read_matrix_market(oob.as_bytes()).is_err());
    }

    #[test]
    fn edge_list_roundtrip_and_comments() {
        let el = EdgeList::from_pairs(5, [(0, 4), (2, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &el).unwrap();
        let back = read_edge_list(&buf[..], Some(5)).unwrap();
        assert_eq!(el, back);
    }

    #[test]
    fn edge_list_infers_universe() {
        let el = read_edge_list("0 9\n3 4\n".as_bytes(), None).unwrap();
        assert_eq!(el.num_vertices(), 10);
        assert!(read_edge_list("0 9\n".as_bytes(), Some(5)).is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let el = EdgeList::from_pairs(100, (0..99).map(|v| (v, v + 1)));
        let back = from_binary(to_binary(&el)).unwrap();
        assert_eq!(el, back);
    }

    #[test]
    fn binary_rejects_corruption() {
        let el = EdgeList::from_pairs(3, [(0, 1)]);
        let bytes = to_binary(&el);
        // Truncate.
        assert!(from_binary(&bytes[..bytes.len() - 4]).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(from_binary(bad).is_err());
    }

    #[test]
    fn binary_empty_graph() {
        let el = EdgeList::new(0);
        assert_eq!(from_binary(to_binary(&el)).unwrap(), el);
    }
}
