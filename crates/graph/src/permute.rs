//! Random symmetric vertex permutations.
//!
//! CombBLAS randomly permutes the rows and columns of the adjacency matrix
//! before distributing it on the 2D grid (§V-B): this load-balances both
//! nonzeros and vector segments. We reproduce that step before building
//! distributed matrices.

use crate::{CsrGraph, Vid};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A bijection on `0..n` with its inverse.
#[derive(Clone, Debug)]
pub struct Permutation {
    forward: Vec<Vid>,
    inverse: Vec<Vid>,
}

impl Permutation {
    /// The identity permutation.
    pub fn identity(n: usize) -> Self {
        let forward: Vec<Vid> = (0..n).collect();
        Permutation {
            inverse: forward.clone(),
            forward,
        }
    }

    /// A uniformly random permutation (Fisher–Yates).
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut forward: Vec<Vid> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            forward.swap(i, j);
        }
        Self::from_forward(forward)
    }

    /// Builds from an explicit forward map, computing the inverse.
    ///
    /// # Panics
    /// If `forward` is not a bijection on `0..n`.
    pub fn from_forward(forward: Vec<Vid>) -> Self {
        let n = forward.len();
        let mut inverse = vec![usize::MAX; n];
        for (old, &new) in forward.iter().enumerate() {
            assert!(new < n, "image {new} out of range");
            assert_eq!(inverse[new], usize::MAX, "not injective at {new}");
            inverse[new] = old;
        }
        Permutation { forward, inverse }
    }

    /// Size of the domain.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True on the empty domain.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// New id of old vertex `v`.
    pub fn apply(&self, v: Vid) -> Vid {
        self.forward[v]
    }

    /// Old id of new vertex `v`.
    pub fn invert(&self, v: Vid) -> Vid {
        self.inverse[v]
    }

    /// The forward map as a slice.
    pub fn forward(&self) -> &[Vid] {
        &self.forward
    }

    /// Relabels a graph: vertex `v` becomes `apply(v)`.
    pub fn permute_graph(&self, g: &CsrGraph) -> CsrGraph {
        assert_eq!(self.len(), g.num_vertices());
        let mut el = g.to_edgelist();
        el.apply_permutation(&self.forward);
        // The relabeled list is still canonical (symmetric, simple), so the
        // cheap constructor applies.
        CsrGraph::from_canonical_edges(&el)
    }

    /// Maps a labeling on permuted ids back to original ids: given
    /// `labels_new[new_id]` (whose *values* are also new ids), produces
    /// `labels_old[old_id]` with values in old ids.
    pub fn unpermute_labels(&self, labels_new: &[Vid]) -> Vec<Vid> {
        assert_eq!(labels_new.len(), self.len());
        (0..self.len())
            .map(|old| self.inverse[labels_new[self.forward[old]]])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::path_graph;
    use crate::unionfind::canonicalize_labels;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(5);
        assert_eq!(p.apply(3), 3);
        assert_eq!(p.invert(3), 3);
    }

    #[test]
    fn random_is_bijection() {
        let p = Permutation::random(100, 42);
        let mut seen = [false; 100];
        for v in 0..100 {
            let img = p.apply(v);
            assert!(!seen[img]);
            seen[img] = true;
            assert_eq!(p.invert(img), v);
        }
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn rejects_non_bijection() {
        Permutation::from_forward(vec![0, 0, 1]);
    }

    #[test]
    fn permute_graph_preserves_structure() {
        let g = path_graph(10);
        let p = Permutation::random(10, 7);
        let h = p.permute_graph(&g);
        assert_eq!(h.num_undirected_edges(), g.num_undirected_edges());
        for (u, v) in g.edges() {
            assert!(h.has_edge(p.apply(u), p.apply(v)));
        }
        assert!(h.validate().is_ok());
    }

    #[test]
    fn unpermute_labels_restores_partition() {
        let g = path_graph(6);
        let p = Permutation::random(6, 3);
        let h = p.permute_graph(&g);
        // Compute components on h with union-find, map back, compare to the
        // trivially known single component.
        let mut ds = crate::DisjointSets::new(6);
        for (u, v) in h.edges() {
            ds.union(u, v);
        }
        let labels_new = ds.canonical_labels();
        let labels_old = p.unpermute_labels(&labels_new);
        let canon = canonicalize_labels(&labels_old);
        assert!(canon.iter().all(|&l| l == 0));
    }
}
