//! Elementary graph families used as algorithmic edge cases.
//!
//! Paths maximize AS iteration counts (pointer jumping needs Θ(log n)
//! rounds); stars converge in one; complete graphs stress `mxv`; forests
//! exercise converged-component tracking without any cycles.

use crate::{CsrGraph, EdgeList, Vid};
use rand::Rng;

/// A path `0 — 1 — … — n-1`.
pub fn path_graph(n: usize) -> CsrGraph {
    let mut el = EdgeList::new(n);
    for v in 1..n {
        el.push(v - 1, v);
    }
    CsrGraph::from_edges(el)
}

/// A cycle over `n ≥ 3` vertices (for smaller `n`, a path).
pub fn cycle_graph(n: usize) -> CsrGraph {
    let mut el = EdgeList::new(n);
    for v in 1..n {
        el.push(v - 1, v);
    }
    if n >= 3 {
        el.push(n - 1, 0);
    }
    CsrGraph::from_edges(el)
}

/// A star with center 0 and `n - 1` leaves.
pub fn star_graph(n: usize) -> CsrGraph {
    let mut el = EdgeList::new(n);
    for v in 1..n {
        el.push(0, v);
    }
    CsrGraph::from_edges(el)
}

/// The complete graph on `n` vertices.
pub fn complete_graph(n: usize) -> CsrGraph {
    let mut el = EdgeList::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            el.push(u, v);
        }
    }
    CsrGraph::from_edges(el)
}

/// A random forest: each tree built by the random-attachment process, tree
/// sizes roughly `n / num_trees`.
pub fn random_forest(n: usize, num_trees: usize, seed: u64) -> CsrGraph {
    assert!(num_trees >= 1 || n == 0);
    let mut rng = super::rng(seed);
    let mut el = EdgeList::new(n);
    let tree_size = n.div_ceil(num_trees.max(1));
    let mut base = 0usize;
    while base < n {
        let end = (base + tree_size).min(n);
        for v in (base + 1)..end {
            // Attach to a uniformly random earlier vertex in this tree.
            let parent = base + rng.random_range(0..(v - base));
            el.push(parent as Vid, v as Vid);
        }
        base = end;
    }
    CsrGraph::from_edges(el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DisjointSets;

    fn num_components(g: &CsrGraph) -> usize {
        let mut ds = DisjointSets::new(g.num_vertices());
        for (u, v) in g.edges() {
            ds.union(u, v);
        }
        ds.num_sets()
    }

    #[test]
    fn path_properties() {
        let g = path_graph(10);
        assert_eq!(g.num_undirected_edges(), 9);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(5), 2);
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn cycle_properties() {
        let g = cycle_graph(10);
        assert_eq!(g.num_undirected_edges(), 10);
        assert!((0..10).all(|v| g.degree(v) == 2));
        // Degenerate cycles fall back to paths.
        assert_eq!(cycle_graph(2).num_undirected_edges(), 1);
    }

    #[test]
    fn star_properties() {
        let g = star_graph(8);
        assert_eq!(g.degree(0), 7);
        assert!((1..8).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_properties() {
        let g = complete_graph(6);
        assert_eq!(g.num_undirected_edges(), 15);
        assert!((0..6).all(|v| g.degree(v) == 5));
    }

    #[test]
    fn forest_component_count() {
        let g = random_forest(1000, 25, 6);
        assert_eq!(num_components(&g), 25);
        // Forest: m = n - #trees.
        assert_eq!(g.num_undirected_edges(), 1000 - 25);
    }

    #[test]
    fn forest_single_tree_is_spanning() {
        let g = random_forest(100, 1, 2);
        assert_eq!(num_components(&g), 1);
        assert_eq!(g.num_undirected_edges(), 99);
    }
}
