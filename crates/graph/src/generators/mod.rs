//! Synthetic graph generators.
//!
//! The paper evaluates on ten graphs (Table III) spanning protein-similarity
//! networks, web crawls, meshes, social networks, and metagenome assembly
//! graphs. Those inputs are proprietary or too large for a single host, so
//! each generator here produces a *structurally matched stand-in*: same
//! component-count regime, similar average degree, similar degree skew —
//! the three properties §VI-E identifies as driving LACC's performance.
//!
//! All generators are deterministic given their seed.

mod community;
mod mesh;
mod metagenome;
mod random;
mod rmat;
mod simple;
mod social;
pub mod suite;

pub use community::community_graph;
pub use mesh::{mesh_2d, mesh_3d};
pub use metagenome::metagenome_graph;
pub use random::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use rmat::{rmat, RmatParams};
pub use simple::{complete_graph, cycle_graph, path_graph, random_forest, star_graph};
pub use social::{barabasi_albert, watts_strogatz};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The deterministic RNG used by every generator.
pub(crate) fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}
