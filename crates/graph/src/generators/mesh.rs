//! Regular meshes.
//!
//! Stand-in for `queen_4147` (a 3D structural problem): a single connected
//! component with high, uniform degree. §VI-E(b) uses it to show LACC
//! performing well on denser graphs despite having no vector sparsity to
//! exploit.

use crate::{CsrGraph, EdgeList, Vid};

/// A `rows × cols` 4-neighbor grid.
pub fn mesh_2d(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let mut el = EdgeList::new(n);
    let id = |r: usize, c: usize| (r * cols + c) as Vid;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                el.push(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                el.push(id(r, c), id(r + 1, c));
            }
        }
    }
    CsrGraph::from_edges(el)
}

/// An `x × y × z` grid where each vertex connects to every vertex in its
/// 3×3×3 neighborhood (26-connectivity), giving queen-like average degree
/// in the tens.
pub fn mesh_3d(x: usize, y: usize, z: usize) -> CsrGraph {
    let n = x * y * z;
    let mut el = EdgeList::new(n);
    let id = |i: usize, j: usize, k: usize| (i * y * z + j * z + k) as Vid;
    for i in 0..x {
        for j in 0..y {
            for k in 0..z {
                for di in 0..=1usize {
                    for dj in -(1isize)..=1 {
                        for dk in -(1isize)..=1 {
                            // Enumerate each undirected pair once: strictly
                            // "forward" neighbors in lexicographic order.
                            if (di, dj, dk) <= (0, 0, 0) {
                                continue;
                            }
                            let (ni, nj, nk) =
                                (i as isize + di as isize, j as isize + dj, k as isize + dk);
                            if ni < 0 || nj < 0 || nk < 0 {
                                continue;
                            }
                            let (ni, nj, nk) = (ni as usize, nj as usize, nk as usize);
                            if ni < x && nj < y && nk < z {
                                el.push(id(i, j, k), id(ni, nj, nk));
                            }
                        }
                    }
                }
            }
        }
    }
    CsrGraph::from_edges(el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DisjointSets;

    fn num_components(g: &CsrGraph) -> usize {
        let mut ds = DisjointSets::new(g.num_vertices());
        for (u, v) in g.edges() {
            ds.union(u, v);
        }
        ds.num_sets()
    }

    #[test]
    fn mesh2d_shape() {
        let g = mesh_2d(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // (rows*(cols-1)) + (cols*(rows-1)) undirected edges.
        assert_eq!(g.num_undirected_edges(), 3 * 3 + 4 * 2);
        assert_eq!(num_components(&g), 1);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn mesh2d_degenerate() {
        assert_eq!(mesh_2d(1, 1).num_directed_edges(), 0);
        let line = mesh_2d(1, 5);
        assert_eq!(line.num_undirected_edges(), 4);
    }

    #[test]
    fn mesh3d_connected_and_dense() {
        let g = mesh_3d(4, 4, 4);
        assert_eq!(g.num_vertices(), 64);
        assert_eq!(num_components(&g), 1);
        // Interior vertices have 26 neighbors.
        let interior = 16 + 4 + 1; // vertex (1,1,1)
        assert_eq!(g.degree(interior), 26);
        assert!(g.is_symmetric());
    }

    #[test]
    fn mesh3d_corner_degree() {
        let g = mesh_3d(3, 3, 3);
        // Corner (0,0,0) sees the 2x2x2 block minus itself.
        assert_eq!(g.degree(0), 7);
    }
}
