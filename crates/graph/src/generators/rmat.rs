//! RMAT / Kronecker graphs (Graph500 style).
//!
//! Stand-in for the paper's skewed-degree graphs (twitter7, sk-2005,
//! uk-2002, MOLIERE_2016): heavy-tailed degree distribution, one or a few
//! giant components plus a fringe of small ones. The skew is also what
//! creates the imbalanced all-to-all pattern of Figure 3.

use crate::{CsrGraph, EdgeList, Vid};
use rand::Rng;

/// Quadrant probabilities of the recursive matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Noise added per level to avoid exact degree ties.
    pub noise: f64,
}

impl RmatParams {
    /// The Graph500 reference parameters (a=0.57, b=0.19, c=0.19).
    pub fn graph500() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }

    /// Milder skew, closer to a web crawl.
    pub fn web() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            noise: 0.05,
        }
    }

    fn validate(&self) {
        let d = 1.0 - self.a - self.b - self.c;
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && d >= -1e-9,
            "invalid RMAT quadrant probabilities"
        );
    }
}

/// Generates an RMAT graph with `2^scale` vertices and `edge_factor *
/// 2^scale` sampled undirected edges (before dedup).
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> CsrGraph {
    params.validate();
    // Fail before sampling anything: 2^scale must fit the vertex index.
    // (Narrower targets get the same guard from `CsrGraph::try_narrow` /
    // `try_from_edges`, which this feeds into.)
    let n: usize = 1usize.checked_shl(scale).unwrap_or_else(|| {
        panic!(
            "rmat scale {scale} overflows the {}-bit vertex index \
             (2^{scale} vertices)",
            usize::BITS
        )
    });
    let m = edge_factor * n;
    let mut rng = super::rng(seed);
    let mut el = EdgeList::new(n);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        let (mut a, mut b, mut c) = (params.a, params.b, params.c);
        for level in 0..scale {
            let r: f64 = rng.random();
            let bit = 1usize << (scale - 1 - level);
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                v |= bit;
            } else if r < a + b + c {
                u |= bit;
            } else {
                u |= bit;
                v |= bit;
            }
            // Per-level noise keeps the distribution from being exactly
            // self-similar (standard Graph500 trick).
            if params.noise > 0.0 {
                let jitter = |x: f64, r: f64| {
                    (x * (1.0 - params.noise) + x * 2.0 * params.noise * r).max(0.0)
                };
                a = jitter(a, rng.random());
                b = jitter(b, rng.random());
                c = jitter(c, rng.random());
                let total = a + b + c;
                if total >= 1.0 {
                    let scale_back = 0.999 / total;
                    a *= scale_back;
                    b *= scale_back;
                    c *= scale_back;
                }
            }
        }
        el.push(u as Vid, v as Vid);
    }
    CsrGraph::from_edges(el)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_scale() {
        let g = rmat(8, 8, RmatParams::graph500(), 5);
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_undirected_edges() <= 8 * 256);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn deterministic() {
        let p = RmatParams::graph500();
        assert_eq!(rmat(6, 4, p, 11), rmat(6, 4, p, 11));
    }

    #[test]
    fn skewed_degrees() {
        let g = rmat(10, 16, RmatParams::graph500(), 2);
        let max_deg = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        let avg = g.average_degree();
        // Heavy tail: the max degree should dwarf the average.
        assert!(
            (max_deg as f64) > 8.0 * avg,
            "expected skew, max {max_deg} avg {avg}"
        );
    }

    #[test]
    #[should_panic(expected = "overflows the")]
    fn oversized_scale_is_a_descriptive_error() {
        // 2^64 vertices cannot be indexed: the guard fires before any
        // edge is sampled (and before any allocation).
        rmat(64, 1, RmatParams::graph500(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid RMAT")]
    fn bad_params_panic() {
        rmat(
            4,
            2,
            RmatParams {
                a: 0.9,
                b: 0.9,
                c: 0.9,
                noise: 0.0,
            },
            1,
        );
    }
}
