//! Community graphs: many components with power-law size distribution.
//!
//! Stand-in for the protein-similarity networks (archaea, eukarya,
//! iso_m100): tens of thousands to millions of connected components whose
//! sizes follow a heavy tail, with dense Erdős–Rényi-like structure inside
//! each component. These are the graphs where LACC's sparsity exploitation
//! (Lemma 1) shines — Figure 7 shows most vertices converging within a few
//! iterations.

use crate::{CsrGraph, EdgeList, Vid};
use rand::Rng;

/// Generates a graph of `num_components` disjoint communities over ~`n`
/// vertices total.
///
/// Component sizes are drawn from a discrete power law with exponent
/// `alpha` (larger ⇒ more small components); within each component of size
/// `s`, `(degree * s / 2)` random intra-component edges are sampled and a
/// random spanning path is added so the community really is one component.
pub fn community_graph(
    n: usize,
    num_components: usize,
    degree: f64,
    alpha: f64,
    seed: u64,
) -> CsrGraph {
    assert!(num_components >= 1 || n == 0, "need at least one component");
    assert!(alpha > 0.0 && degree >= 0.0);
    let mut rng = super::rng(seed);

    // Draw power-law weights, then scale to sizes summing to n.
    let mut weights: Vec<f64> = (0..num_components)
        .map(|_| {
            let u: f64 = rng.random::<f64>().max(1e-12);
            u.powf(-1.0 / alpha)
        })
        .collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w = (*w / total) * n as f64;
    }
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| w.floor().max(1.0) as usize)
        .collect();
    // Adjust so sizes sum exactly to n (shave from the largest or pad the
    // smallest).
    let mut sum: usize = sizes.iter().sum();
    while sum > n {
        let i = sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .map(|(i, _)| i)
            .unwrap();
        if sizes[i] > 1 {
            sizes[i] -= 1;
            sum -= 1;
        } else {
            break;
        }
    }
    while sum < n {
        sizes[0] += 1;
        sum += 1;
    }

    let mut el = EdgeList::new(n);
    let mut base: Vid = 0;
    for &s in &sizes {
        if s >= 2 {
            // Random spanning path for guaranteed connectivity.
            let mut order: Vec<Vid> = (base..base + s).collect();
            for i in (1..s).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for w in order.windows(2) {
                el.push(w[0], w[1]);
            }
            // Extra intra-community random edges to reach the target degree.
            let extra = ((degree * s as f64 / 2.0) as usize).saturating_sub(s - 1);
            for _ in 0..extra {
                let u = base + rng.random_range(0..s);
                let v = base + rng.random_range(0..s);
                el.push(u as Vid, v as Vid);
            }
        }
        base += s;
    }
    CsrGraph::from_edges(el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DisjointSets;

    fn component_sizes(g: &CsrGraph) -> Vec<usize> {
        let mut ds = DisjointSets::new(g.num_vertices());
        for (u, v) in g.edges() {
            ds.union(u, v);
        }
        let labels = ds.canonical_labels();
        let mut counts = std::collections::HashMap::new();
        for l in labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        let mut sizes: Vec<usize> = counts.into_values().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }

    #[test]
    fn component_count_close_to_target() {
        let g = community_graph(5_000, 200, 4.0, 1.5, 9);
        assert_eq!(g.num_vertices(), 5_000);
        let sizes = component_sizes(&g);
        // Every generated community is internally connected, and they are
        // vertex-disjoint, so the count is exact (singletons allowed).
        assert_eq!(sizes.len(), 200);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn heavy_tail() {
        let g = community_graph(10_000, 500, 3.0, 1.2, 4);
        let sizes = component_sizes(&g);
        // Largest community should be far bigger than the median.
        let median = sizes[sizes.len() / 2];
        assert!(
            sizes[0] > 10 * median.max(1),
            "sizes[0]={} median={}",
            sizes[0],
            median
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            community_graph(1000, 50, 3.0, 1.5, 77),
            community_graph(1000, 50, 3.0, 1.5, 77)
        );
    }

    #[test]
    fn single_component_case() {
        let g = community_graph(100, 1, 5.0, 1.5, 3);
        assert_eq!(component_sizes(&g).len(), 1);
    }
}
