//! Social-network generators: preferential attachment and small-world.
//!
//! Not stand-ins for specific Table III graphs, but standard families used
//! in the wider test matrix: Barabási–Albert gives a connected heavy-tail
//! graph grown by preferential attachment (twitter-like without RMAT's
//! fringe of isolated vertices), Watts–Strogatz gives a high-clustering,
//! low-diameter ring rewiring (a stress case for hooking locality).

use crate::{CsrGraph, EdgeList, Vid};
use rand::Rng;

/// Barabási–Albert preferential attachment: starts from a small clique
/// and attaches each new vertex to `m_attach` existing vertices chosen
/// proportionally to degree.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> CsrGraph {
    assert!(m_attach >= 1);
    let mut rng = super::rng(seed);
    let mut el = EdgeList::new(n);
    let core = (m_attach + 1).min(n);
    for u in 0..core {
        for v in (u + 1)..core {
            el.push(u, v);
        }
    }
    // `targets` holds one entry per edge endpoint: sampling uniformly from
    // it is sampling proportionally to degree.
    let mut endpoint_pool: Vec<Vid> = el.edges().iter().flat_map(|&(u, v)| [u, v]).collect();
    for v in core..n {
        let mut chosen = Vec::with_capacity(m_attach);
        let mut guard = 0;
        while chosen.len() < m_attach && guard < 50 * m_attach {
            guard += 1;
            let t = endpoint_pool[rng.random_range(0..endpoint_pool.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            el.push(v, t);
            endpoint_pool.push(v);
            endpoint_pool.push(t);
        }
    }
    CsrGraph::from_edges(el)
}

/// Watts–Strogatz small world: a ring lattice where each vertex connects
/// to its `k/2` neighbors on each side, with each edge rewired to a random
/// endpoint with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and ≥ 2");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = super::rng(seed);
    let mut el = EdgeList::new(n);
    if n > k {
        for u in 0..n {
            for d in 1..=(k / 2) {
                let v = (u + d) % n;
                if rng.random_bool(beta) {
                    // Rewire to a uniformly random non-self endpoint.
                    let mut w = rng.random_range(0..n);
                    if w == u {
                        w = (w + 1) % n;
                    }
                    el.push(u, w);
                } else {
                    el.push(u, v);
                }
            }
        }
    } else if n >= 2 {
        for u in 0..n {
            for v in (u + 1)..n {
                el.push(u, v);
            }
        }
    }
    CsrGraph::from_edges(el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DisjointSets;

    fn num_components(g: &CsrGraph) -> usize {
        let mut ds = DisjointSets::new(g.num_vertices());
        for (u, v) in g.edges() {
            ds.union(u, v);
        }
        ds.num_sets()
    }

    #[test]
    fn ba_is_connected_with_heavy_tail() {
        let g = barabasi_albert(2000, 3, 4);
        assert_eq!(num_components(&g), 1);
        let max_deg = (0..2000).map(|v| g.degree(v)).max().unwrap();
        assert!(
            max_deg as f64 > 5.0 * g.average_degree(),
            "max {} avg {}",
            max_deg,
            g.average_degree()
        );
        assert!(g.validate().is_ok());
    }

    #[test]
    fn ba_deterministic_and_tiny_cases() {
        assert_eq!(barabasi_albert(100, 2, 9), barabasi_albert(100, 2, 9));
        let tiny = barabasi_albert(3, 5, 1);
        assert!(tiny.validate().is_ok());
    }

    #[test]
    fn ws_no_rewiring_is_ring_lattice() {
        let g = watts_strogatz(50, 4, 0.0, 7);
        assert!((0..50).all(|v| g.degree(v) == 4));
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn ws_rewiring_keeps_edge_budget() {
        let g = watts_strogatz(200, 6, 0.3, 3);
        // Rewiring can only collide (dedup), never add.
        assert!(g.num_undirected_edges() <= 200 * 3);
        assert!(g.num_undirected_edges() > 500);
        assert!(g.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn ws_rejects_odd_k() {
        watts_strogatz(10, 3, 0.1, 1);
    }
}
