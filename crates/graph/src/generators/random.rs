//! Erdős–Rényi random graphs.

use crate::{CsrGraph, EdgeList, Vid};
use rand::Rng;

/// G(n, m): a random graph with `n` vertices and (up to) `m` undirected
/// edges sampled uniformly with replacement (duplicates and self loops are
/// dropped during canonicalization, so the realized edge count can be
/// slightly below `m`).
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = super::rng(seed);
    let mut el = EdgeList::new(n);
    if n >= 2 {
        for _ in 0..m {
            let u = rng.random_range(0..n) as Vid;
            let v = rng.random_range(0..n) as Vid;
            el.push(u, v);
        }
    }
    CsrGraph::from_edges(el)
}

/// G(n, p): each of the `n(n-1)/2` possible edges present independently
/// with probability `p`. Suitable only for small `n` (quadratic scan).
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut rng = super::rng(seed);
    let mut el = EdgeList::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p) {
                el.push(u, v);
            }
        }
    }
    CsrGraph::from_edges(el)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_respects_bounds() {
        let g = erdos_renyi_gnm(100, 300, 1);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_undirected_edges() <= 300);
        assert!(g.num_undirected_edges() > 200, "too many collisions");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn gnm_deterministic() {
        assert_eq!(erdos_renyi_gnm(50, 100, 7), erdos_renyi_gnm(50, 100, 7));
        assert_ne!(erdos_renyi_gnm(50, 100, 7), erdos_renyi_gnm(50, 100, 8));
    }

    #[test]
    fn gnp_extremes() {
        let empty = erdos_renyi_gnp(20, 0.0, 3);
        assert_eq!(empty.num_directed_edges(), 0);
        let full = erdos_renyi_gnp(20, 1.0, 3);
        assert_eq!(full.num_undirected_edges(), 20 * 19 / 2);
    }

    #[test]
    fn gnm_tiny_universes() {
        assert_eq!(erdos_renyi_gnm(0, 10, 1).num_vertices(), 0);
        assert_eq!(erdos_renyi_gnm(1, 10, 1).num_directed_edges(), 0);
    }
}
