//! Metagenome-assembly-like graphs.
//!
//! Stand-in for the soil metagenomic graph `M3`: extremely sparse (average
//! degree ~2), with an enormous number of tiny components (7.6M components
//! over 53M vertices in the paper) — many of them long paths, the worst
//! case for hooking-based algorithms. §VI-E explains that M3 is the one
//! graph where LACC's advantage narrows: low m/n makes it
//! communication-bound and components converge slowly, so this generator
//! is the adversarial input in our evaluation too.

use crate::{CsrGraph, EdgeList, Vid};
use rand::Rng;

/// Generates a graph of about `n` vertices consisting of many short paths
/// (contig-like), a few long paths, and sparse random "repeat" edges
/// linking a small fraction of them.
///
/// * `mean_path_len` — expected length of a contig path.
/// * `repeat_fraction` — fraction of vertices that get an extra random
///   edge (models shared k-mers between contigs).
pub fn metagenome_graph(
    n: usize,
    mean_path_len: usize,
    repeat_fraction: f64,
    seed: u64,
) -> CsrGraph {
    assert!(mean_path_len >= 1);
    assert!((0.0..=1.0).contains(&repeat_fraction));
    let mut rng = super::rng(seed);
    let mut el = EdgeList::new(n);
    let mut v: Vid = 0;
    while v < n {
        // Geometric-ish path length around the mean, with an occasional
        // long contig (10x) to create a size tail.
        let len = if rng.random_bool(0.02) {
            mean_path_len * 10
        } else {
            1 + rng.random_range(0..(2 * mean_path_len))
        };
        let end = (v + len).min(n);
        for u in v..end.saturating_sub(1) {
            el.push(u, u + 1);
        }
        v = end;
    }
    let num_repeats = (n as f64 * repeat_fraction) as usize;
    if n >= 2 {
        for _ in 0..num_repeats {
            let a = rng.random_range(0..n) as Vid;
            let b = rng.random_range(0..n) as Vid;
            el.push(a, b);
        }
    }
    CsrGraph::from_edges(el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DisjointSets;

    fn num_components(g: &CsrGraph) -> usize {
        let mut ds = DisjointSets::new(g.num_vertices());
        for (u, v) in g.edges() {
            ds.union(u, v);
        }
        ds.num_sets()
    }

    #[test]
    fn very_sparse_many_components() {
        let g = metagenome_graph(50_000, 7, 0.01, 3);
        assert_eq!(g.num_vertices(), 50_000);
        assert!(
            g.average_degree() < 3.0,
            "avg degree {}",
            g.average_degree()
        );
        let comps = num_components(&g);
        // M3-like regime: component count is a sizable fraction of n.
        assert!(comps > 3_000, "components {comps}");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            metagenome_graph(1000, 5, 0.02, 9),
            metagenome_graph(1000, 5, 0.02, 9)
        );
    }

    #[test]
    fn zero_repeats_pure_paths() {
        let g = metagenome_graph(200, 4, 0.0, 1);
        // Pure disjoint paths: max degree 2.
        let max_deg = (0..200).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg <= 2);
    }
}
