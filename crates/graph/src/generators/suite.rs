//! The Table III stand-in suite.
//!
//! One entry per test problem in the paper's Table III, with the paper's
//! reported statistics attached for paper-vs-measured comparison, and a
//! laptop-scale generator recipe matched on the three properties that drive
//! LACC performance (§VI-E): component-count regime, average degree, and
//! degree skew.

use super::{community_graph, mesh_3d, metagenome_graph, rmat, RmatParams};
use crate::CsrGraph;

/// The generator family and parameters for a stand-in graph.
#[derive(Clone, Debug)]
pub enum Recipe {
    /// Protein-similarity-like: many power-law components.
    Community {
        /// Total vertices.
        n: usize,
        /// Number of communities (= components).
        components: usize,
        /// Target intra-community average degree.
        degree: f64,
        /// Power-law exponent for community sizes.
        alpha: f64,
    },
    /// 3D structural mesh (single dense component).
    Mesh3d {
        /// Grid extent in x.
        x: usize,
        /// Grid extent in y.
        y: usize,
        /// Grid extent in z.
        z: usize,
    },
    /// Skewed Kronecker graph (web/social).
    Rmat {
        /// `2^scale` vertices.
        scale: u32,
        /// Sampled edges per vertex.
        edge_factor: usize,
        /// Quadrant probabilities.
        params: RmatParams,
    },
    /// Metagenome-like: extremely sparse, huge component count.
    Metagenome {
        /// Total vertices.
        n: usize,
        /// Mean contig path length.
        mean_path: usize,
        /// Fraction of vertices receiving a random repeat edge.
        repeat_fraction: f64,
    },
}

/// A named test problem: paper statistics plus the stand-in recipe.
#[derive(Clone, Debug)]
pub struct TestProblem {
    /// Name matching the paper's Table III row.
    pub name: &'static str,
    /// Short description from Table III.
    pub description: &'static str,
    /// Vertices in the paper's graph.
    pub paper_vertices: u64,
    /// Directed edges in the paper's graph.
    pub paper_edges: u64,
    /// Connected components in the paper's graph.
    pub paper_components: u64,
    /// Stand-in generator recipe.
    pub recipe: Recipe,
    /// Seed used for the stand-in.
    pub seed: u64,
}

impl TestProblem {
    /// Builds the stand-in graph.
    pub fn build(&self) -> CsrGraph {
        match self.recipe {
            Recipe::Community {
                n,
                components,
                degree,
                alpha,
            } => community_graph(n, components, degree, alpha, self.seed),
            Recipe::Mesh3d { x, y, z } => mesh_3d(x, y, z),
            Recipe::Rmat {
                scale,
                edge_factor,
                params,
            } => rmat(scale, edge_factor, params, self.seed),
            Recipe::Metagenome {
                n,
                mean_path,
                repeat_fraction,
            } => metagenome_graph(n, mean_path, repeat_fraction, self.seed),
        }
    }

    /// Builds a reduced-size variant for fast tests: roughly `1/shrink` of
    /// the default stand-in scale.
    pub fn build_small(&self, shrink: usize) -> CsrGraph {
        let s = shrink.max(1);
        match self.recipe {
            Recipe::Community {
                n,
                components,
                degree,
                alpha,
            } => community_graph(
                (n / s).max(16),
                (components / s).max(1),
                degree,
                alpha,
                self.seed,
            ),
            Recipe::Mesh3d { x, y, z } => {
                let f = (s as f64).cbrt().ceil() as usize;
                mesh_3d((x / f).max(2), (y / f).max(2), (z / f).max(2))
            }
            Recipe::Rmat {
                scale,
                edge_factor,
                params,
            } => {
                let drop = (s as f64).log2().ceil() as u32;
                rmat(
                    scale.saturating_sub(drop).max(4),
                    edge_factor,
                    params,
                    self.seed,
                )
            }
            Recipe::Metagenome {
                n,
                mean_path,
                repeat_fraction,
            } => metagenome_graph((n / s).max(16), mean_path, repeat_fraction, self.seed),
        }
    }
}

/// The eight smaller Table III problems (Figure 4's workload).
pub fn suite_small() -> Vec<TestProblem> {
    vec![
        TestProblem {
            name: "archaea",
            description: "archaea protein-similarity network",
            paper_vertices: 1_644_641,
            paper_edges: 204_790_000,
            paper_components: 59_794,
            recipe: Recipe::Community {
                n: 50_000,
                components: 1_800,
                degree: 40.0,
                alpha: 1.3,
            },
            seed: 0xA2C_AEA,
        },
        TestProblem {
            name: "queen_4147",
            description: "3D structural problem",
            paper_vertices: 4_147_110,
            paper_edges: 329_500_000,
            paper_components: 1,
            recipe: Recipe::Mesh3d {
                x: 36,
                y: 36,
                z: 36,
            },
            seed: 0x0EE2,
        },
        TestProblem {
            name: "eukarya",
            description: "eukarya protein-similarity network",
            paper_vertices: 3_230_000,
            paper_edges: 359_740_000,
            paper_components: 164_156,
            recipe: Recipe::Community {
                n: 80_000,
                components: 4_000,
                degree: 30.0,
                alpha: 1.25,
            },
            seed: 0xE0CA,
        },
        TestProblem {
            name: "uk-2002",
            description: "2002 web crawl of .uk domain",
            paper_vertices: 18_480_000,
            paper_edges: 529_440_000,
            paper_components: 1_990,
            recipe: Recipe::Rmat {
                scale: 15,
                edge_factor: 14,
                params: RmatParams::web(),
            },
            seed: 0x0002,
        },
        TestProblem {
            name: "M3",
            description: "soil metagenomic data",
            paper_vertices: 531_000_000,
            paper_edges: 1_047_000_000,
            paper_components: 7_600_000,
            recipe: Recipe::Metagenome {
                n: 300_000,
                mean_path: 7,
                repeat_fraction: 0.004,
            },
            seed: 0x3333,
        },
        TestProblem {
            name: "twitter7",
            description: "twitter follower network",
            paper_vertices: 41_650_000,
            paper_edges: 2_405_000_000,
            paper_components: 1,
            recipe: Recipe::Rmat {
                scale: 15,
                edge_factor: 28,
                params: RmatParams::graph500(),
            },
            seed: 0x7777,
        },
        TestProblem {
            name: "sk-2005",
            description: "2005 web crawl of .sk domain",
            paper_vertices: 50_640_000,
            paper_edges: 3_639_000_000,
            paper_components: 45,
            recipe: Recipe::Rmat {
                scale: 15,
                edge_factor: 36,
                params: RmatParams::web(),
            },
            seed: 0x2005,
        },
        TestProblem {
            name: "MOLIERE_2016",
            description: "automatic biomedical hypothesis generation system",
            paper_vertices: 30_220_000,
            paper_edges: 6_677_000_000,
            paper_components: 4_457,
            recipe: Recipe::Rmat {
                scale: 14,
                edge_factor: 56,
                params: RmatParams::graph500(),
            },
            seed: 0x2016,
        },
    ]
}

/// The two large Table III problems (Figure 6's workload). Stand-ins are
/// larger than the small suite but still laptop-scale; Figure 6's point is
/// scaling to thousands of ranks, which the cost model supplies.
pub fn suite_big() -> Vec<TestProblem> {
    vec![
        TestProblem {
            name: "MOLIERE_2016_big",
            description: "MOLIERE_2016 at Figure-6 scale",
            paper_vertices: 30_220_000,
            paper_edges: 6_677_000_000,
            paper_components: 4_457,
            recipe: Recipe::Rmat {
                scale: 17,
                edge_factor: 30,
                params: RmatParams::graph500(),
            },
            seed: 0x0201_6B16,
        },
        TestProblem {
            name: "iso_m100",
            description: "similarities of proteins in IMG isolate genomes",
            paper_vertices: 68_480_000,
            paper_edges: 67_160_000_000,
            paper_components: 1_350_000,
            recipe: Recipe::Community {
                n: 400_000,
                components: 8_000,
                degree: 25.0,
                alpha: 1.3,
            },
            seed: 0x1501_0100,
        },
    ]
}

/// Looks a problem up by name across both suites.
pub fn by_name(name: &str) -> Option<TestProblem> {
    suite_small()
        .into_iter()
        .chain(suite_big())
        .find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DisjointSets;

    fn components(g: &CsrGraph) -> usize {
        let mut ds = DisjointSets::new(g.num_vertices());
        for (u, v) in g.edges() {
            ds.union(u, v);
        }
        ds.num_sets()
    }

    #[test]
    fn all_names_unique_and_resolvable() {
        let mut names: Vec<_> = suite_small()
            .iter()
            .chain(suite_big().iter())
            .map(|p| p.name)
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
        for n in names {
            assert!(by_name(n).is_some());
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn small_builds_validate() {
        // Build drastically shrunk variants so the test is fast; the full
        // defaults are exercised by the experiment binaries.
        for p in suite_small() {
            let g = p.build_small(64);
            assert!(g.validate().is_ok(), "{} invalid", p.name);
            assert!(g.num_vertices() > 0);
        }
    }

    #[test]
    fn component_regimes_match_paper_classes() {
        // queen-like: single component; archaea-like: many components.
        let queen = by_name("queen_4147").unwrap().build_small(27);
        assert_eq!(components(&queen), 1);
        let archaea = by_name("archaea").unwrap().build_small(16);
        assert!(components(&archaea) > 50);
    }
}
