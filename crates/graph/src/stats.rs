//! Graph census utilities: the data behind Table III and the generator
//! validation in EXPERIMENTS.md.

use crate::{CsrGraph, DisjointSets, Vid};

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of directed edges (as reported in Table III).
    pub directed_edges: usize,
    /// Number of connected components (union-find census).
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Number of isolated vertices.
    pub isolated_vertices: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree (2m/n).
    pub avg_degree: f64,
}

/// Computes full census statistics for a graph.
pub fn graph_stats(g: &CsrGraph) -> GraphStats {
    let n = g.num_vertices();
    let mut ds = DisjointSets::new(n);
    for (u, v) in g.edges() {
        ds.union(u, v);
    }
    let mut comp_size = vec![0usize; n];
    for v in 0..n {
        comp_size[ds.find(v)] += 1;
    }
    let largest = comp_size.iter().copied().max().unwrap_or(0);
    let isolated = (0..n).filter(|&v| g.degree(v) == 0).count();
    let max_degree = (0..n).map(|v| g.degree(v)).max().unwrap_or(0);
    GraphStats {
        vertices: n,
        directed_edges: g.num_directed_edges(),
        components: ds.num_sets(),
        largest_component: largest,
        isolated_vertices: isolated,
        max_degree,
        avg_degree: g.average_degree(),
    }
}

/// Ground-truth component labels via union-find, canonicalized so each
/// vertex carries the smallest id in its component.
pub fn ground_truth_labels(g: &CsrGraph) -> Vec<Vid> {
    let mut ds = DisjointSets::new(g.num_vertices());
    for (u, v) in g.edges() {
        ds.union(u, v);
    }
    ds.canonical_labels()
}

/// Histogram of component sizes (`size → count`), sorted by size.
pub fn component_size_histogram(g: &CsrGraph) -> Vec<(usize, usize)> {
    let labels = ground_truth_labels(g);
    let n = labels.len();
    let mut comp_size = vec![0usize; n];
    for &l in &labels {
        comp_size[l] += 1;
    }
    let mut hist = std::collections::BTreeMap::new();
    for v in 0..n {
        if labels[v] == v {
            *hist.entry(comp_size[v]).or_insert(0usize) += 1;
        }
    }
    hist.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{path_graph, random_forest, star_graph};
    use crate::EdgeList;

    #[test]
    fn stats_for_path() {
        let s = graph_stats(&path_graph(10));
        assert_eq!(s.vertices, 10);
        assert_eq!(s.directed_edges, 18);
        assert_eq!(s.components, 1);
        assert_eq!(s.largest_component, 10);
        assert_eq!(s.isolated_vertices, 0);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn stats_with_isolated_vertices() {
        let mut el = EdgeList::new(5);
        el.push(0, 1);
        let s = graph_stats(&CsrGraph::from_edges(el));
        assert_eq!(s.components, 4);
        assert_eq!(s.isolated_vertices, 3);
        assert_eq!(s.largest_component, 2);
    }

    #[test]
    fn ground_truth_matches_structure() {
        let g = random_forest(200, 10, 5);
        let labels = ground_truth_labels(&g);
        for (u, v) in g.edges() {
            assert_eq!(labels[u], labels[v]);
        }
        assert_eq!(crate::unionfind::count_components(&labels), 10);
    }

    #[test]
    fn histogram_star() {
        let hist = component_size_histogram(&star_graph(7));
        assert_eq!(hist, vec![(7, 1)]);
    }

    #[test]
    fn histogram_mixed() {
        let mut el = EdgeList::new(6);
        el.push(0, 1);
        el.push(2, 3);
        el.push(3, 4);
        let hist = component_size_histogram(&CsrGraph::from_edges(el));
        // sizes: {0,1}=2, {2,3,4}=3, {5}=1
        assert_eq!(hist, vec![(1, 1), (2, 1), (3, 1)]);
    }
}
