//! Graph census utilities: the data behind Table III and the generator
//! validation in EXPERIMENTS.md.

use crate::{CsrGraph, DisjointSets, Vid};

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of directed edges (as reported in Table III).
    pub directed_edges: usize,
    /// Number of connected components (union-find census).
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Number of isolated vertices.
    pub isolated_vertices: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree (2m/n).
    pub avg_degree: f64,
}

/// Computes full census statistics for a graph.
pub fn graph_stats(g: &CsrGraph) -> GraphStats {
    let n = g.num_vertices();
    let mut ds = DisjointSets::new(n);
    for (u, v) in g.edges() {
        ds.union(u, v);
    }
    let mut comp_size = vec![0usize; n];
    for v in 0..n {
        comp_size[ds.find(v)] += 1;
    }
    let largest = comp_size.iter().copied().max().unwrap_or(0);
    let isolated = (0..n).filter(|&v| g.degree(v) == 0).count();
    let max_degree = (0..n).map(|v| g.degree(v)).max().unwrap_or(0);
    GraphStats {
        vertices: n,
        directed_edges: g.num_directed_edges(),
        components: ds.num_sets(),
        largest_component: largest,
        isolated_vertices: isolated,
        max_degree,
        avg_degree: g.average_degree(),
    }
}

/// Ground-truth component labels via union-find, canonicalized so each
/// vertex carries the smallest id in its component.
pub fn ground_truth_labels(g: &CsrGraph) -> Vec<Vid> {
    let mut ds = DisjointSets::new(g.num_vertices());
    for (u, v) in g.edges() {
        ds.union(u, v);
    }
    ds.canonical_labels()
}

/// Cheap pre-pass statistics for adaptive engine selection: a sampled-BFS
/// diameter estimate plus degree-shape measures. Designed so a distributed
/// caller can split the BFS seeds across ranks and merge partial results
/// with a single max-allreduce — see `lacc::engine`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrepassStats {
    /// BFS seeds actually sampled (≤ requested, capped at `n`).
    pub samples: usize,
    /// Maximum BFS eccentricity observed over the sampled seeds — a lower
    /// bound on the true diameter, tight on low-diameter graphs.
    pub diameter_estimate: usize,
    /// Largest fraction of all vertices reached by any single sampled BFS
    /// (≈ largest-component share when a seed lands in it).
    pub reached_fraction: f64,
    /// Degree skew: `max_degree / avg_degree` (1.0 for regular graphs,
    /// large for power-law graphs; 0.0 for edgeless graphs).
    pub degree_skew: f64,
    /// Average degree (2m/n; 0.0 for the empty graph).
    pub avg_degree: f64,
}

/// Deterministic BFS seed list: `samples` distinct vertices spread over
/// the id space by a splitmix64-style hash of `seed`, deduplicated. Every
/// rank computes the identical list, so a distributed pre-pass can
/// round-robin the seeds without any coordination.
pub fn prepass_seeds(n: usize, samples: usize, seed: u64) -> Vec<Vid> {
    if n == 0 || samples == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(samples.min(n));
    let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    while out.len() < samples.min(n) {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let v = (z % n as u64) as Vid;
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// BFS from `source`: returns `(eccentricity, vertices reached)` within
/// the source's component (the eccentricity of an isolated vertex is 0,
/// reaching 1 vertex).
pub fn bfs_eccentricity(g: &CsrGraph, source: Vid) -> (usize, usize) {
    let n = g.num_vertices();
    let mut dist = vec![usize::MAX; n];
    dist[source] = 0;
    let mut frontier = vec![source];
    let mut ecc = 0usize;
    let mut reached = 1usize;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    ecc = ecc.max(dist[v]);
                    reached += 1;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    (ecc, reached)
}

/// Degree skew `max_degree / avg_degree` (0.0 for edgeless graphs).
pub fn degree_skew(g: &CsrGraph) -> f64 {
    let avg = g.average_degree();
    if avg == 0.0 {
        return 0.0;
    }
    let max = (0..g.num_vertices())
        .map(|v| g.degree(v))
        .max()
        .unwrap_or(0);
    max as f64 / avg
}

/// Serial reference for the engine-selection pre-pass: BFS from
/// [`prepass_seeds`] merging eccentricities and reach by max. A
/// distributed caller that splits the same seed list across ranks and
/// max-merges partials computes the identical result.
pub fn prepass_stats(g: &CsrGraph, samples: usize, seed: u64) -> PrepassStats {
    let n = g.num_vertices();
    let seeds = prepass_seeds(n, samples, seed);
    let mut ecc = 0usize;
    let mut reached = 0usize;
    for &s in &seeds {
        let (e, r) = bfs_eccentricity(g, s);
        ecc = ecc.max(e);
        reached = reached.max(r);
    }
    PrepassStats {
        samples: seeds.len(),
        diameter_estimate: ecc,
        reached_fraction: if n == 0 {
            1.0
        } else {
            reached as f64 / n as f64
        },
        degree_skew: degree_skew(g),
        avg_degree: g.average_degree(),
    }
}

/// Histogram of component sizes (`size → count`), sorted by size.
pub fn component_size_histogram(g: &CsrGraph) -> Vec<(usize, usize)> {
    let labels = ground_truth_labels(g);
    let n = labels.len();
    let mut comp_size = vec![0usize; n];
    for &l in &labels {
        comp_size[l] += 1;
    }
    let mut hist = std::collections::BTreeMap::new();
    for v in 0..n {
        if labels[v] == v {
            *hist.entry(comp_size[v]).or_insert(0usize) += 1;
        }
    }
    hist.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{path_graph, random_forest, star_graph};
    use crate::EdgeList;

    #[test]
    fn stats_for_path() {
        let s = graph_stats(&path_graph(10));
        assert_eq!(s.vertices, 10);
        assert_eq!(s.directed_edges, 18);
        assert_eq!(s.components, 1);
        assert_eq!(s.largest_component, 10);
        assert_eq!(s.isolated_vertices, 0);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn stats_with_isolated_vertices() {
        let mut el = EdgeList::new(5);
        el.push(0, 1);
        let s = graph_stats(&CsrGraph::from_edges(el));
        assert_eq!(s.components, 4);
        assert_eq!(s.isolated_vertices, 3);
        assert_eq!(s.largest_component, 2);
    }

    #[test]
    fn ground_truth_matches_structure() {
        let g = random_forest(200, 10, 5);
        let labels = ground_truth_labels(&g);
        for (u, v) in g.edges() {
            assert_eq!(labels[u], labels[v]);
        }
        assert_eq!(crate::unionfind::count_components(&labels), 10);
    }

    #[test]
    fn prepass_seeds_are_deterministic_and_distinct() {
        let a = prepass_seeds(100, 8, 42);
        let b = prepass_seeds(100, 8, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8, "seeds must be distinct");
        assert!(a.iter().all(|&v| v < 100));
        // More samples than vertices clamps to n; degenerate inputs are empty.
        assert_eq!(prepass_seeds(3, 10, 1).len(), 3);
        assert!(prepass_seeds(0, 4, 1).is_empty());
        assert!(prepass_seeds(10, 0, 1).is_empty());
    }

    #[test]
    fn bfs_eccentricity_on_path_and_star() {
        let path = path_graph(10);
        assert_eq!(bfs_eccentricity(&path, 0), (9, 10));
        assert_eq!(bfs_eccentricity(&path, 5), (5, 10));
        let star = star_graph(8);
        assert_eq!(bfs_eccentricity(&star, 0), (1, 8));
        assert_eq!(bfs_eccentricity(&star, 3), (2, 8));
    }

    #[test]
    fn prepass_stats_shapes() {
        // Star: diameter ≤ 2, one component, heavy hub skew.
        let s = prepass_stats(&star_graph(64), 8, 7);
        assert!(s.diameter_estimate <= 2);
        assert!((s.reached_fraction - 1.0).abs() < 1e-12);
        assert!(s.degree_skew > 10.0, "hub skew {}", s.degree_skew);
        // Forest of small trees: no single BFS reaches much of the graph.
        let f = prepass_stats(&random_forest(400, 40, 3), 8, 7);
        assert!(f.reached_fraction < 0.3, "reached {}", f.reached_fraction);
        // Path: a sampled eccentricity is a decent diameter lower bound.
        let p = prepass_stats(&path_graph(128), 8, 7);
        assert!(p.diameter_estimate >= 64, "got {}", p.diameter_estimate);
        // Empty graph is well-defined.
        let e = prepass_stats(&CsrGraph::from_edges(EdgeList::new(0)), 4, 7);
        assert_eq!(e.samples, 0);
        assert_eq!(e.reached_fraction, 1.0);
    }

    #[test]
    fn histogram_star() {
        let hist = component_size_histogram(&star_graph(7));
        assert_eq!(hist, vec![(7, 1)]);
    }

    #[test]
    fn histogram_mixed() {
        let mut el = EdgeList::new(6);
        el.push(0, 1);
        el.push(2, 3);
        el.push(3, 4);
        let hist = component_size_histogram(&CsrGraph::from_edges(el));
        // sizes: {0,1}=2, {2,3,4}=3, {5}=1
        assert_eq!(hist, vec![(1, 1), (2, 1), (3, 1)]);
    }
}
