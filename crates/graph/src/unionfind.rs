//! Union-find (disjoint sets) with union-by-rank and path halving.
//!
//! This is the serial ground truth for every connected-components algorithm
//! in the workspace: an optimal `O(m α(n))` sequential algorithm, exactly
//! the kind of "best serial algorithm" the PRAM algorithms in the paper are
//! measured against for work efficiency.

use crate::Vid;

/// A disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct DisjointSets {
    parent: Vec<Vid>,
    rank: Vec<u8>,
    /// Number of disjoint sets currently in the forest.
    num_sets: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements in the universe.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Finds the representative of `x`, halving the path along the way.
    pub fn find(&mut self, mut x: Vid) -> Vid {
        while self.parent[x] != x {
            let grandparent = self.parent[self.parent[x]];
            self.parent[x] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets containing `x` and `y`.
    ///
    /// Returns `true` if the sets were distinct (a merge happened).
    pub fn union(&mut self, x: Vid, y: Vid) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        self.num_sets -= 1;
        match self.rank[rx].cmp(&self.rank[ry]) {
            std::cmp::Ordering::Less => self.parent[rx] = ry,
            std::cmp::Ordering::Greater => self.parent[ry] = rx,
            std::cmp::Ordering::Equal => {
                self.parent[ry] = rx;
                self.rank[rx] += 1;
            }
        }
        true
    }

    /// True if `x` and `y` are in the same set.
    pub fn same_set(&mut self, x: Vid, y: Vid) -> bool {
        self.find(x) == self.find(y)
    }

    /// Returns a labeling `label[v] = min{u : u ~ v}`: every vertex labeled
    /// with the smallest vertex id in its set.
    ///
    /// This canonical form is what tests compare across algorithms, since
    /// different CC algorithms produce different (but equivalent) root
    /// choices.
    pub fn canonical_labels(&mut self) -> Vec<Vid> {
        let n = self.len();
        let mut min_of_root: Vec<Vid> = (0..n).collect();
        for v in 0..n {
            let r = self.find(v);
            if v < min_of_root[r] {
                min_of_root[r] = v;
            }
        }
        // `parent[v]` after path halving may still be a non-root ancestor,
        // so resolve through find again.
        (0..n)
            .map(|v| self.find(v))
            .map(|r| min_of_root[r])
            .collect()
    }
}

/// Canonicalizes an arbitrary component labeling: relabels each vertex with
/// the minimum vertex id sharing its label.
///
/// Two labelings describe the same partition iff their canonical forms are
/// equal. Used throughout the test suites to compare algorithm outputs.
pub fn canonicalize_labels(labels: &[Vid]) -> Vec<Vid> {
    let n = labels.len();
    let mut min_of_label: Vec<Vid> = vec![usize::MAX; n];
    for (v, &l) in labels.iter().enumerate() {
        assert!(l < n, "label {l} out of range for {n} vertices");
        if v < min_of_label[l] {
            min_of_label[l] = v;
        }
    }
    labels.iter().map(|&l| min_of_label[l]).collect()
}

/// Counts the number of distinct labels in a component labeling.
pub fn count_components(labels: &[Vid]) -> usize {
    let mut seen = vec![false; labels.len()];
    let mut count = 0;
    for &l in labels {
        if !seen[l] {
            seen[l] = true;
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut ds = DisjointSets::new(5);
        assert_eq!(ds.num_sets(), 5);
        for v in 0..5 {
            assert_eq!(ds.find(v), v);
        }
    }

    #[test]
    fn union_reduces_set_count() {
        let mut ds = DisjointSets::new(4);
        assert!(ds.union(0, 1));
        assert!(!ds.union(1, 0));
        assert_eq!(ds.num_sets(), 3);
        assert!(ds.same_set(0, 1));
        assert!(!ds.same_set(0, 2));
    }

    #[test]
    fn transitive_union() {
        let mut ds = DisjointSets::new(6);
        ds.union(0, 1);
        ds.union(2, 3);
        ds.union(1, 2);
        assert!(ds.same_set(0, 3));
        assert_eq!(ds.num_sets(), 3);
    }

    #[test]
    fn canonical_labels_pick_minimum() {
        let mut ds = DisjointSets::new(5);
        ds.union(4, 2);
        ds.union(2, 3);
        let labels = ds.canonical_labels();
        assert_eq!(labels, vec![0, 1, 2, 2, 2]);
    }

    #[test]
    fn canonical_labels_resolve_deep_chains() {
        // Build a rank-3 tree so some vertices sit at depth ≥ 3; the final
        // labeling must still resolve through the true root (regression:
        // an earlier version read the possibly-halved parent directly).
        let mut ds = DisjointSets::new(8);
        ds.union(0, 1);
        ds.union(2, 3);
        ds.union(0, 2);
        ds.union(4, 5);
        ds.union(6, 7);
        ds.union(4, 6);
        ds.union(0, 4);
        let labels = ds.canonical_labels();
        assert!(labels.iter().all(|&l| l == 0), "{labels:?}");
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let labels = vec![3, 3, 0, 3, 0];
        let canon = canonicalize_labels(&labels);
        assert_eq!(canon, canonicalize_labels(&canon));
        // Label 3's members are {0,1,3}; min is 0. Label 0's members are
        // {2,4}; min is 2.
        assert_eq!(canon, vec![0, 0, 2, 0, 2]);
    }

    #[test]
    fn count_components_works() {
        assert_eq!(count_components(&[0, 0, 2, 2, 4]), 3);
        assert_eq!(count_components(&[]), 0);
    }

    #[test]
    fn empty_universe() {
        let ds = DisjointSets::new(0);
        assert!(ds.is_empty());
        assert_eq!(ds.num_sets(), 0);
    }

    #[test]
    fn chain_of_unions_single_set() {
        let n = 1000;
        let mut ds = DisjointSets::new(n);
        for v in 1..n {
            ds.union(v - 1, v);
        }
        assert_eq!(ds.num_sets(), 1);
        let labels = ds.canonical_labels();
        assert!(labels.iter().all(|&l| l == 0));
    }
}
