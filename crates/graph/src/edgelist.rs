//! A mutable list of undirected edges.
//!
//! Generators and file readers produce [`EdgeList`]s; algorithms consume
//! the immutable [`crate::CsrGraph`] built from them.

use crate::Vid;

/// An edge list over vertices `0..n`.
///
/// Edges are stored as ordered pairs but interpreted as undirected; the
/// cleanup methods ([`symmetrize`](EdgeList::symmetrize),
/// [`dedup`](EdgeList::dedup), [`remove_self_loops`](EdgeList::remove_self_loops))
/// bring a raw list into the canonical form expected by
/// [`CsrGraph::from_edges`](crate::CsrGraph::from_edges).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    n: usize,
    edges: Vec<(Vid, Vid)>,
}

impl EdgeList {
    /// Creates an empty edge list over `n` vertices.
    pub fn new(n: usize) -> Self {
        EdgeList {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates an edge list from raw pairs, panicking on out-of-range ids.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (Vid, Vid)>) -> Self {
        let mut el = EdgeList::new(n);
        for (u, v) in pairs {
            el.push(u, v);
        }
        el
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of stored (directed) edge entries.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges are stored.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds the edge `{u, v}`.
    ///
    /// # Panics
    /// If `u` or `v` is not in `0..n`.
    pub fn push(&mut self, u: Vid, v: Vid) {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        self.edges.push((u, v));
    }

    /// The stored edges.
    pub fn edges(&self) -> &[(Vid, Vid)] {
        &self.edges
    }

    /// Consumes the list, returning the raw edges.
    pub fn into_edges(self) -> Vec<(Vid, Vid)> {
        self.edges
    }

    /// Adds the reverse of every stored edge, making the list symmetric.
    pub fn symmetrize(&mut self) {
        let orig = self.edges.len();
        self.edges.reserve(orig);
        for i in 0..orig {
            let (u, v) = self.edges[i];
            if u != v {
                self.edges.push((v, u));
            }
        }
    }

    /// Removes duplicate edges (exact ordered-pair duplicates).
    pub fn dedup(&mut self) {
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Removes self loops `(v, v)`.
    pub fn remove_self_loops(&mut self) {
        self.edges.retain(|&(u, v)| u != v);
    }

    /// Applies the full cleanup pipeline: drop self loops, symmetrize,
    /// dedup. After this the list is a canonical symmetric simple graph.
    pub fn canonicalize(&mut self) {
        self.remove_self_loops();
        self.symmetrize();
        self.dedup();
    }

    /// Appends all edges of `other`, which must be over the same vertex set.
    pub fn extend_from(&mut self, other: &EdgeList) {
        assert_eq!(self.n, other.n, "vertex universes differ");
        self.edges.extend_from_slice(&other.edges);
    }

    /// Relabels every endpoint through `perm` (`new_id = perm[old_id]`).
    ///
    /// # Panics
    /// If `perm.len() != n`.
    pub fn apply_permutation(&mut self, perm: &[Vid]) {
        assert_eq!(perm.len(), self.n, "permutation length mismatch");
        for e in &mut self.edges {
            *e = (perm[e.0], perm[e.1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(1, 2);
        assert_eq!(el.len(), 2);
        assert_eq!(el.num_vertices(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_out_of_range_panics() {
        let mut el = EdgeList::new(2);
        el.push(0, 2);
    }

    #[test]
    fn symmetrize_adds_reverses_but_not_loops() {
        let mut el = EdgeList::from_pairs(3, [(0, 1), (2, 2)]);
        el.symmetrize();
        assert_eq!(el.edges(), &[(0, 1), (2, 2), (1, 0)]);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut el = EdgeList::from_pairs(3, [(0, 1), (0, 1), (1, 0)]);
        el.dedup();
        assert_eq!(el.edges(), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn canonicalize_pipeline() {
        let mut el = EdgeList::from_pairs(4, [(1, 1), (0, 2), (2, 0), (3, 0), (0, 2)]);
        el.canonicalize();
        assert_eq!(el.edges(), &[(0, 2), (0, 3), (2, 0), (3, 0)]);
    }

    #[test]
    fn apply_permutation_relabels() {
        let mut el = EdgeList::from_pairs(3, [(0, 1), (1, 2)]);
        el.apply_permutation(&[2, 0, 1]);
        assert_eq!(el.edges(), &[(2, 0), (0, 1)]);
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = EdgeList::from_pairs(3, [(0, 1)]);
        let b = EdgeList::from_pairs(3, [(1, 2)]);
        a.extend_from(&b);
        assert_eq!(a.edges(), &[(0, 1), (1, 2)]);
    }
}
