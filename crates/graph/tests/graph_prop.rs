//! Property tests for the graph substrate: CSR invariants, I/O roundtrips
//! and permutation laws on arbitrary inputs.

use lacc_graph::generators::*;
use lacc_graph::io;
use lacc_graph::permute::Permutation;
use lacc_graph::{CsrGraph, DisjointSets, EdgeList};
use proptest::prelude::*;

fn arb_edgelist() -> impl Strategy<Value = EdgeList> {
    (1usize..80).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..200)
            .prop_map(move |pairs| EdgeList::from_pairs(n, pairs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_from_arbitrary_edges_validates(el in arb_edgelist()) {
        let g: CsrGraph = CsrGraph::from_edges(el);
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.is_symmetric());
        // Degree sum equals stored directed edges.
        let degree_sum: usize = (0..g.num_vertices()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, g.num_directed_edges());
    }

    #[test]
    fn matrix_market_roundtrip(el in arb_edgelist()) {
        let g: CsrGraph = CsrGraph::from_edges(el);
        let mut buf = Vec::new();
        io::write_matrix_market(&mut buf, &g.to_edgelist()).unwrap();
        let g2 = CsrGraph::from_edges(io::read_matrix_market(&buf[..]).unwrap());
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip(el in arb_edgelist()) {
        let back = io::from_binary(io::to_binary(&el)).unwrap();
        prop_assert_eq!(el, back);
    }

    #[test]
    fn edge_list_text_roundtrip(el in arb_edgelist()) {
        let mut buf = Vec::new();
        io::write_edge_list(&mut buf, &el).unwrap();
        let back = io::read_edge_list(&buf[..], Some(el.num_vertices())).unwrap();
        prop_assert_eq!(el.edges(), back.edges());
    }

    #[test]
    fn permutation_is_isomorphism(el in arb_edgelist(), seed in 0u64..1000) {
        let g = CsrGraph::from_edges(el);
        let n = g.num_vertices();
        let perm = Permutation::random(n, seed);
        let h = perm.permute_graph(&g);
        prop_assert_eq!(g.num_directed_edges(), h.num_directed_edges());
        for (u, v) in g.edges() {
            prop_assert!(h.has_edge(perm.apply(u), perm.apply(v)));
        }
        // Component structure is preserved.
        let comps = |g: &CsrGraph| {
            let mut ds = DisjointSets::new(g.num_vertices());
            for (u, v) in g.edges() { ds.union(u, v); }
            ds.num_sets()
        };
        prop_assert_eq!(comps(&g), comps(&h));
    }

    #[test]
    fn union_find_set_count_matches_incremental(el in arb_edgelist()) {
        let g: CsrGraph = CsrGraph::from_edges(el);
        let mut ds = DisjointSets::new(g.num_vertices());
        let mut merges = 0;
        for (u, v) in g.edges() {
            if ds.union(u, v) { merges += 1; }
        }
        prop_assert_eq!(ds.num_sets(), g.num_vertices() - merges);
        // Canonical labels are fixed points of canonicalization.
        let labels = ds.canonical_labels();
        prop_assert_eq!(
            &lacc_graph::unionfind::canonicalize_labels(&labels), &labels
        );
    }

    #[test]
    fn generators_produce_valid_graphs(seed in 0u64..50, n in 10usize..200) {
        for g in [
            erdos_renyi_gnm(n, n * 2, seed),
            rmat(7, 4, RmatParams::graph500(), seed),
            community_graph(n, (n / 10).max(1), 3.0, 1.3, seed),
            metagenome_graph(n, 5, 0.01, seed),
            random_forest(n, (n / 20).max(1), seed),
        ] {
            prop_assert!(g.validate().is_ok());
        }
    }
}
