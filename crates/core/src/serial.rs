//! Serial LACC on the serial GraphBLAS layer (Algorithms 3–6).
//!
//! This is the paper's LAGraph/SuiteSparse role: identical algorithm and
//! identical update-resolution rules as the distributed implementation in
//! [`crate::dist`], so the two produce bit-identical parent vectors.
//! Sparsity exploitation (Table I) is driven by [`LaccOpts::use_sparsity`].

use crate::options::LaccOpts;
use crate::stats::{IterStats, LaccRun};
use crate::Vid;
use gblas::serial::{self, Pattern, SparseVec};
use gblas::{Mask, MinUsize};
use lacc_graph::CsrGraph;
use std::time::Instant;

/// Star recomputation over the active subset (Algorithm 2 / 6, with the
/// conjunction propagation described in [`crate::asref`]).
fn starcheck_active(f: &[Vid], star: &mut [bool], active: &[bool]) {
    let n = f.len();
    for v in 0..n {
        if active[v] {
            star[v] = true;
        }
    }
    for v in 0..n {
        if !active[v] {
            continue;
        }
        let gf = f[f[v]];
        if f[v] != gf {
            star[v] = false;
            star[gf] = false;
        }
    }
    let snapshot = star.to_vec();
    for v in 0..n {
        if active[v] {
            star[v] = star[v] && snapshot[f[v]];
        }
    }
}

/// Runs serial LACC and returns labels plus per-iteration statistics.
///
/// ```
/// use lacc::{lacc_serial, LaccOpts};
/// use lacc_graph::generators::random_forest;
///
/// let g = random_forest(500, 12, 7); // exactly 12 trees
/// let run = lacc_serial(&g, &LaccOpts::default());
/// assert_eq!(run.num_components(), 12);
/// ```
pub fn lacc_serial(g: &CsrGraph, opts: &LaccOpts) -> LaccRun {
    let n = g.num_vertices();
    let a = Pattern::from_graph(g);
    let mut f: Vec<Vid> = (0..n).collect();
    let mut star = vec![true; n];
    let mut active = vec![true; n];
    let mut active_count = n;
    let mut iters: Vec<IterStats> = Vec::new();
    let wall_start = Instant::now();
    // Star staleness bookkeeping: the star vector entering an iteration is
    // accurate iff the previous shortcut changed nothing (shortcutting is
    // the only f-mutation after the last starcheck of an iteration).
    let mut prev_shortcut_changed = 0usize;

    for iteration in 1..=opts.max_iters {
        let active_before = active_count;

        // --- Step 1: conditional hooking (Algorithm 3), fused with the
        // convergence detector ---
        //
        // One mxv on the (min, max) monoid yields, per active star vertex,
        // both the smallest neighbor parent (the conditional hook
        // candidate) and the largest (needed by the convergence test
        // below). `star` here is the after-unconditional-hooking vector of
        // the previous iteration: shortcutting can only *create* stars, so
        // the flag has no false positives and conditional hooking stays
        // safe; newly formed stars are picked up one iteration later.
        let mask: Vec<bool> = (0..n).map(|v| star[v] && active[v]).collect();
        let density = if n == 0 {
            0.0
        } else {
            active_count as f64 / n as f64
        };
        let use_dense = density >= opts.dense_threshold;
        let q = if use_dense {
            let pairs: Vec<(Vid, Vid)> = f.iter().map(|&x| (x, x)).collect();
            serial::mxv_dense(&a, &pairs, Mask::Keep(&mask), gblas::MinMaxUsize)
        } else {
            let x = SparseVec::from_entries(
                n,
                (0..n)
                    .filter(|&v| active[v])
                    .map(|v| (v, (f[v], f[v])))
                    .collect(),
            );
            serial::mxv_sparse(&a, &x, Mask::Keep(&mask), gblas::MinMaxUsize)
        };

        // --- Converged-component tracking (Lemma 1, strengthened) ---
        //
        // The paper's rule — "stars remaining after unconditional hooking
        // in iterations ≥ 2 are converged" — is unsound: if a singleton
        // star hooks onto a star, the merged tree is *still* a star, so a
        // neighboring star survives unconditional hooking (which only
        // targets nonstars, Lemma 2) without being complete. Minimal
        // counterexample: the 5-path with vertex ids 77–80–79–81–78 (see
        // `lemma1_counterexample` below). We instead detect convergence
        // soundly: a star tree is converged iff every member's neighbors
        // all carry the tree's root as parent (no boundary edges) — read
        // off the (min, max) sweep above, evaluated on the
        // start-of-iteration state.
        if opts.use_sparsity {
            let mut root_quiet = vec![true; n];
            for &(v, (lo, hi)) in q.entries() {
                if !(lo == f[v] && hi == f[v]) {
                    root_quiet[f[v]] = false;
                }
            }
            for v in 0..n {
                if active[v] && star[v] && root_quiet[f[v]] {
                    active[v] = false;
                    active_count -= 1;
                }
            }
        }

        // Hooks: f_n ← min(f_n, f); hook targets are the hooks' parents.
        // Quiet (just-deactivated) vertices have lo == f[v] and produce
        // only no-op hooks; skip them.
        let updates: Vec<(Vid, Vid)> = q
            .entries()
            .iter()
            .filter(|&&(v, _)| active[v])
            .map(|&(v, (lo, _))| (f[v], lo.min(f[v])))
            .collect();
        let cond_changed = serial::assign(&mut f, &updates, MinUsize);
        starcheck_active(&f, &mut star, &active);

        // --- Step 2: unconditional hooking (Algorithm 4) ---
        // Input: parents of active *nonstar* vertices (Lemma 2 restricts
        // targets to nonstars); output masked to star vertices.
        let x = SparseVec::from_entries(
            n,
            (0..n)
                .filter(|&v| active[v] && !star[v])
                .map(|v| (v, f[v]))
                .collect(),
        );
        let mask2: Vec<bool> = (0..n).map(|v| star[v] && active[v]).collect();
        let fn2 = serial::mxv_sparse(&a, &x, Mask::Keep(&mask2), MinUsize);
        let updates2: Vec<(Vid, Vid)> = fn2.entries().iter().map(|&(v, m)| (f[v], m)).collect();
        let uncond_changed = serial::assign(&mut f, &updates2, MinUsize);
        starcheck_active(&f, &mut star, &active);

        // --- Step 3: shortcutting (Algorithm 5), active nonstars only ---
        //
        // The star vector is left as computed after unconditional hooking;
        // the next iteration's conditional hook consumes it (see the note
        // on step 1 about why the staleness is safe).
        let targets: Vec<Vid> = (0..n).filter(|&v| active[v] && !star[v]).collect();
        let parent_ids: Vec<Vid> = targets.iter().map(|&v| f[v]).collect();
        let gfs = serial::extract(&f, &parent_ids);
        let mut shortcut_changed = 0;
        for (&v, &gf) in targets.iter().zip(&gfs) {
            if f[v] != gf {
                f[v] = gf;
                shortcut_changed += 1;
            }
        }

        iters.push(IterStats {
            iteration,
            active_before,
            converged_after: n - active_count,
            spmv_dense: use_dense,
            cond_changed,
            uncond_changed,
            shortcut_changed,
            ..Default::default()
        });
        // A zero-change iteration is only a proven fixpoint when it ran
        // with a fresh star vector (see the staleness note on step 1).
        let fixpoint =
            cond_changed + uncond_changed + shortcut_changed == 0 && prev_shortcut_changed == 0;
        prev_shortcut_changed = shortcut_changed;
        if fixpoint {
            break;
        }
    }
    assert!(
        iters
            .last()
            .map(|it| it.total_changed() == 0)
            .unwrap_or(n == 0),
        "LACC did not converge within {} iterations",
        opts.max_iters
    );

    LaccRun {
        labels: f,
        iters,
        p: 1,
        modeled_total_s: 0.0,
        wall_s: wall_start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asref::awerbuch_shiloach;
    use lacc_graph::generators::*;
    use lacc_graph::stats::ground_truth_labels;
    use lacc_graph::unionfind::canonicalize_labels;

    fn check(g: &CsrGraph, opts: &LaccOpts) -> LaccRun {
        let run = lacc_serial(g, opts);
        assert_eq!(
            canonicalize_labels(&run.labels),
            ground_truth_labels(g),
            "wrong components"
        );
        // Final forest must be flat (all stars).
        for v in 0..g.num_vertices() {
            assert_eq!(run.labels[run.labels[v]], run.labels[v]);
        }
        run
    }

    #[test]
    fn correct_on_basic_families() {
        let opts = LaccOpts::default();
        for g in [
            path_graph(1),
            path_graph(2),
            path_graph(257),
            cycle_graph(100),
            star_graph(64),
            complete_graph(17),
            random_forest(400, 11, 3),
        ] {
            check(&g, &opts);
        }
    }

    #[test]
    fn correct_on_random_graphs_both_modes() {
        for seed in 0..4 {
            let g = erdos_renyi_gnm(300, 400, seed);
            check(&g, &LaccOpts::default());
            check(&g, &LaccOpts::dense_as());
        }
    }

    #[test]
    fn sparsity_and_dense_agree_exactly() {
        // Same partition *and* same parent vector: the sparse path must not
        // change results, only work.
        for seed in [7, 8] {
            let g = community_graph(2000, 80, 3.0, 1.4, seed);
            let a = lacc_serial(&g, &LaccOpts::default());
            let b = lacc_serial(&g, &LaccOpts::dense_as());
            assert_eq!(
                canonicalize_labels(&a.labels),
                canonicalize_labels(&b.labels)
            );
        }
    }

    #[test]
    fn matches_pointer_reference() {
        for seed in 0..3 {
            let g = rmat(8, 3, RmatParams::graph500(), seed);
            let lacc = lacc_serial(&g, &LaccOpts::default());
            let asref = awerbuch_shiloach(&g);
            assert_eq!(
                canonicalize_labels(&lacc.labels),
                canonicalize_labels(&asref)
            );
        }
    }

    #[test]
    fn converged_fraction_monotone_and_complete() {
        let g = community_graph(3000, 150, 3.0, 1.4, 2);
        let run = check(&g, &LaccOpts::default());
        let fr = run.converged_fractions();
        assert!(fr.windows(2).all(|w| w[0] <= w[1]), "monotone: {fr:?}");
        assert_eq!(*fr.last().unwrap(), 1.0, "everything converges: {fr:?}");
        // Many-component graphs converge most vertices early (Figure 7's
        // shape).
        assert!(fr[fr.len().saturating_sub(2)] > 0.5);
    }

    #[test]
    fn single_component_never_sparsifies_until_end() {
        let g = path_graph(500);
        let run = check(&g, &LaccOpts::default());
        // With one component, nothing converges before the final iteration
        // (§VI-E: "for a connected graph, LACC cannot take advantage of
        // vector sparsity at all").
        for it in &run.iters[..run.iters.len() - 2] {
            assert_eq!(it.converged_after, 0, "iter {}", it.iteration);
        }
    }

    #[test]
    fn iteration_count_logarithmic() {
        let g = path_graph(4096);
        let run = check(&g, &LaccOpts::default());
        assert!(
            run.num_iterations() <= 2 * 12 + 4,
            "took {} iterations",
            run.num_iterations()
        );
    }

    #[test]
    fn metagenome_adversarial_case() {
        let g = metagenome_graph(5000, 7, 0.005, 4);
        let run = check(&g, &LaccOpts::default());
        assert!(run.num_components() > 300);
    }

    #[test]
    fn lemma1_counterexample() {
        // The 5-path 77–80–79–81–78 (vertex ids chosen adversarially):
        // after iteration 2, both {77,79,80} and {78,81} are stars that
        // survived unconditional hooking, yet they are one component —
        // the paper's literal Lemma-1 rule would deactivate both and
        // split the component. Found by automated shrinking of a failing
        // community graph; kept as a regression test for the sound
        // convergence detector.
        let el = lacc_graph::EdgeList::from_pairs(82, [(77, 80), (80, 79), (79, 81), (81, 78)]);
        let g = CsrGraph::from_edges(el);
        check(&g, &LaccOpts::default());
        check(&g, &LaccOpts::dense_as());
    }

    #[test]
    fn empty_graphs() {
        check(
            &CsrGraph::from_edges(lacc_graph::EdgeList::new(0)),
            &LaccOpts::default(),
        );
        let run = check(
            &CsrGraph::from_edges(lacc_graph::EdgeList::new(5)),
            &LaccOpts::default(),
        );
        assert_eq!(run.num_components(), 5);
    }
}
