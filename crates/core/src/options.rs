//! LACC configuration: the paper's optimizations as toggles, so the
//! ablation experiment can turn each one off.
//!
//! Construct options either directly (struct literal, for the preset
//! constructors and tests) or through [`LaccOpts::builder`], which
//! validates every numeric knob so callers such as the CLI cannot smuggle
//! out-of-range values into a run.

use crate::engine::EngineSelect;
use dmsim::AllToAll;
use gblas::dist::DistOpts;

/// Storage width for vertex indices and parent labels across the
/// distributed stack: graph blocks, parent/star vectors, and every wire
/// payload that carries an id or a label.
///
/// The narrow layout halves index memory traffic and wire bytes; it
/// requires the graph to fit in `u32` (checked up front — a too-large
/// graph is a descriptive error, never a silent truncation). The default
/// is `U32` unless the `wide-index` Cargo feature is enabled, which
/// flips the default to `U64` for deployments that routinely exceed
/// 4.29 billion vertices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexWidth {
    /// 32-bit indices and labels (graphs up to `u32::MAX` vertices).
    U32,
    /// 64-bit indices and labels (no practical size limit).
    U64,
}

impl Default for IndexWidth {
    fn default() -> Self {
        if cfg!(feature = "wide-index") {
            IndexWidth::U64
        } else {
            IndexWidth::U32
        }
    }
}

impl std::fmt::Display for IndexWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IndexWidth::U32 => "u32",
            IndexWidth::U64 => "u64",
        })
    }
}

impl std::str::FromStr for IndexWidth {
    type Err = OptsError;

    fn from_str(s: &str) -> Result<Self, OptsError> {
        match s {
            "u32" | "32" => Ok(IndexWidth::U32),
            "u64" | "64" => Ok(IndexWidth::U64),
            other => Err(OptsError::new(
                "index-width",
                format!("{other:?} is not one of u32, u64"),
            )),
        }
    }
}

/// Options controlling a LACC run.
#[derive(Clone, Copy, Debug)]
pub struct LaccOpts {
    /// Exploit Lemmas 1–2: track converged components, keep vectors sparse,
    /// and restrict each step to the Table I active subsets. Turning this
    /// off yields the "naive translation" dense-AS variant §IV-B warns
    /// about.
    pub use_sparsity: bool,
    /// When the active fraction is at least this, `mxv` takes the SpMV
    /// (dense-vector) path; below it, SpMSpV. Mirrors the internal dispatch
    /// of the paper's `GrB_mxv`.
    pub dense_threshold: f64,
    /// Communication options for the distributed primitives (§V-B).
    pub dist: DistOpts,
    /// Apply a random symmetric permutation before distributing the matrix
    /// (CombBLAS' load balancing).
    pub permute: bool,
    /// Seed for the load-balancing permutation.
    pub permute_seed: u64,
    /// Safety bound on iterations (AS converges in ≤ ~2·log₂ n).
    pub max_iters: usize,
    /// Distribute vectors cyclically instead of in blocks — the paper's
    /// §VII future-work layout. Balances the skewed `extract`/`assign`
    /// traffic at the price of world-wide gathers in `mxv`.
    pub cyclic_vectors: bool,
    /// Storage width of indices and labels (see [`IndexWidth`]).
    pub index_width: IndexWidth,
    /// Which connected-components engine runs (see
    /// [`crate::engine::EngineSelect`]; `Auto` picks from a sampled
    /// pre-pass). Defaults to LACC, preserving bit-identity with the
    /// serial reference.
    pub engine: EngineSelect,
}

impl Default for LaccOpts {
    fn default() -> Self {
        LaccOpts {
            use_sparsity: true,
            dense_threshold: 0.5,
            dist: DistOpts::default(),
            permute: true,
            permute_seed: 0xC0_FFEE,
            max_iters: 200,
            cyclic_vectors: false,
            index_width: IndexWidth::default(),
            engine: EngineSelect::default(),
        }
    }
}

impl LaccOpts {
    /// A validating builder seeded with [`LaccOpts::default`].
    ///
    /// ```
    /// use lacc::LaccOpts;
    ///
    /// let opts = LaccOpts::builder()
    ///     .spmv_threshold(0.7)?
    ///     .kernel_threads(2)?
    ///     .permute(false)
    ///     .build();
    /// assert_eq!(opts.dist.spmv_threshold, 0.7);
    /// # Ok::<(), lacc::OptsError>(())
    /// ```
    pub fn builder() -> LaccOptsBuilder {
        LaccOptsBuilder {
            opts: LaccOpts::default(),
        }
    }

    /// The dense Awerbuch–Shiloach ablation: no converged-component
    /// tracking, always-dense vectors (what a direct translation of
    /// Algorithm 1 to linear algebra would do).
    pub fn dense_as() -> Self {
        LaccOpts {
            use_sparsity: false,
            dense_threshold: 0.0,
            ..Default::default()
        }
    }

    /// LACC with the naive communication stack (pairwise all-to-all, no
    /// hot-rank broadcast) — isolates the §V-B optimizations.
    pub fn naive_comm() -> Self {
        LaccOpts {
            dist: DistOpts::naive(),
            ..Default::default()
        }
    }

    /// LACC with cyclically distributed vectors (§VII future work).
    pub fn cyclic() -> Self {
        LaccOpts {
            cyclic_vectors: true,
            ..Default::default()
        }
    }

    /// The per-rank kernel thread count actually granted when `p` simulated
    /// ranks share this host: the configured
    /// [`DistOpts::kernel_threads`] request, clamped to
    /// `max(1, host_cores / p)` so the `p × threads` product never
    /// oversubscribes the machine (the simulator runs every rank
    /// concurrently).
    pub fn kernel_threads_for(&self, p: usize) -> usize {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let cap = (cores / p.max(1)).max(1);
        self.dist.kernel_threads.max(1).min(cap)
    }
}

/// A rejected [`LaccOpts::builder`] setting: which knob, and why.
#[derive(Clone, Debug, PartialEq)]
pub struct OptsError {
    field: &'static str,
    message: String,
}

impl OptsError {
    pub(crate) fn new(field: &'static str, message: impl Into<String>) -> Self {
        OptsError {
            field,
            message: message.into(),
        }
    }

    /// The option name that failed validation (CLI flag spelling).
    pub fn field(&self) -> &'static str {
        self.field
    }
}

impl std::fmt::Display for OptsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid {}: {}", self.field, self.message)
    }
}

impl std::error::Error for OptsError {}

/// Validating builder for [`LaccOpts`] (see [`LaccOpts::builder`]).
///
/// Numeric setters are fallible and return [`OptsError`] on out-of-range
/// input, so they chain with `?`; boolean and seed setters cannot fail.
#[derive(Clone, Debug)]
pub struct LaccOptsBuilder {
    opts: LaccOpts,
}

impl LaccOptsBuilder {
    /// Enables or disables the Lemma 1–2 sparsity exploitation.
    pub fn use_sparsity(mut self, on: bool) -> Self {
        self.opts.use_sparsity = on;
        self
    }

    /// Active fraction at or above which conditional hooking takes the
    /// dense-vector `mxv` path. Must be a finite value in `0.0..=1.0`
    /// (`0.0` forces dense, anything above `1.0` could never trigger).
    pub fn dense_threshold(mut self, t: f64) -> Result<Self, OptsError> {
        if !t.is_finite() || !(0.0..=1.0).contains(&t) {
            return Err(OptsError::new(
                "dense-threshold",
                format!("{t} is not in 0.0..=1.0"),
            ));
        }
        self.opts.dense_threshold = t;
        Ok(self)
    }

    /// Measured-fill fraction at or above which `mxv` runs its SpMV-style
    /// local kernel. Must be a finite value in `0.0..=1.5` (above `1.0`
    /// means "never"; `1.5` is the conventional sentinel for that).
    pub fn spmv_threshold(mut self, t: f64) -> Result<Self, OptsError> {
        if !t.is_finite() || !(0.0..=1.5).contains(&t) {
            return Err(OptsError::new(
                "spmv-threshold",
                format!("{t} is not in 0.0..=1.5"),
            ));
        }
        self.opts.dist.spmv_threshold = t;
        Ok(self)
    }

    /// Worker threads for the local multiply kernels. Must be at least 1
    /// ([`crate::run`] additionally clamps to the host core budget via
    /// [`LaccOpts::kernel_threads_for`]).
    pub fn kernel_threads(mut self, t: usize) -> Result<Self, OptsError> {
        if t == 0 {
            return Err(OptsError::new("kernel-threads", "must be at least 1"));
        }
        self.opts.dist.kernel_threads = t;
        Ok(self)
    }

    /// Safety bound on AS iterations. Must be at least 1.
    pub fn max_iters(mut self, n: usize) -> Result<Self, OptsError> {
        if n == 0 {
            return Err(OptsError::new("max-iters", "must be at least 1"));
        }
        self.opts.max_iters = n;
        Ok(self)
    }

    /// Hot-rank broadcast threshold `h` (requests per chunk entry above
    /// which a rank broadcasts instead of answering point-to-point). Must
    /// be positive and not NaN; `f64::INFINITY` disables the fallback.
    pub fn hot_threshold(mut self, h: f64) -> Result<Self, OptsError> {
        if h.is_nan() || h <= 0.0 {
            return Err(OptsError::new(
                "hot-threshold",
                format!("{h} is not a positive threshold"),
            ));
        }
        self.opts.dist.hot_threshold = h;
        Ok(self)
    }

    /// Selects the all-to-all algorithm for irregular exchanges.
    pub fn alltoall(mut self, algo: AllToAll) -> Self {
        self.opts.dist.alltoall = algo;
        self
    }

    /// Enables or disables the hot-rank broadcast fallback.
    pub fn hot_bcast(mut self, on: bool) -> Self {
        self.opts.dist.hot_bcast = on;
        self
    }

    /// Applies (or skips) the load-balancing random permutation.
    pub fn permute(mut self, on: bool) -> Self {
        self.opts.permute = on;
        self
    }

    /// Seed for the load-balancing permutation.
    pub fn permute_seed(mut self, seed: u64) -> Self {
        self.opts.permute_seed = seed;
        self
    }

    /// Distributes vectors cyclically instead of in blocks.
    pub fn cyclic_vectors(mut self, on: bool) -> Self {
        self.opts.cyclic_vectors = on;
        self
    }

    /// Selects the index/label storage width. Width validation happens at
    /// run time against the actual graph (`u32` rejects graphs with more
    /// than `u32::MAX` vertices with a descriptive error).
    pub fn index_width(mut self, w: IndexWidth) -> Self {
        self.opts.index_width = w;
        self
    }

    /// Selects the connected-components engine (or `Auto` selection).
    pub fn engine(mut self, e: EngineSelect) -> Self {
        self.opts.engine = e;
        self
    }

    /// Enables or disables sender-side request dedup in `extract`.
    pub fn dedup_requests(mut self, on: bool) -> Self {
        self.opts.dist.dedup_requests = on;
        self
    }

    /// Enables or disables sender-side monoid pre-combining in `assign`.
    pub fn combine_assigns(mut self, on: bool) -> Self {
        self.opts.dist.combine_assigns = on;
        self
    }

    /// Enables or disables delta/bitmap compression of exchanged id lists.
    pub fn compress_ids(mut self, on: bool) -> Self {
        self.opts.dist.compress_ids = on;
        self
    }

    /// Enables or disables in-flight combining: `extract`/`assign`
    /// traffic merges cross-rank duplicates at the hypercube hops.
    pub fn combine_in_flight(mut self, on: bool) -> Self {
        self.opts.dist.combine_in_flight = on;
        self
    }

    /// Enables or disables fusing starcheck's two extracts into one
    /// combining exchange (effective only with `combine_in_flight`).
    pub fn fuse_starcheck(mut self, on: bool) -> Self {
        self.opts.dist.fuse_starcheck = on;
        self
    }

    /// Enables or disables run-length encoding of exchanged value streams.
    pub fn compress_values(mut self, on: bool) -> Self {
        self.opts.dist.compress_values = on;
        self
    }

    /// Enables or disables compute/communication overlap: hot-path
    /// exchanges are posted non-blocking and the modeled clock is refunded
    /// for exchange time hidden behind independent local compute. Results
    /// and traffic are bit-identical either way (see
    /// [`gblas::dist::DistOpts::overlap`]).
    pub fn overlap(mut self, on: bool) -> Self {
        self.opts.dist.overlap = on;
        self
    }

    /// Enables or disables dynamic label-range narrowing: a probe
    /// piggybacked on the convergence allreduce picks a narrower wire
    /// encoding (raw u16 or dictionary codes) per iteration once the
    /// live label range or survivor count permits. Labels, iteration
    /// counts, and per-rank word counts are bit-identical either way;
    /// only `bytes_sent` shrinks (see [`crate::narrow`]).
    pub fn narrow_labels(mut self, on: bool) -> Self {
        self.opts.dist.narrow_labels = on;
        self
    }

    /// Unique-offsets-per-span density at or above which a compressed
    /// bucket may use the bitmap encoding. Must be a finite value in
    /// `0.0..=1.0` (`0.0` always allows the bitmap, `1.0` effectively
    /// forces delta encoding except for fully contiguous buckets).
    pub fn bitmap_density(mut self, d: f64) -> Result<Self, OptsError> {
        if !d.is_finite() || !(0.0..=1.0).contains(&d) {
            return Err(OptsError::new(
                "bitmap-density",
                format!("{d} is not in 0.0..=1.0"),
            ));
        }
        self.opts.dist.compress_bitmap_density = d;
        Ok(self)
    }

    /// Request-bucket length at or above which dedup switches from
    /// sort-and-dedup to the hash-set path. Must be at least 1.
    pub fn dedup_hash_threshold(mut self, k: usize) -> Result<Self, OptsError> {
        if k == 0 {
            return Err(OptsError::new("dedup-hash-threshold", "must be at least 1"));
        }
        self.opts.dist.dedup_hash_threshold = k;
        Ok(self)
    }

    /// Finishes the builder. Infallible: every fallible setter already
    /// validated its value.
    pub fn build(self) -> LaccOpts {
        self.opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_optimized() {
        let o = LaccOpts::default();
        assert!(o.use_sparsity);
        assert!(o.dist.hot_bcast);
    }

    #[test]
    fn dense_as_disables_sparsity() {
        let o = LaccOpts::dense_as();
        assert!(!o.use_sparsity);
        assert_eq!(o.dense_threshold, 0.0);
    }

    #[test]
    fn naive_comm_keeps_sparsity() {
        let o = LaccOpts::naive_comm();
        assert!(o.use_sparsity);
        assert!(!o.dist.hot_bcast);
    }

    #[test]
    fn thread_budget_never_oversubscribes() {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let mut o = LaccOpts::default();
        o.dist.kernel_threads = 1024;
        assert!(o.kernel_threads_for(1) <= cores);
        // With more ranks than cores every rank degrades to one thread.
        assert_eq!(o.kernel_threads_for(cores * 2), 1);
        // A serial request stays serial regardless of the host.
        o.dist.kernel_threads = 1;
        assert_eq!(o.kernel_threads_for(1), 1);
    }

    #[test]
    fn builder_accepts_in_range_values() {
        let o = LaccOpts::builder()
            .use_sparsity(false)
            .dense_threshold(0.25)
            .unwrap()
            .spmv_threshold(1.5)
            .unwrap()
            .kernel_threads(4)
            .unwrap()
            .max_iters(10)
            .unwrap()
            .hot_threshold(2.0)
            .unwrap()
            .alltoall(AllToAll::Pairwise)
            .hot_bcast(false)
            .permute(false)
            .permute_seed(7)
            .cyclic_vectors(true)
            .engine(EngineSelect::Fastsv)
            .dedup_requests(false)
            .combine_assigns(false)
            .compress_ids(false)
            .combine_in_flight(false)
            .fuse_starcheck(false)
            .compress_values(false)
            .overlap(false)
            .narrow_labels(false)
            .bitmap_density(0.125)
            .unwrap()
            .dedup_hash_threshold(512)
            .unwrap()
            .build();
        assert!(!o.use_sparsity);
        assert_eq!(o.dense_threshold, 0.25);
        assert_eq!(o.dist.spmv_threshold, 1.5);
        assert_eq!(o.dist.kernel_threads, 4);
        assert_eq!(o.max_iters, 10);
        assert_eq!(o.dist.hot_threshold, 2.0);
        assert_eq!(o.dist.alltoall, AllToAll::Pairwise);
        assert!(!o.dist.hot_bcast);
        assert!(!o.permute);
        assert_eq!(o.permute_seed, 7);
        assert!(o.cyclic_vectors);
        assert_eq!(o.engine, EngineSelect::Fastsv);
        assert!(!o.dist.dedup_requests);
        assert!(!o.dist.combine_assigns);
        assert!(!o.dist.compress_ids);
        assert!(!o.dist.combine_in_flight);
        assert!(!o.dist.fuse_starcheck);
        assert!(!o.dist.compress_values);
        assert!(!o.dist.overlap);
        assert!(!o.dist.narrow_labels);
        assert_eq!(o.dist.compress_bitmap_density, 0.125);
        assert_eq!(o.dist.dedup_hash_threshold, 512);
    }

    #[test]
    fn builder_rejects_out_of_range_values() {
        assert_eq!(
            LaccOpts::builder().spmv_threshold(1.6).unwrap_err().field(),
            "spmv-threshold"
        );
        assert!(LaccOpts::builder().spmv_threshold(-0.1).is_err());
        assert!(LaccOpts::builder().spmv_threshold(f64::NAN).is_err());
        assert!(LaccOpts::builder().dense_threshold(1.01).is_err());
        assert!(LaccOpts::builder().kernel_threads(0).is_err());
        assert!(LaccOpts::builder().max_iters(0).is_err());
        assert!(LaccOpts::builder().hot_threshold(0.0).is_err());
        assert!(LaccOpts::builder().hot_threshold(f64::NAN).is_err());
        // Infinity explicitly disables the fallback, so it is accepted.
        assert!(LaccOpts::builder().hot_threshold(f64::INFINITY).is_ok());
        let err = LaccOpts::builder().max_iters(0).unwrap_err();
        assert_eq!(err.to_string(), "invalid max-iters: must be at least 1");
        assert_eq!(
            LaccOpts::builder().bitmap_density(1.5).unwrap_err().field(),
            "bitmap-density"
        );
        assert!(LaccOpts::builder().bitmap_density(-0.1).is_err());
        assert!(LaccOpts::builder().bitmap_density(f64::NAN).is_err());
        assert_eq!(
            LaccOpts::builder()
                .dedup_hash_threshold(0)
                .unwrap_err()
                .field(),
            "dedup-hash-threshold"
        );
    }

    #[test]
    fn index_width_parses_and_displays() {
        assert_eq!("u32".parse::<IndexWidth>().unwrap(), IndexWidth::U32);
        assert_eq!("64".parse::<IndexWidth>().unwrap(), IndexWidth::U64);
        assert_eq!(IndexWidth::U32.to_string(), "u32");
        assert_eq!(IndexWidth::U64.to_string(), "u64");
        let err = "u16".parse::<IndexWidth>().unwrap_err();
        assert_eq!(err.field(), "index-width");
        // The default follows the `wide-index` feature.
        let expect = if cfg!(feature = "wide-index") {
            IndexWidth::U64
        } else {
            IndexWidth::U32
        };
        assert_eq!(LaccOpts::default().index_width, expect);
        let o = LaccOpts::builder().index_width(IndexWidth::U64).build();
        assert_eq!(o.index_width, IndexWidth::U64);
    }

    #[test]
    fn naive_comm_disables_compaction() {
        let o = LaccOpts::naive_comm();
        assert!(!o.dist.dedup_requests);
        assert!(!o.dist.combine_assigns);
        assert!(!o.dist.compress_ids);
        assert!(!o.dist.combine_in_flight);
        assert!(!o.dist.fuse_starcheck);
        assert!(!o.dist.compress_values);
        assert!(!o.dist.overlap, "naive baseline runs strictly blocking");
        assert!(
            !o.dist.narrow_labels,
            "naive baseline ships native-width labels"
        );
        let d = LaccOpts::default();
        assert!(d.dist.dedup_requests && d.dist.combine_assigns && d.dist.compress_ids);
        assert!(d.dist.combine_in_flight && d.dist.fuse_starcheck && d.dist.compress_values);
        assert!(d.dist.overlap, "overlap is part of the optimized default");
        assert!(
            d.dist.narrow_labels,
            "narrowing is part of the optimized default"
        );
    }
}
