//! LACC configuration: the paper's optimizations as toggles, so the
//! ablation experiment can turn each one off.

use gblas::dist::DistOpts;

/// Options controlling a LACC run.
#[derive(Clone, Copy, Debug)]
pub struct LaccOpts {
    /// Exploit Lemmas 1–2: track converged components, keep vectors sparse,
    /// and restrict each step to the Table I active subsets. Turning this
    /// off yields the "naive translation" dense-AS variant §IV-B warns
    /// about.
    pub use_sparsity: bool,
    /// When the active fraction is at least this, `mxv` takes the SpMV
    /// (dense-vector) path; below it, SpMSpV. Mirrors the internal dispatch
    /// of the paper's `GrB_mxv`.
    pub dense_threshold: f64,
    /// Communication options for the distributed primitives (§V-B).
    pub dist: DistOpts,
    /// Apply a random symmetric permutation before distributing the matrix
    /// (CombBLAS' load balancing).
    pub permute: bool,
    /// Seed for the load-balancing permutation.
    pub permute_seed: u64,
    /// Safety bound on iterations (AS converges in ≤ ~2·log₂ n).
    pub max_iters: usize,
    /// Distribute vectors cyclically instead of in blocks — the paper's
    /// §VII future-work layout. Balances the skewed `extract`/`assign`
    /// traffic at the price of world-wide gathers in `mxv`.
    pub cyclic_vectors: bool,
}

impl Default for LaccOpts {
    fn default() -> Self {
        LaccOpts {
            use_sparsity: true,
            dense_threshold: 0.5,
            dist: DistOpts::default(),
            permute: true,
            permute_seed: 0xC0_FFEE,
            max_iters: 200,
            cyclic_vectors: false,
        }
    }
}

impl LaccOpts {
    /// The dense Awerbuch–Shiloach ablation: no converged-component
    /// tracking, always-dense vectors (what a direct translation of
    /// Algorithm 1 to linear algebra would do).
    pub fn dense_as() -> Self {
        LaccOpts {
            use_sparsity: false,
            dense_threshold: 0.0,
            ..Default::default()
        }
    }

    /// LACC with the naive communication stack (pairwise all-to-all, no
    /// hot-rank broadcast) — isolates the §V-B optimizations.
    pub fn naive_comm() -> Self {
        LaccOpts {
            dist: DistOpts::naive(),
            ..Default::default()
        }
    }

    /// LACC with cyclically distributed vectors (§VII future work).
    pub fn cyclic() -> Self {
        LaccOpts {
            cyclic_vectors: true,
            ..Default::default()
        }
    }

    /// The per-rank kernel thread count actually granted when `p` simulated
    /// ranks share this host: the configured
    /// [`DistOpts::kernel_threads`] request, clamped to
    /// `max(1, host_cores / p)` so the `p × threads` product never
    /// oversubscribes the machine (the simulator runs every rank
    /// concurrently).
    pub fn kernel_threads_for(&self, p: usize) -> usize {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let cap = (cores / p.max(1)).max(1);
        self.dist.kernel_threads.max(1).min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_optimized() {
        let o = LaccOpts::default();
        assert!(o.use_sparsity);
        assert!(o.dist.hot_bcast);
    }

    #[test]
    fn dense_as_disables_sparsity() {
        let o = LaccOpts::dense_as();
        assert!(!o.use_sparsity);
        assert_eq!(o.dense_threshold, 0.0);
    }

    #[test]
    fn naive_comm_keeps_sparsity() {
        let o = LaccOpts::naive_comm();
        assert!(o.use_sparsity);
        assert!(!o.dist.hot_bcast);
    }

    #[test]
    fn thread_budget_never_oversubscribes() {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let mut o = LaccOpts::default();
        o.dist.kernel_threads = 1024;
        assert!(o.kernel_threads_for(1) <= cores);
        // With more ranks than cores every rank degrades to one thread.
        assert_eq!(o.kernel_threads_for(cores * 2), 1);
        // A serial request stays serial regardless of the host.
        o.dist.kernel_threads = 1;
        assert_eq!(o.kernel_threads_for(1), 1);
    }
}
