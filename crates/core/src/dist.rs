//! Distributed connected components over the simulated machine — the
//! unified entry point for the whole engine portfolio.
//!
//! [`run`] executes one SPMD program on `p` simulated ranks: it resolves
//! the configured [`crate::engine::EngineSelect`] (running the distributed `Auto`
//! pre-pass when asked), wraps the run in an engine-tagged trace span,
//! and dispatches to the chosen [`crate::engine::CcEngine`]. Everything a
//! run can vary — options, trace sink, serving-rerun tagging — lives in
//! [`RunConfig`], replacing the old `run_distributed` /
//! `run_distributed_traced` / `run_distributed_rerun` triple (kept as
//! thin deprecated shims for one release).
//!
//! With the default LACC engine and `permute = false`, a distributed run
//! produces a parent vector *bit-identical* to [`crate::serial`] (tested
//! below) — the strongest possible correctness statement for the
//! communication layer.

use crate::engine::{self, EngineCtx, EngineRun};
use crate::options::{IndexWidth, LaccOpts};
use crate::stats::{IterStats, LaccRun, StepBreakdown};
use dmsim::{
    run_spmd_traced, Comm, DmsimError, EngineKind, Grid2d, MachineModel, RerunReason, SpanKind,
    TraceSink, WireWord,
};
use gblas::dist::NarrowVal;
use lacc_graph::permute::Permutation;
use lacc_graph::{ensure_fits, CsrGraph, Idx};
use std::sync::Arc;
use std::time::Instant;

/// Everything one distributed run can vary: rank count, machine model,
/// [`LaccOpts`] (including the engine selection), an optional trace sink,
/// and an optional serving-rerun tag.
///
/// ```
/// use lacc::{run, RunConfig};
/// use lacc_graph::generators::cycle_graph;
///
/// let g = cycle_graph(64);
/// let out = run(&g, &RunConfig::new(4, dmsim::EDISON.lacc_model()))
///     .expect("no rank panicked");
/// assert_eq!(out.num_components(), 1);
/// assert!(out.modeled_total_s > 0.0);
/// ```
#[derive(Clone)]
pub struct RunConfig {
    /// Simulated ranks (must form a square grid).
    pub ranks: usize,
    /// The α-β machine model.
    pub model: MachineModel,
    /// Run options (engine, comm stack, layout, width, …).
    pub opts: LaccOpts,
    /// When set, every rank records trace spans into this sink.
    pub trace: Option<Arc<TraceSink>>,
    /// When set, the run is a serving-layer epoch rebuild: it is wrapped
    /// in a reason-tagged `rerun(...)` span and noted in rank 0's cost
    /// snapshot.
    pub rerun: Option<RerunReason>,
}

impl RunConfig {
    /// A config with default [`LaccOpts`], no tracing, no rerun tag.
    pub fn new(ranks: usize, model: MachineModel) -> Self {
        RunConfig {
            ranks,
            model,
            opts: LaccOpts::default(),
            trace: None,
            rerun: None,
        }
    }

    /// Replaces the run options.
    pub fn with_opts(mut self, opts: LaccOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Records trace spans into `sink`.
    pub fn with_trace(mut self, sink: &Arc<TraceSink>) -> Self {
        self.trace = Some(Arc::clone(sink));
        self
    }

    /// Records trace spans into `sink` when `Some` (caller-side optional
    /// sinks migrate without a match).
    pub fn with_trace_opt(mut self, sink: Option<&Arc<TraceSink>>) -> Self {
        self.trace = sink.map(Arc::clone);
        self
    }

    /// Tags the run as a serving-layer epoch rebuild.
    pub fn with_rerun(mut self, reason: RerunReason) -> Self {
        self.rerun = Some(reason);
        self
    }
}

/// The result of a unified [`run`]: the familiar [`LaccRun`] statistics
/// plus which engine actually executed and (for `Auto`) why.
///
/// Derefs to [`LaccRun`], so existing call sites keep reading
/// `out.labels`, `out.num_components()`, etc.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Labels and per-iteration statistics.
    pub run: LaccRun,
    /// The engine that executed (the resolved
    /// [`crate::engine::EngineSelect`]).
    pub engine: EngineKind,
    /// The `Auto` dispatcher's selection rationale (`None` for a fixed
    /// engine choice).
    pub rationale: Option<String>,
}

impl std::ops::Deref for RunOutput {
    type Target = LaccRun;
    fn deref(&self) -> &LaccRun {
        &self.run
    }
}

/// What each rank returns from the SPMD program.
struct RankResult {
    out: EngineRun,
    kind: EngineKind,
    rationale: Option<String>,
}

fn run_engine_width<I: Idx + WireWord + NarrowVal>(
    kind: EngineKind,
    comm: &mut Comm,
    g: &CsrGraph,
    opts: &LaccOpts,
) -> EngineRun {
    let mut ctx = EngineCtx::<I>::new(comm, g, opts);
    engine::engine_for::<I>(kind).run(&mut ctx)
}

/// Runs the configured engine on `cfg.ranks` simulated ranks.
///
/// `ranks` must be a perfect square (CombBLAS' square-grid restriction,
/// §VI-A). Returns labels in the *original* vertex numbering even when
/// `opts.permute` applies a load-balancing relabeling internally. Errs
/// with the failing rank and panic payload if any rank panics.
///
/// Engine caveat: LACC labels are tree-root ids, while FastSV and label
/// propagation converge to component *minima* — cross-engine comparisons
/// must canonicalize labels first.
pub fn run(g: &CsrGraph, cfg: &RunConfig) -> Result<RunOutput, DmsimError> {
    let n = g.num_vertices();
    let p = cfg.ranks;
    let _ = Grid2d::square(p); // validate early
                               // Clamp the per-rank kernel thread request so p ranks × T threads never
                               // oversubscribe the host (all simulated ranks run concurrently).
    let mut opts = cfg.opts;
    opts.dist.kernel_threads = opts.kernel_threads_for(p);
    let opts = &opts;
    let (work_graph, perm) = if opts.permute && n > 1 {
        let perm = Permutation::random(n, opts.permute_seed);
        (perm.permute_graph(g), Some(perm))
    } else {
        (g.clone(), None)
    };
    // The narrow layout is validated up front against the actual graph:
    // a too-large graph is a descriptive error on the caller thread, never
    // a silent truncation inside the SPMD body.
    if opts.index_width == IndexWidth::U32 {
        if let Err(e) = ensure_fits::<u32>(n, "vertices") {
            return Err(DmsimError {
                rank: 0,
                payload: Box::new(e.to_string()),
            });
        }
    }
    let rerun = cfg.rerun;
    let wall_start = Instant::now();
    let spmd = |comm: &mut Comm| {
        // An epoch rebuild counts itself (on rank 0, so sums over
        // snapshots count each rebuild once) and wraps the whole SPMD
        // body in a reason-tagged span; both are observational.
        let rerun_span = rerun.map(|reason| {
            if comm.rank() == 0 {
                comm.note_rerun();
            }
            comm.span_open(SpanKind::Rerun(reason))
        });
        // Resolve the engine (the Auto pre-pass is deterministic and
        // max-merged, so every rank agrees), then wrap the run in an
        // engine-tagged span for trace attribution.
        let (kind, rationale) = engine::resolve_engine(comm, &work_graph, opts.engine);
        let engine_span = comm.span_open(SpanKind::Engine(kind));
        let out = match opts.index_width {
            IndexWidth::U32 => run_engine_width::<u32>(kind, comm, &work_graph, opts),
            IndexWidth::U64 => run_engine_width::<usize>(kind, comm, &work_graph, opts),
        };
        comm.span_close(engine_span);
        if let Some(span) = rerun_span {
            comm.span_close(span);
        }
        RankResult {
            out,
            kind,
            rationale,
        }
    };
    let outs = run_spmd_traced(p, cfg.model, cfg.trace.as_ref(), spmd)?;
    let wall_s = wall_start.elapsed().as_secs_f64();
    // Surface the resolved engine (and the Auto dispatcher's reasoning)
    // as run-level trace metadata so Chrome-trace viewers show *why* this
    // run looks the way it does, not just its spans.
    if let Some(sink) = &cfg.trace {
        sink.add_metadata("engine", outs[0].kind.name());
        if let Some(rationale) = &outs[0].rationale {
            sink.add_metadata("engine_rationale", rationale);
        }
    }

    let labels_permuted = outs[0].out.labels.clone().expect("rank 0 returns labels");
    let labels = match &perm {
        Some(perm) => perm.unpermute_labels(&labels_permuted),
        None => labels_permuted,
    };
    let modeled_total_s = outs
        .iter()
        .map(|o| o.out.final_clock_s)
        .fold(0.0f64, f64::max);
    let niters = outs[0].out.iters.len();
    debug_assert!(outs.iter().all(|o| o.out.iters.len() == niters));
    let iters: Vec<IterStats> = (0..niters)
        .map(|k| {
            let r0 = &outs[0].out.iters[k];
            let max_over = |sel: fn(&StepBreakdown) -> f64| {
                outs.iter()
                    .map(|o| sel(&o.out.iters[k].modeled))
                    .fold(0.0f64, f64::max)
            };
            IterStats {
                iteration: k + 1,
                active_before: r0.active_before,
                converged_after: r0.converged_after,
                spmv_dense: r0.spmv_dense,
                cond_changed: r0.cond_changed as usize,
                uncond_changed: r0.uncond_changed as usize,
                shortcut_changed: r0.shortcut_changed as usize,
                modeled: StepBreakdown {
                    cond_s: max_over(|b| b.cond_s),
                    uncond_s: max_over(|b| b.uncond_s),
                    shortcut_s: max_over(|b| b.shortcut_s),
                    starcheck_s: max_over(|b| b.starcheck_s),
                },
                extract_received: outs
                    .iter()
                    .map(|o| o.out.iters[k].extract_received)
                    .collect(),
            }
        })
        .collect();

    Ok(RunOutput {
        run: LaccRun {
            labels,
            iters,
            p,
            modeled_total_s,
            wall_s,
        },
        engine: outs[0].kind,
        rationale: outs[0].rationale.clone(),
    })
}

/// Runs distributed LACC on `p` simulated ranks under `model`.
#[deprecated(since = "0.8.0", note = "use `run(graph, &RunConfig)` instead")]
pub fn run_distributed(
    g: &CsrGraph,
    p: usize,
    model: MachineModel,
    opts: &LaccOpts,
) -> Result<LaccRun, DmsimError> {
    run(g, &RunConfig::new(p, model).with_opts(*opts)).map(|o| o.run)
}

/// [`run`] with a caller-managed optional trace sink.
#[deprecated(
    since = "0.8.0",
    note = "use `run(graph, &RunConfig::new(..).with_trace(sink))` instead"
)]
pub fn run_distributed_traced(
    g: &CsrGraph,
    p: usize,
    model: MachineModel,
    opts: &LaccOpts,
    sink: Option<&Arc<TraceSink>>,
) -> Result<LaccRun, DmsimError> {
    run(
        g,
        &RunConfig::new(p, model)
            .with_opts(*opts)
            .with_trace_opt(sink),
    )
    .map(|o| o.run)
}

/// [`run`] invoked as a serving-layer epoch rebuild.
#[deprecated(
    since = "0.8.0",
    note = "use `run(graph, &RunConfig::new(..).with_rerun(reason))` instead"
)]
pub fn run_distributed_rerun(
    g: &CsrGraph,
    p: usize,
    model: MachineModel,
    opts: &LaccOpts,
    sink: Option<&Arc<TraceSink>>,
    reason: RerunReason,
) -> Result<LaccRun, DmsimError> {
    run(
        g,
        &RunConfig::new(p, model)
            .with_opts(*opts)
            .with_trace_opt(sink)
            .with_rerun(reason),
    )
    .map(|o| o.run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineSelect;
    use crate::serial::lacc_serial;
    use dmsim::EDISON;
    use lacc_graph::generators::*;
    use lacc_graph::stats::ground_truth_labels;
    use lacc_graph::unionfind::canonicalize_labels;

    fn model() -> MachineModel {
        EDISON.lacc_model()
    }

    fn run_with(g: &CsrGraph, p: usize, opts: &LaccOpts) -> RunOutput {
        run(g, &RunConfig::new(p, model()).with_opts(*opts)).unwrap()
    }

    fn check(g: &CsrGraph, p: usize, opts: &LaccOpts) -> RunOutput {
        let out = run_with(g, p, opts);
        assert_eq!(
            canonicalize_labels(&out.labels),
            ground_truth_labels(g),
            "wrong components at p={p} engine={}",
            out.engine
        );
        out
    }

    #[test]
    fn correct_across_grid_sizes() {
        let g = erdos_renyi_gnm(200, 300, 5);
        for p in [1, 4, 9, 16] {
            check(&g, p, &LaccOpts::default());
        }
    }

    #[test]
    fn bit_identical_to_serial_without_permutation() {
        let opts = LaccOpts {
            permute: false,
            ..LaccOpts::default()
        };
        for seed in 0..3 {
            let g = community_graph(600, 30, 3.0, 1.4, seed);
            let serial = lacc_serial(&g, &opts);
            for p in [4, 9] {
                let dist = run_with(&g, p, &opts);
                assert_eq!(dist.labels, serial.labels, "seed={seed} p={p}");
                // Same iteration trajectory too.
                assert_eq!(dist.num_iterations(), serial.num_iterations());
                for (a, b) in dist.iters.iter().zip(&serial.iters) {
                    assert_eq!(a.cond_changed, b.cond_changed);
                    assert_eq!(a.uncond_changed, b.uncond_changed);
                    assert_eq!(a.shortcut_changed, b.shortcut_changed);
                    assert_eq!(a.converged_after, b.converged_after);
                }
            }
        }
    }

    #[test]
    fn permutation_preserves_partition() {
        let g = rmat(8, 4, RmatParams::graph500(), 9);
        let run = check(&g, 4, &LaccOpts::default());
        assert!(run.num_iterations() > 0);
    }

    #[test]
    fn works_with_all_comm_configs() {
        let g = metagenome_graph(800, 6, 0.01, 3);
        for opts in [
            LaccOpts::default(),
            LaccOpts::naive_comm(),
            LaccOpts::dense_as(),
        ] {
            check(&g, 4, &opts);
        }
    }

    #[test]
    fn path_worst_case_distributed() {
        let g = path_graph(1000);
        let run = check(&g, 16, &LaccOpts::default());
        assert_eq!(run.num_components(), 1);
        assert!(run.modeled_total_s > 0.0);
    }

    #[test]
    fn stats_are_populated() {
        let g = community_graph(2000, 100, 3.0, 1.4, 8);
        let run = check(&g, 4, &LaccOpts::default());
        assert_eq!(run.p, 4);
        let last = run.iters.last().unwrap();
        assert_eq!(last.converged_after, 2000);
        assert_eq!(run.iters[0].extract_received.len(), 4);
        assert!(run.breakdown().total() > 0.0);
        assert!(run.modeled_total_s >= run.breakdown().total() * 0.5);
    }

    #[test]
    fn single_vertex_and_empty() {
        check(
            &CsrGraph::from_edges(lacc_graph::EdgeList::new(1)),
            4,
            &LaccOpts::default(),
        );
        check(
            &CsrGraph::from_edges(lacc_graph::EdgeList::new(0)),
            1,
            &LaccOpts::default(),
        );
    }

    #[test]
    fn more_ranks_than_vertices() {
        let g = path_graph(7);
        check(&g, 16, &LaccOpts::default());
    }

    #[test]
    fn cyclic_vectors_match_blocked_bitwise() {
        // §VII future-work layout: a different distribution must change
        // communication, never results — with permutation disabled the
        // parent vectors are bit-identical.
        for seed in 0..2 {
            let g = community_graph(700, 35, 3.0, 1.4, seed);
            let blocked = LaccOpts {
                permute: false,
                ..LaccOpts::default()
            };
            let cyclic = LaccOpts {
                permute: false,
                cyclic_vectors: true,
                ..LaccOpts::default()
            };
            for p in [4, 9, 16] {
                let a = run_with(&g, p, &blocked);
                let b = run_with(&g, p, &cyclic);
                assert_eq!(a.labels, b.labels, "seed={seed} p={p}");
            }
        }
    }

    #[test]
    fn cyclic_correct_on_families() {
        let opts = LaccOpts::cyclic();
        check(&path_graph(300), 4, &opts);
        check(&rmat(7, 4, RmatParams::graph500(), 2), 9, &opts);
        check(&metagenome_graph(600, 6, 0.01, 3), 16, &opts);
    }

    #[test]
    fn index_widths_produce_identical_labels() {
        // The tentpole guarantee of the narrow layout: storage width is
        // invisible in the results — u32 and u64 runs agree bit for bit
        // (after widening) on every comm config and vector layout.
        for seed in 0..2 {
            let g = community_graph(500, 25, 3.0, 1.4, seed);
            for base in [
                LaccOpts::default(),
                LaccOpts::naive_comm(),
                LaccOpts::cyclic(),
            ] {
                let narrow = LaccOpts {
                    index_width: IndexWidth::U32,
                    ..base
                };
                let wide = LaccOpts {
                    index_width: IndexWidth::U64,
                    ..base
                };
                for p in [4, 9] {
                    let a = run_with(&g, p, &narrow);
                    let b = run_with(&g, p, &wide);
                    assert_eq!(a.labels, b.labels, "seed={seed} p={p}");
                    assert_eq!(a.num_iterations(), b.num_iterations(), "seed={seed} p={p}");
                }
            }
        }
    }

    #[test]
    fn narrow_width_matches_serial_bitwise() {
        let opts = LaccOpts {
            permute: false,
            index_width: IndexWidth::U32,
            ..LaccOpts::default()
        };
        let g = community_graph(600, 30, 3.0, 1.4, 1);
        let serial = lacc_serial(&g, &opts);
        let dist = run_with(&g, 4, &opts);
        assert_eq!(dist.labels, serial.labels);
    }

    #[test]
    fn tracing_is_observation_only() {
        // The tentpole guarantee: turning tracing on (even at the most
        // verbose level) changes neither the labels nor any modeled
        // statistic, bit for bit.
        use dmsim::TraceLevel;
        let g = rmat(8, 4, RmatParams::graph500(), 11);
        let opts = LaccOpts::default();
        let off = run_with(&g, 4, &opts);
        let sink = TraceSink::new(TraceLevel::Collectives);
        let on = run(
            &g,
            &RunConfig::new(4, model()).with_opts(opts).with_trace(&sink),
        )
        .unwrap();
        assert_eq!(off.labels, on.labels);
        assert_eq!(off.num_iterations(), on.num_iterations());
        assert_eq!(off.modeled_total_s, on.modeled_total_s);
        for (a, b) in off.iters.iter().zip(&on.iters) {
            assert_eq!(a.modeled, b.modeled);
            assert_eq!(a.extract_received, b.extract_received);
        }
        // The traced run actually recorded the full hierarchy: the
        // engine wrapper, all four LACC steps, the distributed ops, and
        // the collectives under them.
        let report = sink.report();
        for name in [
            "engine(lacc)",
            "cond_hook",
            "uncond_hook",
            "shortcut",
            "starcheck",
            "mxv",
            "assign",
            "extract",
            "allgatherv",
        ] {
            assert!(report.kind_time_s(name) > 0.0, "missing span kind {name}");
        }
        let json = sink.chrome_trace_json();
        assert!(json.contains("\"cond_hook\""));
        assert!(json.contains("\"engine(lacc)\""));
        assert!(report.load_imbalance >= 1.0);
    }

    #[test]
    fn rerun_entry_is_bit_identical_and_tagged() {
        use dmsim::TraceLevel;
        let g = rmat(8, 4, RmatParams::graph500(), 13);
        let opts = LaccOpts::default();
        let plain = run_with(&g, 4, &opts);
        let sink = TraceSink::new(TraceLevel::Steps);
        let rerun = run(
            &g,
            &RunConfig::new(4, model())
                .with_opts(opts)
                .with_trace(&sink)
                .with_rerun(RerunReason::Deletion),
        )
        .unwrap();
        // The rerun wrapper is observational: same labels, same clock.
        assert_eq!(plain.labels, rerun.labels);
        assert_eq!(plain.modeled_total_s, rerun.modeled_total_s);
        let report = sink.report();
        assert_eq!(report.reruns, 1);
        assert!(report.kind_time_s("rerun(deletion)") > 0.0);
        assert_eq!(report.kind_time_s("rerun(staleness)"), 0.0);
        // Two reruns into the same sink accumulate, and the max-over-ranks
        // aggregation counts each p-rank rebuild once.
        run(
            &g,
            &RunConfig::new(4, model())
                .with_opts(opts)
                .with_trace(&sink)
                .with_rerun(RerunReason::Staleness),
        )
        .unwrap();
        let report = sink.report();
        assert_eq!(report.reruns, 2);
        assert!(report.kind_time_s("rerun(staleness)") > 0.0);
    }

    #[test]
    fn panicking_rank_surfaces_as_error() {
        // p = 2 is not a perfect square; the grid assertion fires inside
        // every rank and must come back as a typed error, not a crash.
        let g = path_graph(10);
        let err = std::panic::catch_unwind(|| {
            let _ = run(&g, &RunConfig::new(2, model()));
        });
        // Grid validation happens eagerly on the caller thread.
        assert!(err.is_err());
    }

    #[test]
    fn cyclic_balances_extract_requests() {
        // The point of the layout: after min-hooking concentrates parents
        // at low ids, the blocked layout funnels extract requests to low
        // ranks; cyclic spreads them. Compare the max/avg imbalance of
        // per-rank received requests summed over the run.
        let g = rmat(10, 8, RmatParams::graph500(), 5);
        let p = 16;
        let imbalance = |opts: &LaccOpts| {
            let run = run_with(&g, p, opts);
            let mut per_rank = vec![0u64; p];
            for it in &run.iters {
                for (r, &x) in it.extract_received.iter().enumerate() {
                    per_rank[r] += x;
                }
            }
            let max = *per_rank.iter().max().unwrap() as f64;
            let avg = per_rank.iter().sum::<u64>() as f64 / p as f64;
            max / avg.max(1.0)
        };
        // Disable the hot-rank broadcast so the raw skew is measured, and
        // the permutation so ids stay adversarial.
        let blocked = LaccOpts {
            permute: false,
            ..LaccOpts::naive_comm()
        };
        let cyclic = LaccOpts {
            permute: false,
            cyclic_vectors: true,
            ..LaccOpts::naive_comm()
        };
        let (ib, ic) = (imbalance(&blocked), imbalance(&cyclic));
        assert!(
            ic < ib,
            "cyclic should balance extract traffic: blocked {ib:.2}x vs cyclic {ic:.2}x"
        );
    }

    // ---------------- engine portfolio ----------------

    #[test]
    fn fastsv_engine_matches_serial_fastsv_labels() {
        // Without permutation both converge to component minima, so the
        // raw labels are equal — not just the partitions.
        let g = community_graph(800, 40, 3.0, 1.4, 12);
        let serial = baselines_oracle_fastsv(&g);
        let opts = LaccOpts {
            permute: false,
            engine: EngineSelect::Fastsv,
            ..LaccOpts::default()
        };
        let out = run_with(&g, 4, &opts);
        assert_eq!(out.engine, EngineKind::Fastsv);
        assert_eq!(out.labels, serial);
    }

    // A tiny local FastSV oracle (mirrors `lacc-baselines::fastsv_cc`,
    // which this crate cannot depend on without a cycle).
    fn baselines_oracle_fastsv(g: &CsrGraph) -> Vec<crate::Vid> {
        let n = g.num_vertices();
        let mut f: Vec<usize> = (0..n).collect();
        let mut gf = f.clone();
        loop {
            let mut changed = 0u64;
            let fnv: Vec<usize> = (0..n)
                .map(|u| {
                    g.neighbors(u)
                        .iter()
                        .map(|&v| gf[v])
                        .min()
                        .unwrap_or(usize::MAX)
                })
                .collect();
            for u in 0..n {
                let fu = f[u];
                if fnv[u] < f[fu] {
                    f[fu] = fnv[u];
                    changed += 1;
                }
            }
            for u in 0..n {
                if fnv[u] < f[u] {
                    f[u] = fnv[u];
                    changed += 1;
                }
            }
            for u in 0..n {
                if gf[u] < f[u] {
                    f[u] = gf[u];
                    changed += 1;
                }
            }
            for u in 0..n {
                let new = f[f[u]];
                if gf[u] != new {
                    gf[u] = new;
                    changed += 1;
                }
            }
            if changed == 0 {
                break;
            }
        }
        f
    }

    #[test]
    fn all_engines_agree_canonically() {
        for (name, g) in [
            ("rmat", rmat(8, 4, RmatParams::graph500(), 21)),
            ("community", community_graph(600, 30, 3.0, 1.4, 4)),
            ("path", path_graph(300)),
            ("metagenome", metagenome_graph(500, 6, 0.01, 9)),
        ] {
            let truth = ground_truth_labels(&g);
            for select in [
                EngineSelect::Lacc,
                EngineSelect::Fastsv,
                EngineSelect::LabelProp,
                EngineSelect::Auto,
            ] {
                // Label propagation on a long path is O(diameter) rounds —
                // legal but slow; Auto never picks it there.
                if name == "path" && select == EngineSelect::LabelProp {
                    continue;
                }
                let opts = LaccOpts {
                    engine: select,
                    ..LaccOpts::default()
                };
                let out = run_with(&g, 4, &opts);
                assert_eq!(
                    canonicalize_labels(&out.labels),
                    truth,
                    "engine={select} graph={name}"
                );
                if select == EngineSelect::Auto {
                    assert!(out.rationale.is_some(), "Auto must explain itself");
                } else {
                    assert!(out.rationale.is_none());
                }
            }
        }
    }

    #[test]
    fn engine_spans_tag_the_run() {
        use dmsim::TraceLevel;
        let g = rmat(8, 4, RmatParams::graph500(), 17);
        for (select, span) in [
            (EngineSelect::Fastsv, "engine(fastsv)"),
            (EngineSelect::LabelProp, "engine(labelprop)"),
        ] {
            let sink = TraceSink::new(TraceLevel::Steps);
            let opts = LaccOpts {
                engine: select,
                ..LaccOpts::default()
            };
            let out = run(
                &g,
                &RunConfig::new(4, model()).with_opts(opts).with_trace(&sink),
            )
            .unwrap();
            assert_eq!(
                canonicalize_labels(&out.labels),
                ground_truth_labels(&g),
                "{select}"
            );
            let report = sink.report();
            assert!(report.kind_time_s(span) > 0.0, "missing {span}");
            assert_eq!(report.kind_time_s("engine(lacc)"), 0.0);
        }
        // Auto additionally records its pre-pass span.
        let sink = TraceSink::new(TraceLevel::Steps);
        let opts = LaccOpts {
            engine: EngineSelect::Auto,
            ..LaccOpts::default()
        };
        run(
            &g,
            &RunConfig::new(4, model()).with_opts(opts).with_trace(&sink),
        )
        .unwrap();
        assert!(sink.report().kind_time_s("engine_select") > 0.0);
    }

    #[test]
    fn engine_metadata_recorded_in_trace() {
        use dmsim::TraceLevel;
        let g = rmat(8, 4, RmatParams::graph500(), 17);
        // A fixed engine records its name but no rationale.
        let sink = TraceSink::new(TraceLevel::Steps);
        let opts = LaccOpts {
            engine: EngineSelect::Fastsv,
            ..LaccOpts::default()
        };
        run(
            &g,
            &RunConfig::new(4, model()).with_opts(opts).with_trace(&sink),
        )
        .unwrap();
        let meta = sink.metadata();
        assert!(meta.contains(&("engine".to_string(), "fastsv".to_string())));
        assert!(meta.iter().all(|(k, _)| k != "engine_rationale"));
        // Auto additionally records its rationale, and both surface as
        // Chrome metadata events.
        let sink = TraceSink::new(TraceLevel::Steps);
        let opts = LaccOpts {
            engine: EngineSelect::Auto,
            ..LaccOpts::default()
        };
        let out = run(
            &g,
            &RunConfig::new(4, model()).with_opts(opts).with_trace(&sink),
        )
        .unwrap();
        let rationale = out.rationale.clone().expect("Auto explains itself");
        let meta = sink.metadata();
        assert!(meta.contains(&("engine".to_string(), out.engine.name().to_string())));
        assert!(meta.contains(&("engine_rationale".to_string(), rationale)));
        let json = sink.chrome_trace_json();
        assert!(json.contains("\"engine_rationale\""));
        assert!(json.contains("\"ph\":\"M\""));
    }

    #[test]
    fn fastsv_uses_the_optimized_stack() {
        // Acceptance criterion: with optimized DistOpts the FastSV engine
        // reports nonzero words-saved (compaction active on its planned
        // extracts / combining assigns); with naive() it reports none.
        use dmsim::TraceLevel;
        let g = rmat(9, 8, RmatParams::graph500(), 3);
        let words_saved = |opts: &LaccOpts| {
            let sink = TraceSink::new(TraceLevel::Steps);
            run(
                &g,
                &RunConfig::new(4, model())
                    .with_opts(*opts)
                    .with_trace(&sink),
            )
            .unwrap();
            sink.report().words_saved
        };
        let optimized = LaccOpts {
            engine: EngineSelect::Fastsv,
            ..LaccOpts::default()
        };
        let naive = LaccOpts {
            engine: EngineSelect::Fastsv,
            ..LaccOpts::naive_comm()
        };
        assert!(words_saved(&optimized) > 0, "no compaction savings");
        assert_eq!(words_saved(&naive), 0);
    }

    #[test]
    fn engines_agree_across_widths_and_layouts() {
        let g = community_graph(400, 20, 3.0, 1.4, 6);
        let truth = ground_truth_labels(&g);
        for select in [EngineSelect::Fastsv, EngineSelect::LabelProp] {
            let base = LaccOpts {
                permute: false,
                engine: select,
                ..LaccOpts::default()
            };
            let mut labels: Option<Vec<crate::Vid>> = None;
            for cyclic in [false, true] {
                for width in [IndexWidth::U32, IndexWidth::U64] {
                    let opts = LaccOpts {
                        cyclic_vectors: cyclic,
                        index_width: width,
                        ..base
                    };
                    let out = run_with(&g, 4, &opts);
                    assert_eq!(canonicalize_labels(&out.labels), truth, "{select}");
                    // Min-monotone engines are bit-identical across
                    // widths and layouts (labels are component minima).
                    match &labels {
                        Some(prev) => assert_eq!(&out.run.labels, prev, "{select}"),
                        None => labels = Some(out.run.labels.clone()),
                    }
                }
            }
        }
    }

    #[test]
    fn auto_routes_by_family() {
        // A fragmented many-component graph goes to LACC; a single
        // dominant deep component goes to FastSV.
        let frag = community_graph(800, 40, 3.0, 1.4, 2);
        let opts = LaccOpts {
            engine: EngineSelect::Auto,
            ..LaccOpts::default()
        };
        let out = run_with(&frag, 4, &opts);
        assert_eq!(out.engine, EngineKind::Lacc, "{:?}", out.rationale);
        let deep = path_graph(600);
        let out = run_with(&deep, 4, &opts);
        assert_eq!(out.engine, EngineKind::Fastsv, "{:?}", out.rationale);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_forward_to_run() {
        let g = rmat(7, 4, RmatParams::graph500(), 29);
        let opts = LaccOpts::default();
        let new = run_with(&g, 4, &opts);
        let old = run_distributed(&g, 4, model(), &opts).unwrap();
        assert_eq!(old.labels, new.run.labels);
        assert_eq!(old.modeled_total_s, new.modeled_total_s);
        let old_traced = run_distributed_traced(&g, 4, model(), &opts, None).unwrap();
        assert_eq!(old_traced.labels, new.run.labels);
        let old_rerun =
            run_distributed_rerun(&g, 4, model(), &opts, None, RerunReason::Bootstrap).unwrap();
        assert_eq!(old_rerun.labels, new.run.labels);
    }
}
